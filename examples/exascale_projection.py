#!/usr/bin/env python3
"""Exascale projection: the intro's thought experiment, quantified.

The paper opens with: "a machine with 100,000 one-century-MTBF nodes
fails every 9 hours."  This example builds that hypothetical machine,
sweeps node counts from 10k to 10M, and shows how the achievable
overhead saturates — Amdahl's asymptote is unreachable on failure-prone
hardware, and past P* extra nodes actively hurt.

Run:  python examples/exascale_projection.py
"""

import numpy as np

from repro.core import (
    AmdahlSpeedup,
    CheckpointCost,
    ErrorModel,
    PatternModel,
    ResilienceCosts,
    VerificationCost,
    optimal_pattern,
)
from repro.io.tables import render_table
from repro.optimize import optimize_allocation, optimize_period
from repro.units import format_duration, format_si, years

# The intro's machine: one-century MTBF per node, 20% fail-stop errors
# (the Hera-like mix), in-memory checkpoints of a 1 TB/node footprint
# over a fat network, plus a per-node coordination cost.
ERRORS = ErrorModel.from_mtbf(years(100), fail_stop_fraction=0.2)
COSTS = ResilienceCosts(
    checkpoint=CheckpointCost(a=30.0, c=0.002),  # 30s latency + 2ms/node sync
    verification=VerificationCost(v=10.0),
    downtime=600.0,
)
ALPHA = 1e-5  # heroic scaling: 0.001% sequential


def main() -> None:
    model = PatternModel(errors=ERRORS, costs=COSTS, speedup=AmdahlSpeedup(ALPHA))

    print("Machine: mu_ind = 100 years, f = 0.2, C_P = 30 + 0.002 P, "
          f"V = 10s, D = 10 min, alpha = {ALPHA}\n")

    # Platform MTBF at the intro's scale.
    P0 = 100_000.0
    mtbf = model.errors.platform_mtbf(P0)
    print(f"Platform MTBF at P = 100k nodes: {format_duration(mtbf)} "
          "(the intro's 'failure every ~9 hours')\n")

    rows = []
    for P in np.logspace(4, 7, 7):
        inner = optimize_period(model, float(P))
        rows.append(
            (
                format_si(P),
                format_duration(model.errors.platform_mtbf(P)),
                format_duration(inner.period),
                round(inner.overhead * 1e5, 3),
                round(1.0 / inner.overhead, 0),
            )
        )
    print(
        render_table(
            ("nodes", "platform MTBF", "best period", "overhead (x1e-5)", "speedup"),
            rows,
            title="Best achievable execution vs machine size",
        )
    )

    best = optimize_allocation(model)
    closed = optimal_pattern(model)
    print(
        f"\nJoint optimum: P* = {format_si(best.processors)} nodes, "
        f"T* = {format_duration(best.period)}, speedup {1/best.overhead:,.0f}"
    )
    print(
        f"Closed form (Theorem 2): P* = {format_si(closed.processors)}, "
        f"T* = {format_duration(closed.period)}"
    )
    print(
        f"Amdahl's error-free ceiling at alpha = {ALPHA}: speedup "
        f"{1/ALPHA:,.0f} — failures keep us at "
        f"{(1/best.overhead) / (1/ALPHA):.0%} of it."
    )


if __name__ == "__main__":
    main()
