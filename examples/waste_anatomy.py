#!/usr/bin/env python3
"""Anatomy of the overhead: where the waste goes, analytically and simulated.

Uses the waste-accounting toolkit to split the expected overhead of a
pattern into its physical channels — the deterministic resilience bill
(verification + checkpoint), the fail-stop re-execution loss and the
silent re-execution loss — across a range of periods, then validates
the totals against the event-driven simulator's activity breakdown.

The punchline is the generalised Young/Daly equilibrium: at the optimal
period the deterministic bill exactly balances the expected error loss.

Run:  python examples/waste_anatomy.py
"""

import numpy as np

from repro import build_model
from repro.analysis.waste import compare_with_simulation, waste_breakdown
from repro.core import optimal_period
from repro.io.tables import render_table
from repro.sim import simulate_run, spawn_rngs


def main() -> None:
    model = build_model("Hera", scenario_id=1)
    P = 256.0
    T_star = float(optimal_period(P, model.errors, model.costs))

    rows = []
    for label, T in [
        ("T*/8", T_star / 8),
        ("T*/2", T_star / 2),
        ("T* (optimal)", T_star),
        ("2 T*", T_star * 2),
        ("8 T*", T_star * 8),
    ]:
        b = waste_breakdown(model, T, P)
        fr = b.fractions()
        rows.append(
            (
                label,
                round(T, 0),
                f"{b.total:.5f}",
                f"{fr['resilience_bill']:.0%}",
                f"{fr['fail_stop_reexecution']:.0%}",
                f"{fr['silent_reexecution']:.0%}",
                f"{fr['residual']:.1%}",
            )
        )
    print(
        render_table(
            ("period", "T (s)", "rel. waste", "bill", "fail-stop", "silent", "residual"),
            rows,
            title=f"Hera sc1, P = {P:.0f}: waste channels vs checkpointing period",
        )
    )
    print(
        "\nAt T* the bill and the error-loss channels balance "
        "(the generalised Young/Daly equilibrium).\n"
    )

    # Validate the analytic total against simulated runs at T*.
    totals = []
    for rng in spawn_rngs(20, seed=29):
        stats = simulate_run(model, T_star, P, 150, rng)
        totals.append(compare_with_simulation(model, T_star, P, stats)["total"])
    analytic = waste_breakdown(model, T_star, P).total
    print(
        f"simulated relative waste at T*: {np.mean(totals):.5f} "
        f"(analytic {analytic:.5f}, 20 runs x 150 patterns)"
    )


if __name__ == "__main__":
    main()
