#!/usr/bin/env python3
"""Platform sizing study: a 30-day job across all platforms and protocols.

A practitioner's view of the paper: given an application with a known
sequential profile and total work, print — for each SCR platform and
each resilience scenario — the recommended allocation, checkpoint
period, and the projected makespan, next to the error-free ideal.

Run:  python examples/platform_sizing.py
"""

from repro import ApplicationSpec, build_model, optimize_allocation, project_makespan
from repro.baselines import ErrorFreeModel
from repro.io.tables import render_table
from repro.platforms import PLATFORM_NAMES, SCENARIO_IDS, get_scenario
from repro.units import days, format_duration

#: A month-long (sequential-equivalent: ~27 years) simulation campaign.
APP = ApplicationSpec(total_work=days(10_000), name="campaign")
ALPHA = 0.01  # a well-parallelised code: 1% sequential


def main() -> None:
    print(f"Application: {APP.name}, W_total = {format_duration(APP.total_work)}, "
          f"alpha = {ALPHA}\n")
    for platform in PLATFORM_NAMES:
        rows = []
        for scenario_id in SCENARIO_IDS:
            model = build_model(platform, scenario_id, alpha=ALPHA)
            best = optimize_allocation(model, integer=True)
            report = project_makespan(
                model, APP, best.period, best.processors
            )
            error_free = ErrorFreeModel(model.speedup).makespan(
                APP.total_work, best.processors
            )
            rows.append(
                (
                    scenario_id,
                    get_scenario(scenario_id).label,
                    int(best.processors),
                    format_duration(best.period),
                    format_duration(report.expected_makespan),
                    format_duration(error_free),
                    f"{report.resilience_penalty:.3f}x",
                )
            )
        print(
            render_table(
                (
                    "sc",
                    "protocol",
                    "P*",
                    "T*",
                    "expected makespan",
                    "error-free",
                    "penalty",
                ),
                rows,
                title=f"Platform {platform}",
            )
        )
        print()


if __name__ == "__main__":
    main()
