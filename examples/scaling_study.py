#!/usr/bin/env python3
"""Scaling study: watch Amdahl meet Young/Daly.

Reproduces the paper's headline asymptotics interactively: sweep the
per-processor error rate from exascale-pessimistic (1e-8/s, MTBF ~2
years) to ultra-reliable (1e-12/s, MTBF ~30k years) and print how the
optimal allocation, period, and overhead move — including the fitted
power-law orders that Theorems 2 and 3 predict:

* linear checkpoint cost:   P* ~ lambda^-1/4,  T* ~ lambda^-1/2
* constant checkpoint cost: P* ~ lambda^-1/3,  T* ~ lambda^-1/3

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro import build_model, optimal_pattern, optimize_allocation
from repro.analysis.asymptotics import fit_loglog_slope
from repro.io.tables import render_table

LAMBDAS = np.logspace(-12, -8, 9)
SCENARIOS = {1: "C_P = cP (Theorem 2)", 3: "C_P = a (Theorem 3)"}


def main() -> None:
    for scenario_id, label in SCENARIOS.items():
        rows = []
        P_closed, P_num, T_num, H_num = [], [], [], []
        for lam in LAMBDAS:
            model = build_model("Hera", scenario_id, lambda_ind=float(lam))
            closed = optimal_pattern(model)
            num = optimize_allocation(model)
            P_closed.append(closed.processors)
            P_num.append(num.processors)
            T_num.append(num.period)
            H_num.append(num.overhead)
            rows.append(
                (
                    f"{lam:.1e}",
                    round(closed.processors, 1),
                    round(num.processors, 1),
                    round(closed.period, 1),
                    round(num.period, 1),
                    round(num.overhead, 5),
                )
            )
        print(
            render_table(
                ("lambda_ind", "P* closed", "P* numeric", "T* closed", "T* numeric", "H numeric"),
                rows,
                title=f"Scenario {scenario_id}: {label}",
            )
        )
        p_fit = fit_loglog_slope(LAMBDAS, np.array(P_num))
        t_fit = fit_loglog_slope(LAMBDAS, np.array(T_num))
        print(
            f"  fitted orders: P* ~ lambda^{p_fit.slope:+.3f} "
            f"(r^2={p_fit.r_squared:.5f}), T* ~ lambda^{t_fit.slope:+.3f}"
        )
        expected = (-0.25, -0.5) if scenario_id == 1 else (-1 / 3, -1 / 3)
        print(f"  theory:        P* ~ lambda^{expected[0]:+.3f}, "
              f"T* ~ lambda^{expected[1]:+.3f}\n")


if __name__ == "__main__":
    main()
