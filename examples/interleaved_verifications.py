#!/usr/bin/env python3
"""Beyond the paper: several verifications per checkpoint.

The paper's VC protocol verifies exactly once, right before each
checkpoint.  Its reference [2] interleaves k verifications so silent
errors are caught after ~1/k of the pattern instead of all of it.  This
example uses the library's segmented-pattern extension to answer, per
platform: *is one verification enough?*

It prints the exact overhead as a function of k, the closed-form
k* = sqrt(C lambda_s / (V (lambda_f + lambda_s))), and validates the
winner by Monte-Carlo simulation.

Run:  python examples/interleaved_verifications.py
"""

import numpy as np

from repro import build_model, optimize_allocation
from repro.extensions.sim_twolevel import simulate_segmented_batch
from repro.extensions.twolevel import (
    optimal_segment_count,
    optimize_segments,
    segmented_overhead,
    segmented_period,
)
from repro.io.tables import render_table
from repro.sim.rng import make_rng


def main() -> None:
    for platform in ("Hera", "Atlas"):
        model = build_model(platform, scenario_id=3)  # constant-cost protocol
        P = optimize_allocation(model).processors
        rows = []
        for k in (1, 2, 3, 4, 6, 8, 12, 16):
            T = segmented_period(P, k, model.errors, model.costs)
            rows.append((k, round(T, 0), float(segmented_overhead(T, P, k, model))))
        k_star = optimal_segment_count(P, model.errors, model.costs)
        best = optimize_segments(model, P)
        print(
            render_table(
                ("k", "T*_k (s)", "exact overhead"),
                rows,
                title=(
                    f"{platform} (scenario 3, P = {P:.0f}): "
                    f"k* = {k_star:.2f} closed-form, best k = {best.segments:.0f}"
                ),
            )
        )

        # Monte-Carlo sanity check of the winner vs the paper's k = 1.
        work = 200 * best.period * model.speedup.speedup(P)
        sim_best = simulate_segmented_batch(
            model, best.period, P, int(best.segments), 300, 200, make_rng(1)
        )
        T1 = segmented_period(P, 1, model.errors, model.costs)
        work1 = 200 * T1 * model.speedup.speedup(P)
        sim_k1 = simulate_segmented_batch(model, T1, P, 1, 300, 200, make_rng(2))
        print(
            f"  simulated: k={best.segments:.0f} -> "
            f"{np.mean(sim_best.run_times) / work:.5f}, "
            f"k=1 -> {np.mean(sim_k1.run_times) / work1:.5f}\n"
        )


if __name__ == "__main__":
    main()
