#!/usr/bin/env python3
"""What does ignoring silent errors cost?

The classical Young/Daly practice sizes the checkpoint period from the
*fail-stop* MTBF alone.  But on the SCR platforms 78-94% of errors are
silent (Table II).  This example sizes a run both ways — naive
(fail-stop-only formulas) and informed (the paper's two-source
Theorems) — then evaluates both deployments under the true error mix.

Run:  python examples/silent_error_blindness.py
"""

from repro import build_model, optimal_pattern
from repro.baselines import price_of_ignoring_silent
from repro.io.tables import render_table
from repro.platforms import PLATFORM_NAMES


def main() -> None:
    rows = []
    for platform in PLATFORM_NAMES:
        model = build_model(platform, scenario_id=1)
        informed = optimal_pattern(model)
        deployment = price_of_ignoring_silent(model)
        naive = deployment.naive_solution
        rows.append(
            (
                platform,
                f"{model.errors.s:.0%}",
                round(naive.processors, 1),
                round(informed.processors, 1),
                round(naive.period, 0),
                round(informed.period, 0),
                round(deployment.true_overhead, 4),
                round(deployment.optimal_overhead, 4),
                f"{(deployment.penalty - 1) * 100:.2f}%",
            )
        )
    print(
        render_table(
            (
                "platform",
                "silent",
                "P naive",
                "P informed",
                "T naive",
                "T informed",
                "H naive",
                "H informed",
                "penalty",
            ),
            rows,
            title="The price of sizing checkpoints while ignoring silent errors "
            "(scenario 1, alpha = 0.1)",
        )
    )
    print(
        "\nReading: the naive run still detects silent errors (the protocol "
        "verifies),\nbut checkpoints too rarely and enrolls too many "
        "processors, paying the penalty\nin extra re-executed work."
    )


if __name__ == "__main__":
    main()
