#!/usr/bin/env python3
"""Quickstart: size a resilient run on a real platform in ten lines.

The question the paper answers: *how many processors should a parallel
job enroll, and how often should it checkpoint, on a platform where
both fail-stop and silent errors strike?*

This script answers it for the Hera platform (Table II) under
scenario 1 (coordinated checkpointing whose cost grows with scale,
Table III), compares the closed-form answer of Theorem 2 with the
numerical optimum of the exact model, and validates both by Monte-Carlo
simulation.

Run:  python examples/quickstart.py
"""

from repro import build_model, optimal_pattern, optimize_allocation, simulate_overhead
from repro.units import format_duration

# 1. A platform x scenario x application model: Hera, checkpoint cost
#    growing linearly with P, Amdahl job with a 10% sequential fraction.
model = build_model("Hera", scenario_id=1, alpha=0.1)

# 2. Closed form (Theorem 2): P* = Theta(lambda^-1/4), T* = Theta(lambda^-1/2).
closed = optimal_pattern(model)
print("Closed form (Theorem 2)")
print(f"  optimal processors  P* = {closed.processors:8.1f}")
print(f"  optimal period      T* = {closed.period:8.1f} s "
      f"({format_duration(closed.period)})")
print(f"  predicted overhead  H* = {closed.overhead:.4f} "
      f"(speedup {closed.speedup:.2f})")

# 3. Numerical optimum of the exact expectation (Proposition 1).
numeric = optimize_allocation(model, integer=True)
print("\nNumerical optimum (exact model)")
print(f"  optimal processors  P  = {numeric.processors:8.0f}")
print(f"  optimal period      T  = {numeric.period:8.1f} s "
      f"({format_duration(numeric.period)})")
print(f"  exact overhead      H  = {numeric.overhead:.4f}")

# 4. Monte-Carlo validation at the paper's fidelity knobs.
estimate = simulate_overhead(
    model, numeric.period, numeric.processors, n_runs=200, n_patterns=200, seed=1
)
print("\nSimulation (200 runs x 200 patterns)")
print(f"  simulated overhead  H  = {estimate.mean:.4f} "
      f"(95% CI [{estimate.ci_low:.4f}, {estimate.ci_high:.4f}])")

# 5. The headline contrast: in an error-free world you would enroll as
#    many processors as possible; with failures, more is eventually worse.
from repro.optimize import optimize_period

P_whole_machine = 10_000.0
huge = optimize_period(model, P_whole_machine)
print(f"\nEnrolling the 'whole machine' (P = {P_whole_machine:.0f}) instead:")
print(f"  best-possible overhead = {huge.overhead:.4f} "
      f"({huge.overhead / numeric.overhead:.2f}x worse than P = "
      f"{numeric.processors:.0f})")
