#!/usr/bin/env python3
"""A tour of the discrete-event simulator: where does the time go?

Runs the event-driven reference simulator at three checkpoint periods —
too short, optimal, too long — and prints the full activity breakdown
(useful work, wasted work, verification, checkpointing, recovery,
downtime, time destroyed by fail-stop errors), illustrating *why* the
Young/Daly trade-off exists:

* short periods waste time on checkpoint overheads;
* long periods waste time on re-executed work after errors.

Run:  python examples/simulator_tour.py
"""

from repro import build_model, optimize_allocation
from repro.io.tables import render_table
from repro.sim import simulate_run, spawn_rngs


def breakdown_row(label, T, P, model, n_patterns=300, seed=7):
    [rng] = spawn_rngs(1, seed=seed)
    stats = simulate_run(model, T, P, n_patterns, rng)
    b = stats.breakdown
    total = stats.total_time

    def pct(x):
        return f"{100 * x / total:5.2f}%"

    overhead = total / (n_patterns * T * model.speedup.speedup(P))
    return (
        label,
        round(T, 0),
        pct(b.useful_work),
        pct(b.wasted_work + b.lost),
        pct(b.verification),
        pct(b.checkpoint),
        pct(b.recovery + b.downtime),
        stats.n_fail_stop,
        stats.n_silent_detected,
        round(overhead, 4),
    )


def main() -> None:
    model = build_model("Hera", scenario_id=1)
    best = optimize_allocation(model)
    P = best.processors
    print(
        f"Platform Hera, scenario 1, P = {P:.0f} processors "
        f"(numerical optimum), 300 patterns per run\n"
    )
    rows = [
        breakdown_row("10x too short", best.period / 10, P, model),
        breakdown_row("optimal", best.period, P, model),
        breakdown_row("10x too long", best.period * 10, P, model),
    ]
    print(
        render_table(
            (
                "period",
                "T (s)",
                "useful",
                "wasted",
                "verify",
                "ckpt",
                "recov+down",
                "#fail-stop",
                "#silent",
                "overhead",
            ),
            rows,
            title="Activity breakdown vs checkpointing period (event-driven simulator)",
        )
    )
    print(
        "\nReading: at T*/10 the run drowns in checkpoints; at 10 T* errors "
        "destroy\nwhole patterns; the optimum balances the two — exactly the "
        "sqrt trade-off\nbehind Theorem 1."
    )


if __name__ == "__main__":
    main()
