"""Vectorised Monte-Carlo simulation of segmented patterns.

Validates :mod:`repro.extensions.twolevel` the same way
:mod:`repro.sim.batch` validates Proposition 1: closed-form sampling of
the exact protocol distribution, no event loop.

Per failed round of PATTERN(T, P, k):

* with probability :math:`p^k (1 - e^{-\\lambda^f C}) / (1 - p_{pat})`
  the chain passed and the *checkpoint* was hit: cost
  ``k A + truncexp(C) + D + REC``;
* otherwise the chain failed at segment ``J`` (truncated geometric):
  cost ``(J-1) A`` plus either a truncated exponential over ``A`` + D
  (fail-stop) or the full ``A`` (silent detected), plus ``REC``.

``k = 1`` must reproduce :func:`repro.sim.batch.simulate_batch`'s
distribution — asserted statistically in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from ..sim.batch import truncated_exponential

__all__ = ["SegmentedBatchStats", "simulate_segmented_batch"]


@dataclass(frozen=True)
class SegmentedBatchStats:
    """Aggregate outcome of a segmented-pattern simulation batch."""

    run_times: np.ndarray
    n_patterns: int
    segments: int
    n_attempts: int
    n_fail_stop: int
    n_silent_detected: int
    n_recoveries: int

    @property
    def n_runs(self) -> int:
        return int(self.run_times.size)

    @property
    def mean_pattern_time(self) -> float:
        """Empirical E(T, P, k)."""
        return float(self.run_times.mean() / self.n_patterns)


def _sample_truncated_geometric(
    rng: np.random.Generator, p: float, k: int, size: int
) -> np.ndarray:
    """Failing-segment index J in 1..k, P(J=j) ∝ p^{j-1}(1-p)."""
    if size == 0:
        return np.empty(0, dtype=np.int64)
    if p <= 0.0:
        return np.ones(size, dtype=np.int64)
    u = rng.random(size)
    # Inverse CDF of the truncated geometric: F(j) = (1 - p^j)/(1 - p^k).
    j = np.ceil(np.log1p(-u * (1.0 - p**k)) / np.log(p)).astype(np.int64)
    return np.clip(j, 1, k)


def simulate_segmented_batch(
    model: PatternModel,
    T: float,
    P: float,
    k: int,
    n_runs: int,
    n_patterns: int,
    rng: np.random.Generator,
) -> SegmentedBatchStats:
    """Simulate runs of PATTERN(T, P, k) — k verified segments + checkpoint."""
    if T <= 0.0 or P <= 0.0:
        raise SimulationError("T and P must be positive")
    if k < 1:
        raise SimulationError(f"segment count k must be >= 1, got {k!r}")
    if n_runs <= 0 or n_patterns <= 0:
        raise SimulationError("n_runs and n_patterns must be positive")

    lam_f = float(model.errors.fail_stop_rate(P))
    lam_s = float(model.errors.silent_rate(P))
    C = float(model.costs.checkpoint_cost(P))
    R = float(model.costs.recovery_cost(P))
    V = float(model.costs.verification_cost(P))
    D = float(model.costs.downtime)
    s = T / k
    A = s + V

    p_fs_ok = np.exp(-lam_f * A)
    p_seg = np.exp(-lam_f * A - lam_s * s)
    p_ck_ok = np.exp(-lam_f * C)
    p_ok_R = np.exp(-lam_f * R)
    p_pattern = p_seg**k * p_ck_ok

    n_total = n_runs * n_patterns
    base_time = n_patterns * (k * A + C)

    if p_pattern >= 1.0:
        return SegmentedBatchStats(
            run_times=np.full(n_runs, base_time),
            n_patterns=n_patterns,
            segments=k,
            n_attempts=n_total,
            n_fail_stop=0,
            n_silent_detected=0,
            n_recoveries=0,
        )

    attempts = rng.geometric(p_pattern, size=n_total)
    failures = attempts - 1
    n_failures = int(failures.sum())
    run_of_pattern = np.repeat(np.arange(n_runs), n_patterns)
    run_of_failure = np.repeat(run_of_pattern, failures)

    # Classify failures: checkpoint-stage vs chain-stage.
    p_ck_fail = p_seg**k * (1.0 - p_ck_ok) / (1.0 - p_pattern)
    u = rng.random(n_failures)
    is_ck = u < p_ck_fail
    n_ck = int(is_ck.sum())
    n_chain = n_failures - n_ck

    cost = np.empty(n_failures)
    if n_ck:
        cost[is_ck] = k * A + truncated_exponential(rng, lam_f, C, n_ck) + D

    n_fs = n_ck  # checkpoint failures are fail-stop by construction
    n_sil = 0
    if n_chain:
        chain_idx = ~is_ck
        J = _sample_truncated_geometric(rng, p_seg, k, n_chain)
        # Within the failing segment: fail-stop vs silent-detected.
        q_seg = 1.0 - p_seg
        w_fs = (1.0 - p_fs_ok) / q_seg if q_seg > 0.0 else 0.0
        fs_mask = rng.random(n_chain) < w_fs
        n_seg_fs = int(fs_mask.sum())
        n_fs += n_seg_fs
        n_sil = n_chain - n_seg_fs
        seg_cost = np.empty(n_chain)
        if n_seg_fs:
            seg_cost[fs_mask] = truncated_exponential(rng, lam_f, A, n_seg_fs) + D
        if n_sil:
            seg_cost[~fs_mask] = A
        cost[chain_idx] = (J - 1) * A + seg_cost

    # One recovery per failure, retried through fail-stop interruptions.
    if lam_f > 0.0 and n_failures:
        rec_failures = rng.geometric(p_ok_R, size=n_failures) - 1
        n_sub = int(rec_failures.sum())
        sub_losses = truncated_exponential(rng, lam_f, R, n_sub)
        per_failure_loss = np.bincount(
            np.repeat(np.arange(n_failures), rec_failures),
            weights=sub_losses,
            minlength=n_failures,
        )
        cost += R + rec_failures * D + per_failure_loss
        n_fs += n_sub
    else:
        cost += R

    run_times = base_time + np.bincount(run_of_failure, weights=cost, minlength=n_runs)
    return SegmentedBatchStats(
        run_times=run_times,
        n_patterns=n_patterns,
        segments=k,
        n_attempts=int(attempts.sum()),
        n_fail_stop=n_fs,
        n_silent_detected=n_sil,
        n_recoveries=n_failures,
    )
