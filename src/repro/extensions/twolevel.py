"""Segmented patterns: k verified segments per checkpoint.

The paper verifies once per checkpoint (the VC pattern).  Its reference
[2] (Benoit, Cavelan, Robert, Sun, IPDPS 2016) interleaves *several*
verifications per checkpoint: PATTERN(T, P, k) splits the work ``T``
into ``k`` segments of ``T/k``, each followed by a verification ``V``,
with a single checkpoint ``C`` at the end.  Intermediate verifications
catch silent errors earlier — on average ``(k+1)/(2k)`` of the pattern
is re-executed instead of the full pattern — at the price of ``k - 1``
extra verifications.  The paper's VC protocol is exactly ``k = 1``.

Exact expectation
-----------------
Failures restart the pattern from the last checkpoint (its beginning).
With ``s = T/k``, ``A = s + V``, segment survival
:math:`p = e^{-\\lambda^f A - \\lambda^s s}` and chain survival
:math:`p^k`, a renewal argument over i.i.d. chain rounds gives

.. math::

    E_{chain} = \\frac{1 - p^k}{p^k}\\,
        \\big( m_{p,k}\\,A + E_{seg}^{fail} + E^{post} \\big) + k A,

where :math:`m_{p,k} = E[J - 1 \\mid \\text{round fails at segment } J]`
is a truncated-geometric mean, :math:`E_{seg}^{fail}` mixes the
truncated-exponential fail-stop loss with the full ``A`` of a
silent-detected segment, and :math:`E^{post}` is the downtime (fail-stop
only) plus the expected recovery.  The checkpoint adds

.. math::

    E(C) = (e^{\\lambda^f C} - 1)\\,(1/\\lambda^f + D + E(R) + E_{chain}).

``k = 1`` reduces *exactly* to Proposition 1 — asserted to round-off in
the tests, along with Monte-Carlo validation of the general ``k``.

First-order optima
------------------
Expanding to first order (segment work loss :math:`T (k+1)/(2k)` for
silent errors, :math:`T/2` for fail-stop):

.. math::

    T^*_{P,k} = \\sqrt{\\frac{k V_P + C_P}
        {\\lambda^f_P/2 + \\lambda^s_P (k+1)/(2k)}},
    \\qquad
    k^* = \\sqrt{\\frac{C_P\\,\\lambda^s}{V_P(\\lambda^f + \\lambda^s)}},

the latter clamped to ``k >= 1``; verification-cheap, silent-heavy
platforms favour ``k > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import expected_time_lost
from ..core.pattern import PatternModel, expected_recovery_time
from ..exceptions import InvalidParameterError, ValidityError
from ..optimize.scalar import minimize_scalar

__all__ = [
    "expected_segmented_time",
    "segmented_overhead",
    "segmented_period",
    "optimal_segment_count",
    "optimal_segmented_pattern",
    "optimize_segments",
    "SegmentedSolution",
]


def _validate_k(k) -> None:
    k_arr = np.asarray(k)
    if np.any(k_arr < 1) or not np.all(np.isfinite(np.asarray(k_arr, dtype=float))):
        raise InvalidParameterError(f"segment count k must be >= 1, got {k!r}")


def _truncated_geometric_mean(p, k):
    """E[J - 1] for J ~ Geometric(1-p) truncated to 1..k (failure position).

    :math:`\\sum_{j=1}^{k} (j-1) p^{j-1} (1-p) / (1 - p^k)`, evaluated in
    the cancellation-free form (with :math:`u = -\\ln p`)

    .. math:: m = \\frac{1}{e^{u} - 1} - \\frac{k}{e^{ku} - 1},

    with the Taylor series :math:`m = (k-1)/2 - (k^2-1)u/12 + O(u^3)`
    for tiny ``k u`` (the naive polynomial form loses all digits as
    ``p -> 1``, which hypothesis testing caught at platform-scale rates).
    Limits: 0 for p -> 0, (k-1)/2 (uniform failing position) for p -> 1.
    """
    p = np.asarray(p, dtype=float)
    k = np.asarray(k, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        u = -np.log(np.where(p > 0.0, p, 1.0))  # placeholder for p <= 0
        generic = 1.0 / np.expm1(u) - k / np.expm1(k * u)
        series = (k - 1.0) / 2.0 - (k**2 - 1.0) * u / 12.0
    small = k * u < 1e-4
    value = np.where(small, series, generic)
    return np.where(p <= 0.0, 0.0, value)


def expected_segmented_time(T, P, k, errors, costs):
    """Exact expected time of PATTERN(T, P, k) (k verified segments).

    Parameters mirror :func:`repro.core.pattern.expected_pattern_time`
    plus the integer segment count ``k`` (``k = 1`` is the paper's VC
    pattern).  Vectorised over broadcastable ``T``/``P``/``k``.
    """
    _validate_k(k)
    T_arr = np.asarray(T, dtype=float)
    if np.any(T_arr <= 0.0):
        raise InvalidParameterError(f"segmented pattern needs T > 0, got {T!r}")
    k = np.asarray(k, dtype=float) if np.ndim(k) else float(k)

    lam_f = errors.fail_stop_rate(P)
    lam_s = errors.silent_rate(P)
    C = costs.checkpoint_cost(P)
    R = costs.recovery_cost(P)
    V = costs.verification_cost(P)
    D = costs.downtime

    s = T_arr / k  # work per segment
    A = s + V

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        p_fs_ok = np.exp(-lam_f * A)
        p_sil_ok = np.exp(-lam_s * s)
        p_seg = p_fs_ok * p_sil_ok
        q_seg = -np.expm1(-lam_f * A - lam_s * s)  # 1 - p_seg, stably

        # Segment-failure mixture: fail-stop (truncated-exp loss + D)
        # vs silent detected at the verification (full A, no D).
        q_fs = -np.expm1(-lam_f * A)
        w_fs = np.where(q_seg > 0.0, q_fs / q_seg, 0.0)
        w_sil = 1.0 - w_fs
        e_lost = expected_time_lost(lam_f, A)
        ER = expected_recovery_time(P, errors, costs)
        fail_seg_time = w_fs * e_lost + w_sil * A
        post_fail = w_fs * D + ER

        # Renewal over chain rounds: E[failed rounds] = 1/p_chain - 1
        # = expm1(k * segment_rate), exact even for tiny rates.
        rate_seg = lam_f * A + lam_s * s
        n_fails = np.expm1(k * rate_seg)
        prefix = _truncated_geometric_mean(p_seg, k) * A
        E_chain = n_fails * (prefix + fail_seg_time + post_fail) + k * A

        # Checkpoint with full-chain re-execution on failure.
        EC_generic = np.expm1(lam_f * C) * (1.0 / np.asarray(lam_f) + D + ER + E_chain)
    EC = np.where(np.asarray(lam_f) > 0.0, EC_generic, np.asarray(C, dtype=float))
    result = E_chain + EC
    result = np.where(np.isnan(result), np.inf, result)
    if all(np.ndim(x) == 0 for x in (T, P, k)):
        return float(result)
    return result


def segmented_overhead(T, P, k, model: PatternModel):
    """Expected execution overhead :math:`H(P)\\,E(T,P,k)/T`."""
    E = expected_segmented_time(T, P, k, model.errors, model.costs)
    result = np.asarray(model.speedup.overhead(P)) * np.asarray(E) / np.asarray(T, dtype=float)
    if all(np.ndim(x) == 0 for x in (T, P, k)):
        return float(result)
    return result


def segmented_period(P, k, errors, costs):
    """First-order optimal period for ``k`` segments.

    :math:`T^*_{P,k} = \\sqrt{(k V_P + C_P) /
    (\\lambda^f_P/2 + \\lambda^s_P (k+1)/(2k))}` — Theorem 1 at k = 1.
    """
    _validate_k(k)
    k = np.asarray(k, dtype=float) if np.ndim(k) else float(k)
    lam_f = errors.fail_stop_rate(P)
    lam_s = errors.silent_rate(P)
    lam_eff = lam_f / 2.0 + lam_s * (k + 1.0) / (2.0 * k)
    if np.any(np.asarray(lam_eff) <= 0.0):
        raise ValidityError("segmented period needs a positive error rate")
    cost = k * np.asarray(costs.verification_cost(P)) + np.asarray(costs.checkpoint_cost(P))
    result = np.sqrt(cost / lam_eff)
    if all(np.ndim(x) == 0 for x in (P, k)):
        return float(result)
    return result


def optimal_segment_count(P, errors, costs) -> float:
    """First-order optimal (continuous) segment count.

    :math:`k^* = \\sqrt{C_P \\lambda^s / (V_P(\\lambda^f + \\lambda^s))}`,
    clamped to 1.  Large checkpoints, cheap verifications and
    silent-dominated error mixes push ``k*`` up.
    """
    V = float(np.asarray(costs.verification_cost(P)))
    C = float(np.asarray(costs.checkpoint_cost(P)))
    lam_f = float(np.asarray(errors.fail_stop_rate(P)))
    lam_s = float(np.asarray(errors.silent_rate(P)))
    if V <= 0.0:
        raise ValidityError(
            "k* diverges for free verifications; choose k numerically "
            "(optimize_segments) with a cost floor"
        )
    if lam_f + lam_s <= 0.0:
        raise ValidityError("k* needs a positive error rate")
    k_star = np.sqrt(C * lam_s / (V * (lam_f + lam_s)))
    return max(1.0, float(k_star))


@dataclass(frozen=True)
class SegmentedSolution:
    """An optimised segmented pattern.

    ``segments`` is integer for numerical solutions and possibly
    fractional for the first-order one (round for deployment).
    """

    period: float
    segments: float
    overhead: float
    expected_time: float

    @property
    def segment_length(self) -> float:
        return self.period / self.segments


def optimal_segmented_pattern(model: PatternModel, P: float) -> SegmentedSolution:
    """First-order optimal ``(T*, k*)`` for fixed ``P``.

    Continuous ``k*`` from the closed form, then the matching period;
    overhead and expected time are evaluated on the *exact* segmented
    model.
    """
    k_star = optimal_segment_count(P, model.errors, model.costs)
    T_star = float(segmented_period(P, k_star, model.errors, model.costs))
    return SegmentedSolution(
        period=T_star,
        segments=k_star,
        overhead=float(segmented_overhead(T_star, P, k_star, model)),
        expected_time=float(
            expected_segmented_time(T_star, P, k_star, model.errors, model.costs)
        ),
    )


def optimize_segments(
    model: PatternModel, P: float, k_max: int = 64
) -> SegmentedSolution:
    """Numerically optimal integer ``k`` (and its exact-optimal ``T``).

    Scans ``k = 1..k_max`` (the overhead in ``k`` is unimodal; the scan
    is cheap because each inner period optimisation is 1-D) and returns
    the best exact-model solution.
    """
    if k_max < 1:
        raise InvalidParameterError(f"k_max must be >= 1, got {k_max!r}")
    best: SegmentedSolution | None = None
    rising = 0
    for k in range(1, k_max + 1):
        seed = float(segmented_period(P, k, model.errors, model.costs))

        def objective(T: float, k=k) -> float:
            value = segmented_overhead(T, P, k, model)
            return float(value) if np.isfinite(value) else np.inf

        result = minimize_scalar(objective, bounds=(seed * 1e-3, seed * 1e3))
        candidate = SegmentedSolution(
            period=result.x,
            segments=float(k),
            overhead=result.fun,
            expected_time=float(
                expected_segmented_time(result.x, P, k, model.errors, model.costs)
            ),
        )
        if best is None or candidate.overhead < best.overhead:
            best = candidate
            rising = 0
        else:
            rising += 1
            if rising >= 3:  # unimodal: three consecutive regressions = done
                break
    assert best is not None
    return best
