"""Extensions beyond the paper (its cited companions and future work).

``twolevel``
    Patterns with several verified segments per checkpoint — the
    interleaved-verification design of the paper's reference [2]
    (Benoit, Cavelan, Robert, Sun, IPDPS'16), built on this library's
    substrate: exact expectation, first-order optima, Monte-Carlo
    validation.
"""

from .twolevel import (
    SegmentedSolution,
    expected_segmented_time,
    optimal_segment_count,
    optimal_segmented_pattern,
    optimize_segments,
    segmented_overhead,
    segmented_period,
)

__all__ = [
    "expected_segmented_time",
    "segmented_overhead",
    "segmented_period",
    "optimal_segment_count",
    "optimal_segmented_pattern",
    "optimize_segments",
    "SegmentedSolution",
]
