"""Extension experiment: robustness under Weibull fail-stop arrivals.

Not a figure of the paper — a robustness study its exponential
assumption invites: deploy the exponential-optimal pattern of a
platform/scenario and simulate it under Weibull renewal arrivals of
equal MTBF for a range of shape parameters (shape 1 = the paper's
Poisson assumption; field studies fit HPC platforms with shape 0.5-0.8).
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternModel
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from ..platforms.scenarios import build_model
from ..sim.renewal import simulate_run_renewal
from ..sim.rng import spawn_seed_sequences
from ..sim.streams import WeibullArrivals
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline, materialize
from .spec import StudyContext, StudySpec, run_study

__all__ = ["run", "DEFAULT_SHAPES", "SPEC"]

DEFAULT_SHAPES: tuple[float, ...] = (0.5, 0.7, 1.0, 1.5)


def _renewal_overhead(
    model: PatternModel,
    T: float,
    P: float,
    n_patterns: int,
    stream: WeibullArrivals,
    n_runs: int,
    seed: int,
) -> float:
    """Mean simulated overhead under renewal fail-stop arrivals.

    Module-level and picklable-argument-only so the pipeline can ship
    one (scenario, shape) cell to a pool worker; the seed spawning and
    run loop replicate the historical sequential sweep bit for bit.
    """
    work = n_patterns * T * float(model.speedup.speedup(P))
    seeds = spawn_seed_sequences(n_runs, seed=seed)
    times = np.array(
        [
            simulate_run_renewal(
                model, T, P, n_patterns, np.random.default_rng(ss),
                fail_stop=stream,
            ).total_time
            for ss in seeds
        ]
    )
    return float(times.mean() / work)


def _declare(ctx: StudyContext):
    shapes = ctx.options.get("shapes", DEFAULT_SHAPES)
    alpha = ctx.fixed["alpha"]
    downtime = ctx.fixed["downtime"]
    n_runs, n_patterns = ctx.settings.budget()
    # The renewal simulator is event-driven; cap the budget so the
    # extension stays interactive even at --paper settings.
    n_runs = min(n_runs, 60)
    n_patterns = min(n_patterns, 100)

    rows = []
    notes = []
    for scenario_id in ctx.scenarios:
        model = build_model(ctx.platform, scenario_id, alpha=alpha, downtime=downtime)
        opt = optimize_allocation(model)
        T, P = opt.period, opt.processors
        lam_f = float(model.errors.fail_stop_rate(P))
        row: list = [scenario_id, round(P, 1), round(T, 1), opt.overhead]
        for i, shape in enumerate(shapes):
            if not ctx.settings.simulate:
                row.append(None)
                continue
            stream = WeibullArrivals.from_mean(shape, 1.0 / lam_f)
            row.append(
                ctx.pipeline.call(
                    _renewal_overhead,
                    model,
                    T,
                    P,
                    n_patterns,
                    stream,
                    n_runs,
                    ctx.settings.seed + 1000 * i,
                )
            )
        rows.append(tuple(row))
        notes.append(
            f"scenario {scenario_id}: pattern optimised under the exponential "
            f"assumption (T={T:.0f}s, P={P:.0f}); shape 1.0 column should "
            "match the analytic overhead"
        )
    return {
        "rows": rows,
        "notes": notes,
        "shapes": shapes,
        "n_runs": n_runs,
        "n_patterns": n_patterns,
    }


def _assemble(ctx: StudyContext, state: dict) -> list[FigureResult]:
    shapes = state["shapes"]
    return [
        FigureResult(
            figure_id=f"ext_weibull_{ctx.platform.lower()}",
            title=(
                f"Extension [{ctx.platform}]: exponential-optimal pattern under "
                "Weibull fail-stop arrivals (equal MTBF)"
            ),
            columns=("scenario", "P_opt", "T_opt", "H_analytic")
            + tuple(f"H_sim(shape={s:g})" for s in shapes),
            rows=tuple(materialize(state["rows"])),
            notes=tuple(state["notes"])
            + (
                f"simulation: {state['n_runs']} runs x {state['n_patterns']} patterns "
                "(renewal DES)",
            ),
        )
    ]


SPEC = StudySpec(
    name="ext-weibull",
    description="extension: robustness under Weibull fail-stop arrivals",
    scenarios=(1, 3),
    platforms=("Hera",),
    fixed={"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME},
    declare=_declare,
    assemble=_assemble,
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3),
    shapes: tuple[float, ...] = DEFAULT_SHAPES,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Simulated overhead of the exponential-optimal pattern per shape."""
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        fixed={"alpha": alpha, "downtime": downtime},
        options={"shapes": shapes},
    )
