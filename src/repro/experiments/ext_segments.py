"""Extension experiment: interleaved verifications (segment-count sweep).

Not a figure of the paper — an implemented piece of its future-work
direction (and of its reference [2]): for each platform under
scenario 3, sweep the number of verified segments per checkpoint ``k``
at the numerically optimal allocation and report the exact overhead,
the first-order ``k*``, the numerical best ``k``, and the improvement
over the paper's single-verification protocol.
"""

from __future__ import annotations

from ..extensions.twolevel import (
    optimal_segment_count,
    optimize_segments,
    segmented_overhead,
    segmented_period,
)
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME, PLATFORM_NAMES
from ..platforms.scenarios import build_model
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline

__all__ = ["run", "DEFAULT_SEGMENTS"]

DEFAULT_SEGMENTS: tuple[int, ...] = (1, 2, 4, 8, 16)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (3,),
    segments: tuple[int, ...] = DEFAULT_SEGMENTS,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    all_platforms: bool = True,
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Sweep the segment count across platforms (scenario 3 by default).

    ``settings`` and ``pipeline`` are accepted for harness uniformity;
    the sweep is fully analytic (the Monte-Carlo validation lives in
    the test suite).
    """
    platforms = PLATFORM_NAMES if all_platforms else (platform,)
    results: list[FigureResult] = []
    for scenario_id in scenarios:
        rows = []
        notes = []
        for name in platforms:
            model = build_model(name, scenario_id, alpha=alpha, downtime=downtime)
            P = optimize_allocation(model).processors
            row: list = [name, round(P, 1)]
            for k in segments:
                T = segmented_period(P, k, model.errors, model.costs)
                row.append(float(segmented_overhead(T, P, k, model)))
            k_star = optimal_segment_count(P, model.errors, model.costs)
            best = optimize_segments(model, P)
            h_k1 = row[2]  # k = 1 column
            gain = (h_k1 - best.overhead) / h_k1
            row += [round(k_star, 2), int(best.segments), f"{gain:.2%}"]
            rows.append(tuple(row))
            notes.append(
                f"{name}: first-order k* = {k_star:.2f}, numerical best k = "
                f"{best.segments:.0f}, overhead gain vs k=1: {gain:.2%}"
            )
        results.append(
            FigureResult(
                figure_id=f"ext_segments_sc{scenario_id}",
                title=(
                    f"Extension: overhead vs verified segments per checkpoint "
                    f"(scenario {scenario_id}, alpha={alpha:g}, at each "
                    "platform's optimal P)"
                ),
                columns=("platform", "P_opt")
                + tuple(f"H(k={k})" for k in segments)
                + ("k*_first_order", "k_best", "gain_vs_k1"),
                rows=tuple(rows),
                notes=tuple(notes),
            )
        )
    return results
