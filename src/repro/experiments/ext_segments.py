"""Extension experiment: interleaved verifications (segment-count sweep).

Not a figure of the paper — an implemented piece of its future-work
direction (and of its reference [2]): for each platform under
scenario 3, sweep the number of verified segments per checkpoint ``k``
at the numerically optimal allocation and report the exact overhead,
the first-order ``k*``, the numerical best ``k``, and the improvement
over the paper's single-verification protocol.
"""

from __future__ import annotations

from ..extensions.twolevel import (
    optimal_segment_count,
    optimize_segments,
    segmented_overhead,
    segmented_period,
)
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME, PLATFORM_NAMES
from ..platforms.scenarios import build_model
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .spec import StudyContext, StudySpec, run_study

__all__ = ["run", "DEFAULT_SEGMENTS", "SPEC"]

DEFAULT_SEGMENTS: tuple[int, ...] = (1, 2, 4, 8, 16)


def _declare(ctx: StudyContext) -> list[FigureResult]:
    """Fully analytic: the declare phase already produces the tables."""
    segments = ctx.options.get("segments", DEFAULT_SEGMENTS)
    alpha = ctx.fixed["alpha"]
    downtime = ctx.fixed["downtime"]
    platforms = (
        PLATFORM_NAMES if ctx.options.get("all_platforms", True) else (ctx.platform,)
    )
    results: list[FigureResult] = []
    for scenario_id in ctx.scenarios:
        rows = []
        notes = []
        for name in platforms:
            model = build_model(name, scenario_id, alpha=alpha, downtime=downtime)
            P = optimize_allocation(model).processors
            row: list = [name, round(P, 1)]
            for k in segments:
                T = segmented_period(P, k, model.errors, model.costs)
                row.append(float(segmented_overhead(T, P, k, model)))
            k_star = optimal_segment_count(P, model.errors, model.costs)
            best = optimize_segments(model, P)
            h_k1 = row[2]  # k = 1 column
            gain = (h_k1 - best.overhead) / h_k1
            row += [round(k_star, 2), int(best.segments), f"{gain:.2%}"]
            rows.append(tuple(row))
            notes.append(
                f"{name}: first-order k* = {k_star:.2f}, numerical best k = "
                f"{best.segments:.0f}, overhead gain vs k=1: {gain:.2%}"
            )
        results.append(
            FigureResult(
                figure_id=f"ext_segments_sc{scenario_id}",
                title=(
                    f"Extension: overhead vs verified segments per checkpoint "
                    f"(scenario {scenario_id}, alpha={alpha:g}, at each "
                    "platform's optimal P)"
                ),
                columns=("platform", "P_opt")
                + tuple(f"H(k={k})" for k in segments)
                + ("k*_first_order", "k_best", "gain_vs_k1"),
                rows=tuple(rows),
                notes=tuple(notes),
            )
        )
    return results


SPEC = StudySpec(
    name="ext-segments",
    description="extension: interleaved verifications (segments per checkpoint)",
    scenarios=(3,),
    # One staged study: _declare iterates the platform grid itself
    # (rows per platform), so the spec must not also fan out.
    platforms=("Hera",),
    fixed={"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME},
    declare=_declare,
    assemble=lambda ctx, state: state,
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (3,),
    segments: tuple[int, ...] = DEFAULT_SEGMENTS,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    all_platforms: bool = True,
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Sweep the segment count across platforms (scenario 3 by default).

    ``settings`` and ``pipeline`` are accepted for harness uniformity;
    the sweep is fully analytic (the Monte-Carlo validation lives in
    the test suite).
    """
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        fixed={"alpha": alpha, "downtime": downtime},
        options={"segments": segments, "all_platforms": all_platforms},
    )
