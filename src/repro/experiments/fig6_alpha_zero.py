"""Figure 6: perfectly parallel jobs (alpha = 0) under the rate sweep.

With ``alpha = 0`` the first-order analysis admits no optimum (Section
III-D.4), so the paper reports the numerical optimum only.  Sweep
``lambda_ind`` over 1e-12 .. 1e-8 for scenarios 1, 3, 5 on Hera and
regenerate the three panels: numerical ``P*``, ``T*`` and simulated
overhead.

Shape checks (paper, Section IV-B.4): scenario 1 follows
:math:`P^* \\approx \\Theta(\\lambda^{-1/2})`,
:math:`T^* \\approx \\Theta(\\lambda^{-1/2})`,
:math:`H^* \\approx \\Theta(\\lambda^{1/2})`; scenarios 3/5 follow
:math:`P^* \\approx \\Theta(\\lambda^{-1})`, :math:`T^* \\approx O(1)`,
:math:`H^* \\approx \\Theta(\\lambda)`.  Slope fits in the notes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.asymptotics import fit_loglog_slope
from ..platforms.catalog import DEFAULT_DOWNTIME
from .common import FigureResult, SimSettings
from .fig5_error_rate import default_lambda_grid
from .pipeline import SimulationPipeline
from .spec import AxisSpec, PanelSpec, StudyContext, StudySpec, run_study

__all__ = ["run", "SPEC"]


def _expected_orders(sc: int) -> tuple[float, float, float]:
    """(x, y, z): P* ~ λ^-x, T* ~ λ^-y, H* ~ λ^z (numerical, Fig. 6)."""
    return (0.5, 0.5, 0.5) if sc in (1, 2) else (1.0, 0.0, 1.0)


def _slope_notes(ctx: StudyContext, data: dict) -> list[str]:
    lams = np.asarray(ctx.grid, dtype=float)
    notes = []
    for sc in ctx.scenarios:
        x_exp, _, z_exp = _expected_orders(sc)
        p_fit = fit_loglog_slope(lams, np.asarray(data[sc]["P_num"], dtype=float))
        h_fit = fit_loglog_slope(lams, np.asarray(data[sc]["H_pred_num"], dtype=float))
        notes.append(
            f"scenario {sc}: fitted P* order {p_fit.slope:+.3f} (paper ~{-x_exp:+.2f}), "
            f"H* order {h_fit.slope:+.3f} (paper ~{z_exp:+.2f})"
        )
    return notes


_NOTE = "platform {platform}, alpha=0 (perfectly parallel), D={downtime:g}s"

SPEC = StudySpec(
    name="fig6",
    description="sweep of the error rate for perfectly parallel jobs (alpha = 0)",
    scenarios=(1, 3, 5),
    platforms=("Hera",),
    axis=AxisSpec(
        name="lambda_ind",
        header="lambda_ind",
        model_kwarg="lambda_ind",
        grid=default_lambda_grid,
    ),
    fixed={"alpha": 0.0, "downtime": DEFAULT_DOWNTIME},
    figure_base="fig6_{platform_l}",
    panels=(
        PanelSpec(
            suffix="a_processors",
            title="Figure 6(a) [{platform}]: numerical optimal P* vs lambda_ind (alpha=0)",
            columns=("P_num",),
            notes=(_NOTE, _slope_notes),
        ),
        PanelSpec(
            suffix="b_period",
            title="Figure 6(b) [{platform}]: numerical optimal T* vs lambda_ind (alpha=0)",
            columns=("T_num",),
            notes=(_NOTE, "scenario 1: T* ~ lambda^-1/2; scenarios 3/5: T* ~ O(1)"),
        ),
        PanelSpec(
            suffix="c_overhead",
            title="Figure 6(c) [{platform}]: simulated overhead vs lambda_ind (alpha=0)",
            columns=("H_sim_num",),
            notes=(_NOTE, "H ~ lambda^1/2 (sc 1) and ~ lambda (sc 3/5)"),
        ),
    ),
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    lambdas: np.ndarray | None = None,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 6 (a)-(c).  Returns three FigureResults."""
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        grid=None if lambdas is None else np.asarray(lambdas, dtype=float),
        fixed={"alpha": 0.0, "downtime": downtime},
    )
