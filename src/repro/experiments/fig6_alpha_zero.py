"""Figure 6: perfectly parallel jobs (alpha = 0) under the rate sweep.

With ``alpha = 0`` the first-order analysis admits no optimum (Section
III-D.4), so the paper reports the numerical optimum only.  Sweep
``lambda_ind`` over 1e-12 .. 1e-8 for scenarios 1, 3, 5 on Hera and
regenerate the three panels: numerical ``P*``, ``T*`` and simulated
overhead.

Shape checks (paper, Section IV-B.4): scenario 1 follows
:math:`P^* \\approx \\Theta(\\lambda^{-1/2})`,
:math:`T^* \\approx \\Theta(\\lambda^{-1/2})`,
:math:`H^* \\approx \\Theta(\\lambda^{1/2})`; scenarios 3/5 follow
:math:`P^* \\approx \\Theta(\\lambda^{-1})`, :math:`T^* \\approx O(1)`,
:math:`H^* \\approx \\Theta(\\lambda)`.  Slope fits in the notes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.asymptotics import fit_loglog_slope
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_DOWNTIME
from ..platforms.scenarios import build_model
from .common import FigureResult, SimSettings
from .fig5_error_rate import default_lambda_grid
from .pipeline import SimulationPipeline, materialize, private_pipeline

__all__ = ["run"]


def _expected_orders(sc: int) -> tuple[float, float, float]:
    """(x, y, z): P* ~ λ^-x, T* ~ λ^-y, H* ~ λ^z (numerical, Fig. 6)."""
    return (0.5, 0.5, 0.5) if sc in (1, 2) else (1.0, 0.0, 1.0)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    lambdas: np.ndarray | None = None,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 6 (a)-(c).  Returns three FigureResults."""
    pipe = pipeline if pipeline is not None else private_pipeline(settings)
    lams = default_lambda_grid() if lambdas is None else np.asarray(lambdas, dtype=float)

    per_sc: dict[int, dict[str, list]] = {
        sc: {"P": [], "T": [], "H_pred": [], "H_sim": []} for sc in scenarios
    }
    for lam in lams:
        for sc in scenarios:
            model = build_model(
                platform, sc, alpha=0.0, downtime=downtime, lambda_ind=float(lam)
            )
            num = optimize_allocation(model)
            store = per_sc[sc]
            store["P"].append(num.processors)
            store["T"].append(num.period)
            store["H_pred"].append(num.overhead)
            store["H_sim"].append(
                pipe.simulate_mean(model, num.period, num.processors, settings)
            )
    pipe.resolve()
    if pipeline is None:
        pipe.close()
    per_sc = materialize(per_sc)

    slope_notes = []
    for sc in scenarios:
        x_exp, y_exp, z_exp = _expected_orders(sc)
        p_fit = fit_loglog_slope(lams, np.asarray(per_sc[sc]["P"], dtype=float))
        h_fit = fit_loglog_slope(lams, np.asarray(per_sc[sc]["H_pred"], dtype=float))
        slope_notes.append(
            f"scenario {sc}: fitted P* order {p_fit.slope:+.3f} (paper ~{-x_exp:+.2f}), "
            f"H* order {h_fit.slope:+.3f} (paper ~{z_exp:+.2f})"
        )

    def _rows(key: str) -> tuple[tuple, ...]:
        rows = []
        for i, lam in enumerate(lams):
            row: list = [float(lam)]
            for sc in scenarios:
                row.append(per_sc[sc][key][i])
            rows.append(tuple(row))
        return tuple(rows)

    sc_cols = tuple(f"scenario_{s}" for s in scenarios)
    base = f"fig6_{platform.lower()}"
    note = f"platform {platform}, alpha=0 (perfectly parallel), D={downtime:g}s"
    return [
        FigureResult(
            figure_id=f"{base}a_processors",
            title=f"Figure 6(a) [{platform}]: numerical optimal P* vs lambda_ind (alpha=0)",
            columns=("lambda_ind",) + sc_cols,
            rows=_rows("P"),
            notes=(note,) + tuple(slope_notes),
        ),
        FigureResult(
            figure_id=f"{base}b_period",
            title=f"Figure 6(b) [{platform}]: numerical optimal T* vs lambda_ind (alpha=0)",
            columns=("lambda_ind",) + sc_cols,
            rows=_rows("T"),
            notes=(note, "scenario 1: T* ~ lambda^-1/2; scenarios 3/5: T* ~ O(1)"),
        ),
        FigureResult(
            figure_id=f"{base}c_overhead",
            title=f"Figure 6(c) [{platform}]: simulated overhead vs lambda_ind (alpha=0)",
            columns=("lambda_ind",) + sc_cols,
            rows=_rows("H_sim"),
            notes=(note, "H ~ lambda^1/2 (sc 1) and ~ lambda (sc 3/5)"),
        ),
    ]
