"""Declarative study specifications and the generic sweep engine.

The paper's evaluation is a *grid of studies*: Table-III scenarios x
Table-II platforms, swept along one axis per figure (error rate,
sequential fraction, processor count, downtime).  Instead of each
figure module hand-coding that grid, a figure is a :class:`StudySpec` —
data naming the platforms, scenario ids, sweep axis, evaluated columns
and output panels — executed by one generic engine:

* :func:`stage_study` runs the spec's *declare* phase: it walks the
  grid, evaluates the analytic columns, and declares every Monte-Carlo
  point on the shared :class:`~repro.experiments.pipeline.SimulationPipeline`
  (getting cheap deferred placeholders back);
* after the pipeline resolves, :meth:`StagedStudy.finish` runs the
  *assemble* phase: materialize the deferred values and render the
  panels as :class:`~repro.experiments.common.FigureResult` tables with
  their note/slope-fit hooks.

The split is what makes the executor layer pluggable (a sharded run
declares and resolves but never assembles) and emission streamable
(the runner finishes and prints one study while later studies are
still queued).  Studies whose shape fits the declarative fields need
no code at all — :func:`load_toml_spec` builds a spec from a TOML
file, so ``repro-experiments sweep --spec my_study.toml`` runs
arbitrary new scenario/platform/axis combinations without touching
library code.  Bespoke studies (the extension experiments) plug in
custom ``declare``/``assemble`` hooks and still ride the same engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..analysis.asymptotics import fit_loglog_slope
from ..core.first_order import optimal_pattern
from ..exceptions import InvalidParameterError, ValidityError
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME, PLATFORM_NAMES
from ..platforms.scenarios import SCENARIO_IDS, build_model
from .analytic import AnalyticPoint
from .analytic import batch_enabled as analytic_batch_enabled
from .common import FigureResult, SimSettings
from .pipeline import Deferred, SimulationPipeline, materialize, private_pipeline

__all__ = [
    "AxisSpec",
    "PanelSpec",
    "StudySpec",
    "StudyContext",
    "StagedStudy",
    "stage_study",
    "run_study",
    "load_toml_spec",
    "slope_fit_notes",
    "SWEEP_COLUMNS",
]

#: Column vocabulary of the generic pattern-sweep evaluator.  ``*_fo``
#: columns are the first-order closed form (None where Theorem 1 has no
#: solution), ``*_num`` the numerical optimum of the exact model;
#: ``H_sim_*`` are Monte-Carlo validations (deferred onto the pipeline).
SWEEP_COLUMNS = (
    "P_fo",
    "P_num",
    "T_fo",
    "T_num",
    "H_pred_fo",
    "H_pred_num",
    "H_sim_fo",
    "H_sim_num",
)

_SIM_COLUMNS = ("H_sim_fo", "H_sim_num")

#: ``build_model`` keyword an axis may sweep (TOML studies); the
#: cost entries override the platform's measured reference costs.
AXIS_KWARGS = (
    "lambda_ind",
    "alpha",
    "downtime",
    "checkpoint_cost",
    "verification_cost",
)


@dataclass(frozen=True)
class AxisSpec:
    """The sweep axis of a study: one model parameter, one grid.

    ``display`` maps a grid value to the x-cell printed in every row
    (e.g. seconds -> hours for the downtime sweep); ``grid`` is the
    default-grid factory used when the caller does not pass one.
    """

    name: str
    header: str
    model_kwarg: str | None = None
    grid: Callable[[], Sequence[float]] | None = None
    display: Callable[[float], Any] = float

    def default_grid(self) -> Sequence[float]:
        if self.grid is None:
            raise InvalidParameterError(f"axis {self.name!r} has no default grid")
        return self.grid()


@dataclass(frozen=True)
class PanelSpec:
    """One output table of a study (one sub-figure of the paper).

    ``columns`` names per-scenario value columns from the study's
    evaluator; headers derive from the column count (pairs render as
    ``sc<N>_first_order`` / ``sc<N>_optimal``, singles as
    ``scenario_<N>``) unless ``headers`` overrides the full tuple.
    ``notes`` mixes literal templates (``str.format`` over the study
    context) and callables ``(ctx, data) -> str | sequence of str``.
    """

    suffix: str
    title: str
    columns: tuple[str, ...]
    headers: tuple[str, ...] | None = None
    notes: tuple = ()


@dataclass(frozen=True)
class StudySpec:
    """A declarative experiment: the registry entry for one figure.

    The declarative fields (platforms, scenarios, axis, fixed model
    parameters, panels) drive the generic sweep engine; the optional
    hooks progressively take over where a study's shape is bespoke:

    * ``point_eval`` replaces the per-point pattern evaluator;
    * ``scenario_eval`` evaluates a whole scenario over the grid at
      once (vectorized studies like the Figure 3 period sweep);
    * ``declare``/``assemble`` replace the entire engine body (the
      extension studies) while keeping the staged two-phase contract.
    """

    name: str
    description: str
    scenarios: tuple[int, ...] = SCENARIO_IDS
    platforms: tuple[str, ...] = tuple(PLATFORM_NAMES)
    axis: AxisSpec | None = None
    fixed: Mapping[str, float] = field(default_factory=dict)
    panels: tuple[PanelSpec, ...] = ()
    figure_base: str = ""
    point_eval: Callable | None = None
    scenario_eval: Callable | None = None
    declare: Callable | None = None
    assemble: Callable | None = None
    supports_all_platforms: bool = False

    def needed_columns(self) -> tuple[str, ...]:
        """Columns any panel consumes (sim points not needed are never declared)."""
        out: list[str] = []
        for panel in self.panels:
            for col in panel.columns:
                if col not in out:
                    out.append(col)
        return tuple(out)


@dataclass
class StudyContext:
    """Everything a study hook may read while declaring or assembling."""

    spec: StudySpec
    platform: str
    scenarios: tuple[int, ...]
    grid: Sequence[float] | None
    fixed: dict
    settings: SimSettings
    pipeline: SimulationPipeline
    options: dict = field(default_factory=dict)

    @property
    def fmt(self) -> dict:
        """Template namespace for panel titles, notes and figure ids."""
        return {
            "platform": self.platform,
            "platform_l": self.platform.lower(),
            "scenarios": self.scenarios,
            **self.fixed,
            **self.options,
        }

    def build(self, scenario: int, x: float | None = None):
        """The scenario's :class:`PatternModel` at grid position ``x``."""
        kwargs = dict(self.fixed)
        if x is not None and self.spec.axis is not None and self.spec.axis.model_kwarg:
            kwargs[self.spec.axis.model_kwarg] = float(x)
        return build_model(self.platform, scenario, **kwargs)


# -- generic evaluators ------------------------------------------------------


def pattern_point(
    ctx: StudyContext, model, needed: Sequence[str], analytic=None
) -> dict:
    """Default per-point evaluator: first-order + numerical optimum.

    Mirrors the historical figure loops exactly: the first-order closed
    form may be invalid (``None`` columns, no simulation declared), the
    numerical optimum always exists, and Monte-Carlo points are
    declared on the pipeline only for the sim columns a panel uses.

    ``analytic`` carries the cell's pre-computed
    :class:`~repro.experiments.analytic.AnalyticPoint` when the sweep
    engine resolved the study column through the batch engine; without
    it the evaluator computes the optima inline (custom ``point_eval``
    hooks delegating here keep working unchanged).
    """
    out: dict[str, Any] = {}
    if analytic is None:
        try:
            fo = optimal_pattern(model)
        except ValidityError:
            fo = None
        num = optimize_allocation(model)
        analytic = AnalyticPoint(
            P_fo=fo.processors if fo is not None else None,
            T_fo=fo.period if fo is not None else None,
            H_pred_fo=fo.overhead if fo is not None else None,
            P_num=num.processors,
            T_num=num.period,
            H_pred_num=num.overhead,
        )
    out["P_fo"] = analytic.P_fo
    out["T_fo"] = analytic.T_fo
    out["H_pred_fo"] = analytic.H_pred_fo
    out["P_num"] = analytic.P_num
    out["T_num"] = analytic.T_num
    out["H_pred_num"] = analytic.H_pred_num
    if "H_sim_fo" in needed:
        out["H_sim_fo"] = (
            ctx.pipeline.simulate_mean(model, out["T_fo"], out["P_fo"], ctx.settings)
            if analytic.P_fo is not None
            else None
        )
    if "H_sim_num" in needed:
        out["H_sim_num"] = ctx.pipeline.simulate_mean(
            model, analytic.T_num, analytic.P_num, ctx.settings
        )
    return out


def _sweep_declare(ctx: StudyContext) -> dict:
    """Generic declare phase: evaluate every (x, scenario) grid cell.

    Default-evaluator studies resolve their analytic columns through
    the pipeline's batch engine first (one array sweep per study
    column, memo-served across scenario-family replicates), then walk
    the grid in the historical order so simulation declarations — and
    therefore plan keys, seeds and progress events — are unchanged.
    Custom ``point_eval`` / ``scenario_eval`` hooks keep the scalar
    path.
    """
    spec = ctx.spec
    needed = spec.needed_columns()
    evaluate = spec.point_eval if spec.point_eval is not None else pattern_point
    data: dict[int, dict[str, list]] = {}
    if spec.scenario_eval is not None:
        for sc in ctx.scenarios:
            data[sc] = spec.scenario_eval(ctx, ctx.build(sc), sc)
        return data

    def _store(sc: int, point: dict) -> None:
        store = data.setdefault(sc, {})
        # Every evaluated column is kept (note hooks read analytic
        # columns no panel prints); only sim columns are need-gated.
        for col, value in point.items():
            store.setdefault(col, []).append(value)

    if spec.axis is None:
        cells = [(sc, None) for sc in ctx.scenarios]
    else:
        cells = [(sc, x) for x in ctx.grid for sc in ctx.scenarios]
    models = [ctx.build(sc, x) for sc, x in cells]
    if evaluate is pattern_point and analytic_batch_enabled():
        points = ctx.pipeline.evaluate_analytic(models)
        for (sc, _), model, point in zip(cells, models, points):
            _store(sc, pattern_point(ctx, model, needed, analytic=point))
        return data
    for (sc, _), model in zip(cells, models):
        _store(sc, evaluate(ctx, model, needed))
    return data


def _panel_headers(ctx: StudyContext, panel: PanelSpec) -> tuple[str, ...]:
    if panel.headers is not None:
        return panel.headers
    lead = ctx.spec.axis.header if ctx.spec.axis is not None else "scenario"
    cols = panel.columns
    if len(cols) == 1:
        per_sc = tuple(f"scenario_{sc}" for sc in ctx.scenarios)
    elif (
        len(cols) == 2 and cols[0].endswith("_fo") and cols[1].endswith("_num")
    ):
        # A first-order/numerical pair (the paper's canonical layout).
        per_sc = tuple(
            h
            for sc in ctx.scenarios
            for h in (f"sc{sc}_first_order", f"sc{sc}_optimal")
        )
    else:
        per_sc = tuple(f"sc{sc}_{col}" for sc in ctx.scenarios for col in cols)
    return (lead,) + per_sc


def _panel_rows(ctx: StudyContext, panel: PanelSpec, data: dict) -> tuple[tuple, ...]:
    rows = []
    if ctx.spec.axis is None:
        for sc in ctx.scenarios:
            rows.append(
                tuple([sc] + [data[sc][col][0] for col in panel.columns])
            )
        return tuple(rows)
    for i, x in enumerate(ctx.grid):
        row: list = [ctx.spec.axis.display(x)]
        for sc in ctx.scenarios:
            for col in panel.columns:
                row.append(data[sc][col][i])
        rows.append(tuple(row))
    return tuple(rows)


def _resolve_notes(ctx: StudyContext, panel: PanelSpec, data: dict) -> tuple[str, ...]:
    notes: list[str] = []
    for note in panel.notes:
        if callable(note):
            produced = note(ctx, data)
            if produced is None:
                continue
            if isinstance(produced, str):
                notes.append(produced)
            else:
                notes.extend(produced)
        else:
            notes.append(str(note).format(**ctx.fmt))
    return tuple(notes)


def _sweep_assemble(ctx: StudyContext, data: dict) -> list[FigureResult]:
    """Generic assemble phase: materialize and render every panel."""
    data = materialize(data)
    base = ctx.spec.figure_base.format(**ctx.fmt)
    results = []
    for panel in ctx.spec.panels:
        results.append(
            FigureResult(
                figure_id=f"{base}{panel.suffix}",
                title=panel.title.format(**ctx.fmt),
                columns=_panel_headers(ctx, panel),
                rows=_panel_rows(ctx, panel, data),
                notes=_resolve_notes(ctx, panel, data),
            )
        )
    return results


def slope_fit_notes(
    columns: Sequence[str], label: str = "fitted {col} slope {slope:+.3f}"
) -> Callable:
    """Generic slope-fit note hook: log-log order of a column per scenario.

    Used by TOML studies to get quantitative order checks without code;
    the library figures carry their own theorem-specific hooks.
    """

    def _notes(ctx: StudyContext, data: dict) -> list[str]:
        xs = np.asarray(ctx.grid, dtype=float)
        out = []
        for sc in ctx.scenarios:
            for col in columns:
                ys = np.asarray(
                    [np.nan if v is None else float(v) for v in data[sc][col]]
                )
                fit = fit_loglog_slope(xs, ys)
                out.append(
                    f"scenario {sc}: "
                    + label.format(col=col, slope=fit.slope, **ctx.fmt)
                )
        return out

    return _notes


# -- staged execution --------------------------------------------------------


@dataclass
class StagedStudy:
    """A study after its declare phase: resolve the pipeline, then finish."""

    ctx: StudyContext
    state: Any
    n_pending: int
    #: Completion-event label of this study's points (defaults to the
    #: spec name; scenario variants use one label per derived study so
    #: progress/dry-run attribution tells replicates apart).
    group: str = ""

    def ready(self) -> bool:
        """Whether every deferred point of this study has resolved."""

        def _scan(obj) -> bool:
            if isinstance(obj, Deferred):
                return obj.ready
            if isinstance(obj, (tuple, list)):
                return all(_scan(v) for v in obj)
            if isinstance(obj, dict):
                return all(_scan(v) for v in obj.values())
            return True

        return _scan(self.state)

    def finish(self) -> list[FigureResult]:
        """Assemble the study's tables (requires the pipeline resolved)."""
        ctx = self.ctx
        assemble = ctx.spec.assemble if ctx.spec.assemble is not None else _sweep_assemble
        return assemble(ctx, self.state)


def stage_study(
    spec: StudySpec,
    platform: str | None = None,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
    scenarios: Sequence[int] | None = None,
    grid: Sequence[float] | None = None,
    fixed: Mapping[str, float] | None = None,
    options: Mapping | None = None,
    group: str | None = None,
) -> StagedStudy:
    """Run the declare phase of ``spec`` onto ``pipeline``.

    Overrides (``scenarios``, ``grid``, ``fixed`` model parameters,
    bespoke ``options``) replace the spec's defaults — this is how the
    figure modules keep their historical ``run(...)`` signatures.
    ``group`` relabels the study's completion events (scenario variants
    stage the same spec many times under distinct labels).
    """
    if pipeline is None:
        raise InvalidParameterError("stage_study requires an explicit pipeline")
    ctx = StudyContext(
        spec=spec,
        platform=platform if platform is not None else spec.platforms[0],
        scenarios=tuple(scenarios) if scenarios is not None else spec.scenarios,
        grid=(
            grid
            if grid is not None
            else (spec.axis.default_grid() if spec.axis is not None else None)
        ),
        fixed=dict(spec.fixed if fixed is None else fixed),
        settings=settings,
        pipeline=pipeline,
        options=dict(options or {}),
    )
    before = pipeline.pending_points
    declare = spec.declare if spec.declare is not None else _sweep_declare
    # Label every point this declare phase emits with the study name so
    # event-driven resolution (progress counters, completion-driven
    # emission, dry-run previews) can attribute completions per study.
    label = group if group is not None else spec.name
    previous_group = pipeline.current_group
    pipeline.current_group = label
    try:
        with pipeline.trace.span("declare", study=label, platform=ctx.platform) as span:
            state = declare(ctx)
            span["points"] = pipeline.pending_points - before
    finally:
        pipeline.current_group = previous_group
    return StagedStudy(
        ctx=ctx,
        state=state,
        n_pending=pipeline.pending_points - before,
        group=label,
    )


def run_study(
    spec: StudySpec,
    platform: str | None = None,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
    scenarios: Sequence[int] | None = None,
    grid: Sequence[float] | None = None,
    fixed: Mapping[str, float] | None = None,
    options: Mapping | None = None,
) -> list[FigureResult]:
    """Declare, resolve and assemble one study (the ``run()`` backbone).

    With no ``pipeline``, a private one sized from ``settings.workers``
    is created and closed, exactly like the historical per-figure
    ``run(...)`` path.
    """
    pipe = pipeline if pipeline is not None else private_pipeline(settings)
    try:
        staged = stage_study(
            spec,
            platform=platform,
            settings=settings,
            pipeline=pipe,
            scenarios=scenarios,
            grid=grid,
            fixed=fixed,
            options=options,
        )
        pipe.resolve()
        return staged.finish()
    finally:
        if pipeline is None:
            pipe.close()


# -- TOML-defined studies ----------------------------------------------------


def load_toml_spec(path: str | Path) -> StudySpec:
    """Build a :class:`StudySpec` from a TOML study file.

    The file format (see ``examples/custom_study.toml``)::

        [study]
        name = "my_study"
        description = "..."
        platforms = ["Hera"]
        scenarios = [1, 3]
        alpha = 0.01            # fixed model parameters (optional)

        [axis]
        name = "lambda_ind"     # any AXIS_KWARGS entry (model parameter
        values = [1e-11, 1e-10, 1e-9]   # or reference-cost override)

        [[panel]]
        suffix = "a_processors"
        title = "P* vs error rate"
        columns = ["P_fo", "P_num"]
        notes = ["platform {platform}"]
        slope_fit = ["P_num"]   # optional log-log order notes
    """
    import tomllib

    path = Path(path)
    try:
        payload = tomllib.loads(path.read_text())
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise InvalidParameterError(f"cannot load study spec {path}: {exc}") from exc

    study = payload.get("study", {})
    name = study.get("name", path.stem)
    axis_table = payload.get("axis")
    if axis_table is None:
        raise InvalidParameterError(f"{path}: missing [axis] table")
    axis_name = axis_table.get("name")
    if axis_name not in AXIS_KWARGS:
        raise InvalidParameterError(
            f"{path}: axis.name must be one of {', '.join(AXIS_KWARGS)}"
        )
    values = axis_table.get("values")
    if not values:
        raise InvalidParameterError(f"{path}: axis.values must be a non-empty list")
    grid = tuple(float(v) for v in values)

    platforms = tuple(study.get("platforms", ("Hera",)))
    for p in platforms:
        if p not in PLATFORM_NAMES:
            raise InvalidParameterError(
                f"{path}: unknown platform {p!r} (Table II has {', '.join(PLATFORM_NAMES)})"
            )
    scenarios = tuple(int(s) for s in study.get("scenarios", SCENARIO_IDS))
    for sc in scenarios:
        if sc not in SCENARIO_IDS:
            raise InvalidParameterError(f"{path}: unknown scenario {sc}")

    fixed = {"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME}
    fixed.pop(axis_name, None)
    for key in AXIS_KWARGS:
        if key == axis_name:
            continue
        if key in study:
            fixed[key] = float(study[key])

    panel_tables = payload.get("panel", [])
    if not panel_tables:
        raise InvalidParameterError(f"{path}: at least one [[panel]] is required")
    panels = []
    for i, table in enumerate(panel_tables):
        columns = tuple(table.get("columns", ()))
        if not columns:
            raise InvalidParameterError(f"{path}: panel {i} has no columns")
        for col in columns:
            if col not in SWEEP_COLUMNS:
                raise InvalidParameterError(
                    f"{path}: unknown column {col!r} "
                    f"(available: {', '.join(SWEEP_COLUMNS)})"
                )
        notes: list = [str(n) for n in table.get("notes", ())]
        slope_columns = tuple(table.get("slope_fit", ()))
        if slope_columns:
            notes.append(slope_fit_notes(slope_columns))
        panels.append(
            PanelSpec(
                suffix=table.get("suffix", chr(ord("a") + i)),
                title=table.get("title", f"{name} [{{platform}}]: panel {i}"),
                columns=columns,
                notes=tuple(notes),
            )
        )

    return StudySpec(
        name=name,
        description=study.get("description", f"user study from {path.name}"),
        scenarios=scenarios,
        platforms=platforms,
        axis=AxisSpec(
            name=axis_name,
            header=axis_name,
            model_kwarg=axis_name,
            grid=lambda: grid,
        ),
        fixed=fixed,
        panels=tuple(panels),
        figure_base=f"{name}_{{platform_l}}",
    )
