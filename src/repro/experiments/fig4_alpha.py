"""Figure 4: impact of the sequential fraction ``alpha`` (platform Hera).

Sweep ``alpha`` over {0.1, 0.01, 0.001, 0.0001, 0} for scenarios 1, 3
and 5 (2/4/6 behave like their same-``C_P`` siblings) and regenerate:

* (a) optimal processor count ``P*`` — first-order and numerical;
* (b) optimal period ``T*`` — first-order and numerical;
* (c) simulated execution overhead at both patterns.

Shape checks (paper, Section IV-B.3): ``P*`` grows as ``alpha`` drops
(Amdahl headroom); overhead tends to the ``alpha`` floor; scenario 5
overtakes the others at small ``alpha`` thanks to its cheaper
checkpoints; at ``alpha = 0`` no first-order solution exists and the
numerical ``P*`` stays finite with overhead strictly above 1e-5.
"""

from __future__ import annotations

from ..core.first_order import optimal_pattern
from ..exceptions import ValidityError
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_DOWNTIME
from ..platforms.scenarios import build_model
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline, materialize, private_pipeline

__all__ = ["run", "DEFAULT_ALPHAS"]

#: The paper's x-axis, largest to smallest (0 = perfectly parallel).
DEFAULT_ALPHAS: tuple[float, ...] = (0.1, 0.01, 0.001, 0.0001, 0.0)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 4 (a)-(c).  Returns three FigureResults."""
    pipe = pipeline if pipeline is not None else private_pipeline(settings)
    p_rows, t_rows, h_rows = [], [], []
    for alpha in alphas:
        p_row: list = [alpha]
        t_row: list = [alpha]
        h_row: list = [alpha]
        for sc in scenarios:
            model = build_model(platform, sc, alpha=alpha, downtime=downtime)
            try:
                fo = optimal_pattern(model)
                P_fo, T_fo = fo.processors, fo.period
            except ValidityError:  # alpha == 0, or decaying regime
                fo = None
                P_fo = T_fo = None
            num = optimize_allocation(model)
            H_fo_sim = (
                pipe.simulate_mean(model, T_fo, P_fo, settings) if fo is not None else None
            )
            H_num_sim = pipe.simulate_mean(model, num.period, num.processors, settings)
            p_row += [P_fo, num.processors]
            t_row += [T_fo, num.period]
            h_row += [H_fo_sim, H_num_sim]
        p_rows.append(tuple(p_row))
        t_rows.append(tuple(t_row))
        h_rows.append(tuple(h_row))
    pipe.resolve()
    if pipeline is None:
        pipe.close()
    h_rows = materialize(h_rows)

    pair_cols = tuple(
        col for sc in scenarios for col in (f"sc{sc}_first_order", f"sc{sc}_optimal")
    )
    base = f"fig4_{platform.lower()}"
    note = f"platform {platform}, D={downtime:g}s, scenarios {scenarios}"
    return [
        FigureResult(
            figure_id=f"{base}a_processors",
            title=f"Figure 4(a) [{platform}]: optimal processor count P* vs alpha",
            columns=("alpha",) + pair_cols,
            rows=tuple(p_rows),
            notes=(note, "P* grows as alpha decreases; finite even at alpha=0"),
        ),
        FigureResult(
            figure_id=f"{base}b_period",
            title=f"Figure 4(b) [{platform}]: optimal period T* vs alpha",
            columns=("alpha",) + pair_cols,
            rows=tuple(t_rows),
            notes=(note, "T* shrinks with alpha except scenario 1 (P-independent)"),
        ),
        FigureResult(
            figure_id=f"{base}c_overhead",
            title=f"Figure 4(c) [{platform}]: simulated overhead vs alpha",
            columns=("alpha",) + pair_cols,
            rows=tuple(h_rows),
            notes=(note, "overhead approaches the alpha floor; sc5 wins at small alpha"),
        ),
    ]
