"""Figure 4: impact of the sequential fraction ``alpha`` (platform Hera).

Sweep ``alpha`` over {0.1, 0.01, 0.001, 0.0001, 0} for scenarios 1, 3
and 5 (2/4/6 behave like their same-``C_P`` siblings) and regenerate:

* (a) optimal processor count ``P*`` — first-order and numerical;
* (b) optimal period ``T*`` — first-order and numerical;
* (c) simulated execution overhead at both patterns.

Shape checks (paper, Section IV-B.3): ``P*`` grows as ``alpha`` drops
(Amdahl headroom); overhead tends to the ``alpha`` floor; scenario 5
overtakes the others at small ``alpha`` thanks to its cheaper
checkpoints; at ``alpha = 0`` no first-order solution exists and the
numerical ``P*`` stays finite with overhead strictly above 1e-5.
"""

from __future__ import annotations

from ..platforms.catalog import DEFAULT_DOWNTIME
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .spec import AxisSpec, PanelSpec, StudySpec, run_study

__all__ = ["run", "DEFAULT_ALPHAS", "SPEC"]

#: The paper's x-axis, largest to smallest (0 = perfectly parallel).
DEFAULT_ALPHAS: tuple[float, ...] = (0.1, 0.01, 0.001, 0.0001, 0.0)

_NOTE = "platform {platform}, D={downtime:g}s, scenarios {scenarios}"

SPEC = StudySpec(
    name="fig4",
    description="sweep of the sequential fraction alpha",
    scenarios=(1, 3, 5),
    platforms=("Hera",),
    axis=AxisSpec(
        name="alpha",
        header="alpha",
        model_kwarg="alpha",
        grid=lambda: DEFAULT_ALPHAS,
    ),
    fixed={"downtime": DEFAULT_DOWNTIME},
    figure_base="fig4_{platform_l}",
    panels=(
        PanelSpec(
            suffix="a_processors",
            title="Figure 4(a) [{platform}]: optimal processor count P* vs alpha",
            columns=("P_fo", "P_num"),
            notes=(_NOTE, "P* grows as alpha decreases; finite even at alpha=0"),
        ),
        PanelSpec(
            suffix="b_period",
            title="Figure 4(b) [{platform}]: optimal period T* vs alpha",
            columns=("T_fo", "T_num"),
            notes=(_NOTE, "T* shrinks with alpha except scenario 1 (P-independent)"),
        ),
        PanelSpec(
            suffix="c_overhead",
            title="Figure 4(c) [{platform}]: simulated overhead vs alpha",
            columns=("H_sim_fo", "H_sim_num"),
            notes=(_NOTE, "overhead approaches the alpha floor; sc5 wins at small alpha"),
        ),
    ),
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 4 (a)-(c).  Returns three FigureResults."""
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        grid=alphas,
        fixed={"downtime": downtime},
    )
