"""Experiment harness: one module per figure of the evaluation section.

Each module's ``run(...)`` returns ``list[FigureResult]`` (one per
sub-figure); :mod:`repro.experiments.runner` is the CLI that prints
them as aligned tables and optional CSVs.
"""

from . import (
    ext_nodes,
    ext_segments,
    ext_weakscaling,
    ext_weibull,
    fig2_scenarios,
    fig3_processors,
    fig4_alpha,
    fig5_error_rate,
    fig6_alpha_zero,
    fig7_downtime,
)
from . import scenarios
from .analytic import AnalyticMemo, AnalyticPoint, evaluate_analytic, model_key
from .common import FigureResult, SimSettings, simulate_mean
from .pipeline import Deferred, SimulationPipeline, materialize
from .registry import REGISTRY, find_spec, get_spec
from .runner import main, print_input_tables
from .spec import (
    AxisSpec,
    PanelSpec,
    StudySpec,
    load_toml_spec,
    run_study,
    stage_study,
)

__all__ = [
    "AnalyticMemo",
    "AnalyticPoint",
    "evaluate_analytic",
    "model_key",
    "FigureResult",
    "SimSettings",
    "simulate_mean",
    "Deferred",
    "SimulationPipeline",
    "materialize",
    "REGISTRY",
    "get_spec",
    "find_spec",
    "StudySpec",
    "AxisSpec",
    "PanelSpec",
    "run_study",
    "stage_study",
    "load_toml_spec",
    "fig2_scenarios",
    "fig3_processors",
    "fig4_alpha",
    "fig5_error_rate",
    "fig6_alpha_zero",
    "fig7_downtime",
    "ext_nodes",
    "ext_segments",
    "ext_weakscaling",
    "ext_weibull",
    "main",
    "print_input_tables",
    "scenarios",
]
