"""Batched analytic-optimum evaluation with a cross-replicate memo.

The declare phase of every default-evaluator study spends nearly all of
its time on the *analytic* columns: a first-order closed form plus a
numerical ``(T, P)`` optimisation per grid cell, ~20 ms each and run
one cell at a time.  This module turns that pass into two array sweeps
— :func:`repro.core.first_order.optimal_pattern_batch` for the closed
forms and :func:`repro.optimize.allocation.optimize_allocation_batch`
for the numerical optima — so a whole study column resolves per
broadcast round, bit-identical to the scalar evaluators.

On top sits :class:`AnalyticMemo`: scenario families re-run the same
study with jittered *simulation* settings, so their analytic cells are
literally identical across family members.  The memo keys each model by
a hash of its result-relevant parameters (:func:`model_key`) and serves
repeats without recompute, within one run (always) and across runs
(persisted to ``analytic_memo.json`` inside the pipeline's cache
directory, so ``--no-cache`` also disables persistence).

``REPRO_ANALYTIC_BATCH=0`` forces the historical per-point scalar path
(no batching, no memo) — the benchmark baseline and the CI parity smoke
flip this switch to prove the default path changes nothing but speed.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.costs import CheckpointCost, VerificationCost
from ..core.first_order import optimal_pattern, optimal_pattern_batch
from ..core.speedup import AmdahlSpeedup
from ..exceptions import ValidityError
from ..optimize.allocation import optimize_allocation, optimize_allocation_batch

__all__ = [
    "ANALYTIC_VERSION",
    "AnalyticPoint",
    "AnalyticMemo",
    "model_key",
    "batch_enabled",
    "evaluate_analytic",
]

#: Bump when the optimisers' numerics change: persisted memo entries
#: from another version are discarded wholesale on load.
ANALYTIC_VERSION = 1


def batch_enabled() -> bool:
    """Whether the batched analytic engine is on (default: yes)."""
    return os.environ.get("REPRO_ANALYTIC_BATCH", "1") != "0"


@dataclass(frozen=True)
class AnalyticPoint:
    """The six analytic columns of one sweep cell.

    ``*_fo`` entries are ``None`` where the first-order closed form has
    no finite optimum (exactly where :func:`optimal_pattern` raises);
    the numerical optimum always exists.
    """

    P_fo: float | None
    T_fo: float | None
    H_pred_fo: float | None
    P_num: float
    T_num: float
    H_pred_num: float

    def as_list(self) -> list:
        return [self.P_fo, self.T_fo, self.H_pred_fo,
                self.P_num, self.T_num, self.H_pred_num]


def model_key(model) -> str | None:
    """Content hash of every model parameter the analytic optimum reads.

    ``None`` marks a model the memo must not cache: a non-Amdahl (or
    subclassed) speedup profile, non-standard cost classes, or stacked
    array-valued parameters.  The optimisers depend on nothing else —
    the key doubles every parameter through ``struct`` so distinct bit
    patterns never collide.
    """
    speedup = model.speedup
    costs = model.costs
    checkpoint, verification, recovery = (
        costs.checkpoint, costs.verification, costs.recovery,
    )
    if (
        type(speedup) is not AmdahlSpeedup
        or type(checkpoint) is not CheckpointCost
        or type(verification) is not VerificationCost
        or (recovery is not None and type(recovery) is not CheckpointCost)
    ):
        return None
    fields = (
        model.errors.lambda_ind,
        model.errors.fail_stop_fraction,
        speedup.alpha,
        checkpoint.a,
        checkpoint.b,
        checkpoint.c,
        verification.v,
        verification.u,
        costs.downtime,
        1.0 if recovery is not None else 0.0,
        recovery.a if recovery is not None else 0.0,
        recovery.b if recovery is not None else 0.0,
        recovery.c if recovery is not None else 0.0,
    )
    if any(np.ndim(value) != 0 for value in fields):
        return None
    packed = struct.pack(f"<{len(fields)}d", *(float(v) for v in fields))
    return hashlib.sha1(packed).hexdigest()


class AnalyticMemo:
    """Keyed store of evaluated :class:`AnalyticPoint` values.

    Always deduplicates in memory within its lifetime; with a ``path``
    it also persists entries (plus cumulative served/evaluated
    counters) as JSON, guarded by :data:`ANALYTIC_VERSION`.  JSON float
    serialisation round-trips ``float64`` exactly, so values served
    from disk are bit-identical to freshly computed ones.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._table: dict[str, AnalyticPoint] = {}
        #: Cumulative points served without compute / computed.
        self.served = 0
        self.evaluated = 0
        self._dirty = False
        if self.path is not None and self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
            except (OSError, ValueError):
                payload = None
            if isinstance(payload, dict) and payload.get("version") == ANALYTIC_VERSION:
                self.served = int(payload.get("served", 0))
                self.evaluated = int(payload.get("evaluated", 0))
                for key, values in payload.get("entries", {}).items():
                    self._table[key] = AnalyticPoint(
                        *(None if v is None else float(v) for v in values)
                    )

    def __len__(self) -> int:
        return len(self._table)

    @property
    def lookups(self) -> int:
        """Total points that went through the memo."""
        return self.served + self.evaluated

    @property
    def hit_rate(self) -> float:
        return self.served / self.lookups if self.lookups else 0.0

    def get(self, key: str) -> AnalyticPoint | None:
        return self._table.get(key)

    def put(self, key: str, point: AnalyticPoint) -> None:
        self._table[key] = point
        self._dirty = True

    def count(self, served: int, evaluated: int) -> None:
        """Record engine traffic (kept here so it persists across runs)."""
        self.served += served
        self.evaluated += evaluated
        if served or evaluated:
            self._dirty = True

    def flush(self) -> None:
        """Write the table to ``path`` (atomic rename); no-op when clean."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": ANALYTIC_VERSION,
            "served": self.served,
            "evaluated": self.evaluated,
            "entries": {key: point.as_list() for key, point in self._table.items()},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)
        self._dirty = False


def _scalar_point(model) -> AnalyticPoint:
    """Historical per-cell evaluation (the ``REPRO_ANALYTIC_BATCH=0`` path)."""
    try:
        fo = optimal_pattern(model)
    except ValidityError:
        fo = None
    num = optimize_allocation(model)
    return AnalyticPoint(
        P_fo=fo.processors if fo is not None else None,
        T_fo=fo.period if fo is not None else None,
        H_pred_fo=fo.overhead if fo is not None else None,
        P_num=num.processors,
        T_num=num.period,
        H_pred_num=num.overhead,
    )


def _evaluate_models(models) -> list[AnalyticPoint]:
    if not batch_enabled():
        return [_scalar_point(m) for m in models]
    fos = optimal_pattern_batch(models)
    nums = optimize_allocation_batch(models)
    return [
        AnalyticPoint(
            P_fo=fo.processors if fo is not None else None,
            T_fo=fo.period if fo is not None else None,
            H_pred_fo=fo.overhead if fo is not None else None,
            P_num=num.processors,
            T_num=num.period,
            H_pred_num=num.overhead,
        )
        for fo, num in zip(fos, nums)
    ]


def evaluate_analytic(
    models, memo: AnalyticMemo | None = None
) -> tuple[list[AnalyticPoint], int, int]:
    """Analytic columns for a column of models, memo-served where possible.

    Models are deduplicated by :func:`model_key` both against ``memo``
    and within the call, then the remaining unique models go through
    the batch engine in one sweep (or the scalar loop when
    ``REPRO_ANALYTIC_BATCH=0``).

    Returns
    -------
    (points, evaluated, served):
        Points aligned with ``models``; how many were computed this
        call and how many came from the memo / intra-call dedup.
    """
    models = list(models)
    points: list[AnalyticPoint | None] = [None] * len(models)
    evaluated = 0
    served = 0
    todo: dict[object, list[int]] = {}
    for j, model in enumerate(models):
        key = model_key(model)
        if key is None:
            todo[("unkeyed", j)] = [j]
            continue
        if memo is not None:
            hit = memo.get(key)
            if hit is not None:
                points[j] = hit
                served += 1
                continue
        todo.setdefault(key, []).append(j)
    groups = list(todo.items())
    fresh = _evaluate_models([models[idxs[0]] for _, idxs in groups])
    for (key, idxs), point in zip(groups, fresh):
        evaluated += 1
        served += len(idxs) - 1
        if memo is not None and isinstance(key, str):
            memo.put(key, point)
        for j in idxs:
            points[j] = point
    if memo is not None:
        memo.count(served, evaluated)
    return points, evaluated, served
