"""Extension experiment: per-node failure laws vs the aggregated platform.

The paper's Proposition 1.2 collapses ``P`` per-node failure processes
into one platform-level Poisson process of rate ``P * lambda_ind``.
This experiment simulates the optimal pattern with failures generated
**per node** under three regimes and compares against the aggregated
analytic prediction:

* exponential nodes (must match — Proposition 1.2 end-to-end);
* stationary Weibull nodes (Palm-Khintchine: the superposition of
  hundreds of renewal streams is effectively Poisson, so the paper's
  exponential assumption holds even for bursty nodes);
* fresh Weibull nodes (every node at age zero: the infant-mortality
  transient measurably raises the overhead — the one regime where the
  aggregated model is optimistic).
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternModel
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from ..platforms.scenarios import build_model
from ..sim.nodes import simulate_run_nodes
from ..sim.rng import spawn_seed_sequences
from ..sim.streams import WeibullArrivals
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline, materialize
from .spec import StudyContext, StudySpec, run_study

__all__ = ["run", "SPEC"]


def _nodes_overhead(
    model: PatternModel,
    T: float,
    P: int,
    n_patterns: int,
    n_runs: int,
    seed: int,
    **kwargs,
) -> float:
    """Mean simulated overhead under per-node failure generation.

    Module-level and picklable so the pipeline can dispatch one failure
    regime to a pool worker; replicates the historical sequential loop
    (same spawned seeds, same run order) bit for bit.
    """
    work = n_patterns * T * float(model.speedup.speedup(P))
    seeds = spawn_seed_sequences(n_runs, seed=seed)
    times = np.array(
        [
            simulate_run_nodes(
                model, T, P, n_patterns, np.random.default_rng(ss), **kwargs
            ).total_time
            for ss in seeds
        ]
    )
    return float(times.mean() / work)


def _declare(ctx: StudyContext):
    shape = ctx.options.get("shape", 0.7)
    alpha = ctx.fixed["alpha"]
    downtime = ctx.fixed["downtime"]
    n_runs, n_patterns = ctx.settings.budget()
    # Event-driven per-node simulation: keep the budget interactive.
    n_runs = min(n_runs, 30)
    n_patterns = min(n_patterns, 60)

    panels = []
    for scenario_id in ctx.scenarios:
        model = build_model(ctx.platform, scenario_id, alpha=alpha, downtime=downtime)
        opt = optimize_allocation(model, integer=True)
        T, P = opt.period, int(opt.processors)
        lam_node = model.errors.lambda_ind * model.errors.fail_stop_fraction
        weibull = WeibullArrivals.from_mean(shape, 1.0 / lam_node)

        def overhead_of(seed_offset: int, **kwargs):
            if not ctx.settings.simulate:
                return None
            return ctx.pipeline.call(
                _nodes_overhead,
                model,
                T,
                P,
                n_patterns,
                n_runs,
                ctx.settings.seed + seed_offset,
                **kwargs,
            )

        rows = (
            ("aggregated analytic (paper)", float(model.overhead(T, P))),
            ("exponential nodes", overhead_of(1)),
            (f"Weibull {shape:g} nodes, stationary", overhead_of(2, node_process=weibull)),
            (
                f"Weibull {shape:g} nodes, fresh machine",
                overhead_of(3, node_process=weibull, stationary=False),
            ),
        )
        panels.append((scenario_id, T, P, rows))
    return {"panels": panels, "shape": shape, "n_runs": n_runs, "n_patterns": n_patterns}


def _assemble(ctx: StudyContext, state: dict) -> list[FigureResult]:
    results: list[FigureResult] = []
    for scenario_id, T, P, rows in state["panels"]:
        results.append(
            FigureResult(
                figure_id=f"ext_nodes_sc{scenario_id}_{ctx.platform.lower()}",
                title=(
                    f"Extension [{ctx.platform} sc{scenario_id}]: per-node failure "
                    f"laws at the optimal pattern (T={T:.0f}s, P={P})"
                ),
                columns=("failure model", "overhead"),
                rows=materialize(rows),
                notes=(
                    "exponential nodes validate Proposition 1.2 end-to-end",
                    "stationary Weibull ~ Poisson platform (Palm-Khintchine)",
                    "fresh Weibull machines pay an infant-mortality transient",
                    f"simulation: {state['n_runs']} runs x {state['n_patterns']} "
                    "patterns (node-level DES)"
                    if ctx.settings.simulate
                    else "simulation disabled",
                ),
            )
        )
    return results


SPEC = StudySpec(
    name="ext-nodes",
    description="extension: per-node failure laws vs the aggregated platform",
    scenarios=(1,),
    platforms=("Hera",),
    fixed={"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME},
    declare=_declare,
    assemble=_assemble,
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1,),
    shape: float = 0.7,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Node-level failure-law comparison at the optimal pattern."""
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        fixed={"alpha": alpha, "downtime": downtime},
        options={"shape": shape},
    )
