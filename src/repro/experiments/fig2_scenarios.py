"""Figure 2: optimal patterns across resilience scenarios and platforms.

For each of the six Table-III scenarios on a given platform (the paper
shows all four platforms side by side), regenerate the three panels:

* optimal number of processors ``P*`` — first-order vs numerical;
* optimal checkpointing period ``T*`` — first-order vs numerical;
* execution overhead — first-order/optimal *predictions* (closed form
  and exact model) and first-order/optimal *simulations* (Monte Carlo
  at the respective patterns).

Shape checks (paper, Section IV-B.1): first-order ≈ optimal under
scenarios 1-4; scenario 5's first-order deviates (few-% overhead gap);
scenario 6 admits no first-order solution (numerical only); all
overheads ≈ 0.11 at ``alpha = 0.1``.
"""

from __future__ import annotations

from ..core.first_order import optimal_pattern
from ..exceptions import ValidityError
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from ..platforms.scenarios import SCENARIO_IDS, build_model
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline, materialize, private_pipeline

__all__ = ["run"]


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = SCENARIO_IDS,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 2 for one platform.

    Returns a single :class:`FigureResult` with one row per scenario.
    The Monte-Carlo points are declared up front and resolved in one
    fused batch on ``pipeline`` (or a private serial one).
    """
    pipe = pipeline if pipeline is not None else private_pipeline(settings)
    rows = []
    max_gap = 0.0
    for sc in scenarios:
        model = build_model(platform, sc, alpha=alpha, downtime=downtime)
        # First-order closed form (None for scenario 6 / decaying regime).
        try:
            fo = optimal_pattern(model)
            P_fo, T_fo, H_fo_pred = fo.processors, fo.period, fo.overhead
        except ValidityError:
            fo = None
            P_fo = T_fo = H_fo_pred = None
        # Numerical optimum of the exact model.
        num = optimize_allocation(model)
        H_num_pred = num.overhead
        # Monte-Carlo validation at both patterns (deferred).
        H_fo_sim = (
            pipe.simulate_mean(model, T_fo, P_fo, settings) if fo is not None else None
        )
        H_num_sim = pipe.simulate_mean(model, num.period, num.processors, settings)
        if fo is not None:
            max_gap = max(max_gap, abs(H_fo_pred - H_num_pred))
        rows.append(
            (
                sc,
                P_fo,
                num.processors,
                T_fo,
                num.period,
                H_fo_pred,
                H_num_pred,
                H_fo_sim,
                H_num_sim,
            )
        )
    pipe.resolve()
    if pipeline is None:
        pipe.close()
    rows = materialize(rows)
    sim_note = (
        f"simulation: {settings.fidelity.n_runs} runs x "
        f"{settings.fidelity.n_patterns} patterns, seed {settings.seed}"
        if settings.simulate
        else "simulation disabled"
    )
    return [
        FigureResult(
            figure_id=f"fig2_{platform.lower()}",
            title=(
                f"Figure 2 [{platform}]: optimal patterns per scenario "
                f"(alpha={alpha:g}, D={downtime:g}s)"
            ),
            columns=(
                "scenario",
                "P*_first_order",
                "P*_optimal",
                "T*_first_order",
                "T*_optimal",
                "H_first_order_pred",
                "H_optimal_pred",
                "H_first_order_sim",
                "H_optimal_sim",
            ),
            rows=tuple(rows),
            notes=(
                f"max |H_fo - H_opt| prediction gap over closed-form scenarios: {max_gap:.5f}",
                sim_note,
            ),
        )
    ]
