"""Figure 2: optimal patterns across resilience scenarios and platforms.

For each of the six Table-III scenarios on a given platform (the paper
shows all four platforms side by side), regenerate the three panels:

* optimal number of processors ``P*`` — first-order vs numerical;
* optimal checkpointing period ``T*`` — first-order vs numerical;
* execution overhead — first-order/optimal *predictions* (closed form
  and exact model) and first-order/optimal *simulations* (Monte Carlo
  at the respective patterns).

Shape checks (paper, Section IV-B.1): first-order ≈ optimal under
scenarios 1-4; scenario 5's first-order deviates (few-% overhead gap);
scenario 6 admits no first-order solution (numerical only); all
overheads ≈ 0.11 at ``alpha = 0.1``.
"""

from __future__ import annotations

from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME, PLATFORM_NAMES
from ..platforms.scenarios import SCENARIO_IDS
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .spec import PanelSpec, StudyContext, StudySpec, run_study

__all__ = ["run", "SPEC"]


def _max_gap_note(ctx: StudyContext, data: dict) -> str:
    max_gap = 0.0
    for sc in ctx.scenarios:
        h_fo = data[sc]["H_pred_fo"][0]
        if h_fo is not None:
            max_gap = max(max_gap, abs(h_fo - data[sc]["H_pred_num"][0]))
    return (
        "max |H_fo - H_opt| prediction gap over closed-form scenarios: "
        f"{max_gap:.5f}"
    )


def _sim_note(ctx: StudyContext, data: dict) -> str:
    s = ctx.settings
    if not s.simulate:
        return "simulation disabled"
    return (
        f"simulation: {s.fidelity.n_runs} runs x "
        f"{s.fidelity.n_patterns} patterns, seed {s.seed}"
    )


SPEC = StudySpec(
    name="fig2",
    description="optimal patterns per scenario and platform",
    scenarios=SCENARIO_IDS,
    platforms=tuple(PLATFORM_NAMES),
    axis=None,  # rows are the Table-III scenarios themselves
    fixed={"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME},
    figure_base="fig2_{platform_l}",
    supports_all_platforms=True,
    panels=(
        PanelSpec(
            suffix="",
            title=(
                "Figure 2 [{platform}]: optimal patterns per scenario "
                "(alpha={alpha:g}, D={downtime:g}s)"
            ),
            columns=(
                "P_fo",
                "P_num",
                "T_fo",
                "T_num",
                "H_pred_fo",
                "H_pred_num",
                "H_sim_fo",
                "H_sim_num",
            ),
            headers=(
                "scenario",
                "P*_first_order",
                "P*_optimal",
                "T*_first_order",
                "T*_optimal",
                "H_first_order_pred",
                "H_optimal_pred",
                "H_first_order_sim",
                "H_optimal_sim",
            ),
            notes=(_max_gap_note, _sim_note),
        ),
    ),
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = SCENARIO_IDS,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 2 for one platform.

    Returns a single :class:`FigureResult` with one row per scenario.
    The Monte-Carlo points are declared up front and resolved in one
    fused batch on ``pipeline`` (or a private serial one).
    """
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        fixed={"alpha": alpha, "downtime": downtime},
    )
