"""Figure 3: impact of the processor allocation (platform Hera).

Three panels over a sweep of ``P``:

* (a) first-order optimal period ``T*_P`` (Theorem 1) per scenario —
  decreasing in ``P`` everywhere, flat only where ``C_P = cP`` makes it
  ``P``-independent;
* (b) simulated execution overhead at ``(T*_P, P)`` per scenario —
  U-shaped: parallelism first wins, then failures dominate;
* (c) overhead difference between the first-order period and the
  numerically optimal period, in percent — the paper reports < 0.2%
  over the whole range.

Scenario pairs sharing the same ``C_P`` form (1/2, 3/4, 5/6) produce
nearly overlapping curves, as the paper notes.
"""

from __future__ import annotations

import numpy as np

from ..core.first_order import optimal_period
from ..optimize.period import optimize_period_batch
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from ..platforms.scenarios import SCENARIO_IDS
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .spec import AxisSpec, PanelSpec, StudyContext, StudySpec, run_study

__all__ = ["run", "default_processor_grid", "SPEC"]


def default_processor_grid() -> np.ndarray:
    """The paper's x-range: a dense sweep of 128..1536 processors."""
    return np.arange(128, 1537, 128, dtype=float)


def _sweep_scenario(ctx: StudyContext, model, sc: int) -> dict:
    """Vectorized per-scenario evaluation over the whole P grid.

    Uses the batch period optimizer (same bracket-widening path as the
    historical figure) so the analytic columns stay bit-identical to
    the per-figure code this spec replaced.
    """
    P_grid = np.asarray(ctx.grid, dtype=float)
    T_fo = np.asarray(optimal_period(P_grid, model.errors, model.costs))
    H_fo = np.asarray(model.overhead(T_fo, P_grid))
    _, H_num = optimize_period_batch(model, P_grid)
    gap_pct = (H_fo - H_num) * 100.0
    return {
        "T_fo": [float(v) for v in T_fo],
        "H_sim": [
            ctx.pipeline.simulate_mean(model, float(T_fo[i]), float(P), ctx.settings)
            for i, P in enumerate(P_grid)
        ],
        "gap_pct": [float(v) for v in gap_pct],
    }


def _gap_note(ctx: StudyContext, data: dict) -> str:
    max_gap_pct = 0.0
    for sc in ctx.scenarios:
        max_gap_pct = max(max_gap_pct, float(np.max(np.asarray(data[sc]["gap_pct"]))))
    return f"max gap {max_gap_pct:.4f} percentage points (paper: < 0.2%)"


_NOTE = "platform {platform}, alpha={alpha:g}, D={downtime:g}s"

SPEC = StudySpec(
    name="fig3",
    description="sweep of the processor count (period, overhead, first-order gap)",
    scenarios=SCENARIO_IDS,
    platforms=("Hera",),
    axis=AxisSpec(name="processors", header="P", grid=default_processor_grid),
    fixed={"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME},
    figure_base="fig3_{platform_l}",
    scenario_eval=_sweep_scenario,
    panels=(
        PanelSpec(
            suffix="a_period",
            title="Figure 3(a) [{platform}]: first-order optimal period T*_P vs P",
            columns=("T_fo",),
            notes=(_NOTE, "T*_P decreases with P except when C_P = cP (flat)"),
        ),
        PanelSpec(
            suffix="b_overhead",
            title="Figure 3(b) [{platform}]: simulated overhead at (T*_P, P) vs P",
            columns=("H_sim",),
            notes=(_NOTE, "U-shape: parallelism gains then failure losses"),
        ),
        PanelSpec(
            suffix="c_gap",
            title=(
                "Figure 3(c) [{platform}]: overhead excess of first-order period "
                "over numerical optimum (percentage points)"
            ),
            columns=("gap_pct",),
            notes=(_NOTE, _gap_note),
        ),
    ),
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = SCENARIO_IDS,
    processors: np.ndarray | None = None,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 3 (a)-(c).  Returns three FigureResults."""
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        grid=None if processors is None else np.asarray(processors, float),
        fixed={"alpha": alpha, "downtime": downtime},
    )
