"""Figure 3: impact of the processor allocation (platform Hera).

Three panels over a sweep of ``P``:

* (a) first-order optimal period ``T*_P`` (Theorem 1) per scenario —
  decreasing in ``P`` everywhere, flat only where ``C_P = cP`` makes it
  ``P``-independent;
* (b) simulated execution overhead at ``(T*_P, P)`` per scenario —
  U-shaped: parallelism first wins, then failures dominate;
* (c) overhead difference between the first-order period and the
  numerically optimal period, in percent — the paper reports < 0.2%
  over the whole range.

Scenario pairs sharing the same ``C_P`` form (1/2, 3/4, 5/6) produce
nearly overlapping curves, as the paper notes.
"""

from __future__ import annotations

import numpy as np

from ..core.first_order import optimal_period
from ..optimize.period import optimize_period_batch
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from ..platforms.scenarios import SCENARIO_IDS, build_model
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline, materialize, private_pipeline

__all__ = ["run", "default_processor_grid"]


def default_processor_grid() -> np.ndarray:
    """The paper's x-range: a dense sweep of 128..1536 processors."""
    return np.arange(128, 1537, 128, dtype=float)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = SCENARIO_IDS,
    processors: np.ndarray | None = None,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 3 (a)-(c).  Returns three FigureResults."""
    pipe = pipeline if pipeline is not None else private_pipeline(settings)
    P_grid = default_processor_grid() if processors is None else np.asarray(processors, float)

    period_rows: dict[float, list] = {P: [P] for P in P_grid}
    sim_rows: dict[float, list] = {P: [P] for P in P_grid}
    gap_rows: dict[float, list] = {P: [P] for P in P_grid}
    max_gap_pct = 0.0

    for sc in scenarios:
        model = build_model(platform, sc, alpha=alpha, downtime=downtime)
        T_fo = np.asarray(optimal_period(P_grid, model.errors, model.costs))
        H_fo = np.asarray(model.overhead(T_fo, P_grid))
        T_num, H_num = optimize_period_batch(model, P_grid)
        gap_pct = (H_fo - H_num) * 100.0
        max_gap_pct = max(max_gap_pct, float(np.max(gap_pct)))
        for i, P in enumerate(P_grid):
            period_rows[P].append(float(T_fo[i]))
            sim = pipe.simulate_mean(model, float(T_fo[i]), float(P), settings)
            sim_rows[P].append(sim)
            gap_rows[P].append(float(gap_pct[i]))
    pipe.resolve()
    if pipeline is None:
        pipe.close()
    sim_rows = materialize(sim_rows)

    sc_cols = tuple(f"scenario_{s}" for s in scenarios)
    base = f"fig3_{platform.lower()}"
    common_note = f"platform {platform}, alpha={alpha:g}, D={downtime:g}s"
    return [
        FigureResult(
            figure_id=f"{base}a_period",
            title=f"Figure 3(a) [{platform}]: first-order optimal period T*_P vs P",
            columns=("P",) + sc_cols,
            rows=tuple(tuple(period_rows[P]) for P in P_grid),
            notes=(common_note, "T*_P decreases with P except when C_P = cP (flat)"),
        ),
        FigureResult(
            figure_id=f"{base}b_overhead",
            title=f"Figure 3(b) [{platform}]: simulated overhead at (T*_P, P) vs P",
            columns=("P",) + sc_cols,
            rows=tuple(tuple(sim_rows[P]) for P in P_grid),
            notes=(common_note, "U-shape: parallelism gains then failure losses"),
        ),
        FigureResult(
            figure_id=f"{base}c_gap",
            title=(
                f"Figure 3(c) [{platform}]: overhead excess of first-order period "
                "over numerical optimum (percentage points)"
            ),
            columns=("P",) + sc_cols,
            rows=tuple(tuple(gap_rows[P]) for P in P_grid),
            notes=(
                common_note,
                f"max gap {max_gap_pct:.4f} percentage points (paper: < 0.2%)",
            ),
        ),
    ]
