"""Command-line entry point regenerating the paper's evaluation.

Usage examples::

    repro-experiments tables                 # Tables II and III (inputs)
    repro-experiments fig2 --platform Hera   # one Figure 2 panel column
    repro-experiments fig2 --all-platforms   # the full Figure 2
    repro-experiments fig5 --paper           # full-fidelity Monte Carlo
    repro-experiments all --no-sim           # every analytic series, fast
    repro-experiments fig6 --csv out/        # dump series as CSV too

(Equivalently: ``python -m repro <command> ...``.)
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from ..io.tables import render_table
from ..platforms.catalog import PLATFORM_NAMES, PLATFORMS
from ..platforms.scenarios import SCENARIOS
from ..sim.montecarlo import FAST, METHODS, PAPER, Fidelity
from ..sim.rng import DEFAULT_SEED
from . import (
    ext_nodes,
    ext_segments,
    ext_weakscaling,
    ext_weibull,
    fig2_scenarios,
    fig3_processors,
    fig4_alpha,
    fig5_error_rate,
    fig6_alpha_zero,
    fig7_downtime,
)
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline

__all__ = ["main", "print_input_tables", "print_command_index", "check_experiments_md"]

_FIGURES: dict[str, Callable[..., list[FigureResult]]] = {
    "fig2": fig2_scenarios.run,
    "fig3": fig3_processors.run,
    "fig4": fig4_alpha.run,
    "fig5": fig5_error_rate.run,
    "fig6": fig6_alpha_zero.run,
    "fig7": fig7_downtime.run,
    "ext-segments": ext_segments.run,
    "ext-weibull": ext_weibull.run,
    "ext-weakscaling": ext_weakscaling.run,
    "ext-nodes": ext_nodes.run,
}

#: Real subcommands that are not figure pipelines; references to them
#: in EXPERIMENTS.md are legitimate and exempt from the drift check.
_META_COMMANDS = {"all", "tables", "report", "index"}

_DESCRIPTIONS = {
    "fig2": "optimal patterns per scenario and platform",
    "fig3": "sweep of the processor count (period, overhead, first-order gap)",
    "fig4": "sweep of the sequential fraction alpha",
    "fig5": "sweep of the error rate (alpha = 0.1) with slope fits",
    "fig6": "sweep of the error rate for perfectly parallel jobs (alpha = 0)",
    "fig7": "sweep of the downtime D",
    "ext-segments": "extension: interleaved verifications (segments per checkpoint)",
    "ext-weibull": "extension: robustness under Weibull fail-stop arrivals",
    "ext-weakscaling": "extension: weak vs strong scaling under failures",
    "ext-nodes": "extension: per-node failure laws vs the aggregated platform",
}


def print_input_tables(stream=None) -> None:
    """Print Tables II (platforms) and III (scenarios) — the inputs."""
    stream = stream or sys.stdout
    rows2 = [
        (
            p.name,
            p.lambda_ind,
            p.fail_stop_fraction,
            p.silent_fraction,
            p.reference_processors,
            p.checkpoint_cost,
            p.verification_cost,
        )
        for p in (PLATFORMS[n] for n in PLATFORM_NAMES)
    ]
    print(
        render_table(
            ("platform", "lambda_ind", "f", "s", "P_ref", "C_P (s)", "V_P (s)"),
            rows2,
            title="Table II: platform parameters (SCR measurements)",
        ),
        file=stream,
    )
    print(file=stream)
    rows3 = [(s.id, s.checkpoint_form, s.verification_form) for s in SCENARIOS.values()]
    print(
        render_table(
            ("scenario", "C_P,R_P", "V_P"),
            rows3,
            title="Table III: resilience scenarios",
        ),
        file=stream,
    )


def _settings_from_args(args: argparse.Namespace) -> SimSettings:
    if args.runs is not None or args.patterns is not None:
        fidelity = Fidelity(
            n_runs=args.runs if args.runs is not None else FAST.n_runs,
            n_patterns=args.patterns if args.patterns is not None else FAST.n_patterns,
            name="custom",
        )
    else:
        fidelity = PAPER if args.paper else FAST
    return SimSettings(
        simulate=not args.no_sim,
        fidelity=fidelity,
        seed=args.seed,
        method=args.method,
        workers=args.workers,
    )


def _pipeline_from_args(args: argparse.Namespace) -> SimulationPipeline:
    """One shared pipeline (pool + caches) for a whole CLI invocation.

    ``--jobs`` defaults to ``--workers`` so a worker request keeps its
    pre-pipeline wall-clock meaning (parallel simulation), now served
    by one pool shared across every figure instead of one pool per
    simulated point; with neither flag the pipeline runs serially.
    """
    jobs = args.jobs if args.jobs is not None else args.workers
    cache_dir = None if args.no_cache else args.cache_dir
    return SimulationPipeline(jobs=1 if jobs is None else jobs, cache_dir=cache_dir)


def _run_figure(
    name: str,
    args: argparse.Namespace,
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    settings = _settings_from_args(args)
    runner = _FIGURES[name]
    results: list[FigureResult] = []
    if name == "fig2" and args.all_platforms:
        for platform in PLATFORM_NAMES:
            results.extend(
                runner(platform=platform, settings=settings, pipeline=pipeline)
            )
    else:
        results.extend(
            runner(platform=args.platform, settings=settings, pipeline=pipeline)
        )
    return results


def _emit(results: Sequence[FigureResult], args: argparse.Namespace) -> None:
    for result in results:
        print(result.table())
        print()
        if args.csv:
            path = result.to_csv(args.csv)
            print(f"  [csv] {path}")
            print()


def _add_common_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--platform",
        default="Hera",
        choices=list(PLATFORM_NAMES),
        help="platform from Table II (default Hera)",
    )
    sub.add_argument("--no-sim", action="store_true", help="skip Monte-Carlo columns")
    sub.add_argument(
        "--paper",
        action="store_true",
        help="full-fidelity simulation (500 runs x 500 patterns)",
    )
    sub.add_argument("--runs", type=int, default=None, help="override Monte-Carlo runs")
    sub.add_argument(
        "--patterns", type=int, default=None, help="override patterns per run"
    )
    sub.add_argument("--seed", type=int, default=DEFAULT_SEED, help="master RNG seed")
    sub.add_argument(
        "--method",
        default="auto",
        choices=list(METHODS),
        help="simulation backend: auto picks vectorized for paper-size "
        "budgets, batch below; des is the slow event-driven reference",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the vectorized backend's chunk dispatch",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes of the fused simulation pipeline's shared "
        "pool (default: the --workers value, else serial)",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk cache of simulation results; "
        "re-runs skip every already-computed point",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache even when --cache-dir is set",
    )
    sub.add_argument("--csv", default=None, metavar="DIR", help="also dump CSV files")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation of 'When Amdahl Meets Young/Daly' "
        "(Cluster 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="print Tables II and III (inputs)")

    for name, desc in _DESCRIPTIONS.items():
        sub = subparsers.add_parser(name, help=desc)
        _add_common_options(sub)
        if name == "fig2":
            sub.add_argument(
                "--all-platforms",
                action="store_true",
                help="regenerate all four platform columns of Figure 2",
            )

    sub_all = subparsers.add_parser("all", help="regenerate every figure")
    _add_common_options(sub_all)
    sub_all.add_argument("--all-platforms", action="store_true")

    sub_report = subparsers.add_parser(
        "report", help="regenerate everything into one markdown report"
    )
    _add_common_options(sub_report)
    sub_report.add_argument("--all-platforms", action="store_true")
    sub_report.add_argument(
        "--out", default="report.md", metavar="FILE", help="output markdown path"
    )

    sub_index = subparsers.add_parser(
        "index", help="list every experiment command; --check verifies EXPERIMENTS.md"
    )
    sub_index.add_argument(
        "--check",
        action="store_true",
        help="fail unless EXPERIMENTS.md references every command (and "
        "nothing that does not exist)",
    )
    sub_index.add_argument(
        "--file",
        default="EXPERIMENTS.md",
        metavar="PATH",
        help="experiment index document to verify (default: ./EXPERIMENTS.md)",
    )
    return parser


def print_command_index(stream=None) -> None:
    """Print every experiment subcommand with its CLI invocation."""
    stream = stream or sys.stdout
    print("Experiment commands (equivalently `repro-experiments <command>`):", file=stream)
    for name in _FIGURES:
        print(f"  python -m repro {name:<16} # {_DESCRIPTIONS[name]}", file=stream)


def check_experiments_md(path: str | Path, stream=None) -> int:
    """Verify the experiment index document against :data:`_FIGURES`.

    Returns 0 when every runner command is referenced as
    ``python -m repro <command>`` and every referenced command exists
    (the non-figure subcommands in :data:`_META_COMMANDS` are exempt),
    1 otherwise.
    This is the same contract the conformance test suite enforces, so
    the document cannot silently drift from the runner.
    """
    stream = stream or sys.stdout
    path = Path(path)
    if not path.exists():
        print(f"[index] {path} does not exist", file=stream)
        return 1
    referenced = set(re.findall(r"python -m repro ([\w-]+)", path.read_text()))
    referenced -= _META_COMMANDS
    missing = sorted(set(_FIGURES) - referenced)
    unknown = sorted(referenced - set(_FIGURES))
    for name in missing:
        print(f"[index] {path} does not reference `python -m repro {name}`", file=stream)
    for name in unknown:
        print(f"[index] {path} references unknown command {name!r}", file=stream)
    if missing or unknown:
        return 1
    print(f"[index] {path} covers all {len(_FIGURES)} commands", file=stream)
    return 0


def _write_report(args: argparse.Namespace, pipeline: SimulationPipeline) -> None:
    import io as _io

    from ..io.report import write_report

    settings = _settings_from_args(args)
    sections = [(name, _run_figure(name, args, pipeline)) for name in _FIGURES]
    buffer = _io.StringIO()
    print_input_tables(stream=buffer)
    sim = (
        f"{settings.fidelity.n_runs} runs x {settings.fidelity.n_patterns} "
        f"patterns, seed {settings.seed}, method {settings.method}"
        if settings.simulate
        else "disabled"
    )
    path = write_report(args.out, sections, sim, input_tables=buffer.getvalue())
    print(f"[report] {path}")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        print_input_tables()
        return 0
    if args.command == "index":
        print_command_index()
        if args.check:
            return check_experiments_md(args.file)
        return 0
    started = time.perf_counter()
    with _pipeline_from_args(args) as pipeline:
        if args.command == "all":
            for name in _FIGURES:
                _emit(_run_figure(name, args, pipeline), args)
        elif args.command == "report":
            _write_report(args, pipeline)
        else:
            _emit(_run_figure(args.command, args, pipeline), args)
        if pipeline.cache is not None:
            hits, misses = pipeline.cache_stats
            print(f"[cache] {hits} hits, {misses} misses ({pipeline.cache.directory})")
    print(f"[done in {time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
