"""Command-line entry point regenerating the paper's evaluation.

Usage examples::

    repro-experiments tables                 # Tables II and III (inputs)
    repro-experiments fig2 --platform Hera   # one Figure 2 panel column
    repro-experiments fig2 --all-platforms   # the full Figure 2
    repro-experiments fig5 --paper           # full-fidelity Monte Carlo
    repro-experiments all --no-sim           # every analytic series, fast
    repro-experiments fig6 --csv out/        # dump series as CSV too
    repro-experiments sweep --spec my.toml   # user-defined TOML study
    repro-experiments cache stats --cache-dir cache/
    repro-experiments merge s0 s1 --cache-dir cache/

(Equivalently: ``python -m repro <command> ...``.)

Every figure subcommand is derived from the study registry
(:mod:`repro.experiments.registry`): its name, help text and platform
grid live on the :class:`~repro.experiments.spec.StudySpec`, so the
CLI cannot drift from the registered studies.  Sharding flags
(``--shard-index/--shard-count/--shard-dir``) run any simulation
command as one deterministic slice of the planned points; ``merge``
fuses shard outputs into a result cache.
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import json
import re
import sys
import time
from collections import Counter, defaultdict
from pathlib import Path
from typing import Callable, Sequence

from ..exceptions import InvalidParameterError, ReproError
from ..io.stream import StreamingEmitter
from ..io.tables import render_table
from ..platforms.catalog import PLATFORM_NAMES, PLATFORMS
from ..platforms.scenarios import SCENARIOS
from ..sim.executors import make_executor, merge_shard_dirs
from ..sim.faults import CRASH_EXIT_CODE, SimulatedCrash, parse_fault_plan
from ..sim.manifest import (
    DEFAULT_RUNS_DIR,
    RunManifest,
    RunRecorder,
    manifest_path,
    validate_resume,
)
from ..sim.montecarlo import FAST, METHODS, PAPER, Fidelity
from ..sim.plan import ResultCache
from ..sim.rng import DEFAULT_SEED
from ..obs.metrics import MetricsRegistry
from ..obs.stream import LineStream
from ..obs.trace import TRACE_NAME, TraceWriter
from .analytic import AnalyticMemo
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .registry import REGISTRY, RUNNERS, find_spec, get_spec
from .spec import StudySpec, stage_study

__all__ = ["main", "print_input_tables", "print_command_index", "check_experiments_md"]

#: Study name -> historical ``run()`` callable (derived from the
#: registry; kept under the old name for API compatibility).
_FIGURES = RUNNERS

#: Real subcommands that are not figure pipelines; references to them
#: in EXPERIMENTS.md are legitimate and exempt from the drift check.
_META_COMMANDS = {
    "all", "tables", "report", "index", "sweep", "merge", "cache", "scenario",
    "resume", "trace",
}

#: Meta commands EXPERIMENTS.md is required to document (the figure
#: commands are always required; ``index`` documents itself).
_DOCUMENTED_META = (
    "all", "tables", "sweep", "merge", "cache", "scenario", "resume", "trace",
)

#: Default claim-board lease TTL (seconds) in work-stealing shard mode:
#: long enough that no healthy shard's claim expires between scheduling
#: rounds, short enough that a dead shard's keys are reclaimed within
#: one coffee break instead of blocking the sweep forever.
DEFAULT_CLAIM_TTL = 900.0


def print_input_tables(stream=None) -> None:
    """Print Tables II (platforms) and III (scenarios) — the inputs."""
    stream = stream or sys.stdout
    rows2 = [
        (
            p.name,
            p.lambda_ind,
            p.fail_stop_fraction,
            p.silent_fraction,
            p.reference_processors,
            p.checkpoint_cost,
            p.verification_cost,
        )
        for p in (PLATFORMS[n] for n in PLATFORM_NAMES)
    ]
    print(
        render_table(
            ("platform", "lambda_ind", "f", "s", "P_ref", "C_P (s)", "V_P (s)"),
            rows2,
            title="Table II: platform parameters (SCR measurements)",
        ),
        file=stream,
    )
    print(file=stream)
    rows3 = [(s.id, s.checkpoint_form, s.verification_form) for s in SCENARIOS.values()]
    print(
        render_table(
            ("scenario", "C_P,R_P", "V_P"),
            rows3,
            title="Table III: resilience scenarios",
        ),
        file=stream,
    )


def _settings_from_args(args: argparse.Namespace) -> SimSettings:
    if args.runs is not None or args.patterns is not None:
        fidelity = Fidelity(
            n_runs=args.runs if args.runs is not None else FAST.n_runs,
            n_patterns=args.patterns if args.patterns is not None else FAST.n_patterns,
            name="custom",
        )
    else:
        fidelity = PAPER if args.paper else FAST
    return SimSettings(
        simulate=not args.no_sim,
        fidelity=fidelity,
        seed=args.seed,
        method=args.method,
        workers=args.workers,
    )


def _shard_args(args: argparse.Namespace) -> tuple[int, int] | None:
    """Validated ``(shard_index, shard_count)``, or None when unsharded."""
    count = getattr(args, "shard_count", None)
    mode = getattr(args, "shard_mode", "static")
    claim_dir = getattr(args, "claim_dir", None)
    claim_ttl = getattr(args, "claim_ttl", None)
    if count is None:
        if getattr(args, "shard_index", None) is not None:
            raise SystemExit("--shard-index requires --shard-count")
        if mode != "static":
            raise SystemExit("--shard-mode requires --shard-count")
        if claim_dir is not None:
            raise SystemExit("--claim-dir requires --shard-mode stealing")
        if claim_ttl is not None:
            raise SystemExit("--claim-ttl requires --shard-mode stealing")
        return None
    index = args.shard_index if args.shard_index is not None else 0
    if count < 1 or not 0 <= index < count:
        raise SystemExit(f"shard {index}/{count} is out of range")
    if getattr(args, "shard_dir", None) is None:
        raise SystemExit("--shard-count requires --shard-dir (the shard's npz output)")
    if mode == "stealing" and claim_dir is None:
        raise SystemExit(
            "--shard-mode stealing requires --claim-dir (the shared claim board)"
        )
    if mode == "static" and claim_dir is not None:
        raise SystemExit("--claim-dir only applies to --shard-mode stealing")
    if mode == "static" and claim_ttl is not None:
        raise SystemExit("--claim-ttl only applies to --shard-mode stealing")
    return index, count


def _trace_from_args(
    args: argparse.Namespace, argv: Sequence[str]
) -> TraceWriter | None:
    """The :class:`TraceWriter` implied by ``--trace``/``--trace-file``.

    ``--trace-file`` names the journal explicitly; bare ``--trace``
    puts it next to the run's manifest (``<runs-dir>/<run-id>/``) when
    the invocation is journaled, else directly under the runs
    directory.  Returns ``None`` when tracing is off — the pipeline
    then holds the null writer and the hot paths pay one flag check.
    """
    trace_file = getattr(args, "trace_file", None)
    if not getattr(args, "trace", False) and trace_file is None:
        return None
    if trace_file is None:
        runs_dir = getattr(args, "runs_dir", None) or DEFAULT_RUNS_DIR
        run_id = getattr(args, "run_id", None)
        base = Path(runs_dir) / run_id if run_id is not None else Path(runs_dir)
        trace_file = base / TRACE_NAME
    writer = TraceWriter(
        trace_file,
        argv=list(argv),
        run_id=getattr(args, "run_id", None),
        command=getattr(args, "command", None),
    )
    print(f"[trace] journaling events to {writer.path}", file=sys.stderr)
    return writer


def _pipeline_from_args(
    args: argparse.Namespace, argv: Sequence[str] = ()
) -> SimulationPipeline:
    """One shared pipeline (executor + caches) for a whole CLI invocation.

    ``--jobs`` defaults to ``--workers`` so a worker request keeps its
    pre-pipeline wall-clock meaning (parallel simulation), now served
    by one executor shared across every figure instead of one pool per
    simulated point; with neither flag the pipeline runs serially.
    Shard flags wrap the executor in a
    :class:`~repro.sim.executors.ShardedExecutor` and point the result
    cache at the shard output directory.  Every pipeline carries one
    :class:`~repro.obs.metrics.MetricsRegistry` and (with ``--trace``)
    one :class:`~repro.obs.trace.TraceWriter` — the observability
    spine the progress printer, dry-run report, resume summary and
    manifest snapshot all read.
    """
    jobs = args.jobs if args.jobs is not None else args.workers
    jobs = 1 if jobs is None else jobs
    max_inflight = getattr(args, "max_inflight", None)
    if max_inflight is not None and max_inflight < 1:
        raise SystemExit("--max-inflight must be >= 1")
    fault = None
    fault_spec = getattr(args, "fault_plan", None)
    if fault_spec:
        try:
            fault = parse_fault_plan(fault_spec)
        except ReproError as exc:
            raise SystemExit(str(exc)) from None
    trace = _trace_from_args(args, argv)
    metrics = MetricsRegistry()
    shard = _shard_args(args)
    if shard is not None:
        if args.cache_dir is not None or args.no_cache:
            # A shard writes its npz output through the cache layer, so
            # the cache flags would be silently overridden — refuse.
            raise SystemExit(
                "--cache-dir/--no-cache cannot be combined with shard flags; "
                "the shard writes to --shard-dir (merge the shards, then run "
                "with --cache-dir on the merged directory)"
            )
        index, count = shard
        claim_ttl = getattr(args, "claim_ttl", None)
        if claim_ttl is None:
            claim_ttl = DEFAULT_CLAIM_TTL
        executor = make_executor(
            jobs,
            index,
            count,
            shard_mode=args.shard_mode,
            claim_dir=args.claim_dir,
            claim_ttl=claim_ttl if claim_ttl > 0 else None,
        )
        pipeline = SimulationPipeline(
            executor=executor,
            cache_dir=args.shard_dir,
            max_inflight=max_inflight,
            fault=fault,
            trace=trace,
            metrics=metrics,
        )
    else:
        cache_dir = None if args.no_cache else args.cache_dir
        pipeline = SimulationPipeline(
            jobs=jobs,
            cache_dir=cache_dir,
            max_inflight=max_inflight,
            fault=fault,
            trace=trace,
            metrics=metrics,
        )
    if fault is not None and pipeline.cache is not None:
        hurt = fault.corrupt_cache(pipeline.cache)
        if hurt is not None:
            print(f"[fault] corrupted cache entry {hurt[:16]}…", file=sys.stderr)
    return pipeline


def _platforms_for(spec: StudySpec, args: argparse.Namespace) -> tuple[str, ...]:
    """The platform grid one CLI invocation runs a spec over."""
    if spec.supports_all_platforms and getattr(args, "all_platforms", False):
        return tuple(PLATFORM_NAMES)
    platform = getattr(args, "platform", None)
    if platform is None:
        return spec.platforms  # sweep: the spec's own platform grid
    return (platform,)


def _stage_specs(
    specs: Sequence[StudySpec],
    args: argparse.Namespace,
    pipeline: SimulationPipeline,
) -> list:
    """Declare every (spec, platform) study onto the shared pipeline."""
    settings = _settings_from_args(args)
    staged = []
    for spec in specs:
        for platform in _platforms_for(spec, args):
            staged.append(
                stage_study(spec, platform=platform, settings=settings, pipeline=pipeline)
            )
    return staged


def _resolve_and_emit(
    staged: Sequence,
    pipeline: SimulationPipeline,
    emitter: StreamingEmitter | None,
    collect: list | None = None,
    on_event: Callable | None = None,
    on_round: Callable | None = None,
) -> None:
    """Resolve every staged study in one event-driven round.

    All studies' planned jobs share one global in-flight window — no
    wave barriers, so a slow chunk in one study never stalls another's
    dispatch.  Every resolved point pumps the emitter: a study's
    tables print the moment its last point lands (head-of-line order
    keeps the output bytes identical to the buffered path).  In shard
    mode (``emitter`` is None, ``collect`` is None) the studies are
    resolved for their side effect only: shard npz output.
    """
    if emitter is not None:
        for stage in staged:
            emitter.add(stage)

    def _on_point(event) -> None:
        if on_event is not None:
            on_event(event)
        if emitter is not None:
            emitter.on_event(event)

    pipeline.resolve(on_event=_on_point, on_round=on_round)
    if emitter is not None:
        emitter.drain()
    elif collect is not None:
        for stage in staged:
            collect.append((stage.ctx.spec.name, stage.finish()))


def _progress_printer(staged: Sequence, pipeline: SimulationPipeline,
                      stream=None) -> Callable:
    """Per-study progress lines (stderr) as the scheduler resolves points.

    The tallies come straight from the pipeline's metrics registry
    (``points{study,status}`` — incremented before any ``on_event``
    callback fires), so this printer re-counts nothing.  Lines go
    through a :class:`~repro.obs.stream.LineStream`, whose single
    locked write keeps concurrent callback output from tearing
    mid-line.

    ``staged`` is read live on every event, not snapshotted: adaptive
    runs keep appending newly staged waves to it mid-round, and the
    denominator has to track them.  (For fixed runs the sequence never
    grows, so the recomputation changes nothing.)
    """
    out = LineStream(stream if stream is not None else sys.stderr)
    metrics = pipeline.metrics

    def on_event(event) -> None:
        totals: dict[str, int] = defaultdict(int)
        for stage in staged:
            totals[stage.group] += stage.n_pending
        group = event.group if event.group is not None else "?"
        label = event.group if event.group is not None else "(ungrouped)"
        computed = metrics.value("points", study=label, status="computed")
        served = metrics.value("points", study=label, status="served")
        skipped = metrics.value("points", study=label, status="skipped")
        done = computed + served + skipped
        out.line(
            f"[progress] {group} {done}/{totals.get(group, done)} "
            f"computed={computed} served={served} skipped={skipped}"
        )

    return on_event


def _chain_events(*callbacks: Callable | None) -> Callable | None:
    """Compose optional ``on_event`` callbacks into one (or ``None``)."""
    chained = [cb for cb in callbacks if cb is not None]
    if not chained:
        return None
    if len(chained) == 1:
        return chained[0]

    def on_event(event) -> None:
        for cb in chained:
            cb(event)

    return on_event


def _recorder_from_args(
    args: argparse.Namespace,
    argv: Sequence[str],
    pipeline: SimulationPipeline,
    pre_validate: Callable | None = None,
) -> RunRecorder | None:
    """The durable-run journal implied by ``--run-id``/``--resume``.

    Must be called *after* staging (a resume validates the manifest
    against the pipeline's pending plan keys).  ``pre_validate`` runs
    between loading a resumed manifest and the validation pass — the
    adaptive engine uses it to replay journaled waves onto the
    pipeline, so the resumed plan covers every key of the original
    run.  All reporting goes to stderr, keeping the table bytes on
    stdout identical to an unjournaled run.
    """
    run_id = getattr(args, "run_id", None)
    resume = getattr(args, "resume", False)
    if run_id is None:
        if resume:
            raise SystemExit("--resume requires --run-id (whose manifest to resume)")
        return None
    if pipeline.cache is None:
        raise SystemExit(
            "--run-id needs a result cache (--cache-dir or --shard-dir): the "
            "manifest journals point fates; the cache holds the values a "
            "resume reuses"
        )
    runs_dir = getattr(args, "runs_dir", None) or DEFAULT_RUNS_DIR
    try:
        if not resume:
            recorder = RunRecorder.create(runs_dir, run_id, argv,
                                          metrics=pipeline.metrics)
            print(f"[run] journaling to {recorder.path}", file=sys.stderr)
            return recorder
        recorder = RunRecorder.resume(runs_dir, run_id, argv,
                                      metrics=pipeline.metrics)
        if pre_validate is not None:
            pre_validate(recorder.manifest)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    report = validate_resume(
        recorder.manifest, pipeline.pending_keys(), pipeline.cache, argv
    )
    for outcome in ("reusable", "invalidated", "missing", "stale"):
        n = len(getattr(report, outcome))
        if n:
            pipeline.metrics.counter("resume_points", outcome=outcome).inc(n)
    if pipeline.trace.enabled:
        pipeline.trace.event(
            "resume_validate",
            reused=len(report.reusable),
            invalidated=len(report.invalidated),
            missing=len(report.missing),
            stale=len(report.stale),
        )
    for line in report.lines():
        print(line, file=sys.stderr)
    recorder.write()
    return recorder


def _finish_recorder(
    recorder: RunRecorder | None, pipeline: SimulationPipeline
) -> None:
    """Seal a run journal and print the resumed round's reuse summary.

    The summary line reads the same registry counters the recorder
    wrote (``resume_points{outcome}``), so the printed numbers cannot
    drift from the journaled manifest.  Fresh (unresumed) runs stay
    silent — their stderr is unchanged from the pre-metrics CLI.
    """
    if recorder is None:
        return
    recorder.finish()
    manifest = recorder.manifest
    if manifest.resumes:
        invalidated = pipeline.metrics.value("resume_points", outcome="invalidated")
        print(
            f"[resume] round delivered: {manifest.reused} reused, "
            f"{manifest.recomputed} recomputed, {invalidated} invalidated",
            file=sys.stderr,
        )


def _print_dry_run(pipeline: SimulationPipeline, stream=None) -> None:
    """Planned-work report of every staged study (``--dry-run``).

    :meth:`~repro.experiments.pipeline.SimulationPipeline.pending_report`
    populates the registry's ``plan{study,field}`` counters; this
    printer renders them — the report dict and the registry are the
    same numbers by construction.
    """
    stream = stream or sys.stdout
    pipeline.pending_report()
    report: dict[str, dict[str, int]] = {}
    for labels, metric in pipeline.metrics.labeled("plan"):
        report.setdefault(labels["study"], {})[labels["field"]] = metric.value
    totals: Counter = Counter()
    for name, entry in report.items():
        totals.update(entry)
        print(
            f"[dry-run] {name}: {entry['points']} points "
            f"({entry['unique']} unique, {entry['deduped']} deduped), "
            f"{entry['cache_hits']} cache hits, "
            f"{entry['to_compute']} to compute -> {entry['jobs']} chunk jobs; "
            f"analytic {entry['analytic_evaluated']} evaluated, "
            f"{entry['analytic_served']} memo-served",
            file=stream,
        )
    print(
        f"[dry-run] total: {totals['points']} points, "
        f"{totals['deduped']} deduped, {totals['cache_hits']} cache hits, "
        f"{totals['to_compute']} to compute -> {totals['jobs']} chunk jobs; "
        f"analytic {totals['analytic_evaluated']} evaluated, "
        f"{totals['analytic_served']} memo-served "
        f"(nothing executed)",
        file=stream,
    )


def _add_sim_options(
    sub: argparse.ArgumentParser,
    seed_default: int | None = DEFAULT_SEED,
    seed_help: str = "master RNG seed",
) -> None:
    """The simulation/pipeline flags every sim command shares."""
    sub.add_argument("--no-sim", action="store_true", help="skip Monte-Carlo columns")
    sub.add_argument(
        "--paper",
        action="store_true",
        help="full-fidelity simulation (500 runs x 500 patterns)",
    )
    sub.add_argument("--runs", type=int, default=None, help="override Monte-Carlo runs")
    sub.add_argument(
        "--patterns", type=int, default=None, help="override patterns per run"
    )
    sub.add_argument("--seed", type=int, default=seed_default, help=seed_help)
    sub.add_argument(
        "--method",
        default="auto",
        choices=list(METHODS),
        help="simulation backend: auto picks vectorized for paper-size "
        "budgets, batch below; des is the slow event-driven reference",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the vectorized backend's chunk dispatch",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes of the fused simulation pipeline's shared "
        "pool (default: the --workers value, else serial)",
    )
    sub.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="bound on concurrently in-flight chunk jobs across the whole "
        "invocation (default: 4x the pool width; 1 = strict serial order)",
    )
    sub.add_argument(
        "--progress",
        action="store_true",
        help="print per-study computed/served/skipped counts to stderr as "
        "points resolve (off by default; table output is unaffected)",
    )
    sub.add_argument(
        "--dry-run",
        action="store_true",
        help="print the planned job count, dedup savings and expected cache "
        "hits per study, then exit without simulating anything",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk cache of simulation results; "
        "re-runs skip every already-computed point",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache even when --cache-dir is set",
    )
    sub.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="journal this invocation as a durable run: every resolved "
        "point's fate is written atomically to a manifest under "
        "--runs-dir, so an interrupted run can be resumed "
        "(`repro-experiments resume ID`); requires a result cache "
        "(--cache-dir or --shard-dir)",
    )
    sub.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help=f"directory holding run manifests (default {DEFAULT_RUNS_DIR})",
    )
    sub.add_argument(
        "--resume",
        action="store_true",
        help="continue the --run-id run from its manifest: journaled fates "
        "whose cache entries verify are reused; stale/corrupt/missing "
        "ones recompute",
    )
    sub.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="dev/test harness: inject deterministic faults, e.g. "
        "'crash-after=20', 'fail-job=3:2', 'kill-worker=5', "
        "'corrupt-entry=0' (comma-separated)",
    )
    sub.add_argument(
        "--trace",
        action="store_true",
        help="journal every pipeline event (declares, plans, jobs, cache "
        "traffic, point fates) as JSON Lines for `repro-experiments "
        "trace`; table output is byte-identical with or without it",
    )
    sub.add_argument(
        "--trace-file",
        default=None,
        metavar="FILE",
        help="trace journal path (default: <runs-dir>/<run-id>/trace.jsonl "
        "for journaled runs, else <runs-dir>/trace.jsonl; implies --trace)",
    )


def _add_common_options(
    sub: argparse.ArgumentParser, platform_default: str | None = "Hera"
) -> None:
    sub.add_argument(
        "--platform",
        default=platform_default,
        choices=list(PLATFORM_NAMES),
        help="platform from Table II (default Hera)"
        if platform_default
        else "platform from Table II (default: the spec's own platform grid)",
    )
    _add_sim_options(sub)
    sub.add_argument(
        "--shard-index",
        type=int,
        default=None,
        metavar="I",
        help="run only the I-th deterministic slice of the planned points",
    )
    sub.add_argument(
        "--shard-count",
        type=int,
        default=None,
        metavar="N",
        help="total shards the planned points are partitioned into "
        "(by plan key; requires --shard-dir)",
    )
    sub.add_argument(
        "--shard-dir",
        default=None,
        metavar="DIR",
        help="npz output directory of this shard (fused later by `merge`)",
    )
    sub.add_argument(
        "--shard-mode",
        choices=["static", "stealing"],
        default="static",
        help="shard partition: 'static' owns the fixed shard_of slice; "
        "'stealing' claims keys exclusively from a shared claim board, so "
        "idle shards take over unclaimed work (requires --claim-dir)",
    )
    sub.add_argument(
        "--claim-dir",
        default=None,
        metavar="DIR",
        help="shared claim-board directory for --shard-mode stealing "
        "(a filesystem all shards can reach)",
    )
    sub.add_argument(
        "--claim-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease TTL on claim-board markers: a claim not renewed for "
        "this long is treated as left by a dead shard and reclaimed "
        f"(default {DEFAULT_CLAIM_TTL:.0f}; 0 disables reclamation)",
    )
    sub.add_argument("--csv", default=None, metavar="DIR", help="also dump CSV files")


def _add_scenario_sim_options(sub: argparse.ArgumentParser) -> None:
    """Simulation/pipeline flags of `scenario run|report` (no platform or
    shard flags: the scenario file owns the platform grid, and a family
    aggregates only when every member resolves on this machine)."""
    _add_sim_options(
        sub,
        seed_default=None,
        seed_help="override the scenario file's master seed",
    )
    adaptive = sub.add_argument_group(
        "adaptive replicates",
        "stage replicates in waves and stop per grid row once its band "
        "width stabilizes, instead of simulating a fixed count "
        "(defaults shown; a scenario file's [adaptive] table overrides "
        "them, these flags override the file)",
    )
    adaptive.add_argument(
        "--adaptive", action="store_true",
        help="enable adaptive replicate scheduling",
    )
    adaptive.add_argument(
        "--min-replicates", type=int, default=None, metavar="N",
        help="replicates per variant in the initial wave (default 3)",
    )
    adaptive.add_argument(
        "--max-replicates", type=int, default=None, metavar="N",
        help="hard replicate ceiling per variant (default 12)",
    )
    adaptive.add_argument(
        "--wave", type=int, default=None, metavar="N",
        help="replicates per follow-up wave (default 2)",
    )
    adaptive.add_argument(
        "--band-tol", type=float, default=None, metavar="TOL",
        help="a grid row converges once its relative band width moves "
        "by <= TOL between waves (default 0.05)",
    )
    adaptive.add_argument(
        "--stable-waves", type=int, default=None, metavar="K",
        help="consecutive quiet waves required to converge (default 2)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation of 'When Amdahl Meets Young/Daly' "
        "(Cluster 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="print Tables II and III (inputs)")

    for name, spec in REGISTRY.items():
        sub = subparsers.add_parser(name, help=spec.description)
        _add_common_options(sub)
        if spec.supports_all_platforms:
            sub.add_argument(
                "--all-platforms",
                action="store_true",
                help="regenerate all four platform columns of Figure 2",
            )

    sub_all = subparsers.add_parser("all", help="regenerate every figure")
    _add_common_options(sub_all)
    sub_all.add_argument("--all-platforms", action="store_true")

    sub_report = subparsers.add_parser(
        "report", help="regenerate everything into one markdown report"
    )
    _add_common_options(sub_report)
    sub_report.add_argument("--all-platforms", action="store_true")
    sub_report.add_argument(
        "--out", default="report.md", metavar="FILE", help="output markdown path"
    )

    sub_sweep = subparsers.add_parser(
        "sweep",
        help="run one study: a registered name or a TOML spec file "
        "(supports sharding)",
    )
    sub_sweep.add_argument(
        "study",
        nargs="?",
        default=None,
        help="registered study name (see `index`)",
    )
    sub_sweep.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="TOML study spec (see examples/custom_study.toml)",
    )
    _add_common_options(sub_sweep, platform_default=None)

    sub_merge = subparsers.add_parser(
        "merge", help="fuse shard npz output directories into a result cache"
    )
    sub_merge.add_argument("shards", nargs="+", metavar="SHARD_DIR")
    sub_merge.add_argument(
        "--cache-dir", required=True, metavar="DIR", help="merge target cache"
    )

    sub_resume = subparsers.add_parser(
        "resume",
        help="continue an interrupted --run-id run from its manifest, "
        "reusing every completed point whose cache entry verifies",
    )
    sub_resume.add_argument("run_id", metavar="RUN_ID")
    sub_resume.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help=f"directory holding run manifests (default {DEFAULT_RUNS_DIR})",
    )
    sub_resume.add_argument(
        "--jobs", type=int, default=None,
        help="override the run's worker-process count (execution-only; "
        "the result bytes are unaffected)",
    )
    sub_resume.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="override the run's in-flight window (execution-only)",
    )
    sub_resume.add_argument(
        "--progress", action="store_true", help="per-study progress to stderr"
    )
    sub_resume.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="dev/test harness: inject faults into the resumed round",
    )
    sub_resume.add_argument(
        "--trace", action="store_true",
        help="journal the resumed round's events for `repro-experiments trace`",
    )
    sub_resume.add_argument(
        "--trace-file", default=None, metavar="FILE",
        help="trace journal path of the resumed round (implies --trace)",
    )

    sub_cache = subparsers.add_parser(
        "cache",
        help="inspect, verify or prune a result cache (stats / ls / verify / prune)",
    )
    cache_sub = sub_cache.add_subparsers(dest="cache_command", required=True)
    for cache_cmd, cache_help in (
        ("stats", "aggregate entry count and size"),
        ("ls", "list entries with size and age"),
        ("verify", "integrity-check every entry (catches truncated npz files)"),
        ("prune", "age/size-based garbage collection"),
    ):
        c = cache_sub.add_parser(cache_cmd, help=cache_help)
        c.add_argument("--cache-dir", required=True, metavar="DIR")
        if cache_cmd == "stats":
            c.add_argument(
                "--format",
                choices=("text", "json"),
                default="text",
                help="output format: human-readable lines (text, default) or "
                "one repro-metrics/1 JSON document (the manifest/trace "
                "snapshot schema)",
            )
        if cache_cmd == "verify":
            c.add_argument(
                "--delete",
                action="store_true",
                help="delete the corrupt entries so they read as clean misses",
            )
        if cache_cmd == "prune":
            c.add_argument(
                "--max-age-days",
                type=float,
                default=None,
                help="drop entries older than this many days",
            )
            c.add_argument(
                "--max-size-mb",
                type=float,
                default=None,
                help="evict oldest entries until the cache fits this size",
            )
            c.add_argument(
                "--dry-run",
                action="store_true",
                help="report what would be removed without deleting",
            )
            c.add_argument(
                "--yes",
                action="store_true",
                help="delete without the interactive confirmation (required "
                "when stdin is not a terminal; caches may be shared across "
                "scenario runs and shards)",
            )

    sub_trace = subparsers.add_parser(
        "trace",
        help="analyze a --trace run journal: per-phase wall time, scheduler "
        "occupancy, worker utilization, critical path "
        "(summary | timeline | export)",
    )
    trace_sub = sub_trace.add_subparsers(dest="trace_command", required=True)
    for trace_cmd, trace_help in (
        ("summary", "fold the journal into per-phase/scheduler/study totals"),
        ("timeline", "print the raw event stream with relative timestamps"),
        ("export", "re-emit the validated events (jsonl or one JSON array)"),
    ):
        t = trace_sub.add_parser(trace_cmd, help=trace_help)
        t.add_argument(
            "target",
            metavar="TRACE",
            help="a trace.jsonl path, a directory containing one, or a "
            "--runs-dir run id",
        )
        t.add_argument(
            "--runs-dir",
            default=None,
            metavar="DIR",
            help=f"directory holding run manifests (default {DEFAULT_RUNS_DIR})",
        )
        if trace_cmd == "summary":
            t.add_argument(
                "--format",
                choices=("text", "json"),
                default="text",
                help="rendered report (text, default) or the "
                "repro-trace-summary/1 JSON document",
            )
        if trace_cmd == "timeline":
            t.add_argument(
                "--limit",
                type=int,
                default=None,
                metavar="N",
                help="show only the first N events (default: all)",
            )
        if trace_cmd == "export":
            t.add_argument(
                "--format",
                choices=("jsonl", "json"),
                default="jsonl",
                help="JSON Lines passthrough (jsonl, default) or one JSON "
                "array document",
            )

    sub_scen = subparsers.add_parser(
        "scenario",
        help="resampled/perturbed study families: derive variants of a "
        "registered study, run them as one fused round, aggregate "
        "replicate bands (generate | run | aggregate | report)",
    )
    scen_sub = sub_scen.add_subparsers(dest="scenario_command", required=True)
    scen_gen = scen_sub.add_parser(
        "generate", help="print the derived member manifest of a scenario TOML"
    )
    scen_gen.add_argument("file", metavar="SCENARIO_TOML")
    scen_gen.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario file's master seed",
    )
    scen_run = scen_sub.add_parser(
        "run",
        help="run every derived member through one shared pipeline; write "
        "per-member tables as JSON for later aggregation",
    )
    scen_run.add_argument("file", metavar="SCENARIO_TOML")
    scen_run.add_argument(
        "--out", default=None, metavar="DIR",
        help="result directory (manifest.json + one JSON per member); "
        "required unless --dry-run",
    )
    _add_scenario_sim_options(scen_run)
    scen_agg = scen_sub.add_parser(
        "aggregate",
        help="reduce a `scenario run --out` directory into quantile-band tables",
    )
    scen_agg.add_argument("results", metavar="DIR")
    scen_agg.add_argument("--csv", default=None, metavar="DIR",
                          help="also dump the band tables as CSV")
    scen_agg.add_argument(
        "--format", choices=("text", "json", "csv"), default="text",
        help="output format: rendered tables (text, default), one JSON "
        "document of every band table (json), or tidy "
        "figure/row/column/value CSV on stdout (csv)",
    )
    scen_rep = scen_sub.add_parser(
        "report",
        help="run and aggregate in one go, streaming each family's band "
        "tables the moment its last member resolves",
    )
    scen_rep.add_argument("file", metavar="SCENARIO_TOML")
    scen_rep.add_argument("--csv", default=None, metavar="DIR",
                          help="also dump the band tables as CSV")
    _add_scenario_sim_options(scen_rep)

    sub_index = subparsers.add_parser(
        "index", help="list every experiment command; --check verifies EXPERIMENTS.md"
    )
    sub_index.add_argument(
        "--check",
        action="store_true",
        help="fail unless EXPERIMENTS.md references every command (and "
        "nothing that does not exist)",
    )
    sub_index.add_argument(
        "--file",
        default="EXPERIMENTS.md",
        metavar="PATH",
        help="experiment index document to verify (default: ./EXPERIMENTS.md)",
    )
    return parser


def print_command_index(stream=None) -> None:
    """Print every experiment subcommand with its registry description."""
    stream = stream or sys.stdout
    print("Experiment commands (equivalently `repro-experiments <command>`):", file=stream)
    for name, spec in REGISTRY.items():
        print(f"  python -m repro {name:<16} # {spec.description}", file=stream)


def check_experiments_md(path: str | Path, stream=None) -> int:
    """Verify the experiment index document against the study registry.

    Returns 0 when every registered study *and* every documented meta
    command (:data:`_DOCUMENTED_META`) is referenced as
    ``python -m repro <command>`` and every referenced command exists,
    1 otherwise.  Because the CLI help itself derives from the registry
    (:data:`REGISTRY`), passing this check means document, CLI and
    registry all agree.
    """
    stream = stream or sys.stdout
    path = Path(path)
    if not path.exists():
        print(f"[index] {path} does not exist", file=stream)
        return 1
    referenced = set(re.findall(r"python -m repro ([\w-]+)", path.read_text()))
    required = set(REGISTRY) | set(_DOCUMENTED_META)
    missing = sorted(required - referenced)
    unknown = sorted(referenced - set(REGISTRY) - _META_COMMANDS)
    for name in missing:
        print(f"[index] {path} does not reference `python -m repro {name}`", file=stream)
    for name in unknown:
        print(f"[index] {path} references unknown command {name!r}", file=stream)
    if missing or unknown:
        return 1
    print(f"[index] {path} covers all {len(required)} commands", file=stream)
    return 0


def _run_figure(
    name: str,
    args: argparse.Namespace,
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Stage, resolve and assemble one registered study (library helper)."""
    spec = get_spec(name)
    own_pipeline = pipeline is None
    pipe = pipeline if pipeline is not None else _pipeline_from_args(args)
    try:
        staged = _stage_specs([spec], args, pipe)
        results: list[tuple[str, list[FigureResult]]] = []
        _resolve_and_emit(staged, pipe, emitter=None, collect=results)
        return [r for _, batch in results for r in batch]
    finally:
        if own_pipeline:
            pipe.close()


def _write_report(
    args: argparse.Namespace,
    pipeline: SimulationPipeline,
    argv: Sequence[str] = (),
) -> None:
    import io as _io

    from ..io.report import write_report

    settings = _settings_from_args(args)
    collected: list[tuple[str, list[FigureResult]]] = []
    staged = _stage_specs([get_spec(n) for n in REGISTRY], args, pipeline)
    recorder = _recorder_from_args(args, argv, pipeline)
    on_event = _chain_events(
        recorder.on_event if recorder is not None else None,
        _progress_printer(staged, pipeline) if args.progress else None,
    )
    _resolve_and_emit(staged, pipeline, emitter=None, collect=collected,
                      on_event=on_event)
    _finish_recorder(recorder, pipeline)
    # Re-group per study (fig2 --all-platforms stages one study per
    # platform but the report keeps one section per figure).
    sections: list[tuple[str, list[FigureResult]]] = []
    by_name: dict[str, list[FigureResult]] = {}
    for name, results in collected:
        if name not in by_name:
            by_name[name] = []
            sections.append((name, by_name[name]))
        by_name[name].extend(results)
    buffer = _io.StringIO()
    print_input_tables(stream=buffer)
    sim = (
        f"{settings.fidelity.n_runs} runs x {settings.fidelity.n_patterns} "
        f"patterns, seed {settings.seed}, method {settings.method}"
        if settings.simulate
        else "disabled"
    )
    path = write_report(args.out, sections, sim, input_tables=buffer.getvalue())
    print(f"[report] {path}")


def _cmd_merge(args: argparse.Namespace) -> int:
    copied, skipped = merge_shard_dirs(args.shards, args.cache_dir)
    print(
        f"[merge] {copied} entries copied, {skipped} duplicates skipped "
        f"-> {args.cache_dir}"
    )
    return 0


def _format_age(seconds: float) -> str:
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        memo = AnalyticMemo(Path(args.cache_dir) / "analytic_memo.json")
        if getattr(args, "format", "text") == "json":
            # The same repro-metrics/1 document shape the run manifest
            # and trace snapshot use, so one loader reads all three.
            registry = MetricsRegistry()
            registry.gauge("cache_entries").set(stats["entries"])
            registry.gauge("cache_bytes").set(stats["total_bytes"])
            if stats["entries"]:
                registry.gauge("cache_oldest_mtime").set(stats["oldest_mtime"])
                registry.gauge("cache_newest_mtime").set(stats["newest_mtime"])
            registry.gauge("analytic_entries").set(len(memo))
            registry.counter("analytic", kind="served").inc(memo.served)
            registry.counter("analytic", kind="lookups").inc(memo.lookups)
            payload = registry.snapshot()
            payload["directory"] = str(stats["directory"])
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
            return 0
        mib = stats["total_bytes"] / (1024 * 1024)
        print(
            f"[cache] {stats['entries']} entries, {mib:.2f} MiB "
            f"({stats['directory']})"
        )
        if stats["entries"]:
            now = time.time()
            print(
                f"[cache] oldest {_format_age(now - stats['oldest_mtime'])}, "
                f"newest {_format_age(now - stats['newest_mtime'])}"
            )
        print(
            f"[analytic] {len(memo)} memo entries, "
            f"{memo.served}/{memo.lookups} served "
            f"(hit rate {memo.hit_rate:.2%})"
        )
        return 0
    if args.cache_command == "ls":
        now = time.time()
        rows = [
            (e.key[:16], e.size, _format_age(now - e.mtime)) for e in cache.entries()
        ]
        print(render_table(("key (prefix)", "bytes", "age"), rows))
        return 0
    if args.cache_command == "verify":
        ok, corrupt = cache.verify()
        for entry, reason in corrupt:
            print(f"[verify] corrupt {entry.key[:16]}: {reason}")
        if corrupt and args.delete:
            for entry, _ in corrupt:
                cache.invalidate(entry.key)
            print(
                f"[verify] {len(ok)} entries ok, {len(corrupt)} corrupt removed "
                f"({cache.directory})"
            )
            return 0
        print(
            f"[verify] {len(ok)} entries ok, {len(corrupt)} corrupt "
            f"({cache.directory})"
        )
        return 1 if corrupt else 0
    # prune
    if args.max_age_days is None and args.max_size_mb is None:
        print("[prune] nothing to do: pass --max-age-days and/or --max-size-mb")
        return 1
    # Deletion needs explicit consent (--yes, or an interactive
    # confirmation), because a cache directory may be shared across
    # scenario runs, shards and warm CI re-runs.  Only the preview and
    # prompt paths pay a preview scan; --yes prunes in one pass.
    if args.dry_run or not args.yes:
        removed, kept = cache.prune(
            max_age_days=args.max_age_days,
            max_size_mb=args.max_size_mb,
            dry_run=True,
        )
        mib = sum(e.size for e in removed) / (1024 * 1024)
        if args.dry_run:
            print(
                f"[prune] would remove {len(removed)} entries ({mib:.2f} MiB), "
                f"kept {len(kept)}"
            )
            return 0
        if sys.stdin.isatty():
            reply = input(
                f"[prune] remove {len(removed)} entries ({mib:.2f} MiB) "
                f"from {cache.directory}? [y/N] "
            )
            if reply.strip().lower() not in ("y", "yes"):
                print("[prune] aborted (nothing deleted)")
                return 1
        else:
            print(
                "[prune] refusing to delete without --yes (stdin is not a "
                "terminal); use --dry-run to preview"
            )
            return 1
    removed, kept = cache.prune(
        max_age_days=args.max_age_days,
        max_size_mb=args.max_size_mb,
    )
    mib = sum(e.size for e in removed) / (1024 * 1024)
    print(f"[prune] removed {len(removed)} entries ({mib:.2f} MiB), kept {len(kept)}")
    return 0


def _trace_target_path(target: str, runs_dir: str | None) -> Path:
    """Resolve a ``trace`` operand: file path, run directory, or run id."""
    path = Path(target)
    if path.is_file():
        return path
    if path.is_dir():
        candidate = path / TRACE_NAME
        if candidate.is_file():
            return candidate
    base = Path(runs_dir) if runs_dir is not None else Path(DEFAULT_RUNS_DIR)
    candidate = base / target / TRACE_NAME
    if candidate.is_file():
        return candidate
    raise SystemExit(
        f"no trace found for {target!r}: not a trace file, not a directory "
        f"containing {TRACE_NAME}, and {candidate} does not exist (was the "
        f"run started with --trace?)"
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..obs.trace import load_trace

    path = _trace_target_path(args.target, args.runs_dir)
    try:
        events = load_trace(path)
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    try:
        return _print_trace(args, events)
    except BrokenPipeError:
        # `trace export | head` is the intended usage; redirect stdout
        # at the fd so the interpreter's exit-time flush stays quiet.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _print_trace(args: argparse.Namespace, events: list[dict]) -> int:
    from ..obs.report import render_summary_text, render_timeline, summarize

    if args.trace_command == "summary":
        summary = summarize(events)
        if args.format == "json":
            json.dump(summary, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            for line in render_summary_text(summary):
                print(line)
        return 0
    if args.trace_command == "timeline":
        for line in render_timeline(events, limit=args.limit):
            print(line)
        return 0
    # export: events passed schema validation in load_trace, so the
    # output is a clean-room re-serialisation, not a byte copy.
    if args.format == "json":
        json.dump(events, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for event in events:
            print(json.dumps(event, sort_keys=True, separators=(",", ":")))
    return 0


def _scenario_manifest_rows(members) -> list[tuple]:
    rows = []
    for member in members:
        perturbs = ", ".join(p.label for p in member.variant.perturbations)
        rows.append(
            (
                member.name,
                member.platform,
                member.replicate,
                member.seed,
                perturbs if perturbs else "-",
            )
        )
    return rows


def _machine_readable_bands(results: Sequence[FigureResult], fmt: str) -> None:
    """``scenario aggregate --format json|csv``: band tables on stdout.

    ``json`` emits one document with every table's full payload (the
    shape of a ``scenario run`` member file, so the same loaders
    apply); ``csv`` emits tidy ``figure,row,column,value`` records —
    one per data cell — which spreadsheet/dataframe tooling ingests
    without per-table headers.
    """
    if fmt == "json":
        payload = [
            {
                "figure_id": result.figure_id,
                "title": result.title,
                "columns": list(result.columns),
                "rows": [list(row) for row in result.rows],
                "notes": list(result.notes),
            }
            for result in results
        ]
        json.dump(payload, sys.stdout, indent=2)
        print()
        return
    writer = csv.writer(sys.stdout)
    writer.writerow(("figure", "row", "column", "value"))
    for result in results:
        for row in result.rows:
            for j, column in enumerate(result.columns[1:], start=1):
                value = row[j]
                writer.writerow(
                    (result.figure_id, row[0], column,
                     "" if value is None else value)
                )


def _adaptive_policy_from_args(args: argparse.Namespace, sset):
    """Resolve adaptive mode: CLI flags over the file's ``[adaptive]``.

    Returns the effective
    :class:`~repro.experiments.scenarios.adaptive.AdaptivePolicy`, or
    ``None`` when adaptive mode is off (the byte-identical fixed path).
    """
    from .scenarios import AdaptivePolicy

    overrides = {
        key: value
        for key, value in (
            ("min_replicates", args.min_replicates),
            ("max_replicates", args.max_replicates),
            ("wave", args.wave),
            ("band_tol", args.band_tol),
            ("stable_waves", args.stable_waves),
        )
        if value is not None
    }
    if not (args.adaptive or sset.adaptive_enabled):
        if overrides:
            raise SystemExit(
                "--min-replicates/--max-replicates/--wave/--band-tol/"
                "--stable-waves need --adaptive (or an enabled [adaptive] "
                "table in the scenario file)"
            )
        return None
    base = sset.adaptive if sset.adaptive is not None else AdaptivePolicy()
    try:
        return dataclasses.replace(base, **overrides) if overrides else base
    except InvalidParameterError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_scenario(args: argparse.Namespace, argv: Sequence[str] = ()) -> int:
    from ..io.bands import BandedEmitter
    from .scenarios import (
        AdaptiveRun,
        aggregate_results,
        load_member_results,
        load_scenario_toml,
        write_member_results,
    )

    if args.scenario_command == "aggregate":
        try:
            manifest, families = load_member_results(args.results)
            results = aggregate_results(manifest, families)
        except InvalidParameterError as exc:
            raise SystemExit(str(exc)) from None
        if args.format != "text":
            _machine_readable_bands(results, args.format)
            return 0
        emitter = BandedEmitter(csv_dir=args.csv)
        emitter.emit_results(results)
        return 0

    try:
        sset = load_scenario_toml(args.file, seed=args.seed)
        members = sset.derive()
    except InvalidParameterError as exc:
        raise SystemExit(str(exc)) from None

    if args.scenario_command == "generate":
        print(
            render_table(
                ("member", "platform", "replicate", "seed", "perturbations"),
                _scenario_manifest_rows(members),
                title=f"Scenario set {sset.name!r} on study {sset.spec.name!r} "
                f"(master seed {sset.master_seed})",
            )
        )
        for line in sset.provenance()[1:]:
            print(f"  {line}")
        return 0

    # run | report: one shared pipeline, one event-driven round.
    if args.scenario_command == "run" and not args.dry_run and args.out is None:
        raise SystemExit("scenario run requires --out DIR (or use --dry-run)")
    policy = _adaptive_policy_from_args(args, sset)
    settings = _settings_from_args(args)
    started = time.perf_counter()
    with _pipeline_from_args(args, argv) as pipeline:
        run = None
        try:
            # Staging builds every member's perturbed models; a jitter
            # draw can leave the model's domain (e.g. an additive draw
            # pushing lambda_ind negative) — fail with the message, not
            # a traceback.
            if policy is not None:
                run = AdaptiveRun(
                    sset, policy, pipeline, settings, progress=args.progress
                )
                families = run.stage_initial()
                staged = run.staged_studies
            else:
                families = sset.stage(pipeline, settings, members=members)
                staged = [
                    stage for family in families for stage in family.staged
                ]
        except InvalidParameterError as exc:
            raise SystemExit(f"{args.file}: {exc}") from None
        if args.dry_run:
            # Adaptive dry runs preview wave 0 only: later waves are
            # decisions, not plans, until the data exists.
            _print_dry_run(pipeline)
            return 0
        recorder = _recorder_from_args(
            args, argv, pipeline,
            pre_validate=run.replay if run is not None else None,
        )
        if run is not None:
            run.attach_recorder(recorder)
        n_members = len(members) if run is None else run.n_members
        if args.progress:
            # The planned-work preview costs a plan key per point and a
            # disk probe per unique key, so compute it only when the
            # dedup-ratio line is actually wanted.
            totals: Counter = Counter()
            for entry in pipeline.pending_report().values():
                totals.update(entry)
            free = totals["cache_hits"] + totals["deduped"]
            ratio = free / totals["points"] if totals["points"] else 0.0
            print(
                f"[scenario] {n_members} members, {totals['points']} points: "
                f"{totals['cache_hits']} cache-served, {totals['deduped']} "
                f"deduped, {totals['to_compute']} to compute "
                f"(dedup ratio {ratio:.2%}); analytic "
                f"{totals['analytic_evaluated']} evaluated, "
                f"{totals['analytic_served']} memo-served",
                file=sys.stderr,
            )
        on_event = _chain_events(
            recorder.on_event if recorder is not None else None,
            _progress_printer(staged, pipeline) if args.progress else None,
            run.on_event if run is not None else None,
        )
        on_round = run.on_round if run is not None else None
        if args.scenario_command == "report":
            emitter = BandedEmitter(csv_dir=args.csv, trace=pipeline.trace)
            _resolve_and_emit(
                families, pipeline, emitter=emitter, on_event=on_event,
                on_round=on_round,
            )
            if run is not None:
                run.finalize()
        else:
            pipeline.resolve(on_event=on_event, on_round=on_round)
            if run is not None:
                run.finalize()
                path = write_member_results(
                    args.out, sset, families, band=run.band,
                    adaptive=run.journal,
                )
            else:
                path = write_member_results(args.out, sset, families)
            print(
                f"[scenario] wrote {run.n_members if run is not None else len(members)} "
                f"member result files -> {path.parent}",
                file=sys.stderr,
            )
        _finish_recorder(recorder, pipeline)
        if pipeline.cache is not None:
            hits, misses = pipeline.cache_stats
            print(
                f"[cache] {hits} hits, {misses} misses "
                f"({pipeline.cache.directory})",
                file=sys.stderr,
            )
    print(f"[done in {time.perf_counter() - started:.1f}s]", file=sys.stderr)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Replay an interrupted run's stored argv with ``--resume`` appended.

    Execution-only overrides (``--jobs``, ``--max-inflight``, …) are
    appended after the stored arguments, so argparse's last-wins rule
    applies them without touching the result-relevant configuration —
    which is exactly the set the manifest's config hash covers, so the
    resumed round still validates against the original run.
    """
    runs_dir = args.runs_dir if args.runs_dir is not None else DEFAULT_RUNS_DIR
    try:
        manifest = RunManifest.load(manifest_path(runs_dir, args.run_id))
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    # Injected faults are one-shot: replaying the crash that interrupted
    # the run would just crash it again, forever.
    replay: list[str] = []
    skip = 0
    for arg in manifest.argv:
        if skip:
            skip -= 1
            continue
        if arg == "--fault-plan":
            skip = 1
            continue
        if arg.startswith("--fault-plan="):
            continue
        replay.append(arg)
    if "--resume" not in replay:
        replay.append("--resume")
    if args.runs_dir is not None:
        replay += ["--runs-dir", args.runs_dir]
    if args.jobs is not None:
        replay += ["--jobs", str(args.jobs)]
    if args.max_inflight is not None:
        replay += ["--max-inflight", str(args.max_inflight)]
    if args.progress:
        replay.append("--progress")
    if args.fault_plan is not None:
        replay += ["--fault-plan", args.fault_plan]
    if args.trace and "--trace" not in replay:
        replay.append("--trace")
    if args.trace_file is not None:
        replay += ["--trace-file", args.trace_file]
    print(f"[resume] replaying: {' '.join(replay)}", file=sys.stderr)
    return main(replay)


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, argv)
    except SimulatedCrash as exc:
        # The fault harness's kill -9 analogue: die loudly with a
        # dedicated exit code so crash-resume tests and CI can tell an
        # injected crash from a real failure.
        print(f"[fault] {exc}", file=sys.stderr)
        return CRASH_EXIT_CODE


def _dispatch(args: argparse.Namespace, argv: list[str]) -> int:
    if args.command == "tables":
        print_input_tables()
        return 0
    if args.command == "index":
        print_command_index()
        if args.check:
            return check_experiments_md(args.file)
        return 0
    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "scenario":
        return _cmd_scenario(args, argv)

    if args.command == "sweep":
        if (args.study is None) == (args.spec is None):
            raise SystemExit("sweep needs exactly one of: a study name, or --spec FILE")
        try:
            specs = [find_spec(args.spec if args.spec is not None else args.study)]
        except InvalidParameterError as exc:
            raise SystemExit(str(exc)) from None
    elif args.command in ("all", "report"):
        specs = [get_spec(n) for n in REGISTRY]
    else:
        specs = [get_spec(args.command)]

    started = time.perf_counter()
    sharded = _shard_args(args) is not None
    if sharded and args.command == "report":
        # A shard resolves only its slice of the points; a report built
        # from it would silently render the foreign points as '-'.
        raise SystemExit(
            "report cannot run sharded: merge the shard caches first, then "
            "run `report --cache-dir <merged>`"
        )
    with _pipeline_from_args(args, argv) as pipeline:
        if args.dry_run:
            _stage_specs(specs, args, pipeline)
            _print_dry_run(pipeline)
            return 0
        if args.command == "report":
            _write_report(args, pipeline, argv)
        else:
            staged = _stage_specs(specs, args, pipeline)
            recorder = _recorder_from_args(args, argv, pipeline)
            emitter = (
                None
                if sharded
                else StreamingEmitter(csv_dir=args.csv, trace=pipeline.trace)
            )
            on_event = _chain_events(
                recorder.on_event if recorder is not None else None,
                _progress_printer(staged, pipeline) if args.progress else None,
            )
            _resolve_and_emit(staged, pipeline, emitter=emitter, on_event=on_event)
            _finish_recorder(recorder, pipeline)
        if sharded:
            index, count = _shard_args(args)
            print(
                f"[shard {index}/{count}] {pipeline.points_computed} jobs "
                f"computed, {pipeline.points_skipped} points skipped "
                f"-> {args.shard_dir}"
            )
        if pipeline.cache is not None:
            hits, misses = pipeline.cache_stats
            print(f"[cache] {hits} hits, {misses} misses ({pipeline.cache.directory})")
    print(f"[done in {time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
