"""Extension experiment: weak vs. strong scaling under failures.

The paper's future-work list opens with "weak vs strong scalability".
This experiment quantifies both on a failure-prone platform:

* **Strong scaling** — fixed total work ``W``: the expected makespan
  :math:`H(T^*_P, P)\\,W` first shrinks with ``P`` (parallelism), then
  grows (failures); the minimum is the paper's ``P*``.
* **Weak scaling** — Gustafson-style work ``W(P) = W_1(\\alpha + (1-\\alpha)P)``
  with a Gustafson speedup profile: error-free, the makespan is flat in
  ``P`` (that is the point of weak scaling); with failures it inflates
  as :math:`1 + 2\\sqrt{(\\lambda^f_P/2 + \\lambda^s_P)(V_P + C_P)}`,
  which *grows* with the machine.  The experiment reports the inflation
  factor per machine size and the largest machine that keeps it under a
  budget (10% by default) — a hard failure-imposed ceiling on weak
  scaling that has no error-free counterpart.
"""

from __future__ import annotations

import numpy as np

from ..core.makespan import weak_scaled_work
from ..core.pattern import PatternModel
from ..core.speedup import GustafsonSpeedup
from ..optimize.period import optimize_period_batch
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from ..platforms.scenarios import build_model, scenario_costs
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .spec import AxisSpec, StudyContext, StudySpec, run_study

__all__ = ["run", "default_machine_grid", "SPEC"]


def default_machine_grid() -> np.ndarray:
    """Machine sizes 2^7 .. 2^17 (weak scaling reaches further than strong)."""
    return 2.0 ** np.arange(7, 18)


def _declare(ctx: StudyContext) -> list[FigureResult]:
    """Fully analytic: strong-scaling overhead + weak-scaling inflation."""
    Ps = np.asarray(ctx.grid, dtype=float)
    alpha = ctx.fixed["alpha"]
    downtime = ctx.fixed["downtime"]
    inflation_budget = ctx.options.get("inflation_budget", 1.10)

    results: list[FigureResult] = []
    for scenario_id in ctx.scenarios:
        strong_model = build_model(
            ctx.platform, scenario_id, alpha=alpha, downtime=downtime
        )
        weak_model = PatternModel(
            errors=strong_model.errors,
            costs=scenario_costs(ctx.platform, scenario_id, downtime),
            speedup=GustafsonSpeedup(alpha),
        )

        # Strong scaling: expected time per unit of (fixed) work.
        _, H_strong = optimize_period_batch(strong_model, Ps)
        strong_best = int(np.argmin(H_strong))

        # Weak scaling: per-P work W(P), error-free flat makespan; the
        # failure inflation is H_weak(T*_P, P) * W(P) / (error-free).
        _, H_weak = optimize_period_batch(weak_model, Ps)
        W = np.array([weak_scaled_work(1.0, float(P), alpha) for P in Ps])
        error_free = np.asarray(weak_model.speedup.overhead(Ps)) * W  # == 1.0
        inflation = H_weak * W / error_free

        within = Ps[inflation <= inflation_budget]
        ceiling = float(within.max()) if within.size else float("nan")

        rows = tuple(
            (
                float(P),
                float(H_strong[i]),
                float(W[i]),
                float(inflation[i]),
                bool(inflation[i] <= inflation_budget),
            )
            for i, P in enumerate(Ps)
        )
        results.append(
            FigureResult(
                figure_id=f"ext_weakscaling_sc{scenario_id}_{ctx.platform.lower()}",
                title=(
                    f"Extension [{ctx.platform} sc{scenario_id}]: strong-scaling "
                    "overhead and weak-scaling failure inflation vs machine size"
                ),
                columns=(
                    "P",
                    "strong_overhead",
                    "weak_work_W(P)",
                    "weak_inflation",
                    f"within_{inflation_budget:.0%}_budget",
                ),
                rows=rows,
                notes=(
                    f"strong-scaling optimum at P = {Ps[strong_best]:.0f} "
                    f"(overhead {H_strong[strong_best]:.4f})",
                    f"weak-scaling ceiling at {inflation_budget:.0%} inflation: "
                    f"P <= {ceiling:.0f}",
                    "error-free weak scaling is flat (inflation 1.0 at any P): "
                    "the ceiling is entirely failure-imposed",
                ),
            )
        )
    return results


SPEC = StudySpec(
    name="ext-weakscaling",
    description="extension: weak vs strong scaling under failures",
    scenarios=(1, 3),
    platforms=("Hera",),
    axis=AxisSpec(name="machines", header="P", grid=default_machine_grid),
    fixed={"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME},
    declare=_declare,
    assemble=lambda ctx, state: state,
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3),
    machines: np.ndarray | None = None,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    inflation_budget: float = 1.10,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Strong-scaling makespan and weak-scaling inflation per machine size.

    ``settings`` and ``pipeline`` are accepted for harness uniformity
    (analytic study).
    """
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        grid=None if machines is None else np.asarray(machines, float),
        fixed={"alpha": alpha, "downtime": downtime},
        options={"inflation_budget": inflation_budget},
    )
