"""The study registry: every experiment of the evaluation, as data.

One :class:`~repro.experiments.spec.StudySpec` per figure/extension,
collected from the figure modules.  The CLI runner derives its
subcommands, help text and the ``index --check`` drift guard from this
table, so a figure exists exactly once: here.  User-defined studies
(TOML files) resolve through :func:`find_spec` as well, which is what
``repro-experiments sweep`` calls.
"""

from __future__ import annotations

from pathlib import Path

from ..exceptions import InvalidParameterError
from . import (
    ext_nodes,
    ext_segments,
    ext_weakscaling,
    ext_weibull,
    fig2_scenarios,
    fig3_processors,
    fig4_alpha,
    fig5_error_rate,
    fig6_alpha_zero,
    fig7_downtime,
)
from .spec import StudySpec, load_toml_spec

__all__ = ["REGISTRY", "get_spec", "find_spec", "study_names"]

_MODULES = (
    fig2_scenarios,
    fig3_processors,
    fig4_alpha,
    fig5_error_rate,
    fig6_alpha_zero,
    fig7_downtime,
    ext_segments,
    ext_weibull,
    ext_weakscaling,
    ext_nodes,
)

#: Registry order is presentation order: the ``all`` command and the
#: report emit studies in this sequence.
REGISTRY: dict[str, StudySpec] = {m.SPEC.name: m.SPEC for m in _MODULES}

#: The historical ``run(platform=..., settings=..., pipeline=...)``
#: entry point per study — kept for the public module API; the CLI
#: goes through the spec engine directly.
RUNNERS = {m.SPEC.name: m.run for m in _MODULES}


def study_names() -> tuple[str, ...]:
    return tuple(REGISTRY)


def get_spec(name: str) -> StudySpec:
    """Look up a registered study by CLI name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown study {name!r}; registered: {', '.join(REGISTRY)}"
        ) from None


def find_spec(name_or_path: str) -> StudySpec:
    """Resolve a registry name or a ``.toml`` study file to a spec."""
    if name_or_path in REGISTRY:
        return REGISTRY[name_or_path]
    path = Path(name_or_path)
    if path.suffix.lower() == ".toml" or path.exists():
        return load_toml_spec(path)
    raise InvalidParameterError(
        f"{name_or_path!r} is neither a registered study "
        f"({', '.join(REGISTRY)}) nor a TOML spec file"
    )
