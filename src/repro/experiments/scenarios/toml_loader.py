"""Scenario TOML files: declarative transform chains over a base study.

The file format (see ``examples/scenario_jitter.toml``)::

    [scenario]
    name = "fig5_jitter"
    study = "fig5"            # registry name or a study TOML path
    platform = "Hera"         # optional (default: the study's first)
    seed = 20160913           # optional master seed
    replicates = 3            # shorthand for one resample transform

    [[transform]]
    kind = "jitter"           # jitter | resample | platforms
    axis = "lambda_ind"
    mode = "multiplicative"   # default
    distribution = "uniform"  # uniform | lognormal | normal
    width = 0.05
    count = 2
    include_base = true       # default

    [aggregate]               # optional
    quantiles = [0.05, 0.95]
    flip_tolerance = 0.05
    consistency = false       # per-row CARVE consistency score column

    [adaptive]                # optional: adaptive replicate scheduling
    enabled = true            # default when the table is present
    min_replicates = 3        # wave-0 batch
    max_replicates = 12       # hard replicate ceiling
    wave = 2                  # replicates per follow-up wave
    band_tol = 0.05           # relative band-width delta threshold
    stable_waves = 2          # consecutive quiet waves to converge

Every validation failure raises
:class:`~repro.exceptions.InvalidParameterError` with the file path and
an actionable message — the loader is the user-facing surface of the
scenario lab, so unknown axis names, malformed distributions and
conflicting replicate counts must fail loudly, not mid-run.
"""

from __future__ import annotations

from pathlib import Path

from ...exceptions import InvalidParameterError
from ...platforms.catalog import PLATFORM_NAMES
from ...sim.rng import DEFAULT_SEED
from ..registry import find_spec
from .adaptive import AdaptivePolicy
from .aggregate import BandSpec
from .scenario_set import ScenarioSet
from .transforms import Jitter, PlatformProduct, Resample

__all__ = ["load_scenario_toml", "TRANSFORM_KINDS"]

TRANSFORM_KINDS = ("jitter", "resample", "platforms")

_JITTER_KEYS = {
    "kind", "axis", "mode", "distribution", "width", "count", "include_base",
}


def _fail(path: Path, message: str) -> InvalidParameterError:
    return InvalidParameterError(f"{path}: {message}")


def _jitter_from_table(path: Path, i: int, table: dict) -> Jitter:
    axis = table.get("axis")
    if axis is None:
        raise _fail(path, f"transform {i} (jitter) needs an 'axis'")
    if "width" not in table:
        raise _fail(path, f"transform {i} (jitter) needs a 'width'")
    unknown = set(table) - _JITTER_KEYS
    if unknown:
        raise _fail(
            path,
            f"transform {i} (jitter) has unknown keys: "
            f"{', '.join(sorted(unknown))}",
        )
    try:
        return Jitter(
            axis=str(axis),
            width=float(table["width"]),
            count=int(table.get("count", 1)),
            mode=str(table.get("mode", "multiplicative")),
            distribution=str(table.get("distribution", "uniform")),
            include_base=bool(table.get("include_base", True)),
        )
    except (TypeError, ValueError) as exc:
        raise _fail(path, f"transform {i} (jitter): {exc}") from exc
    except InvalidParameterError as exc:
        raise _fail(path, f"transform {i}: {exc}") from None


_ADAPTIVE_KEYS = {
    "enabled", "min_replicates", "max_replicates", "wave", "band_tol",
    "stable_waves",
}

_ADAPTIVE_CONVERSIONS = (
    ("min_replicates", int),
    ("max_replicates", int),
    ("wave", int),
    ("band_tol", float),
    ("stable_waves", int),
)


def _adaptive_from_table(path: Path, payload: dict):
    """Parse the optional ``[adaptive]`` table into (policy, enabled).

    The table enables adaptive mode unless it says ``enabled = false``
    (then it only supplies defaults for the ``--adaptive`` CLI flag).
    """
    table = payload.get("adaptive")
    if table is None:
        return None, False
    if not isinstance(table, dict):
        raise _fail(path, "[adaptive] must be a table")
    unknown = set(table) - _ADAPTIVE_KEYS
    if unknown:
        raise _fail(
            path,
            f"[adaptive] has unknown keys: {', '.join(sorted(unknown))}",
        )
    enabled = table.get("enabled", True)
    if not isinstance(enabled, bool):
        raise _fail(path, "[adaptive] enabled must be a boolean")
    kwargs = {}
    try:
        for key, convert in _ADAPTIVE_CONVERSIONS:
            if key in table:
                kwargs[key] = convert(table[key])
        policy = AdaptivePolicy(**kwargs)
    except (TypeError, ValueError) as exc:
        raise _fail(path, f"[adaptive]: {exc}") from exc
    except InvalidParameterError as exc:
        raise _fail(path, f"[adaptive]: {exc}") from None
    return policy, enabled


def load_scenario_toml(
    path: str | Path, seed: int | None = None
) -> ScenarioSet:
    """Build a :class:`ScenarioSet` from a scenario TOML file.

    ``seed`` overrides the file's master seed (the CLI's ``--seed``).
    """
    import tomllib

    path = Path(path)
    try:
        payload = tomllib.loads(path.read_text())
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise InvalidParameterError(
            f"cannot load scenario file {path}: {exc}"
        ) from exc

    scenario = payload.get("scenario")
    if scenario is None:
        raise _fail(path, "missing [scenario] table")
    study = scenario.get("study")
    if not study:
        raise _fail(path, "[scenario] needs a 'study' (registry name or TOML path)")
    try:
        spec = find_spec(str(study))
    except InvalidParameterError as exc:
        raise _fail(path, str(exc)) from None

    name = str(scenario.get("name", path.stem))
    platform = scenario.get("platform")
    if platform is not None and platform not in PLATFORM_NAMES:
        raise _fail(
            path,
            f"unknown platform {platform!r} "
            f"(Table II has {', '.join(PLATFORM_NAMES)})",
        )
    master_seed = scenario.get("seed", DEFAULT_SEED)
    if seed is not None:
        master_seed = seed
    try:
        master_seed = int(master_seed)
    except (TypeError, ValueError) as exc:
        raise _fail(path, f"[scenario] seed: {exc}") from exc

    transforms = []
    resample_counts = []
    shorthand_replicates = None
    if "replicates" in scenario:
        try:
            shorthand_replicates = int(scenario["replicates"])
        except (TypeError, ValueError) as exc:
            raise _fail(path, f"[scenario] replicates: {exc}") from exc
        resample_counts.append(shorthand_replicates)
    tables = payload.get("transform", [])
    if not isinstance(tables, list):
        raise _fail(
            path,
            "transform must be an array of tables — write [[transform]], "
            "not [transform]",
        )
    for i, table in enumerate(tables):
        kind = table.get("kind")
        if kind not in TRANSFORM_KINDS:
            raise _fail(
                path,
                f"transform {i} has unknown kind {kind!r} "
                f"(one of {', '.join(TRANSFORM_KINDS)})",
            )
        if kind == "jitter":
            transforms.append(_jitter_from_table(path, i, table))
        elif kind == "resample":
            if "replicates" not in table:
                raise _fail(path, f"transform {i} (resample) needs 'replicates'")
            try:
                count = int(table["replicates"])
                resample_counts.append(count)
                # In place, honoring the file's declared chain order.
                transforms.append(Resample(count))
            except (TypeError, ValueError) as exc:
                raise _fail(path, f"transform {i} (resample): {exc}") from exc
            except InvalidParameterError as exc:
                raise _fail(path, f"transform {i}: {exc}") from None
        else:  # platforms
            platforms = table.get("platforms")
            if not platforms:
                raise _fail(
                    path, f"transform {i} (platforms) needs a 'platforms' list"
                )
            try:
                transforms.append(PlatformProduct(tuple(str(p) for p in platforms)))
            except InvalidParameterError as exc:
                raise _fail(path, f"transform {i}: {exc}") from None
    if len(resample_counts) > 1:
        raise _fail(
            path,
            f"conflicting replicate counts {resample_counts}: give either "
            "[scenario] replicates or one resample transform, not both",
        )
    if shorthand_replicates is not None:
        try:
            transforms.append(Resample(shorthand_replicates))
        except InvalidParameterError as exc:
            raise _fail(path, str(exc)) from None
    if not transforms:
        raise _fail(
            path,
            "no transforms: add [[transform]] tables and/or [scenario] replicates",
        )

    agg = payload.get("aggregate", {})
    quantiles = agg.get("quantiles", (0.05, 0.95))
    if not isinstance(quantiles, (list, tuple)) or len(quantiles) != 2:
        raise _fail(path, "[aggregate] quantiles must be a [lo, hi] pair")
    consistency = agg.get("consistency", False)
    if not isinstance(consistency, bool):
        raise _fail(path, "[aggregate] consistency must be a boolean")
    try:
        band = BandSpec(
            q_lo=float(quantiles[0]),
            q_hi=float(quantiles[1]),
            flip_tolerance=float(agg.get("flip_tolerance", 0.05)),
            consistency=consistency,
        )
    except (TypeError, ValueError) as exc:
        raise _fail(path, f"[aggregate]: {exc}") from exc
    except InvalidParameterError as exc:
        raise _fail(path, f"[aggregate]: {exc}") from None

    adaptive_policy, adaptive_enabled = _adaptive_from_table(path, payload)

    try:
        sset = ScenarioSet(
            name=name,
            spec=spec,
            transforms=transforms,
            master_seed=int(master_seed),
            platform=platform,
            band=band,
            adaptive=adaptive_policy,
        )
    except InvalidParameterError as exc:
        raise _fail(path, str(exc)) from None
    sset.adaptive_enabled = adaptive_enabled
    return sset
