"""ScenarioSet: derive, stage and aggregate a family of study variants.

This is the runner layer of the scenario lab.  A :class:`ScenarioSet`
binds a base :class:`~repro.experiments.spec.StudySpec` to a
:mod:`transform <repro.experiments.scenarios.transforms>` chain and a
master seed; :meth:`ScenarioSet.derive` resolves the symbolic variants
against the spec and the platform catalog into concrete
:class:`ScenarioMember` studies (scaled sweep grids, overridden fixed
parameters, replicate seeds), and :meth:`ScenarioSet.stage` declares
every member onto **one** shared
:class:`~repro.experiments.pipeline.SimulationPipeline` — so the whole
family resolves in a single event-driven round, its chunk jobs share
the global in-flight window, and members whose plan keys coincide
(replicate 0 of an identity variant is key-identical to a plain run of
the base study) are deduplicated by the planner and served from the
result cache instead of recomputed.

Aggregation rides the same completion events: a
:class:`ScenarioFamily` exposes the ``ready()``/``finish()`` contract
of :class:`~repro.experiments.spec.StagedStudy`, so the banded tables
of a family stream out the moment its *last* member resolves, while
other families are still simulating.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ...exceptions import InvalidParameterError
from ...platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME, get_platform
from ...sim.rng import DEFAULT_SEED
from ..common import FigureResult, SimSettings
from ..pipeline import SimulationPipeline
from ..spec import StagedStudy, StudySpec, stage_study
from .aggregate import BandSpec, FamilyAccumulator, adaptive_notes, band_tables
from .transforms import GridTransform, Perturbation, Variant, derive_variants

__all__ = [
    "ScenarioMember",
    "ScenarioFamily",
    "ScenarioSet",
    "write_member_results",
    "load_member_results",
    "aggregate_results",
]


@dataclass(frozen=True)
class ScenarioMember:
    """One concrete derived study of a scenario set.

    ``grid``/``fixed`` are the resolved :func:`stage_study` overrides;
    ``seed`` is the member's master RNG seed (the set's master seed for
    replicate 0, a derived seed otherwise).  ``name`` labels the
    member's completion events — one group per member, so progress and
    dry-run attribution tell replicates apart.
    """

    name: str
    set_name: str
    variant: Variant
    platform: str
    seed: int
    grid: tuple[float, ...] | None
    fixed: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.variant.label

    @property
    def replicate(self) -> int:
        return self.variant.replicate


def _resolve_member(
    sset: "ScenarioSet", variant: Variant, platform: str
) -> ScenarioMember:
    """Resolve a symbolic variant against the spec and the catalog."""
    spec = sset.spec
    grid = (
        tuple(float(x) for x in spec.axis.default_grid())
        if spec.axis is not None
        else None
    )
    fixed = dict(spec.fixed)
    entry = get_platform(platform)
    for p in variant.perturbations:
        if spec.axis is not None and p.axis == spec.axis.model_kwarg:
            grid = tuple(p.apply(x) for x in grid)
            continue
        if p.axis in ("alpha", "downtime"):
            default = DEFAULT_ALPHA if p.axis == "alpha" else DEFAULT_DOWNTIME
            base = fixed.get(p.axis, default)
        elif p.axis == "lambda_ind":
            base = fixed.get(p.axis, entry.lambda_ind)
        else:  # checkpoint_cost / verification_cost (validated upstream)
            base = fixed.get(p.axis, getattr(entry, p.axis))
        fixed[p.axis] = p.apply(base)
    return ScenarioMember(
        name=f"{sset.name}:{platform}:{variant.label}",
        set_name=sset.name,
        variant=variant,
        platform=platform,
        seed=sset.master_seed if variant.seed is None else variant.seed,
        grid=grid,
        fixed=fixed,
    )


@dataclass
class ScenarioFamily:
    """All staged members of one platform, plus their band reduction.

    Implements the :class:`~repro.experiments.spec.StagedStudy`
    emission contract (``ready()``/``finish()``), so a
    :class:`~repro.io.stream.StreamingEmitter` (or the banded subclass)
    streams a family's tables the moment its last member resolves.
    """

    label: str
    members: list[ScenarioMember]
    staged: list[StagedStudy]
    band: BandSpec
    panel_columns: tuple[tuple[str, ...], ...] | None
    provenance: tuple[str, ...] = ()

    def ready(self) -> bool:
        return all(stage.ready() for stage in self.staged)

    def member_results(self) -> list[list[FigureResult]]:
        """Every member's assembled tables, in derive order."""
        return [stage.finish() for stage in self.staged]

    def finish(self) -> list[FigureResult]:
        """The family's banded tables (requires the pipeline resolved)."""
        return band_tables(
            self.member_results(),
            band=self.band,
            panel_columns=self.panel_columns,
            provenance=self.provenance,
        )


class ScenarioSet:
    """A base study, a transform chain and a master seed.

    Parameters
    ----------
    name:
        The scenario set's label (output prefix, group-label prefix).
    spec:
        The base study.  Bespoke ``declare``-hook studies (the
        extension experiments) are refused: their staged state is
        opaque to the grid/fixed override machinery, so a perturbation
        would be silently ignored.
    transforms:
        The :class:`~repro.experiments.scenarios.transforms.GridTransform`
        chain; the derived family is its full cross product.
    master_seed:
        Seed of both the replicate-seed derivation and every jitter
        draw stream; the whole family is a pure function of it.
    platform:
        Base platform (default: the spec's first); a
        :class:`~repro.experiments.scenarios.transforms.PlatformProduct`
        transform overrides it per variant.
    band:
        Quantile pair and flip tolerance of the aggregation layer.
    adaptive:
        Optional
        :class:`~repro.experiments.scenarios.adaptive.AdaptivePolicy`
        declared by the scenario file's ``[adaptive]`` table.  The set
        itself stays fixed-path; the policy is picked up by the CLI
        (``--adaptive`` or ``adaptive_enabled``) to drive an
        :class:`~repro.experiments.scenarios.adaptive.AdaptiveRun`.
    """

    def __init__(
        self,
        name: str,
        spec: StudySpec,
        transforms: Sequence[GridTransform],
        master_seed: int = DEFAULT_SEED,
        platform: str | None = None,
        band: BandSpec = BandSpec(),
        adaptive=None,
    ):
        if spec.declare is not None:
            raise InvalidParameterError(
                f"study {spec.name!r} uses a bespoke declare hook; scenario "
                "transforms only apply to grid/fixed-parameter studies"
            )
        self.name = name
        self.spec = spec
        self.transforms = tuple(transforms)
        self.master_seed = int(master_seed)
        self.platform = platform if platform is not None else spec.platforms[0]
        get_platform(self.platform)  # validate early
        self.band = band
        self.adaptive = adaptive
        #: Whether the scenario file asks for adaptive mode by default
        #: (``[adaptive] enabled``); the CLI flag overrides.
        self.adaptive_enabled = adaptive is not None

    # -- derivation --------------------------------------------------------

    def derive(self) -> list[ScenarioMember]:
        """The concrete member studies, least-perturbed first."""
        members = []
        for variant in derive_variants(self.transforms, self.master_seed):
            platform = (
                variant.platform if variant.platform is not None else self.platform
            )
            members.append(_resolve_member(self, variant, platform))
        return members

    def provenance(self) -> tuple[str, ...]:
        """Notes recording how the family was derived (band tables)."""
        lines = [
            f"scenario set {self.name!r} on study {self.spec.name!r}, "
            f"master seed {self.master_seed}"
        ]
        lines.extend(f"transform: {t.describe()}" for t in self.transforms)
        return tuple(lines)

    # -- staging and execution ---------------------------------------------

    def stage(
        self,
        pipeline: SimulationPipeline,
        settings: SimSettings = SimSettings(),
        members: Sequence[ScenarioMember] | None = None,
    ) -> list[ScenarioFamily]:
        """Declare every member onto ``pipeline``, grouped per platform.

        ``settings.seed`` is ignored in favour of each member's own
        seed (the set's master seed governs the whole family).
        """
        members = list(members) if members is not None else self.derive()
        panel_columns = (
            tuple(panel.columns for panel in self.spec.panels)
            if self.spec.panels
            else None
        )
        families: dict[str, ScenarioFamily] = {}
        for member in members:
            staged = stage_study(
                self.spec,
                platform=member.platform,
                settings=dataclasses.replace(settings, seed=member.seed),
                pipeline=pipeline,
                grid=member.grid,
                fixed=member.fixed,
                group=member.name,
            )
            family = families.get(member.platform)
            if family is None:
                family = ScenarioFamily(
                    label=f"{self.name}[{member.platform}]",
                    members=[],
                    staged=[],
                    band=self.band,
                    panel_columns=panel_columns,
                    provenance=self.provenance(),
                )
                families[member.platform] = family
            family.members.append(member)
            family.staged.append(staged)
        return list(families.values())

    def run(
        self,
        settings: SimSettings = SimSettings(),
        pipeline: SimulationPipeline | None = None,
    ) -> list[ScenarioFamily]:
        """Stage, resolve and return the families (library entry point)."""
        own = pipeline is None
        pipe = pipeline if pipeline is not None else SimulationPipeline(
            jobs=settings.workers if settings.workers else 1
        )
        try:
            families = self.stage(pipe, settings)
            pipe.resolve()
            return families
        finally:
            if own:
                pipe.close()


# -- on-disk member results (scenario run -> scenario aggregate) -----------


def _figure_payload(result: FigureResult) -> dict:
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }


def _figure_from_payload(payload: dict) -> FigureResult:
    return FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        columns=tuple(payload["columns"]),
        rows=tuple(tuple(row) for row in payload["rows"]),
        notes=tuple(payload["notes"]),
    )


def write_member_results(
    directory: str | Path,
    sset: ScenarioSet,
    families: Sequence,
    band: BandSpec | None = None,
    adaptive: dict | None = None,
) -> Path:
    """Persist every member's tables (JSON floats round-trip exactly).

    Layout: one ``manifest.json`` naming the set, band parameters and
    members, plus one ``member_<i>.json`` per member — the input of
    ``repro-experiments scenario aggregate``.

    ``families`` may also be
    :class:`~repro.experiments.scenarios.adaptive.AdaptiveFamily`
    objects: partial members then record the grid ``rows`` they cover,
    ``band`` overrides the set's band (the adaptive run forces the
    consistency column on), and ``adaptive`` stores the run's journal
    so ``scenario aggregate`` reproduces the adaptive report
    byte-identically.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    band = band if band is not None else sset.band
    band_payload = {
        "q_lo": band.q_lo,
        "q_hi": band.q_hi,
        "flip_tolerance": band.flip_tolerance,
    }
    if band.consistency:
        band_payload["consistency"] = True
    manifest: dict = {
        "scenario_set": sset.name,
        "study": sset.spec.name,
        "master_seed": sset.master_seed,
        "band": band_payload,
        "panel_columns": [list(panel.columns) for panel in sset.spec.panels],
        "provenance": list(sset.provenance()),
        "families": [],
    }
    if adaptive:
        manifest["adaptive"] = adaptive
    index = 0
    for family in families:
        entry = {"label": family.label, "members": []}
        rows_list = (
            family.member_rows()
            if hasattr(family, "member_rows")
            else [None] * len(family.members)
        )
        for member, rows, tables in zip(
            family.members, rows_list, family.member_results()
        ):
            name = f"member_{index:03d}.json"
            payload = {
                "name": member.name,
                "platform": member.platform,
                "label": member.label,
                "replicate": member.replicate,
                "seed": member.seed,
                "figures": [_figure_payload(t) for t in tables],
            }
            if rows is not None:
                payload["rows"] = list(rows)
            (directory / name).write_text(json.dumps(payload, indent=2) + "\n")
            entry["members"].append({"name": member.name, "file": name})
            index += 1
        manifest["families"].append(entry)
    path = directory / "manifest.json"
    path.write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def load_member_results(directory: str | Path) -> tuple[dict, list[dict]]:
    """Read a ``scenario run --out`` directory back into memory."""
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise InvalidParameterError(
            f"{directory} is not a scenario result directory (no manifest.json)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
        families = []
        for entry in manifest["families"]:
            members = []
            for ref in entry["members"]:
                member_path = directory / ref["file"]
                try:
                    payload = json.loads(member_path.read_text())
                    payload["figures"] = [
                        _figure_from_payload(f) for f in payload["figures"]
                    ]
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    raise InvalidParameterError(
                        f"cannot read scenario member {member_path}: {exc!r} "
                        "(re-run `scenario run` to regenerate the directory)"
                    ) from exc
                members.append(payload)
            families.append({"label": entry["label"], "members": members})
    except InvalidParameterError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise InvalidParameterError(
            f"malformed scenario manifest {manifest_path}: {exc!r}"
        ) from exc
    return manifest, families


def aggregate_results(manifest: dict, families: list[dict]) -> list[FigureResult]:
    """Band every family of a loaded result directory.

    Fixed-path directories reduce through :func:`band_tables`; adaptive
    directories (an ``adaptive`` journal in the manifest, per-member
    ``rows`` coverage) replay through the
    :class:`~repro.experiments.scenarios.aggregate.FamilyAccumulator`,
    reproducing the live adaptive report byte-identically.
    """
    band_payload = manifest.get("band", {})
    try:
        band = BandSpec(**band_payload)
    except TypeError as exc:
        raise InvalidParameterError(
            f"malformed band parameters {band_payload!r} in the scenario "
            f"manifest: {exc}"
        ) from exc
    panel_columns = tuple(
        tuple(cols) for cols in manifest.get("panel_columns", ())
    ) or None
    adaptive = manifest.get("adaptive")
    provenance = tuple(manifest.get("provenance", ()))
    out = []
    for family in families:
        if adaptive:
            try:
                journal = adaptive["families"][family["label"]]
                notes = adaptive_notes(adaptive["policy"], journal["summary"])
            except (KeyError, TypeError) as exc:
                raise InvalidParameterError(
                    f"malformed adaptive journal for family "
                    f"{family['label']!r} in the scenario manifest: {exc!r}"
                ) from exc
            accum = FamilyAccumulator(
                band=band, panel_columns=panel_columns, provenance=provenance
            )
            for member in family["members"]:
                rows = member.get("rows")
                accum.add_member(
                    member["figures"],
                    rows=tuple(rows) if rows is not None else None,
                )
            out.extend(accum.finish(extra_notes=notes))
        else:
            out.extend(
                band_tables(
                    [m["figures"] for m in family["members"]],
                    band=band,
                    panel_columns=panel_columns,
                    provenance=provenance,
                )
            )
    return out
