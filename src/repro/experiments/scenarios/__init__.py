"""Scenario lab: resampled & perturbed study-grid families.

The registry's studies are data; this package treats them as raw
material.  A :class:`~repro.experiments.scenarios.transforms.GridTransform`
chain (axis jitter, seed resampling, platform cross products) derives
whole families of study variants from one
:class:`~repro.experiments.spec.StudySpec`; a
:class:`~repro.experiments.scenarios.scenario_set.ScenarioSet` stages
the family onto the shared event-driven pipeline (one global in-flight
window, planner-level dedup, result-cache reuse across replicates);
and the aggregation layer reduces the replicate cloud into per-point
quantile bands with optimum-flip robustness flags
(:mod:`~repro.experiments.scenarios.aggregate`).  Scenario files are
TOML (:func:`~repro.experiments.scenarios.toml_loader.load_scenario_toml`,
see ``examples/scenario_jitter.toml``), driven by
``repro-experiments scenario generate|run|aggregate|report``.
"""

from .adaptive import AdaptiveFamily, AdaptivePolicy, AdaptiveRun
from .aggregate import (
    OPTIMUM_COLUMNS,
    BandSpec,
    FamilyAccumulator,
    adaptive_notes,
    band_tables,
    relative_width,
)
from .scenario_set import (
    ScenarioFamily,
    ScenarioMember,
    ScenarioSet,
    aggregate_results,
    load_member_results,
    write_member_results,
)
from .toml_loader import load_scenario_toml
from .transforms import (
    DISTRIBUTIONS,
    PERTURB_AXES,
    PERTURB_MODES,
    GridTransform,
    Jitter,
    Perturbation,
    PlatformProduct,
    Resample,
    Variant,
    derive_variants,
    replicate_seed,
    split_replicates,
)

__all__ = [
    "AdaptiveFamily",
    "AdaptivePolicy",
    "AdaptiveRun",
    "BandSpec",
    "FamilyAccumulator",
    "OPTIMUM_COLUMNS",
    "adaptive_notes",
    "band_tables",
    "relative_width",
    "ScenarioSet",
    "ScenarioFamily",
    "ScenarioMember",
    "write_member_results",
    "load_member_results",
    "aggregate_results",
    "load_scenario_toml",
    "GridTransform",
    "Jitter",
    "Resample",
    "PlatformProduct",
    "Perturbation",
    "Variant",
    "derive_variants",
    "replicate_seed",
    "split_replicates",
    "PERTURB_AXES",
    "PERTURB_MODES",
    "DISTRIBUTIONS",
]
