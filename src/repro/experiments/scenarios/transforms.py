"""The GridTransform algebra: deriving study families from one spec.

The registry's :class:`~repro.experiments.spec.StudySpec` entries are
*data*, so they can be transformed like data.  A transform maps a list
of :class:`Variant` deltas to a longer list (its own deltas crossed
with every input), and a transform chain folds left from the single
identity variant — the result is the full cross product, in a
deterministic order with the unperturbed member first:

* :class:`Jitter` — multiplicative or additive perturbation of one
  model axis (error rate, sequential fraction, downtime, checkpoint /
  verification cost), with draws taken from a dedicated
  ``SeedSequence`` stream of the master seed so the derived family is
  a pure function of the scenario file;
* :class:`Resample` — seed replicates: replicate 0 keeps the master
  seed (so its points are plan-key-identical to a plain run of the
  base study and dedup against it), replicates 1..n-1 get independent
  derived seeds;
* :class:`PlatformProduct` — the Table II catalog cross product.

Variants are symbolic: a :class:`Perturbation` records *how* to move
an axis (mode + value), not the final number — the resolution against
a concrete spec + platform happens in
:mod:`repro.experiments.scenarios.scenario_set`, which knows whether
the axis is the study's sweep axis (scale the grid) or a fixed model
parameter (override the catalog value).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ...exceptions import InvalidParameterError
from ...platforms.catalog import PLATFORM_NAMES
from ..spec import AXIS_KWARGS

__all__ = [
    "PERTURB_AXES",
    "PERTURB_MODES",
    "DISTRIBUTIONS",
    "Perturbation",
    "Variant",
    "GridTransform",
    "Jitter",
    "Resample",
    "PlatformProduct",
    "derive_variants",
    "replicate_seed",
    "split_replicates",
]

#: Model axes a perturbation may move: exactly the ``build_model``
#: keywords a study may sweep (one source of truth with the TOML-study
#: axis vocabulary, so the two validation surfaces cannot drift).
PERTURB_AXES = AXIS_KWARGS

PERTURB_MODES = ("multiplicative", "additive")

#: Jitter draw shapes.  ``uniform`` draws factors from
#: ``1 +/- width`` (or deltas from ``+/- width``); ``lognormal`` draws
#: multiplicative factors ``exp(N(0, width))``; ``normal`` draws
#: additive deltas ``N(0, width)``.
DISTRIBUTIONS = ("uniform", "lognormal", "normal")


@dataclass(frozen=True)
class Perturbation:
    """One symbolic axis move: ``axis <- axis * value`` or ``+ value``."""

    axis: str
    mode: str
    value: float

    def apply(self, base: float) -> float:
        if self.mode == "multiplicative":
            return float(base) * self.value
        return float(base) + self.value

    @property
    def label(self) -> str:
        op = "*" if self.mode == "multiplicative" else "+"
        return f"{self.axis}{op}{self.value:.6g}"


@dataclass(frozen=True)
class Variant:
    """One symbolic member of a derived family.

    ``seed`` is ``None`` for the master seed (replicate 0 and every
    un-resampled variant), so plan keys of unperturbed members match a
    plain run of the base study exactly.
    """

    perturbations: tuple[Perturbation, ...] = ()
    replicate: int = 0
    seed: int | None = None
    platform: str | None = None

    @property
    def label(self) -> str:
        parts = [p.label for p in self.perturbations]
        if self.seed is not None or self.replicate:
            parts.append(f"rep{self.replicate}")
        return "+".join(parts) if parts else "base"

    @property
    def is_base(self) -> bool:
        """Whether this member is the unperturbed master-seed realization."""
        return not self.perturbations and self.seed is None


def _stream(master_seed: int, tag: str) -> np.random.Generator:
    """A deterministic draw stream for one transform of one scenario set.

    The spawn key derives from the transform's tag (kind, axis,
    position in the chain), so reordering unrelated transforms never
    silently reuses another transform's draws.
    """
    digest = hashlib.sha256(tag.encode()).digest()
    spawn_key = tuple(int.from_bytes(digest[i : i + 4], "big") for i in range(0, 8, 4))
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(master_seed), spawn_key=spawn_key)
    )


def replicate_seed(master_seed: int, replicate: int) -> int:
    """The derived master seed of replicate ``replicate >= 1``.

    Replicate 0 is the master seed itself (callers pass ``seed=None``);
    higher replicates get independent 32-bit seeds spawned from the
    master ``SeedSequence``, which in turn fan out into the per-run
    streams through the existing :mod:`repro.sim.rng` machinery.
    """
    if replicate < 1:
        raise InvalidParameterError("replicate seeds start at replicate 1")
    ss = np.random.SeedSequence(entropy=int(master_seed), spawn_key=(replicate,))
    return int(ss.generate_state(1, np.uint32)[0])


class GridTransform:
    """Base class: one step of the variant algebra."""

    def expand(self, variants: Sequence[Variant], master_seed: int, tag: str
               ) -> list[Variant]:
        raise NotImplementedError  # pragma: no cover - abstract

    def describe(self) -> str:
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class Jitter(GridTransform):
    """Axis perturbation: ``count`` draws around the catalog value.

    ``include_base=True`` (the default) keeps the identity variant, so
    the family always contains the unperturbed axis value to band
    against — and its points dedup with the base study's.
    """

    axis: str
    width: float
    count: int = 1
    mode: str = "multiplicative"
    distribution: str = "uniform"
    include_base: bool = True

    def __post_init__(self):
        if self.axis not in PERTURB_AXES:
            raise InvalidParameterError(
                f"unknown jitter axis {self.axis!r} "
                f"(perturbable axes: {', '.join(PERTURB_AXES)})"
            )
        if self.mode not in PERTURB_MODES:
            raise InvalidParameterError(
                f"unknown jitter mode {self.mode!r} "
                f"(one of {', '.join(PERTURB_MODES)})"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise InvalidParameterError(
                f"malformed distribution {self.distribution!r} "
                f"(one of {', '.join(DISTRIBUTIONS)})"
            )
        if self.distribution == "lognormal" and self.mode != "multiplicative":
            raise InvalidParameterError(
                "malformed distribution: lognormal jitter is multiplicative "
                "(use distribution='normal' for additive jitter)"
            )
        if self.distribution == "normal" and self.mode != "additive":
            raise InvalidParameterError(
                "malformed distribution: normal jitter is additive "
                "(use distribution='lognormal' for multiplicative jitter)"
            )
        if not self.width > 0:
            raise InvalidParameterError(
                f"jitter width must be positive, got {self.width!r}"
            )
        if self.count < 1:
            raise InvalidParameterError(
                f"jitter count must be >= 1, got {self.count!r}"
            )

    def _draws(self, master_seed: int, tag: str) -> list[float]:
        rng = _stream(master_seed, tag)
        if self.distribution == "uniform":
            offsets = rng.uniform(-self.width, self.width, size=self.count)
            if self.mode == "multiplicative":
                return [float(1.0 + o) for o in offsets]
            return [float(o) for o in offsets]
        if self.distribution == "lognormal":
            return [float(v) for v in np.exp(rng.normal(0.0, self.width, self.count))]
        return [float(v) for v in rng.normal(0.0, self.width, self.count)]

    def expand(self, variants, master_seed, tag):
        deltas: list[Perturbation | None] = []
        if self.include_base:
            deltas.append(None)
        deltas.extend(
            Perturbation(self.axis, self.mode, value)
            for value in self._draws(master_seed, tag)
        )
        out = []
        for variant in variants:
            for delta in deltas:
                if delta is None:
                    out.append(variant)
                else:
                    out.append(
                        replace(
                            variant,
                            perturbations=variant.perturbations + (delta,),
                        )
                    )
        return out

    def describe(self) -> str:
        base = " + base" if self.include_base else ""
        return (
            f"jitter {self.axis} ({self.mode} {self.distribution}, "
            f"width {self.width:g}, {self.count} draws{base})"
        )


@dataclass(frozen=True)
class Resample(GridTransform):
    """Seed resampling: ``replicates`` independent realizations per point."""

    replicates: int

    def __post_init__(self):
        if self.replicates < 1:
            raise InvalidParameterError(
                f"replicates must be >= 1, got {self.replicates!r}"
            )

    def expand(self, variants, master_seed, tag):
        out = []
        for variant in variants:
            for r in range(self.replicates):
                if r == 0:
                    out.append(variant)
                else:
                    out.append(
                        replace(
                            variant,
                            replicate=r,
                            seed=replicate_seed(master_seed, r),
                        )
                    )
        return out

    def describe(self) -> str:
        return f"resample {self.replicates} replicates (replicate 0 = master seed)"


@dataclass(frozen=True)
class PlatformProduct(GridTransform):
    """Catalog cross product: one family per Table II platform."""

    platforms: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.platforms:
            raise InvalidParameterError("platform product needs at least one platform")
        for name in self.platforms:
            if name not in PLATFORM_NAMES:
                raise InvalidParameterError(
                    f"unknown platform {name!r} "
                    f"(Table II has {', '.join(PLATFORM_NAMES)})"
                )

    def expand(self, variants, master_seed, tag):
        return [
            replace(variant, platform=name)
            for variant in variants
            for name in self.platforms
        ]

    def describe(self) -> str:
        return f"platforms {', '.join(self.platforms)}"


def derive_variants(
    transforms: Sequence[GridTransform], master_seed: int
) -> list[Variant]:
    """Fold a transform chain into the full variant cross product.

    Starts from the single identity variant; each transform crosses its
    deltas with every variant derived so far, so the first member of
    the result is always the least-perturbed one.
    """
    variants: list[Variant] = [Variant()]
    for i, transform in enumerate(transforms):
        tag = f"{i}:{type(transform).__name__}:{getattr(transform, 'axis', '')}"
        variants = transform.expand(variants, master_seed, tag)
    return variants


def split_replicates(
    transforms: Sequence[GridTransform],
) -> tuple[tuple[GridTransform, ...], int]:
    """Split a chain into (non-resample transforms, replicate count).

    The adaptive engine draws replicates lazily in waves, so it treats
    the replicate axis as the *outermost* loop regardless of where the
    chain declares it: the remaining transforms derive the per-wave
    variant skeleton, and each wave crosses it with a contiguous
    replicate range.  Replicate ``r`` keeps the exact seeds of the
    fixed path (``None``/master for 0, :func:`replicate_seed`
    otherwise), so replicate-0 points still dedup against plain runs.

    Returns the count declared by the chain's single ``Resample`` (1
    when none is present — the adaptive policy then raises the ceiling
    itself).  Multiple resamples are refused, matching the TOML loader.
    """
    rest: list[GridTransform] = []
    count: int | None = None
    for transform in transforms:
        if isinstance(transform, Resample):
            if count is not None:
                raise InvalidParameterError(
                    "adaptive replicate scheduling needs at most one "
                    "resample transform in the chain"
                )
            count = transform.replicates
        else:
            rest.append(transform)
    return tuple(rest), (1 if count is None else count)
