"""Adaptive replicate scheduling: converge bands with minimal work.

The fixed path simulates a declared replicate count per variant even
after the ``(median, p_lo, p_hi)`` bands have long stabilized.  This
module replaces the fixed count with a *stage → observe → extend*
loop, CARVE-style (resample until the conclusion is validated):

1. **stage** — an initial wave of ``min_replicates`` per variant over
   the full grid;
2. **observe** — as the wave's points land, fold each member into the
   :class:`~repro.experiments.scenarios.aggregate.FamilyAccumulator`
   and measure every grid row's relative band width;
3. **extend** — rows whose width moved less than ``band_tol`` for
   ``stable_waves`` consecutive waves are *converged* and stop costing
   replicates; the remaining active rows draw another wave (``wave``
   replicates per variant, grid restricted to the active rows) until
   everything converged or ``max_replicates`` is reached.

Determinism is the hard requirement: convergence decisions depend on
*which* data they were computed over, never on arrival order.  Waves
fold strictly in wave order (a later wave completing first — easy with
a warm cache — waits), all simulated values are bit-identical across
executors, and the reductions are order-independent, so the staged
waves, the stopping decisions and the final band tables are identical
whatever ``--jobs``/``--max-inflight`` produced them.

Every staging decision is journaled into the run manifest
(:meth:`~repro.sim.manifest.RunRecorder.record_adaptive`), so
``resume`` *replays* the journaled waves instead of re-deriving
convergence: all plan keys of the original run are staged up front,
completed points come back from the result cache, journaled stopping
decisions are reused, and the recomputed tail (decisions past the
crash point) is verified against any journaled wave it must agree
with — a mismatch (corrupted journal, changed inputs) fails loudly.

Replicate ``r`` of a variant carries the exact seeds of the fixed
path (master seed for replicate 0, ``replicate_seed`` otherwise), so
adaptive plan keys dedup against plain runs and fixed-path scenario
runs sharing the cache.
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass, field

from ...exceptions import InvalidParameterError, ReproError
from ..common import FigureResult, SimSettings
from ..spec import StagedStudy, stage_study
from .aggregate import BandSpec, FamilyAccumulator, adaptive_notes
from .scenario_set import ScenarioMember, ScenarioSet, _resolve_member
from .transforms import Variant, derive_variants, replicate_seed, split_replicates

__all__ = ["AdaptivePolicy", "AdaptiveWave", "AdaptiveFamily", "AdaptiveRun"]


@dataclass(frozen=True)
class AdaptivePolicy:
    """The knobs of the adaptive loop (CLI flags / ``[adaptive]`` table).

    A grid row is *converged* once its relative band width changed by
    at most ``band_tol`` over ``stable_waves`` consecutive waves; the
    chain's declared ``Resample`` count is ignored in adaptive mode —
    ``min_replicates``/``max_replicates`` govern instead.
    """

    min_replicates: int = 3
    max_replicates: int = 12
    wave: int = 2
    band_tol: float = 0.05
    stable_waves: int = 2

    def __post_init__(self):
        if self.min_replicates < 1:
            raise InvalidParameterError(
                f"min replicates must be >= 1, got {self.min_replicates!r}"
            )
        if self.max_replicates < self.min_replicates:
            raise InvalidParameterError(
                f"max replicates ({self.max_replicates!r}) must be >= "
                f"min replicates ({self.min_replicates!r})"
            )
        if self.wave < 1:
            raise InvalidParameterError(
                f"wave size must be >= 1, got {self.wave!r}"
            )
        if not self.band_tol > 0:
            raise InvalidParameterError(
                f"band tolerance must be positive, got {self.band_tol!r}"
            )
        if self.stable_waves < 1:
            raise InvalidParameterError(
                f"stable waves must be >= 1, got {self.stable_waves!r}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class AdaptiveWave:
    """One staged replicate range of one family.

    ``rows`` are the global grid rows the wave covers (``None`` = the
    full grid; wave 0 always covers it).  ``tables`` caches each
    member's assembled panels once the wave folds, so persistence does
    not re-assemble.
    """

    index: int
    start: int
    stop: int
    rows: tuple[int, ...] | None
    members: list[ScenarioMember] = field(default_factory=list)
    staged: list[StagedStudy] = field(default_factory=list)
    tables: list[list[FigureResult]] | None = None

    def ready(self) -> bool:
        return all(stage.ready() for stage in self.staged)


@dataclass
class AdaptiveFamily:
    """One platform's adaptive state: waves, clouds, stopping decisions.

    Implements the ``label``/``ready()``/``finish()`` emission contract
    of :class:`~repro.experiments.scenarios.scenario_set.ScenarioFamily`,
    so banded output streams through the same
    :class:`~repro.io.bands.BandedEmitter`.
    """

    label: str
    platform: str
    variants: tuple[Variant, ...]
    grid: tuple[float, ...] | None
    policy: AdaptivePolicy
    accum: FamilyAccumulator
    #: Grid-row count (0 until known; set up front for axis sweeps,
    #: at the first fold for axis-less studies).
    n_rows: int = 0
    waves: list[AdaptiveWave] = field(default_factory=list)
    #: Next wave index to fold — folds are strictly in wave order.
    next_fold: int = 0
    #: row -> wave index at which the row converged.
    converged: dict[int, int] = field(default_factory=dict)
    #: row -> relative band width after the last fold covering it.
    widths: dict[int, float] = field(default_factory=dict)
    #: row -> consecutive waves with width delta <= band_tol.
    streaks: dict[int, int] = field(default_factory=dict)
    done: bool = False

    @property
    def members(self) -> list[ScenarioMember]:
        """Every staged member, in wave (= replicate-major) order."""
        return [m for wave in self.waves for m in wave.members]

    def member_results(self) -> list[list[FigureResult]]:
        """Every member's assembled tables (requires every wave folded)."""
        out: list[list[FigureResult]] = []
        for wave in self.waves:
            if wave.tables is None:
                raise ReproError(
                    f"adaptive family {self.label!r} has unfolded waves; "
                    "resolve the pipeline before collecting member results"
                )
            out.extend(wave.tables)
        return out

    def member_rows(self) -> list[tuple[int, ...] | None]:
        """Per member: the grid rows it covers (aligned with members)."""
        return [wave.rows for wave in self.waves for _ in wave.members]

    def active_rows(self, after_wave: int) -> list[int]:
        """Rows still unconverged once wave ``after_wave`` folded."""
        return [
            r
            for r in range(self.n_rows)
            if self.converged.get(r, after_wave + 1) > after_wave
        ]

    def summary(self) -> dict:
        """The journaled per-family counters (progress, notes, bench)."""
        rows_staged = 0
        for wave in self.waves:
            covered = len(wave.rows) if wave.rows is not None else self.n_rows
            rows_staged += len(wave.members) * covered
        fixed_rows = (
            len(self.variants) * self.policy.max_replicates * self.n_rows
        )
        return {
            "n_rows": self.n_rows,
            "rows_converged": len(self.converged),
            "rows_staged": rows_staged,
            "fixed_rows": fixed_rows,
            "saved_rows": fixed_rows - rows_staged,
        }

    # -- emission contract ---------------------------------------------------

    def ready(self) -> bool:
        return self.done

    def finish(self) -> list[FigureResult]:
        return self.accum.finish(
            extra_notes=adaptive_notes(self.policy.to_dict(), self.summary())
        )


class AdaptiveRun:
    """Drive a :class:`ScenarioSet` through the adaptive replicate loop.

    Wiring (the runner does this):

    * :meth:`stage_initial` before the resolve loop (wave 0 of every
      family);
    * :meth:`replay` as the recorder's pre-validation hook on resume
      (re-stages every journaled wave so the resumed plan covers the
      original run's keys);
    * :meth:`on_event` chained into the pipeline's ``on_event`` (folds
      completed waves the moment their last point lands);
    * :meth:`on_round` as the pipeline's ``on_round`` (folds waves that
      completed without firing events — cache- or analytic-served —
      and reports whether another staging round is needed).
    """

    def __init__(
        self,
        sset: ScenarioSet,
        policy: AdaptivePolicy,
        pipeline,
        settings: SimSettings = SimSettings(),
        progress: bool = False,
        stream=None,
    ):
        self.sset = sset
        self.policy = policy
        self.pipeline = pipeline
        self.settings = settings
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        #: The family band always carries the consistency score —
        #: adaptive coverage is ragged, so per-row evidence matters.
        self.band = dataclasses.replace(sset.band, consistency=True)
        transforms, declared = split_replicates(sset.transforms)
        self._transforms = transforms
        self.declared_replicates = declared
        #: Panels with notes stripped: note hooks (log-log slope fits)
        #: assume the full grid, and member notes never reach the
        #: banded output anyway.
        self._spec = dataclasses.replace(
            sset.spec,
            panels=tuple(
                dataclasses.replace(panel, notes=())
                for panel in sset.spec.panels
            ),
        )
        self.families: list[AdaptiveFamily] = []
        #: Every staged study, in staging order — handed (live) to the
        #: progress printer, which re-reads it as waves land.
        self.staged_studies: list[StagedStudy] = []
        self._group_map: dict[str, AdaptiveFamily] = {}
        self.recorder = None
        self.journal: dict = {"policy": policy.to_dict(), "families": {}}

    # -- staging -------------------------------------------------------------

    def stage_initial(self) -> list[AdaptiveFamily]:
        """Build the families and stage wave 0 (``min_replicates``)."""
        panel_columns = (
            tuple(panel.columns for panel in self.sset.spec.panels)
            if self.sset.spec.panels
            else None
        )
        by_platform: dict[str, list[Variant]] = {}
        for variant in derive_variants(self._transforms, self.sset.master_seed):
            platform = (
                variant.platform
                if variant.platform is not None
                else self.sset.platform
            )
            by_platform.setdefault(platform, []).append(variant)
        for platform, variants in by_platform.items():
            base = _resolve_member(self.sset, variants[0], platform)
            family = AdaptiveFamily(
                label=f"{self.sset.name}[{platform}]",
                platform=platform,
                variants=tuple(variants),
                grid=base.grid,
                policy=self.policy,
                accum=FamilyAccumulator(
                    band=self.band,
                    panel_columns=panel_columns,
                    provenance=self.sset.provenance(),
                ),
                n_rows=len(base.grid) if base.grid is not None else 0,
            )
            self.families.append(family)
            self.journal["families"][family.label] = {
                "waves": [],
                "converged": {},
                "summary": family.summary(),
            }
            self._stage_wave(family, 0, self.policy.min_replicates, None)
        return self.families

    def _stage_wave(
        self,
        family: AdaptiveFamily,
        start: int,
        stop: int,
        rows: tuple[int, ...] | None,
    ) -> None:
        """Declare replicates ``start..stop-1`` of every variant.

        ``rows`` restricts the members to a subset of the base grid
        (``None`` = full grid); member order is replicate-major so the
        fixed path's seeds and names are reproduced exactly.
        """
        wave = AdaptiveWave(
            index=len(family.waves), start=start, stop=stop, rows=rows
        )
        for r in range(start, stop):
            for variant in family.variants:
                if r == 0:
                    member_variant = variant
                else:
                    member_variant = dataclasses.replace(
                        variant,
                        replicate=r,
                        seed=replicate_seed(self.sset.master_seed, r),
                    )
                member = _resolve_member(
                    self.sset, member_variant, family.platform
                )
                if rows is not None:
                    member = dataclasses.replace(
                        member, grid=tuple(member.grid[i] for i in rows)
                    )
                staged = stage_study(
                    self._spec,
                    platform=member.platform,
                    settings=dataclasses.replace(
                        self.settings, seed=member.seed
                    ),
                    pipeline=self.pipeline,
                    grid=member.grid,
                    fixed=member.fixed,
                    group=member.name,
                )
                wave.members.append(member)
                wave.staged.append(staged)
                self.staged_studies.append(staged)
                self._group_map[member.name] = family
        family.waves.append(wave)
        entry = self.journal["families"][family.label]
        entry["waves"].append(
            {
                "start": start,
                "stop": stop,
                "rows": list(rows) if rows is not None else None,
            }
        )
        self._journal(family)
        trace = self.pipeline.trace
        if trace.enabled:
            trace.event(
                "wave_stage",
                family=family.label,
                wave=wave.index,
                start=start,
                stop=stop,
                rows=len(rows) if rows is not None else None,
            )
        if self.progress:
            covered = (
                f"{len(rows)} rows" if rows is not None else "full grid"
            )
            print(
                f"[adaptive] {family.label}: wave {wave.index} stages "
                f"replicates {start}..{stop - 1} x "
                f"{len(family.variants)} variants ({covered})",
                file=self.stream,
            )

    # -- resume --------------------------------------------------------------

    def replay(self, manifest) -> None:
        """Re-stage every journaled wave of a resumed run.

        Called by the runner between loading the manifest and resume
        validation, so the resumed plan covers every key of the
        original run and completed points come back from the cache.
        Journaled stopping decisions are *reused*, not re-derived: the
        converged map is seeded from the journal, and the live
        convergence pass skips rows it already covers.
        """
        journal = getattr(manifest, "adaptive", None) or {}
        if not journal:
            return
        stored_policy = journal.get("policy", {})
        if stored_policy != self.policy.to_dict():
            raise ReproError(
                f"adaptive journal mismatch: the run manifest was recorded "
                f"with policy {stored_policy!r} but this resume uses "
                f"{self.policy.to_dict()!r}; re-run with the original "
                "adaptive flags"
            )
        stored = journal.get("families", {})
        for family in self.families:
            entry = stored.get(family.label)
            if not entry:
                continue
            try:
                family.converged = {
                    int(r): int(w) for r, w in entry["converged"].items()
                }
                waves = entry["waves"]
            except (KeyError, TypeError, ValueError) as exc:
                raise ReproError(
                    f"adaptive journal mismatch: malformed journal entry "
                    f"for family {family.label!r}: {exc!r}"
                ) from exc
            self.journal["families"][family.label]["converged"] = {
                str(r): family.converged[r] for r in sorted(family.converged)
            }
            for payload in waves[len(family.waves) :]:
                rows = payload.get("rows")
                self._stage_wave(
                    family,
                    int(payload["start"]),
                    int(payload["stop"]),
                    tuple(int(r) for r in rows) if rows is not None else None,
                )

    # -- the observe/extend loop ---------------------------------------------

    def on_event(self, event) -> None:
        """Pipeline completion hook: fold the event's family forward."""
        family = self._group_map.get(getattr(event, "group", None))
        if family is not None and not family.done:
            self._advance(family)

    def on_round(self) -> bool:
        """Between-rounds hook: fold waves that completed without events.

        Cache-served and analytic-only points resolve without firing
        completion events; this is the safety net that folds them.
        Returns whether any family advanced (the pipeline keeps
        scheduling rounds while this is true or points are pending).
        """
        progressed = False
        for family in self.families:
            if not family.done and self._advance(family):
                progressed = True
        return progressed

    def _advance(self, family: AdaptiveFamily) -> bool:
        """Fold every completed wave in order; stage follow-up waves."""
        progressed = False
        while (
            family.next_fold < len(family.waves)
            and family.waves[family.next_fold].ready()
        ):
            wave = family.waves[family.next_fold]
            self._fold(family, wave)
            family.next_fold += 1
            self._after_fold(family, wave)
            progressed = True
        return progressed

    def _fold(self, family: AdaptiveFamily, wave: AdaptiveWave) -> None:
        wave.tables = [stage.finish() for stage in wave.staged]
        for tables in wave.tables:
            family.accum.add_member(tables, rows=wave.rows)
        if family.n_rows == 0:
            family.n_rows = family.accum.n_rows
        elif family.n_rows != family.accum.n_rows:
            raise ReproError(
                f"adaptive family {family.label!r} folded {family.accum.n_rows} "
                f"grid rows, expected {family.n_rows}"
            )

    def _after_fold(self, family: AdaptiveFamily, wave: AdaptiveWave) -> None:
        """Update convergence streaks, then extend or finish the family.

        Convergence is evaluated per row covered by the wave, against
        the width recorded at the previous fold; rows already converged
        (live or seeded from a resumed journal) are skipped, so resume
        never re-derives a journaled decision.
        """
        policy = self.policy
        already_converged = len(family.converged)
        covered = wave.rows if wave.rows is not None else range(family.n_rows)
        for r in covered:
            if r in family.converged:
                continue
            width = family.accum.row_width(r)
            previous = family.widths.get(r)
            family.widths[r] = width
            if previous is None:
                continue  # first observation: a baseline, not a delta
            if abs(width - previous) <= policy.band_tol:
                family.streaks[r] = family.streaks.get(r, 0) + 1
                if family.streaks[r] >= policy.stable_waves:
                    family.converged[r] = wave.index
            else:
                family.streaks[r] = 0
        self._journal(family)
        active = family.active_rows(wave.index)
        newly_converged = len(family.converged) - already_converged
        if newly_converged:
            self.pipeline.metrics.counter(
                "adaptive_rows_converged",
                family=family.label,
                wave=str(wave.index),
            ).inc(newly_converged)
        trace = self.pipeline.trace
        if trace.enabled:
            trace.event(
                "wave_converge",
                family=family.label,
                wave=wave.index,
                converged=len(family.converged),
                active=len(active),
                rows_converged=newly_converged,
            )
        if self.progress:
            print(
                f"[adaptive] {family.label}: wave {wave.index} folded — "
                f"{len(family.converged)}/{family.n_rows} rows converged, "
                f"{len(active)} active",
                file=self.stream,
            )
        next_start = family.waves[-1].stop
        stages_next = bool(active) and next_start < policy.max_replicates
        if family.next_fold < len(family.waves):
            self._verify_replayed(family, wave, active, stages_next)
            return
        if not stages_next:
            family.done = True
            self._journal(family)
            return
        next_stop = min(next_start + policy.wave, policy.max_replicates)
        rows = None if family.grid is None else tuple(active)
        self._stage_wave(family, next_start, next_stop, rows)

    def _verify_replayed(
        self,
        family: AdaptiveFamily,
        wave: AdaptiveWave,
        active: list[int],
        stages_next: bool,
    ) -> None:
        """Check a replayed wave against the freshly computed decision.

        On resume the next wave is already staged from the journal;
        instead of staging we verify the journaled decision is the one
        the live algorithm would take — a disagreement means the
        journal and the simulated data no longer describe the same run.
        """
        staged = family.waves[family.next_fold]
        expected_rows = None if family.grid is None else tuple(active)
        if not stages_next:
            raise ReproError(
                f"adaptive journal mismatch: family {family.label!r} is "
                f"complete after wave {wave.index} but the journal stages "
                f"wave {staged.index}"
            )
        expected_start = family.waves[family.next_fold - 1].stop
        expected_stop = min(
            expected_start + self.policy.wave, self.policy.max_replicates
        )
        if (
            staged.start != expected_start
            or staged.stop != expected_stop
            or staged.rows != expected_rows
        ):
            raise ReproError(
                f"adaptive journal mismatch: family {family.label!r} wave "
                f"{staged.index} was journaled as replicates "
                f"{staged.start}..{staged.stop - 1} over rows "
                f"{list(staged.rows) if staged.rows is not None else 'all'}, "
                f"but the resumed data derives replicates "
                f"{expected_start}..{expected_stop - 1} over rows "
                f"{list(expected_rows) if expected_rows is not None else 'all'}"
            )

    # -- journaling and reporting --------------------------------------------

    def _journal(self, family: AdaptiveFamily) -> None:
        entry = self.journal["families"][family.label]
        entry["converged"] = {
            str(r): family.converged[r] for r in sorted(family.converged)
        }
        entry["summary"] = family.summary()
        if self.recorder is not None:
            self.recorder.record_adaptive(self.journal)

    def attach_recorder(self, recorder) -> None:
        """Journal through ``recorder`` from now on (and write once)."""
        self.recorder = recorder
        if recorder is not None:
            recorder.record_adaptive(self.journal)

    @property
    def n_members(self) -> int:
        return sum(len(family.members) for family in self.families)

    def summary(self) -> dict:
        """Run-wide counters (the benchmark's reduction metric)."""
        totals = {
            "n_rows": 0,
            "rows_converged": 0,
            "rows_staged": 0,
            "fixed_rows": 0,
            "saved_rows": 0,
        }
        for family in self.families:
            for key, value in family.summary().items():
                totals[key] += value
        return totals

    def finalize(self) -> None:
        """Emit the per-family savings report (``--progress``)."""
        for family in self.families:
            if not family.done:
                raise ReproError(
                    f"adaptive family {family.label!r} did not complete; "
                    "the pipeline resolve loop exited early"
                )
        if self.progress:
            for family in self.families:
                s = family.summary()
                saved = (
                    100.0 * s["saved_rows"] / s["fixed_rows"]
                    if s["fixed_rows"]
                    else 0.0
                )
                print(
                    f"[adaptive] {family.label}: "
                    f"{s['rows_converged']}/{s['n_rows']} rows converged, "
                    f"{s['rows_staged']}/{s['fixed_rows']} member-rows "
                    f"simulated ({s['saved_rows']} saved, {saved:.1f}%)",
                    file=self.stream,
                )
