"""Replicate aggregation: variant clouds to per-point quantile bands.

A scenario family resolves into one table set per derived member —
the same panels, the same grid shape, different realizations.  This
module reduces that cloud along the member axis: every data cell of a
panel becomes a ``(median, p_lo, p_hi)`` band across the family, and
panels carrying optimum-pattern columns (``P_fo``/``P_num``/``T_fo``/
``T_num``) grow a per-row ``stable`` flag marking grid points where the
optimum *flips* (relative spread across variants beyond the tolerance,
or first-order validity appearing/disappearing).  The output is plain
:class:`~repro.experiments.common.FigureResult` tables, so banded
output rides the existing table/CSV/streaming machinery.

Determinism: member order is derive order, quantiles are
``numpy.quantile`` over that fixed ordering, and every input value is
bit-identical across executors — so the band tables are byte-identical
whatever pool width, in-flight window or cache state produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...exceptions import InvalidParameterError
from ..common import FigureResult

__all__ = ["BandSpec", "OPTIMUM_COLUMNS", "band_tables"]

#: Sweep columns whose cross-variant movement constitutes an
#: optimum-pattern flip (the location of the optimum, not its value).
OPTIMUM_COLUMNS = frozenset({"P_fo", "P_num", "T_fo", "T_num"})


@dataclass(frozen=True)
class BandSpec:
    """How a family reduces: quantile pair + flip tolerance."""

    q_lo: float = 0.05
    q_hi: float = 0.95
    flip_tolerance: float = 0.05

    def __post_init__(self):
        if not 0.0 <= self.q_lo < self.q_hi <= 1.0:
            raise InvalidParameterError(
                f"band quantiles must satisfy 0 <= lo < hi <= 1, "
                f"got ({self.q_lo!r}, {self.q_hi!r})"
            )
        if not self.flip_tolerance >= 0:
            raise InvalidParameterError(
                f"flip tolerance must be >= 0, got {self.flip_tolerance!r}"
            )

    @property
    def lo_name(self) -> str:
        return f"p{self.q_lo * 100:g}"

    @property
    def hi_name(self) -> str:
        return f"p{self.q_hi * 100:g}"


def _cell_values(tables: Sequence[FigureResult], row: int, col: int) -> list:
    values = []
    for table in tables:
        value = table.rows[row][col]
        if value is None:
            values.append(None)
        elif isinstance(value, (bool, str)):
            raise InvalidParameterError(
                f"cannot band non-numeric cell {value!r} in "
                f"{table.figure_id} column {table.columns[col]!r}"
            )
        else:
            values.append(float(value))
    return values


def _band_cells(values: list, band: BandSpec) -> tuple:
    present = [v for v in values if v is not None]
    if not present:
        return (None, None, None)
    q = np.quantile(np.asarray(present, dtype=float), [0.5, band.q_lo, band.q_hi])
    return (float(q[0]), float(q[1]), float(q[2]))


def _flips(values: list, band: BandSpec) -> bool:
    """Whether an optimum column moves across the family at one point."""
    present = [v for v in values if v is not None]
    if not present:
        return False
    if len(present) != len(values):
        return True  # first-order validity itself flips across variants
    spread = max(present) - min(present)
    reference = abs(float(np.median(present)))
    if reference == 0.0:
        return spread > 0.0
    return spread / reference > band.flip_tolerance


def band_tables(
    member_tables: Sequence[Sequence[FigureResult]],
    band: BandSpec = BandSpec(),
    panel_columns: Sequence[tuple[str, ...]] | None = None,
    provenance: tuple[str, ...] = (),
) -> list[FigureResult]:
    """Reduce one family's per-member tables into banded tables.

    ``member_tables[m][p]`` is member ``m``'s panel ``p`` (members in
    derive order, the least-perturbed first — its lead column labels
    the rows).  ``panel_columns[p]`` names the sweep columns behind
    panel ``p``'s data columns (cycled across the per-scenario header
    layout); panels containing :data:`OPTIMUM_COLUMNS` entries gain the
    per-row ``stable`` flag.  ``provenance`` lines are appended to
    every banded table's notes.
    """
    if not member_tables:
        raise InvalidParameterError("cannot band an empty family")
    n_panels = len(member_tables[0])
    for m, tables in enumerate(member_tables):
        if len(tables) != n_panels:
            raise InvalidParameterError(
                f"family member {m} produced {len(tables)} panels, "
                f"expected {n_panels}"
            )
    out = []
    for p in range(n_panels):
        base = member_tables[0][p]
        panels = [tables[p] for tables in member_tables]
        for member in panels[1:]:
            if len(member.rows) != len(base.rows) or len(member.columns) != len(
                base.columns
            ):
                raise InvalidParameterError(
                    f"family member tables of {base.figure_id} disagree in shape"
                )
        columns = panel_columns[p] if panel_columns is not None else ()
        n_data = len(base.columns) - 1

        def _source(j: int) -> str | None:
            return columns[j % len(columns)] if columns else None

        optimum_cols = [
            j for j in range(n_data) if _source(j) in OPTIMUM_COLUMNS
        ]
        headers: list[str] = [base.columns[0]]
        for j in range(n_data):
            name = base.columns[1 + j]
            headers.extend(
                (f"{name}_med", f"{name}_{band.lo_name}", f"{name}_{band.hi_name}")
            )
        if optimum_cols:
            headers.append("stable")
        rows = []
        n_stable = 0
        for r in range(len(base.rows)):
            row: list = [base.rows[r][0]]
            flips = False
            for j in range(n_data):
                values = _cell_values(panels, r, 1 + j)
                row.extend(_band_cells(values, band))
                if j in optimum_cols and _flips(values, band):
                    flips = True
            if optimum_cols:
                row.append(not flips)
                n_stable += 0 if flips else 1
            rows.append(tuple(row))
        notes = [
            f"bands over {len(panels)} family members "
            f"(median, {band.lo_name}/{band.hi_name} quantiles)"
        ]
        if optimum_cols:
            notes.append(
                f"optimum pattern stable at {n_stable}/{len(rows)} grid points "
                f"(rel spread <= {band.flip_tolerance:g} across members)"
            )
        notes.extend(provenance)
        out.append(
            FigureResult(
                figure_id=f"{base.figure_id}_bands",
                title=f"{base.title} [bands x{len(panels)}]",
                columns=tuple(headers),
                rows=tuple(rows),
                notes=tuple(notes),
            )
        )
    return out
