"""Replicate aggregation: variant clouds to per-point quantile bands.

A scenario family resolves into one table set per derived member —
the same panels, the same grid shape, different realizations.  This
module reduces that cloud along the member axis: every data cell of a
panel becomes a ``(median, p_lo, p_hi)`` band across the family, and
panels carrying optimum-pattern columns (``P_fo``/``P_num``/``T_fo``/
``T_num``) grow a per-row ``stable`` flag marking grid points where the
optimum *flips* (relative spread across variants beyond the tolerance,
or first-order validity appearing/disappearing).  The output is plain
:class:`~repro.experiments.common.FigureResult` tables, so banded
output rides the existing table/CSV/streaming machinery.

Determinism: member order is derive order, quantiles are
``numpy.quantile`` over that fixed ordering, and every input value is
bit-identical across executors — so the band tables are byte-identical
whatever pool width, in-flight window or cache state produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...exceptions import InvalidParameterError
from ..common import FigureResult

__all__ = [
    "BandSpec",
    "OPTIMUM_COLUMNS",
    "FamilyAccumulator",
    "adaptive_notes",
    "band_tables",
    "relative_width",
]

#: Sweep columns whose cross-variant movement constitutes an
#: optimum-pattern flip (the location of the optimum, not its value).
OPTIMUM_COLUMNS = frozenset({"P_fo", "P_num", "T_fo", "T_num"})


@dataclass(frozen=True)
class BandSpec:
    """How a family reduces: quantile pair + flip tolerance."""

    q_lo: float = 0.05
    q_hi: float = 0.95
    flip_tolerance: float = 0.05
    #: Emit the CARVE-style per-row consistency score (fraction of
    #: family members whose optimum pattern agrees with the base
    #: member) next to the boolean ``stable`` flag.  Off by default so
    #: fixed-replicate band tables stay byte-identical to the PR 5
    #: goldens; the adaptive engine forces it on.
    consistency: bool = False

    def __post_init__(self):
        if not 0.0 <= self.q_lo < self.q_hi <= 1.0:
            raise InvalidParameterError(
                f"band quantiles must satisfy 0 <= lo < hi <= 1, "
                f"got ({self.q_lo!r}, {self.q_hi!r})"
            )
        if not self.flip_tolerance >= 0:
            raise InvalidParameterError(
                f"flip tolerance must be >= 0, got {self.flip_tolerance!r}"
            )

    @property
    def lo_name(self) -> str:
        return f"p{self.q_lo * 100:g}"

    @property
    def hi_name(self) -> str:
        return f"p{self.q_hi * 100:g}"


def _cell_values(tables: Sequence[FigureResult], row: int, col: int) -> list:
    values = []
    for table in tables:
        value = table.rows[row][col]
        if value is None:
            values.append(None)
        elif isinstance(value, (bool, str)):
            raise InvalidParameterError(
                f"cannot band non-numeric cell {value!r} in "
                f"{table.figure_id} column {table.columns[col]!r}"
            )
        else:
            values.append(float(value))
    return values


def _band_cells(values: list, band: BandSpec) -> tuple:
    present = [v for v in values if v is not None]
    if not present:
        return (None, None, None)
    q = np.quantile(np.asarray(present, dtype=float), [0.5, band.q_lo, band.q_hi])
    return (float(q[0]), float(q[1]), float(q[2]))


def _flips(values: list, band: BandSpec) -> bool:
    """Whether an optimum column moves across the family at one point."""
    present = [v for v in values if v is not None]
    if not present:
        return False
    if len(present) != len(values):
        return True  # first-order validity itself flips across variants
    spread = max(present) - min(present)
    reference = abs(float(np.median(present)))
    if reference == 0.0:
        return spread > 0.0
    return spread / reference > band.flip_tolerance


def relative_width(values: list, band: BandSpec) -> float:
    """Relative ``(p_hi - p_lo)`` band width of one cell's value cloud.

    This is the quantity the adaptive convergence test watches, so its
    edge cases are pinned down explicitly:

    * **no finite values** (every member ``None``/NaN) → ``0.0``, i.e.
      *trivially converged*: an undefined quantity can never tighten,
      so staging more replicates for it would burn work forever;
    * **zero median** → the *absolute* spread ``p_hi - p_lo`` is
      returned instead of dividing by zero.  A cloud hugging zero then
      converges exactly when its absolute spread stops moving, and a
      degenerate all-zero cloud reports ``0.0``.

    Non-finite members (NaN/inf) are dropped before the quantiles, so
    one diverged replicate cannot poison the width with NaN and pin the
    row unconverged forever.
    """
    present = [v for v in values if v is not None and np.isfinite(v)]
    if not present:
        return 0.0
    q = np.quantile(np.asarray(present, dtype=float), [band.q_lo, 0.5, band.q_hi])
    width = float(q[2]) - float(q[0])
    median = abs(float(q[1]))
    if median == 0.0:
        return width
    return width / median


#: Historical private name (pre-adaptive callers and tests).
_relative_width = relative_width


def _agrees(value, base, tolerance: float) -> bool:
    """Whether one member's optimum cell matches the base member's."""
    if value is None and base is None:
        return True
    if value is None or base is None:
        return False
    if base == 0.0:
        return value == 0.0
    return abs(value - base) / abs(base) <= tolerance


def _consistency_score(
    col_values: Sequence[list], optimum_cols: Sequence[int], band: BandSpec
) -> float:
    """CARVE-style score: the fraction of members agreeing with base.

    A member agrees when *every* optimum-pattern cell of the row sits
    within ``flip_tolerance`` (relative) of the base member's cell and
    matches its first-order validity.  The base member always agrees
    with itself, so the score is at least ``1 / n_members``.
    """
    n_members = len(col_values[optimum_cols[0]])
    agreeing = 0
    for m in range(n_members):
        if all(
            _agrees(col_values[j][m], col_values[j][0], band.flip_tolerance)
            for j in optimum_cols
        ):
            agreeing += 1
    return agreeing / n_members


def band_tables(
    member_tables: Sequence[Sequence[FigureResult]],
    band: BandSpec = BandSpec(),
    panel_columns: Sequence[tuple[str, ...]] | None = None,
    provenance: tuple[str, ...] = (),
) -> list[FigureResult]:
    """Reduce one family's per-member tables into banded tables.

    ``member_tables[m][p]`` is member ``m``'s panel ``p`` (members in
    derive order, the least-perturbed first — its lead column labels
    the rows).  ``panel_columns[p]`` names the sweep columns behind
    panel ``p``'s data columns (cycled across the per-scenario header
    layout); panels containing :data:`OPTIMUM_COLUMNS` entries gain the
    per-row ``stable`` flag.  ``provenance`` lines are appended to
    every banded table's notes.
    """
    if not member_tables:
        raise InvalidParameterError("cannot band an empty family")
    n_panels = len(member_tables[0])
    for m, tables in enumerate(member_tables):
        if len(tables) != n_panels:
            raise InvalidParameterError(
                f"family member {m} produced {len(tables)} panels, "
                f"expected {n_panels}"
            )
    out = []
    for p in range(n_panels):
        base = member_tables[0][p]
        panels = [tables[p] for tables in member_tables]
        for member in panels[1:]:
            if len(member.rows) != len(base.rows) or len(member.columns) != len(
                base.columns
            ):
                raise InvalidParameterError(
                    f"family member tables of {base.figure_id} disagree in shape"
                )
        columns = panel_columns[p] if panel_columns is not None else ()
        n_data = len(base.columns) - 1

        def _source(j: int) -> str | None:
            return columns[j % len(columns)] if columns else None

        optimum_cols = [
            j for j in range(n_data) if _source(j) in OPTIMUM_COLUMNS
        ]
        headers: list[str] = [base.columns[0]]
        for j in range(n_data):
            name = base.columns[1 + j]
            headers.extend(
                (f"{name}_med", f"{name}_{band.lo_name}", f"{name}_{band.hi_name}")
            )
        if optimum_cols:
            headers.append("stable")
            if band.consistency:
                headers.append("consistency")
        rows = []
        n_stable = 0
        for r in range(len(base.rows)):
            row: list = [base.rows[r][0]]
            flips = False
            col_values = [_cell_values(panels, r, 1 + j) for j in range(n_data)]
            for j in range(n_data):
                row.extend(_band_cells(col_values[j], band))
                if j in optimum_cols and _flips(col_values[j], band):
                    flips = True
            if optimum_cols:
                row.append(not flips)
                n_stable += 0 if flips else 1
                if band.consistency:
                    row.append(_consistency_score(col_values, optimum_cols, band))
            rows.append(tuple(row))
        notes = [
            f"bands over {len(panels)} family members "
            f"(median, {band.lo_name}/{band.hi_name} quantiles)"
        ]
        if optimum_cols:
            notes.append(
                f"optimum pattern stable at {n_stable}/{len(rows)} grid points "
                f"(rel spread <= {band.flip_tolerance:g} across members)"
            )
            if band.consistency:
                notes.append(
                    "consistency: fraction of members whose optimum pattern "
                    f"matches the base member (rel tol <= "
                    f"{band.flip_tolerance:g})"
                )
        notes.extend(provenance)
        out.append(
            FigureResult(
                figure_id=f"{base.figure_id}_bands",
                title=f"{base.title} [bands x{len(panels)}]",
                columns=tuple(headers),
                rows=tuple(rows),
                notes=tuple(notes),
            )
        )
    return out


def adaptive_notes(policy: dict, summary: dict) -> tuple[str, str]:
    """The two table notes recording an adaptive family's provenance.

    ``policy`` is the serialized
    :class:`~repro.experiments.scenarios.adaptive.AdaptivePolicy` and
    ``summary`` the per-family counters journaled in the run manifest.
    Both the live report path and ``scenario aggregate`` (reading the
    counters back from disk) build their notes through this function,
    so the two outputs stay byte-identical.
    """
    return (
        (
            f"adaptive replicates: {policy['min_replicates']}.."
            f"{policy['max_replicates']} in waves of {policy['wave']} "
            f"(band tol {policy['band_tol']:g}, "
            f"{policy['stable_waves']} stable waves)"
        ),
        (
            f"converged {summary['rows_converged']}/{summary['n_rows']} grid "
            f"rows; simulated {summary['rows_staged']} member-rows of "
            f"{summary['fixed_rows']} fixed-path equivalent "
            f"({summary['saved_rows']} saved)"
        ),
    )


def _member_cells(table: FigureResult, row: int) -> list:
    """One member row's data cells as floats/None (validated)."""
    out = []
    for col in range(1, len(table.columns)):
        value = table.rows[row][col]
        if value is None:
            out.append(None)
        elif isinstance(value, (bool, str)):
            raise InvalidParameterError(
                f"cannot band non-numeric cell {value!r} in "
                f"{table.figure_id} column {table.columns[col]!r}"
            )
        else:
            out.append(float(value))
    return out


class FamilyAccumulator:
    """Incremental, possibly-ragged band aggregation of one family.

    The fixed path hands :func:`band_tables` the complete
    member-by-panel matrix once everything resolved; the adaptive path
    instead *folds members in as their waves land* — later members
    possibly covering only a subset of grid rows (``rows``) once the
    early rows have converged.  The accumulator keeps per-cell value
    clouds, answers the convergence question (:meth:`row_width`) after
    every fold, and emits band tables in the :func:`band_tables` layout
    plus a per-row ``n_members`` coverage column.

    Every reduction (quantiles, flip spread, consistency counts) is
    order-independent over the value multiset, so the emitted tables
    are byte-identical whatever wave interleaving produced the folds.

    The first member folded must cover the full grid: it defines the
    panel layout, the lead column and the consistency baseline.
    """

    def __init__(
        self,
        band: BandSpec = BandSpec(),
        panel_columns: Sequence[tuple[str, ...]] | None = None,
        provenance: tuple[str, ...] = (),
    ):
        self.band = band
        self.panel_columns = (
            tuple(tuple(cols) for cols in panel_columns)
            if panel_columns is not None
            else None
        )
        self.provenance = tuple(provenance)
        self.members = 0
        self.n_rows = 0
        self._panels: list[FigureResult] | None = None
        #: ``_values[p][r][j]`` — the value cloud of panel ``p``, grid
        #: row ``r``, data column ``j`` (fold order).
        self._values: list[list[list[list]]] = []
        self._coverage: list[int] = []

    def add_member(
        self, tables: Sequence[FigureResult], rows: Sequence[int] | None = None
    ) -> None:
        """Fold one member's panel tables into the clouds.

        ``rows`` names the *global* grid rows the member covers (sorted
        indices into the base member's rows); ``None`` means the full
        grid.  Partial members carry the same panel/column layout with
        ``len(rows)`` table rows.
        """
        if self._panels is None:
            if rows is not None:
                raise InvalidParameterError(
                    "the first family member must cover the full grid"
                )
            tables = list(tables)
            if not tables:
                raise InvalidParameterError("cannot band an empty family")
            self._panels = tables
            self.n_rows = len(tables[0].rows)
            for table in tables:
                if len(table.rows) != self.n_rows:
                    raise InvalidParameterError(
                        f"panel {table.figure_id} has {len(table.rows)} rows, "
                        f"expected {self.n_rows} (family panels must share "
                        "the sweep grid)"
                    )
            self._values = [
                [
                    [[] for _ in range(len(table.columns) - 1)]
                    for _ in range(self.n_rows)
                ]
                for table in tables
            ]
            self._coverage = [0] * self.n_rows
        if len(tables) != len(self._panels):
            raise InvalidParameterError(
                f"family member produced {len(tables)} panels, "
                f"expected {len(self._panels)}"
            )
        row_list = list(range(self.n_rows)) if rows is None else list(rows)
        if rows is not None and any(
            not 0 <= r < self.n_rows for r in row_list
        ):
            raise InvalidParameterError(
                f"member rows {row_list} outside the 0..{self.n_rows - 1} grid"
            )
        for p, table in enumerate(tables):
            base = self._panels[p]
            if len(table.columns) != len(base.columns) or len(table.rows) != len(
                row_list
            ):
                raise InvalidParameterError(
                    f"family member tables of {base.figure_id} disagree in shape"
                )
            for local, r in enumerate(row_list):
                for j, value in enumerate(_member_cells(table, local)):
                    self._values[p][r][j].append(value)
        for r in row_list:
            self._coverage[r] += 1
        self.members += 1

    def coverage(self, r: int) -> int:
        """How many members cover grid row ``r`` so far."""
        return self._coverage[r]

    def row_width(self, r: int) -> float:
        """Worst relative band width across every cell of row ``r``."""
        width = 0.0
        for panel_values in self._values:
            for cloud in panel_values[r]:
                width = max(width, relative_width(cloud, self.band))
        return width

    def finish(self, extra_notes: Sequence[str] = ()) -> list[FigureResult]:
        """The banded tables of everything folded so far."""
        if self._panels is None:
            raise InvalidParameterError("cannot band an empty family")
        band = self.band
        out = []
        for p, base in enumerate(self._panels):
            columns = (
                self.panel_columns[p] if self.panel_columns is not None else ()
            )
            n_data = len(base.columns) - 1

            def _source(j: int) -> str | None:
                return columns[j % len(columns)] if columns else None

            optimum_cols = [
                j for j in range(n_data) if _source(j) in OPTIMUM_COLUMNS
            ]
            headers: list[str] = [base.columns[0]]
            for j in range(n_data):
                name = base.columns[1 + j]
                headers.extend(
                    (
                        f"{name}_med",
                        f"{name}_{band.lo_name}",
                        f"{name}_{band.hi_name}",
                    )
                )
            if optimum_cols:
                headers.append("stable")
                if band.consistency:
                    headers.append("consistency")
            headers.append("n_members")
            rows = []
            n_stable = 0
            for r in range(self.n_rows):
                row: list = [base.rows[r][0]]
                flips = False
                col_values = self._values[p][r]
                for j in range(n_data):
                    row.extend(_band_cells(col_values[j], band))
                    if j in optimum_cols and _flips(col_values[j], band):
                        flips = True
                if optimum_cols:
                    row.append(not flips)
                    n_stable += 0 if flips else 1
                    if band.consistency:
                        row.append(
                            _consistency_score(col_values, optimum_cols, band)
                        )
                row.append(self._coverage[r])
                rows.append(tuple(row))
            notes = [
                f"bands over {self.members} family members "
                f"(median, {band.lo_name}/{band.hi_name} quantiles; "
                "per-row coverage in n_members)"
            ]
            if optimum_cols:
                notes.append(
                    f"optimum pattern stable at {n_stable}/{len(rows)} grid "
                    f"points (rel spread <= {band.flip_tolerance:g} across "
                    "members)"
                )
                if band.consistency:
                    notes.append(
                        "consistency: fraction of members whose optimum "
                        "pattern matches the base member (rel tol <= "
                        f"{band.flip_tolerance:g})"
                    )
            notes.extend(extra_notes)
            notes.extend(self.provenance)
            out.append(
                FigureResult(
                    figure_id=f"{base.figure_id}_bands",
                    title=f"{base.title} [bands x{self.members}]",
                    columns=tuple(headers),
                    rows=tuple(rows),
                    notes=tuple(notes),
                )
            )
        return out
