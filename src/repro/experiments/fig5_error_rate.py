"""Figure 5: impact of the individual error rate (alpha = 0.1, Hera).

Sweep ``lambda_ind`` over 1e-12 .. 1e-8 for scenarios 1, 3, 5 and
regenerate:

* (a) optimal processor count ``P*`` — first-order and numerical, with
  the asymptotic guide lines :math:`\\lambda^{-1/4}` (scenario 1) and
  :math:`\\lambda^{-1/3}` (scenarios 3/5);
* (b) optimal period ``T*`` — guide lines :math:`\\lambda^{-1/2}` and
  :math:`\\lambda^{-1/3}`;
* (c) simulated execution overhead — tending to the 0.1 floor as
  processors become reliable.

The notes carry least-squares slope fits of the numerical optima so the
order claims of Theorems 2-3 are checked quantitatively, not by eye.
"""

from __future__ import annotations

import numpy as np

from ..analysis.asymptotics import fit_loglog_slope
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .spec import AxisSpec, PanelSpec, StudyContext, StudySpec, run_study

__all__ = ["run", "default_lambda_grid", "SPEC"]


def default_lambda_grid() -> np.ndarray:
    """The paper's x-range: 1e-12 .. 1e-8, two points per decade."""
    return np.logspace(-12, -8, 9)


def _expected_orders(sc: int) -> tuple[float, float]:
    """(x, y) in P* = Θ(λ^-x), T* = Θ(λ^-y) per Theorems 2-3."""
    return (0.25, 0.5) if sc in (1, 2) else (1.0 / 3.0, 1.0 / 3.0)


def _slope_notes(ctx: StudyContext, data: dict) -> list[str]:
    lams = np.asarray(ctx.grid, dtype=float)
    notes = []
    for sc in ctx.scenarios:
        x_exp, y_exp = _expected_orders(sc)
        p_fit = fit_loglog_slope(lams, np.asarray(data[sc]["P_num"], dtype=float))
        t_fit = fit_loglog_slope(lams, np.asarray(data[sc]["T_num"], dtype=float))
        notes.append(
            f"scenario {sc}: fitted P* order {p_fit.slope:+.3f} (theory {-x_exp:+.3f}), "
            f"T* order {t_fit.slope:+.3f} (theory {-y_exp:+.3f})"
        )
    return notes


_NOTE = "platform {platform}, alpha={alpha:g}, D={downtime:g}s"

SPEC = StudySpec(
    name="fig5",
    description="sweep of the error rate (alpha = 0.1) with slope fits",
    scenarios=(1, 3, 5),
    platforms=("Hera",),
    axis=AxisSpec(
        name="lambda_ind",
        header="lambda_ind",
        model_kwarg="lambda_ind",
        grid=default_lambda_grid,
    ),
    fixed={"alpha": DEFAULT_ALPHA, "downtime": DEFAULT_DOWNTIME},
    figure_base="fig5_{platform_l}",
    panels=(
        PanelSpec(
            suffix="a_processors",
            title="Figure 5(a) [{platform}]: optimal P* vs lambda_ind (alpha={alpha:g})",
            columns=("P_fo", "P_num"),
            notes=(_NOTE, _slope_notes),
        ),
        PanelSpec(
            suffix="b_period",
            title="Figure 5(b) [{platform}]: optimal T* vs lambda_ind (alpha={alpha:g})",
            columns=("T_fo", "T_num"),
            notes=(_NOTE,),
        ),
        PanelSpec(
            suffix="c_overhead",
            title="Figure 5(c) [{platform}]: simulated overhead vs lambda_ind",
            columns=("H_sim_fo", "H_sim_num"),
            notes=(_NOTE, "overhead tends to the alpha={alpha:g} floor as lambda drops"),
        ),
    ),
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    lambdas: np.ndarray | None = None,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 5 (a)-(c).  Returns three FigureResults."""
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        grid=None if lambdas is None else np.asarray(lambdas, dtype=float),
        fixed={"alpha": alpha, "downtime": downtime},
    )
