"""Figure 5: impact of the individual error rate (alpha = 0.1, Hera).

Sweep ``lambda_ind`` over 1e-12 .. 1e-8 for scenarios 1, 3, 5 and
regenerate:

* (a) optimal processor count ``P*`` — first-order and numerical, with
  the asymptotic guide lines :math:`\\lambda^{-1/4}` (scenario 1) and
  :math:`\\lambda^{-1/3}` (scenarios 3/5);
* (b) optimal period ``T*`` — guide lines :math:`\\lambda^{-1/2}` and
  :math:`\\lambda^{-1/3}`;
* (c) simulated execution overhead — tending to the 0.1 floor as
  processors become reliable.

The notes carry least-squares slope fits of the numerical optima so the
order claims of Theorems 2-3 are checked quantitatively, not by eye.
"""

from __future__ import annotations

import numpy as np

from ..analysis.asymptotics import fit_loglog_slope
from ..core.first_order import optimal_pattern
from ..exceptions import ValidityError
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME
from ..platforms.scenarios import build_model
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline, materialize, private_pipeline

__all__ = ["run", "default_lambda_grid"]


def default_lambda_grid() -> np.ndarray:
    """The paper's x-range: 1e-12 .. 1e-8, two points per decade."""
    return np.logspace(-12, -8, 9)


def _expected_orders(sc: int) -> tuple[float, float]:
    """(x, y) in P* = Θ(λ^-x), T* = Θ(λ^-y) per Theorems 2-3."""
    return (0.25, 0.5) if sc in (1, 2) else (1.0 / 3.0, 1.0 / 3.0)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    lambdas: np.ndarray | None = None,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 5 (a)-(c).  Returns three FigureResults."""
    pipe = pipeline if pipeline is not None else private_pipeline(settings)
    lams = default_lambda_grid() if lambdas is None else np.asarray(lambdas, dtype=float)

    per_sc: dict[int, dict[str, list]] = {
        sc: {"P_fo": [], "P_num": [], "T_fo": [], "T_num": [], "H_fo": [], "H_num": []}
        for sc in scenarios
    }
    for lam in lams:
        for sc in scenarios:
            model = build_model(
                platform, sc, alpha=alpha, downtime=downtime, lambda_ind=float(lam)
            )
            try:
                fo = optimal_pattern(model)
                P_fo, T_fo = fo.processors, fo.period
            except ValidityError:
                P_fo = T_fo = None
            num = optimize_allocation(model)
            store = per_sc[sc]
            store["P_fo"].append(P_fo)
            store["P_num"].append(num.processors)
            store["T_fo"].append(T_fo)
            store["T_num"].append(num.period)
            store["H_fo"].append(
                pipe.simulate_mean(model, T_fo, P_fo, settings) if P_fo is not None else None
            )
            store["H_num"].append(
                pipe.simulate_mean(model, num.period, num.processors, settings)
            )
    pipe.resolve()
    if pipeline is None:
        pipe.close()
    per_sc = materialize(per_sc)

    slope_notes = []
    for sc in scenarios:
        x_exp, y_exp = _expected_orders(sc)
        p_fit = fit_loglog_slope(lams, np.asarray(per_sc[sc]["P_num"], dtype=float))
        t_fit = fit_loglog_slope(lams, np.asarray(per_sc[sc]["T_num"], dtype=float))
        slope_notes.append(
            f"scenario {sc}: fitted P* order {p_fit.slope:+.3f} (theory {-x_exp:+.3f}), "
            f"T* order {t_fit.slope:+.3f} (theory {-y_exp:+.3f})"
        )

    def _rows(key_fo: str, key_num: str) -> tuple[tuple, ...]:
        rows = []
        for i, lam in enumerate(lams):
            row: list = [float(lam)]
            for sc in scenarios:
                row += [per_sc[sc][key_fo][i], per_sc[sc][key_num][i]]
            rows.append(tuple(row))
        return tuple(rows)

    pair_cols = tuple(
        col for sc in scenarios for col in (f"sc{sc}_first_order", f"sc{sc}_optimal")
    )
    base = f"fig5_{platform.lower()}"
    note = f"platform {platform}, alpha={alpha:g}, D={downtime:g}s"
    return [
        FigureResult(
            figure_id=f"{base}a_processors",
            title=f"Figure 5(a) [{platform}]: optimal P* vs lambda_ind (alpha={alpha:g})",
            columns=("lambda_ind",) + pair_cols,
            rows=_rows("P_fo", "P_num"),
            notes=(note,) + tuple(slope_notes),
        ),
        FigureResult(
            figure_id=f"{base}b_period",
            title=f"Figure 5(b) [{platform}]: optimal T* vs lambda_ind (alpha={alpha:g})",
            columns=("lambda_ind",) + pair_cols,
            rows=_rows("T_fo", "T_num"),
            notes=(note,),
        ),
        FigureResult(
            figure_id=f"{base}c_overhead",
            title=f"Figure 5(c) [{platform}]: simulated overhead vs lambda_ind",
            columns=("lambda_ind",) + pair_cols,
            rows=_rows("H_fo", "H_num"),
            notes=(note, f"overhead tends to the alpha={alpha:g} floor as lambda drops"),
        ),
    ]
