"""Deferred, batched simulation for the figure modules.

Figure modules used to call :func:`repro.experiments.common.simulate_mean`
once per (scenario, x-point) — hundreds of small, strictly sequential
``simulate_overhead`` calls per full evaluation, each paying its own
chunk-plan and (with ``--workers``) process-pool setup.  This module
batches them:

* a figure declares every Monte-Carlo point of its sweep up front by
  calling :meth:`SimulationPipeline.simulate_mean`, which returns a
  cheap :class:`Deferred` placeholder instead of a float;
* once the sweep is declared, :meth:`SimulationPipeline.resolve` fuses
  all pending points into one :class:`repro.sim.plan.SimulationPlan`,
  dispatches every chunk job over **one shared**
  :class:`repro.sim.executors.Executor` (serial, pooled or sharded —
  reused across figures by the CLI runner), consults the on-disk
  :class:`~repro.sim.plan.ResultCache`, and fills the placeholders in;
* :func:`materialize` swaps the placeholders inside already-built row
  structures for their values, so figure code keeps its natural
  row-building shape.

Extension studies whose samplers are event-driven (Weibull renewal,
per-node failures) join the same batch through
:meth:`SimulationPipeline.call`: any picklable module-level function
becomes a job on the shared pool, with the same content-addressed
caching.

Every value is **bit-identical** to the sequential per-point path for
the same :class:`~repro.experiments.common.SimSettings`: the planner
replays the exact chunk plans and seed streams of
:func:`repro.sim.montecarlo.simulate_overhead`, and the pool width,
cache state and dispatch order never enter the sampled numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..exceptions import SimulationError
from ..sim.executors import Executor, make_executor
from ..sim.plan import (
    ResultCache,
    SimRequest,
    call_key,
    merge_spans,
    plan_simulations,
    run_job,
    serve_or_expand,
)

#: Claim marker for call keys an executor shard does not own; their
#: deferred values resolve to ``None`` (like a disabled simulation).
_FOREIGN = object()

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (common imports sim)
    from ..core.pattern import PatternModel
    from .common import SimSettings

__all__ = ["Deferred", "SimulationPipeline", "materialize", "private_pipeline"]


class Deferred:
    """Placeholder for a simulation value the pipeline has not run yet."""

    __slots__ = ("_value", "_ready")

    def __init__(self) -> None:
        self._ready = False
        self._value = None

    @classmethod
    def resolved(cls, value) -> "Deferred":
        out = cls()
        out._set(value)
        return out

    def _set(self, value) -> None:
        self._value = value
        self._ready = True

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def value(self):
        if not self._ready:
            raise SimulationError(
                "deferred simulation value read before the pipeline resolved it; "
                "call SimulationPipeline.resolve() first"
            )
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deferred({self._value!r})" if self._ready else "Deferred(<pending>)"


def private_pipeline(settings: "SimSettings") -> "SimulationPipeline":
    """A figure module's fallback pipeline when none was passed in.

    Sized from ``settings.workers`` so a direct ``run(...)`` call with
    ``SimSettings(workers=N)`` keeps its pre-pipeline parallelism (one
    pool for the whole sweep instead of one per point); serial
    otherwise.  The creator must :meth:`SimulationPipeline.close` it
    after resolving.
    """
    return SimulationPipeline(jobs=settings.workers if settings.workers else 1)


def materialize(obj):
    """Replace every :class:`Deferred` inside nested rows by its value."""
    if isinstance(obj, Deferred):
        return obj.value
    if isinstance(obj, tuple):
        return tuple(materialize(v) for v in obj)
    if isinstance(obj, list):
        return [materialize(v) for v in obj]
    if isinstance(obj, dict):
        return {k: materialize(v) for k, v in obj.items()}
    return obj


class SimulationPipeline:
    """Shared pool + caches for all figure sweeps of one invocation.

    Parameters
    ----------
    jobs:
        Worker-process count of the shared pool.  ``None`` auto-sizes
        to the machine; ``0``/``1`` runs serially in-process.  The pool
        is created lazily on the first parallel dispatch and reused by
        every subsequent :meth:`resolve` until :meth:`close`.
    cache_dir:
        Directory of the content-addressed on-disk result cache, or
        ``None`` to disable disk caching.  An in-memory memo always
        deduplicates repeated points within one pipeline lifetime
        (e.g. across the figures of ``repro-experiments all``).
    executor:
        An explicit :class:`repro.sim.executors.Executor` overriding
        the one implied by ``jobs`` — this is how a CLI shard run
        injects a :class:`~repro.sim.executors.ShardedExecutor`.
        Points whose plan key the executor disowns are skipped (their
        deferred values resolve to ``None``); serial and pooled
        executors own everything.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache_dir=None,
        executor: Executor | None = None,
    ):
        self.executor = executor if executor is not None else make_executor(jobs)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self._memo: dict[str, object] = {}
        self._pending: list[tuple[str, object, Deferred]] = []
        self.points_submitted = 0
        self.points_computed = 0
        self.points_skipped = 0

    @property
    def pool(self):
        """The executor's pool (or the executor itself when serial).

        Kept for callers sized off ``pipeline.pool.workers``; dispatch
        goes through :attr:`executor`.
        """
        return getattr(self.executor, "pool", self.executor)

    @property
    def pending_points(self) -> int:
        """Declared-but-unresolved points (see :meth:`resolve`'s ``count``)."""
        return len(self._pending)

    # -- declaring work ----------------------------------------------------

    def simulate_mean(
        self, model: "PatternModel", T: float, P: float, settings: "SimSettings"
    ) -> Deferred:
        """Deferred counterpart of :func:`repro.experiments.common.simulate_mean`.

        Returns a placeholder whose ``.value`` (after :meth:`resolve`)
        is the simulated mean overhead — or ``None`` immediately when
        ``settings.simulate`` is off.
        """
        if not settings.simulate:
            return Deferred.resolved(None)
        n_runs, n_patterns = settings.budget()
        request = SimRequest(
            model=model,
            T=float(T),
            P=float(P),
            n_runs=n_runs,
            n_patterns=n_patterns,
            seed=settings.seed,
            method=settings.method,
            workers=settings.workers,
        )
        deferred = Deferred()
        self._pending.append(("request", request, deferred))
        self.points_submitted += 1
        return deferred

    def call(self, fn: Callable, *args, **kwargs) -> Deferred:
        """Defer a generic simulation call onto the shared pool.

        ``fn`` must be a picklable module-level function whose result is
        a float (the extension studies use this for their event-driven
        sweeps); the result is cached under a key derived from the
        function's qualified name and canonicalised arguments.
        """
        deferred = Deferred()
        self._pending.append(("call", (fn, args, kwargs), deferred))
        self.points_submitted += 1
        return deferred

    # -- running it --------------------------------------------------------

    def resolve(self, count: int | None = None) -> None:
        """Fuse pending points into one plan and dispatch it.

        Incremental: only points declared since the last resolve run;
        the executor and caches persist across rounds.  ``count``
        resolves just the first ``count`` pending points (in
        declaration order) — the streaming runner uses this to emit a
        figure's tables while later figures are still queued.

        With a sharded executor, points whose plan key the shard does
        not own are skipped: their deferred values resolve to ``None``
        and :attr:`points_skipped` counts them.
        """
        if not self._pending:
            return
        if count is None:
            pending, self._pending = self._pending, []
        else:
            pending, self._pending = self._pending[:count], self._pending[count:]

        requests = [item for kind, item, _ in pending if kind == "request"]
        plan = plan_simulations(requests)

        # Serve memo/disk hits, expand the rest into one fused job list
        # (shared with repro.sim.plan.execute_plan), then append the
        # generic call jobs so everything rides one pool dispatch.
        estimates, jobs, spans = serve_or_expand(
            plan, self.cache, self._memo, owned=self.executor.owns
        )

        call_values: dict[str, object] = {}
        call_spans: list[tuple[str, int]] = []  # (key, job index)
        call_slots: list[tuple[object, str]] = []  # (deferred, key) in pending order
        for kind, item, deferred in pending:
            if kind != "call":
                continue
            fn, args, kwargs = item
            key = call_key(fn, args, kwargs)
            call_slots.append((deferred, key))
            if key in call_values:
                continue
            if key in self._memo:
                call_values[key] = self._memo[key]
                continue
            if self.cache is not None:
                hit = self.cache.get_value(key)
                if hit is not None:
                    call_values[key] = self._memo[key] = hit
                    continue
            if not self.executor.owns(key):
                call_values[key] = _FOREIGN
                continue
            call_values[key] = None  # claimed: computed below
            call_spans.append((key, len(jobs)))
            jobs.append((fn, args, kwargs))

        results = self.executor.map(run_job, jobs)
        self.points_computed += len(jobs)

        merge_spans(plan, estimates, spans, results, self.cache, self._memo)
        for key, index in call_spans:
            value = results[index]
            call_values[key] = self._memo[key] = value
            if self.cache is not None:
                self.cache.put_value(key, float(value))

        # Fan values back out to the deferred placeholders.  Estimates
        # can stay None only for foreign-shard points;
        # ``points_skipped`` counts skipped *declarations* (the same
        # unit as ``points_submitted``), so a shard's computed + served
        # + skipped bookkeeping always balances.
        request_iter = iter(plan.slots)
        call_iter = iter(call_slots)
        for kind, _, deferred in pending:
            if kind == "request":
                estimate = estimates[next(request_iter)]
                if estimate is None:
                    self.points_skipped += 1
                deferred._set(None if estimate is None else estimate.mean)
            else:
                _, key = next(call_iter)
                value = call_values[key]
                if value is _FOREIGN:
                    self.points_skipped += 1
                deferred._set(None if value is _FOREIGN else value)

    # -- lifecycle ---------------------------------------------------------

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the on-disk cache, or (0, 0) when disabled."""
        if self.cache is None:
            return (0, 0)
        return (self.cache.hits, self.cache.misses)

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "SimulationPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
