"""Deferred, event-driven batched simulation for the figure modules.

Figure modules used to call :func:`repro.experiments.common.simulate_mean`
once per (scenario, x-point) — hundreds of small, strictly sequential
``simulate_overhead`` calls per full evaluation, each paying its own
chunk-plan and (with ``--workers``) process-pool setup.  This module
batches them:

* a figure declares every Monte-Carlo point of its sweep up front by
  calling :meth:`SimulationPipeline.simulate_mean`, which returns a
  cheap :class:`Deferred` placeholder instead of a float;
* :meth:`SimulationPipeline.resolve` fuses all pending points into one
  :class:`repro.sim.plan.SimulationPlan`, serves memo/disk cache hits
  immediately, and hands the remaining chunk jobs to a
  :class:`repro.sim.scheduler.Scheduler` that keeps a bounded window
  of jobs in flight on the shared
  :class:`repro.sim.executors.Executor` (serial, pooled or sharded —
  reused across figures by the CLI runner).  Each :class:`Deferred`
  resolves the moment the last chunk of *its own point* completes —
  no wave barrier: a slow point never blocks an unrelated one, and the
  caller observes completions point by point via ``on_event``;
* :func:`materialize` swaps the placeholders inside already-built row
  structures for their values, so figure code keeps its natural
  row-building shape.

Extension studies whose samplers are event-driven (Weibull renewal,
per-node failures) join the same batch through
:meth:`SimulationPipeline.call`: any picklable module-level function
becomes a scheduled job, with the same content-addressed caching.

Every value is **bit-identical** to the sequential per-point path for
the same :class:`~repro.experiments.common.SimSettings`: the planner
replays the exact chunk plans and seed streams of
:func:`repro.sim.montecarlo.simulate_overhead`, per-point merging is
in chunk order (never completion order), and the pool width, cache
state, in-flight window and completion interleaving never enter the
sampled numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..exceptions import SimulationError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACE
from .analytic import AnalyticMemo, evaluate_analytic
from ..sim.executors import Executor, make_executor
from ..sim.plan import (
    ResultCache,
    SimRequest,
    call_key,
    claim_serve_expand,
    merge_request_results,
    plan_simulations,
    request_jobs,
    request_key,
)
from ..sim.scheduler import RetryPolicy, Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (common imports sim)
    from ..core.pattern import PatternModel
    from .common import SimSettings

__all__ = [
    "Deferred",
    "PointEvent",
    "SimulationPipeline",
    "materialize",
    "private_pipeline",
]


class Deferred:
    """Placeholder for a simulation value the pipeline has not run yet."""

    __slots__ = ("_value", "_ready")

    def __init__(self) -> None:
        self._ready = False
        self._value = None

    @classmethod
    def resolved(cls, value) -> "Deferred":
        out = cls()
        out._set(value)
        return out

    def _set(self, value) -> None:
        self._value = value
        self._ready = True

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def value(self):
        if not self._ready:
            raise SimulationError(
                "deferred simulation value read before the pipeline resolved it; "
                "call SimulationPipeline.resolve() first"
            )
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deferred({self._value!r})" if self._ready else "Deferred(<pending>)"


@dataclass(frozen=True)
class PointEvent:
    """One declared point resolving (the ``on_event`` payload).

    ``status`` says how the value materialized: ``"computed"`` (its
    chunk jobs ran this round), ``"served"`` (memo or disk cache), or
    ``"skipped"`` (a sharded executor did not claim it; the value is
    ``None``).  ``group`` is the study label active when the point was
    declared (see :attr:`SimulationPipeline.current_group`).  ``key``
    is the point's content-addressed plan key — what the run manifest
    journals so an interrupted run can be resumed; duplicates of one
    key fire one event each, all carrying the same key.
    """

    group: str | None
    status: str
    key: str | None = None


def private_pipeline(settings: "SimSettings") -> "SimulationPipeline":
    """A figure module's fallback pipeline when none was passed in.

    Sized from ``settings.workers`` so a direct ``run(...)`` call with
    ``SimSettings(workers=N)`` keeps its pre-pipeline parallelism (one
    pool for the whole sweep instead of one per point); serial
    otherwise.  The creator must :meth:`SimulationPipeline.close` it
    after resolving.
    """
    return SimulationPipeline(jobs=settings.workers if settings.workers else 1)


def materialize(obj):
    """Replace every :class:`Deferred` inside nested rows by its value."""
    if isinstance(obj, Deferred):
        return obj.value
    if isinstance(obj, tuple):
        return tuple(materialize(v) for v in obj)
    if isinstance(obj, list):
        return [materialize(v) for v in obj]
    if isinstance(obj, dict):
        return {k: materialize(v) for k, v in obj.items()}
    return obj


class SimulationPipeline:
    """Shared scheduler + caches for all figure sweeps of one invocation.

    Parameters
    ----------
    jobs:
        Worker-process count of the shared pool.  ``None`` auto-sizes
        to the machine; ``0``/``1`` runs serially in-process.  The pool
        is created lazily on the first parallel dispatch and reused by
        every subsequent :meth:`resolve` until :meth:`close`.
    cache_dir:
        Directory of the content-addressed on-disk result cache, or
        ``None`` to disable disk caching.  An in-memory memo always
        deduplicates repeated points within one pipeline lifetime
        (e.g. across the figures of ``repro-experiments all``).
    executor:
        An explicit :class:`repro.sim.executors.Executor` overriding
        the one implied by ``jobs`` — this is how a CLI shard run
        injects a :class:`~repro.sim.executors.ShardedExecutor`.
        Points whose plan key the executor does not claim are skipped
        (their deferred values resolve to ``None``); serial and pooled
        executors claim everything.
    max_inflight:
        Bound on concurrently in-flight chunk jobs across the whole
        invocation (the scheduler's global window).  ``None`` sizes it
        from the executor's worker count; ``1`` degenerates to strict
        serial submission order.
    retry:
        The scheduler's :class:`~repro.sim.scheduler.RetryPolicy` for
        transient job failures.  The sentinel ``"default"`` uses the
        scheduler's own default policy; ``None`` restores fail-fast.
    fault:
        A deterministic :class:`~repro.sim.faults.FaultPlan` threaded
        into every scheduling round (dev/test harness).
    trace:
        A :class:`~repro.obs.trace.TraceWriter` journaling this
        invocation's span/point events (``--trace``), or ``None`` for
        the zero-overhead null writer.
    metrics:
        The invocation's :class:`~repro.obs.metrics.MetricsRegistry`;
        a private registry is created when none is passed, so the
        per-study counters always exist.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache_dir=None,
        executor: Executor | None = None,
        max_inflight: int | None = None,
        retry="default",
        fault=None,
        trace=None,
        metrics=None,
    ):
        self.trace = trace if trace is not None else NULL_TRACE
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.executor = executor if executor is not None else make_executor(jobs)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        if self.cache is not None:
            self.cache.bind_obs(self.trace, self.metrics)
        self.max_inflight = max_inflight
        self.retry = retry
        self.fault = fault
        #: Cross-replicate memo of analytic optima.  Always deduplicates
        #: in memory; persists alongside the npz cache only when disk
        #: caching is on, so ``--no-cache`` runs leave no state behind.
        self.analytic_memo = AnalyticMemo(
            Path(cache_dir) / "analytic_memo.json" if cache_dir is not None else None
        )
        #: Per-group analytic traffic (mirrors the sim counters of
        #: :meth:`pending_report`): points computed vs memo-served.
        self.analytic_counts: dict[str, dict[str, int]] = {}
        self._memo: dict[str, object] = {}
        self._pending: list[tuple] = []  # (kind, item, deferred, group)
        #: Label attached to subsequently declared points (the staging
        #: engine sets it to the study name around each declare phase).
        self.current_group: str | None = None
        self.points_submitted = 0
        self.points_computed = 0
        self.points_skipped = 0
        #: Scheduling rounds resolved so far (trace round numbering).
        self._rounds = 0

    @property
    def pool(self):
        """The executor's pool (or the executor itself when serial).

        Kept for callers sized off ``pipeline.pool.workers``; dispatch
        goes through :attr:`executor`.
        """
        return getattr(self.executor, "pool", self.executor)

    @property
    def pending_points(self) -> int:
        """Declared-but-unresolved points (see :meth:`resolve`'s ``count``)."""
        return len(self._pending)

    # -- declaring work ----------------------------------------------------

    def simulate_mean(
        self, model: "PatternModel", T: float, P: float, settings: "SimSettings"
    ) -> Deferred:
        """Deferred counterpart of :func:`repro.experiments.common.simulate_mean`.

        Returns a placeholder whose ``.value`` (after :meth:`resolve`)
        is the simulated mean overhead — or ``None`` immediately when
        ``settings.simulate`` is off.
        """
        if not settings.simulate:
            return Deferred.resolved(None)
        n_runs, n_patterns = settings.budget()
        request = SimRequest(
            model=model,
            T=float(T),
            P=float(P),
            n_runs=n_runs,
            n_patterns=n_patterns,
            seed=settings.seed,
            method=settings.method,
            workers=settings.workers,
        )
        deferred = Deferred()
        self._pending.append(("request", request, deferred, self.current_group))
        self.points_submitted += 1
        return deferred

    def call(self, fn: Callable, *args, **kwargs) -> Deferred:
        """Defer a generic simulation call onto the shared scheduler.

        ``fn`` must be a picklable module-level function whose result is
        a float (the extension studies use this for their event-driven
        sweeps); the result is cached under a key derived from the
        function's qualified name and canonicalised arguments.
        """
        deferred = Deferred()
        self._pending.append(("call", (fn, args, kwargs), deferred, self.current_group))
        self.points_submitted += 1
        return deferred

    def evaluate_analytic(self, models) -> list:
        """Analytic optima for a column of models, via the shared memo.

        Batched counterpart of the per-cell ``optimal_pattern`` /
        ``optimize_allocation`` calls the sweep evaluator used to make
        inline (see :mod:`repro.experiments.analytic`); unlike the sim
        columns the values come back immediately, not deferred.  The
        served/computed split is attributed to :attr:`current_group`,
        like sim declarations.
        """
        points, evaluated, served = evaluate_analytic(models, self.analytic_memo)
        label = self.current_group if self.current_group is not None else "(ungrouped)"
        entry = self.analytic_counts.setdefault(
            label, {"evaluated": 0, "served": 0}
        )
        entry["evaluated"] += evaluated
        entry["served"] += served
        self.metrics.counter("analytic", study=label, kind="evaluated").inc(evaluated)
        self.metrics.counter("analytic", study=label, kind="served").inc(served)
        if self.trace.enabled:
            self.trace.event(
                "analytic_batch", study=label, evaluated=evaluated, served=served
            )
            if served:
                self.trace.event("memo_serve", study=label, count=served)
        return points

    def pending_keys(self) -> list[str]:
        """Plan keys of the pending declarations (deduplicated, in order).

        The resume path validates a run manifest against exactly this
        set: a journaled fate whose key is no longer pending is stale
        (the plan changed — different backend version, budget, seed…)
        and must not be reused.
        """
        keys: list[str] = []
        seen: set[str] = set()
        for kind, item, _, _ in self._pending:
            if kind == "request":
                key = request_key(item)
            else:
                fn, args, kwargs = item
                key = call_key(fn, args, kwargs)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    # -- previewing it (dry runs) ------------------------------------------

    def pending_report(self) -> dict[str, dict[str, int]]:
        """Planned-work summary per study group, without executing.

        For every group (in first-declaration order): declared points,
        unique new keys, points deduplicated against compute planned by
        earlier declarations, points served without compute (in-memory
        memo or disk cache), points left to compute, and the chunk jobs
        they expand into.  Every point lands in exactly **one** of
        ``deduped`` / ``cache_hits`` / ``to_compute`` — a duplicate of
        a cache-served key counts as a cache hit in *its own* study
        (that is what resolve will report), never as a second expected
        disk hit for the study that declared it first, so summing the
        per-study rows can neither double-report nor drop hits.  Pure
        preview — pending points stay pending, and the cache's
        hit/miss accounting is untouched.

        Each entry also carries ``analytic_evaluated`` /
        ``analytic_served``: the group's analytic-engine traffic so far
        (those points resolve at declare time, so unlike the sim
        counters they describe work already done).  Groups that only
        did analytic work (``--no-sim`` previews) get a row too.

        The preview flows through the invocation's metrics registry
        (``plan{study,field}`` counters, refreshed on every call) —
        the returned dict is assembled *from* the registry, so dry-run
        consumers may read either surface.
        """
        fields = (
            "points",
            "unique",
            "deduped",
            "cache_hits",
            "to_compute",
            "jobs",
            "analytic_evaluated",
            "analytic_served",
        )
        self.metrics.clear("plan")
        entries: dict[str, dict] = {}

        def _entry(group: str) -> dict:
            entry = entries.get(group)
            if entry is None:
                entry = {
                    f: self.metrics.counter("plan", study=group, field=f)
                    for f in fields
                }
                entries[group] = entry
            return entry

        #: First-seen fate per plan key: ``True`` when the point will be
        #: served without compute (memo/disk), ``False`` when its jobs
        #: must run this round.
        served: dict[str, bool] = {}
        for kind, item, _, group in self._pending:
            entry = _entry(group if group is not None else "(ungrouped)")
            entry["points"].inc()
            if kind == "request":
                key = request_key(item)
            else:
                fn, args, kwargs = item
                key = call_key(fn, args, kwargs)
            if key in served:
                # A later declaration of an already-classified key: it
                # shares its representative's fate, whichever study
                # staged that representative.
                entry["cache_hits" if served[key] else "deduped"].inc()
                continue
            if key in self._memo:
                served[key] = True
                entry["cache_hits"].inc()
                continue
            entry["unique"].inc()
            if self.cache is not None and self.cache.contains(key):
                served[key] = True
                entry["cache_hits"].inc()
                continue
            served[key] = False
            entry["to_compute"].inc()
            entry["jobs"].inc(len(request_jobs(item)) if kind == "request" else 1)
        for group, counts in self.analytic_counts.items():
            entry = _entry(group)
            entry["analytic_evaluated"].inc(counts["evaluated"])
            entry["analytic_served"].inc(counts["served"])
        report: dict[str, dict[str, int]] = {}
        for labels, metric in self.metrics.labeled("plan"):
            report.setdefault(labels["study"], {})[labels["field"]] = metric.value
        return report

    # -- running it --------------------------------------------------------

    def resolve(
        self,
        count: int | None = None,
        max_inflight: int | None = None,
        on_event: Callable[[PointEvent], None] | None = None,
        on_round: Callable[[], object] | None = None,
    ) -> None:
        """Schedule pending points; deferreds fill as futures complete.

        Incremental: only points declared since the last resolve run;
        the executor and caches persist across rounds.  ``count``
        restricts the round to the first ``count`` pending points (in
        declaration order) — kept for wave-style callers; the CLI
        runner schedules *everything* in one round and relies on
        ``on_event`` firing per resolved declaration to stream output.

        ``on_round`` turns one resolve call into a *staging loop*:
        callbacks (``on_event`` handlers, or ``on_round`` itself) may
        declare **new** points mid-round — they join the next round,
        deduplicating against everything already computed this
        invocation through the in-memory memo and the disk cache.
        After each round drains, ``on_round()`` is invoked (a safety
        net for callers whose staging is driven by events that may not
        fire, e.g. analytic-only studies); resolve keeps looping while
        ``on_round()`` returns truthy ("I advanced something") or
        points are pending.  Without ``on_round`` the behaviour is the
        single-round one, unchanged.
        """
        self._resolve_round(count, max_inflight, on_event)
        if on_round is None:
            return
        while True:
            progressed = bool(on_round())
            if self._pending:
                self._resolve_round(None, max_inflight, on_event)
                continue
            if not progressed:
                return

    def _resolve_round(
        self,
        count: int | None = None,
        max_inflight: int | None = None,
        on_event: Callable[[PointEvent], None] | None = None,
    ) -> None:
        """One scheduling round over the currently-pending points."""
        if not self._pending:
            return
        self._rounds += 1
        round_no = self._rounds
        if count is None:
            pending, self._pending = self._pending, []
        else:
            pending, self._pending = self._pending[:count], self._pending[count:]

        requests = [item for kind, item, _, _ in pending if kind == "request"]
        plan = plan_simulations(requests)

        # Cache-serve short-circuit + one batched claim + tagged
        # expansion (slowest backend first, as always).
        estimates, tagged_jobs, books = claim_serve_expand(
            plan, self.cache, self._memo, executor=self.executor
        )

        # Declaration bookkeeping: which deferreds each unique request /
        # call key fans out to (duplicates share one computation).
        point_decls: dict[int, list[tuple[Deferred, str | None]]] = {}
        call_decls: dict[str, list[tuple[Deferred, str | None]]] = {}
        call_items: list[tuple[str, tuple]] = []  # first-seen call keys
        slot_iter = iter(plan.slots)
        for kind, item, deferred, group in pending:
            if kind == "request":
                point_decls.setdefault(next(slot_iter), []).append((deferred, group))
            else:
                fn, args, kwargs = item
                key = call_key(fn, args, kwargs)
                if key not in call_decls:
                    call_items.append((key, item))
                call_decls.setdefault(key, []).append((deferred, group))

        def deliver(decls, value, status, key=None) -> None:
            for deferred, group in decls:
                if status == "skipped":
                    self.points_skipped += 1
                self.metrics.counter(
                    "points",
                    study=group if group is not None else "(ungrouped)",
                    status=status,
                ).inc()
                deferred._set(value)
                if self.trace.enabled:
                    self.trace.event("point", study=group, status=status, key=key)
                if on_event is not None:
                    on_event(PointEvent(group=group, status=status, key=key))

        # Serve/skip calls: memo, disk cache, then one claim batch for
        # the rest (mirrors the request path; a work-stealing shard
        # claims exclusively in its deterministic claim order).
        call_jobs: list[tuple[str, tuple]] = []
        unserved_calls: list[tuple[str, tuple]] = []
        for key, item in call_items:
            if key in self._memo:
                deliver(call_decls[key], self._memo[key], "served", key)
                continue
            if self.cache is not None:
                hit = self.cache.get_value(key)
                if hit is not None:
                    self._memo[key] = hit
                    deliver(call_decls[key], hit, "served", key)
                    continue
            unserved_calls.append((key, item))
        claimed_calls = set(self.executor.claim([key for key, _ in unserved_calls]))
        for key, item in unserved_calls:
            if key in claimed_calls:
                call_jobs.append((key, item))
            else:
                deliver(call_decls[key], None, "skipped", key)

        # Serve/skip requests whose value needs no job this round.
        for i, decls in point_decls.items():
            if i in books:
                continue  # computing: delivered on its last completion
            estimate = estimates[i]
            if estimate is None:
                deliver(decls, None, "skipped", plan.keys[i])
            else:
                deliver(decls, estimate.mean, "served", plan.keys[i])

        if self.trace.enabled:
            self.trace.event(
                "plan",
                round=round_no,
                points=len(pending),
                unique=len(plan.keys) + len(call_items),
                jobs=len(tagged_jobs) + len(call_jobs),
            )

        # Event-driven dispatch: one global in-flight window over the
        # executor; each point resolves the moment its last chunk lands.
        scheduler = Scheduler(
            self.executor,
            max_inflight if max_inflight is not None else self.max_inflight,
            retry=RetryPolicy() if self.retry == "default" else self.retry,
            fault=self.fault,
            trace=self.trace,
            metrics=self.metrics,
        )
        for job, tag in tagged_jobs:
            scheduler.add(job, tag)
        for key, item in call_jobs:
            scheduler.add(item, ("call", key))
        try:
            with self.trace.span("execute", round=round_no):
                for tag, result in scheduler.events():
                    self.points_computed += 1
                    if tag[0] == "call":
                        key = tag[1]
                        self._memo[key] = result
                        if self.cache is not None:
                            self.cache.put_value(key, float(result))
                        deliver(call_decls[key], result, "computed", key)
                        continue
                    i, part = tag
                    if not books[i].deliver(part, result):
                        continue
                    estimate = merge_request_results(
                        plan.requests[i], plan.methods[i], books[i].parts
                    )
                    estimates[i] = estimate
                    self._memo[plan.keys[i]] = estimate
                    if self.cache is not None:
                        self.cache.put_estimate(plan.keys[i], estimate)
                    deliver(
                        point_decls.get(i, ()), estimate.mean, "computed", plan.keys[i]
                    )
        except BaseException:
            # A failed job must not leak worker processes: shut the
            # executor down (cancelling queued pool work) on the way out.
            self.executor.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the on-disk cache, or (0, 0) when disabled."""
        if self.cache is None:
            return (0, 0)
        return (self.cache.hits, self.cache.misses)

    def close(self) -> None:
        self.analytic_memo.flush()
        self.executor.close()
        if self.trace.enabled and not self.trace.closed:
            # The final metrics snapshot rides the trace, then the
            # journal is sealed — `trace summary` cross-checks the
            # snapshot against the per-event tallies.
            self.trace.event("snapshot", metrics=self.metrics.snapshot())
            self.trace.close()

    def __enter__(self) -> "SimulationPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
