"""Shared infrastructure for the figure-regeneration experiments.

Every experiment module exposes ``run(...) -> list[FigureResult]``; a
:class:`FigureResult` is a printed-series rendition of one (sub)figure
of the paper: one row per x-value, one column per plotted curve, plus
free-text notes carrying the quantitative shape checks (slope fits,
gap bounds) recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..core.pattern import PatternModel
from ..io.csvout import write_csv
from ..io.tables import render_table
from ..sim.montecarlo import FAST, Fidelity, simulate_overhead
from ..sim.rng import DEFAULT_SEED

__all__ = ["FigureResult", "SimSettings", "simulate_mean"]


@dataclass(frozen=True)
class SimSettings:
    """Monte-Carlo switches shared by all experiments.

    ``simulate=False`` turns every simulated column into ``None`` so the
    analytic parts of a figure can be regenerated instantly.
    ``method`` selects the simulation backend (one of
    :data:`repro.sim.montecarlo.METHODS`); the default ``"auto"`` uses
    the aggregated vectorized backend for paper-fidelity budgets and
    the per-pattern batch sampler below the size threshold.
    """

    simulate: bool = True
    fidelity: Fidelity = FAST
    seed: int = DEFAULT_SEED
    method: str = "auto"
    workers: int | None = None

    def budget(self) -> tuple[int, int]:
        return self.fidelity.n_runs, self.fidelity.n_patterns


def simulate_mean(
    model: PatternModel, T: float, P: float, settings: SimSettings
) -> float | None:
    """Simulated mean overhead of PATTERN(T, P), or None when disabled.

    This is the sequential single-point reference path; the figure
    modules batch their sweeps through
    :class:`repro.experiments.pipeline.SimulationPipeline`, which is
    bit-identical to calling this once per point with the same
    settings.
    """
    if not settings.simulate:
        return None
    n_runs, n_patterns = settings.budget()
    est = simulate_overhead(
        model,
        T,
        P,
        n_runs=n_runs,
        n_patterns=n_patterns,
        seed=settings.seed,
        method=settings.method,
        workers=settings.workers,
    )
    return est.mean


@dataclass(frozen=True)
class FigureResult:
    """One regenerated (sub)figure as a printable series table."""

    figure_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    def table(self, floatfmt: str = "{:.6g}") -> str:
        """Aligned ASCII rendition (plus the notes underneath)."""
        text = render_table(self.columns, self.rows, title=self.title, floatfmt=floatfmt)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def to_csv(self, directory: str | Path) -> Path:
        """Write the series to ``<directory>/<figure_id>.csv``."""
        return write_csv(Path(directory) / f"{self.figure_id}.csv", self.columns, self.rows)

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            i = self.columns.index(name)
        except ValueError as exc:
            raise KeyError(f"no column {name!r} in {self.figure_id}") from exc
        return [row[i] for row in self.rows]

    def column_array(self, name: str) -> np.ndarray:
        """Column as a float array with ``None`` mapped to NaN."""
        return np.array(
            [np.nan if v is None else float(v) for v in self.column(name)], dtype=float
        )


def fmt_scenarios(scenarios: Sequence[int]) -> str:
    return ",".join(str(s) for s in scenarios)
