"""Figure 7: impact of the downtime D (alpha = 0.1, Hera).

Sweep the downtime from 0 to 3 hours (repair vs. replacement-based
restoration) for scenarios 1, 3, 5 and regenerate: optimal ``P*``,
optimal ``T*``, and simulated overhead, for both the first-order and
the numerically optimal solutions.

Shape checks (paper, Section IV-B.5): ``D`` does not appear in the
first-order formulas, so the first-order pattern is exactly flat in
``D``; the numerical ``P*`` decreases slightly as ``D`` grows (longer
outages argue for fewer failures, i.e. fewer processors); yet the
*simulated overheads* of the two solutions stay nearly identical
because even a 3-hour downtime is small against the platform MTBF.
"""

from __future__ import annotations

import numpy as np

from ..core.first_order import optimal_pattern
from ..exceptions import ValidityError
from ..optimize.allocation import optimize_allocation
from ..platforms.catalog import DEFAULT_ALPHA
from ..platforms.scenarios import build_model
from ..units import SECONDS_PER_HOUR
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline, materialize, private_pipeline

__all__ = ["run", "default_downtime_grid"]


def default_downtime_grid() -> np.ndarray:
    """0 .. 3 hours in half-hour steps (seconds)."""
    return np.linspace(0.0, 3.0, 7) * SECONDS_PER_HOUR


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    downtimes: np.ndarray | None = None,
    alpha: float = DEFAULT_ALPHA,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 7 (a)-(c).  Returns three FigureResults."""
    pipe = pipeline if pipeline is not None else private_pipeline(settings)
    Ds = default_downtime_grid() if downtimes is None else np.asarray(downtimes, float)

    p_rows, t_rows, h_rows = [], [], []
    for D in Ds:
        hours = float(D) / SECONDS_PER_HOUR
        p_row: list = [hours]
        t_row: list = [hours]
        h_row: list = [hours]
        for sc in scenarios:
            model = build_model(platform, sc, alpha=alpha, downtime=float(D))
            try:
                fo = optimal_pattern(model)
                P_fo, T_fo = fo.processors, fo.period
            except ValidityError:
                P_fo = T_fo = None
            num = optimize_allocation(model)
            H_fo_sim = (
                pipe.simulate_mean(model, T_fo, P_fo, settings) if P_fo is not None else None
            )
            H_num_sim = pipe.simulate_mean(model, num.period, num.processors, settings)
            p_row += [P_fo, num.processors]
            t_row += [T_fo, num.period]
            h_row += [H_fo_sim, H_num_sim]
        p_rows.append(tuple(p_row))
        t_rows.append(tuple(t_row))
        h_rows.append(tuple(h_row))
    pipe.resolve()
    if pipeline is None:
        pipe.close()
    h_rows = materialize(h_rows)

    pair_cols = tuple(
        col for sc in scenarios for col in (f"sc{sc}_first_order", f"sc{sc}_optimal")
    )
    base = f"fig7_{platform.lower()}"
    note = f"platform {platform}, alpha={alpha:g}"
    return [
        FigureResult(
            figure_id=f"{base}a_processors",
            title=f"Figure 7(a) [{platform}]: optimal P* vs downtime (hours)",
            columns=("D_hours",) + pair_cols,
            rows=tuple(p_rows),
            notes=(note, "first-order P* flat in D; numerical P* mildly decreasing"),
        ),
        FigureResult(
            figure_id=f"{base}b_period",
            title=f"Figure 7(b) [{platform}]: optimal T* vs downtime (hours)",
            columns=("D_hours",) + pair_cols,
            rows=tuple(t_rows),
            notes=(note, "first-order T* flat in D"),
        ),
        FigureResult(
            figure_id=f"{base}c_overhead",
            title=f"Figure 7(c) [{platform}]: simulated overhead vs downtime (hours)",
            columns=("D_hours",) + pair_cols,
            rows=tuple(h_rows),
            notes=(note, "first-order and optimal overheads remain close for all D"),
        ),
    ]
