"""Figure 7: impact of the downtime D (alpha = 0.1, Hera).

Sweep the downtime from 0 to 3 hours (repair vs. replacement-based
restoration) for scenarios 1, 3, 5 and regenerate: optimal ``P*``,
optimal ``T*``, and simulated overhead, for both the first-order and
the numerically optimal solutions.

Shape checks (paper, Section IV-B.5): ``D`` does not appear in the
first-order formulas, so the first-order pattern is exactly flat in
``D``; the numerical ``P*`` decreases slightly as ``D`` grows (longer
outages argue for fewer failures, i.e. fewer processors); yet the
*simulated overheads* of the two solutions stay nearly identical
because even a 3-hour downtime is small against the platform MTBF.
"""

from __future__ import annotations

import numpy as np

from ..platforms.catalog import DEFAULT_ALPHA
from ..units import SECONDS_PER_HOUR
from .common import FigureResult, SimSettings
from .pipeline import SimulationPipeline
from .spec import AxisSpec, PanelSpec, StudySpec, run_study

__all__ = ["run", "default_downtime_grid", "SPEC"]


def default_downtime_grid() -> np.ndarray:
    """0 .. 3 hours in half-hour steps (seconds)."""
    return np.linspace(0.0, 3.0, 7) * SECONDS_PER_HOUR


_NOTE = "platform {platform}, alpha={alpha:g}"

SPEC = StudySpec(
    name="fig7",
    description="sweep of the downtime D",
    scenarios=(1, 3, 5),
    platforms=("Hera",),
    axis=AxisSpec(
        name="downtime",
        header="D_hours",
        model_kwarg="downtime",
        grid=default_downtime_grid,
        display=lambda D: float(D) / SECONDS_PER_HOUR,
    ),
    fixed={"alpha": DEFAULT_ALPHA},
    figure_base="fig7_{platform_l}",
    panels=(
        PanelSpec(
            suffix="a_processors",
            title="Figure 7(a) [{platform}]: optimal P* vs downtime (hours)",
            columns=("P_fo", "P_num"),
            notes=(_NOTE, "first-order P* flat in D; numerical P* mildly decreasing"),
        ),
        PanelSpec(
            suffix="b_period",
            title="Figure 7(b) [{platform}]: optimal T* vs downtime (hours)",
            columns=("T_fo", "T_num"),
            notes=(_NOTE, "first-order T* flat in D"),
        ),
        PanelSpec(
            suffix="c_overhead",
            title="Figure 7(c) [{platform}]: simulated overhead vs downtime (hours)",
            columns=("H_sim_fo", "H_sim_num"),
            notes=(_NOTE, "first-order and optimal overheads remain close for all D"),
        ),
    ),
)


def run(
    platform: str = "Hera",
    scenarios: tuple[int, ...] = (1, 3, 5),
    downtimes: np.ndarray | None = None,
    alpha: float = DEFAULT_ALPHA,
    settings: SimSettings = SimSettings(),
    pipeline: SimulationPipeline | None = None,
) -> list[FigureResult]:
    """Regenerate Figure 7 (a)-(c).  Returns three FigureResults."""
    return run_study(
        SPEC,
        platform=platform,
        settings=settings,
        pipeline=pipeline,
        scenarios=scenarios,
        grid=None if downtimes is None else np.asarray(downtimes, float),
        fixed={"alpha": alpha},
    )
