"""repro — *When Amdahl Meets Young/Daly* (Cavelan, Li, Robert, Sun; Cluster 2016).

A production-quality reproduction of the paper's system: the exact
expected execution time of a verified periodic checkpointing pattern
under fail-stop **and** silent errors (Proposition 1), the first-order
optimal period and processor allocation (Theorems 1-3), numerical
optimisers, the four SCR platform parameter sets, two Monte-Carlo
simulators, and a harness regenerating Figures 2-7 of the evaluation.

Quick start
-----------
>>> from repro import build_model, optimal_pattern
>>> model = build_model("Hera", scenario_id=1)       # Table II x Table III
>>> sol = optimal_pattern(model)                      # Theorem 2
>>> round(sol.processors), round(sol.period)
(219, 6239)

Packages
--------
``repro.core``
    Analytical models (speedup, costs, errors, Proposition 1,
    Theorems 1-3, validity bounds, Young/Daly baselines).
``repro.optimize``
    Numerical optimisers for the exact objective.
``repro.platforms``
    Table II platforms and Table III scenarios.
``repro.sim``
    Event-driven and vectorised Monte-Carlo simulators.
``repro.baselines``
    Error-free and fail-stop-only comparison models.
``repro.analysis``
    Slope fits and sensitivity analyses.
``repro.experiments``
    Figure-regeneration harness (also ``python -m repro``).
"""

from ._version import __version__
from .core import (
    AmdahlSpeedup,
    ApplicationSpec,
    CheckpointCost,
    CostRegime,
    ErrorModel,
    FirstOrderSolution,
    GustafsonSpeedup,
    PatternModel,
    PerfectSpeedup,
    PowerLawSpeedup,
    ResilienceCosts,
    SpeedupModel,
    VerificationCost,
    case3_overhead,
    case4_overhead,
    check_pattern,
    daly_period,
    expected_pattern_time,
    optimal_pattern,
    optimal_period,
    overhead_at_optimal_period,
    pattern_overhead,
    project_makespan,
    theorem2_solution,
    theorem3_solution,
    young_period,
)
from .exceptions import (
    InvalidParameterError,
    OptimizationError,
    ReproError,
    SimulationError,
    UnknownPlatformError,
    UnknownScenarioError,
    ValidityError,
)
from .optimize import (
    AllocationResult,
    PeriodResult,
    RelaxationResult,
    optimize_allocation,
    optimize_period,
    relaxation_optimize,
)
from .platforms import (
    PLATFORM_NAMES,
    PLATFORMS,
    SCENARIO_IDS,
    Platform,
    Scenario,
    build_model,
    get_platform,
    get_scenario,
    scenario_costs,
)
from .sim import (
    OverheadEstimate,
    simulate_batch,
    simulate_overhead,
    simulate_run,
)

__all__ = [
    "__version__",
    # core
    "SpeedupModel",
    "AmdahlSpeedup",
    "PerfectSpeedup",
    "GustafsonSpeedup",
    "PowerLawSpeedup",
    "CheckpointCost",
    "VerificationCost",
    "ResilienceCosts",
    "CostRegime",
    "ErrorModel",
    "PatternModel",
    "expected_pattern_time",
    "pattern_overhead",
    "FirstOrderSolution",
    "optimal_period",
    "overhead_at_optimal_period",
    "optimal_pattern",
    "theorem2_solution",
    "theorem3_solution",
    "case3_overhead",
    "case4_overhead",
    "check_pattern",
    "young_period",
    "daly_period",
    "ApplicationSpec",
    "project_makespan",
    # optimize
    "PeriodResult",
    "optimize_period",
    "AllocationResult",
    "optimize_allocation",
    "RelaxationResult",
    "relaxation_optimize",
    # platforms
    "Platform",
    "PLATFORMS",
    "PLATFORM_NAMES",
    "get_platform",
    "Scenario",
    "SCENARIO_IDS",
    "get_scenario",
    "scenario_costs",
    "build_model",
    # sim
    "OverheadEstimate",
    "simulate_overhead",
    "simulate_batch",
    "simulate_run",
    # exceptions
    "ReproError",
    "InvalidParameterError",
    "ValidityError",
    "OptimizationError",
    "SimulationError",
    "UnknownPlatformError",
    "UnknownScenarioError",
]
