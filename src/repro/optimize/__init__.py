"""Numerical optimisation of checkpointing patterns.

The "optimal" reference curves in the paper's figures are numerical
minimisations of the exact overhead from Proposition 1; this package
provides those solvers:

``scalar``
    Bracket / golden-section / Brent primitives (scipy-free).
``grid``
    Log-space zooming grid search (processor counts span 1e0..1e13).
``period``
    Optimal ``T`` for fixed ``P`` (scalar and vectorised-batch forms).
``allocation``
    Joint ``(T, P)`` optimum — the paper's "optimal" solution.
``relaxation``
    Alternating T/P fixed-point baseline (Jin et al. style).
"""

from .allocation import AllocationResult, optimize_allocation, optimize_allocation_batch
from .grid import (
    BatchGridResult,
    GridResult,
    log_grid,
    refine_log_minimum,
    refine_log_minimum_batch,
)
from .period import (
    PeriodResult,
    optimize_period,
    optimize_period_batch,
    optimize_period_batch_grouped,
)
from .relaxation import RelaxationResult, relaxation_optimize
from .scalar import ScalarResult, bracket_minimum, brent, golden_section, minimize_scalar

__all__ = [
    "ScalarResult",
    "bracket_minimum",
    "golden_section",
    "brent",
    "minimize_scalar",
    "GridResult",
    "BatchGridResult",
    "log_grid",
    "refine_log_minimum",
    "refine_log_minimum_batch",
    "PeriodResult",
    "optimize_period",
    "optimize_period_batch",
    "optimize_period_batch_grouped",
    "AllocationResult",
    "optimize_allocation",
    "optimize_allocation_batch",
    "RelaxationResult",
    "relaxation_optimize",
]
