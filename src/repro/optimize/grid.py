"""Logarithmic grid-search utilities.

The numerical processor-allocation optimum spans two orders of magnitude
on the real platforms (Figure 2) and up to *eleven* in the perfectly
parallel sweeps (Figure 6, :math:`P^* \\sim \\lambda^{-1}` at
:math:`\\lambda = 10^{-12}`).  A linear scan is hopeless there; instead
we search in :math:`\\log_{10} P` with iterative zoom: evaluate on a
coarse grid, keep the best point, re-grid between its neighbours, and
repeat until the grid spacing is below tolerance.  Each zoom multiplies
resolution by ``(points - 1) / 2``, giving geometric convergence with a
budget of ``points * rounds`` evaluations.

The zoom loop assumes unimodality on the searched interval (true for the
overhead objective: parallelism gains vs. growing error rates produce a
single interior optimum, or a monotone edge case which the caller
detects via the boundary flags).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import OptimizationError

__all__ = ["GridResult", "log_grid", "refine_log_minimum"]


@dataclass(frozen=True)
class GridResult:
    """Outcome of a zooming log-grid search.

    Attributes
    ----------
    x:
        Argmin estimate (linear scale).
    fun:
        Objective value at ``x``.
    nfev:
        Total objective evaluations.
    at_lower / at_upper:
        The final minimum sits on the original interval edge — the
        objective is (numerically) monotone there and ``x`` is a
        boundary solution, not an interior optimum.
    """

    x: float
    fun: float
    nfev: int
    at_lower: bool
    at_upper: bool

    @property
    def interior(self) -> bool:
        return not (self.at_lower or self.at_upper)


def log_grid(lo: float, hi: float, points: int) -> np.ndarray:
    """Geometrically spaced grid on ``[lo, hi]`` (inclusive)."""
    if lo <= 0.0 or hi <= lo:
        raise OptimizationError(f"invalid log-grid range [{lo}, {hi}]")
    if points < 2:
        raise OptimizationError(f"need at least 2 grid points, got {points}")
    return np.logspace(np.log10(lo), np.log10(hi), points)


def refine_log_minimum(
    f: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    points: int = 33,
    rounds: int = 14,
    rtol: float = 1e-10,
) -> GridResult:
    """Minimise a vectorised objective over ``[lo, hi]`` in log space.

    Parameters
    ----------
    f:
        Vectorised objective: maps an ndarray of abscissae to an ndarray
        of values.  Non-finite values are treated as ``+inf`` (useful
        when parts of the domain overflow).
    lo, hi:
        Search interval (must be positive).
    points:
        Grid points per round.
    rounds:
        Maximum zoom rounds.
    rtol:
        Stop when the relative grid spacing drops below this.

    Returns
    -------
    GridResult
        With boundary flags when the optimum never left the original
        interval edges (monotone objective).
    """
    nfev = 0
    xs = log_grid(lo, hi, points)
    orig_lo, orig_hi = lo, hi
    best_x = xs[0]
    best_f = np.inf
    for _ in range(rounds):
        fs = np.asarray(f(xs), dtype=float)
        nfev += xs.size
        fs = np.where(np.isfinite(fs), fs, np.inf)
        if not np.any(np.isfinite(fs)):
            raise OptimizationError("objective is non-finite over the whole grid")
        i = int(np.argmin(fs))
        if fs[i] < best_f:
            best_f = float(fs[i])
            best_x = float(xs[i])
        # Zoom between the neighbours of the best grid point.
        lo_i = xs[max(i - 1, 0)]
        hi_i = xs[min(i + 1, xs.size - 1)]
        if hi_i / lo_i - 1.0 < rtol:
            break
        xs = log_grid(lo_i, hi_i, points)
    edge_tol = 1.0 + 10.0 * rtol
    at_lower = best_x / orig_lo < edge_tol
    at_upper = orig_hi / best_x < edge_tol
    return GridResult(x=best_x, fun=best_f, nfev=nfev, at_lower=at_lower, at_upper=at_upper)
