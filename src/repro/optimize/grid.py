"""Logarithmic grid-search utilities.

The numerical processor-allocation optimum spans two orders of magnitude
on the real platforms (Figure 2) and up to *eleven* in the perfectly
parallel sweeps (Figure 6, :math:`P^* \\sim \\lambda^{-1}` at
:math:`\\lambda = 10^{-12}`).  A linear scan is hopeless there; instead
we search in :math:`\\log_{10} P` with iterative zoom: evaluate on a
coarse grid, keep the best point, re-grid between its neighbours, and
repeat until the grid spacing is below tolerance.  Each zoom multiplies
resolution by ``(points - 1) / 2``, giving geometric convergence with a
budget of ``points * rounds`` evaluations.

The zoom loop assumes unimodality on the searched interval (true for the
overhead objective: parallelism gains vs. growing error rates produce a
single interior optimum, or a monotone edge case which the caller
detects via the boundary flags).

:func:`refine_log_minimum_batch` is the engine: it zooms many columns at
once (one objective call per round evaluates a ``(points, columns)``
matrix) with per-column convergence masking, so every log-zoom in the
package — the scalar :func:`refine_log_minimum`, the relaxation
baseline's allocation half-step, and the outer loop of
:func:`repro.optimize.allocation.optimize_allocation_batch` — shares one
code path.  Per column the iteration order, break condition and best-so-
far tracking replicate the historical scalar loop exactly, and numpy's
elementwise kernels are value-deterministic regardless of array width,
so batched columns are bit-identical to one-at-a-time solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import OptimizationError

__all__ = [
    "GridResult",
    "BatchGridResult",
    "log_grid",
    "refine_log_minimum",
    "refine_log_minimum_batch",
]


@dataclass(frozen=True)
class GridResult:
    """Outcome of a zooming log-grid search.

    Attributes
    ----------
    x:
        Argmin estimate (linear scale).
    fun:
        Objective value at ``x``.
    nfev:
        Total objective evaluations.
    at_lower / at_upper:
        The final minimum sits on the original interval edge — the
        objective is (numerically) monotone there and ``x`` is a
        boundary solution, not an interior optimum.
    """

    x: float
    fun: float
    nfev: int
    at_lower: bool
    at_upper: bool

    @property
    def interior(self) -> bool:
        return not (self.at_lower or self.at_upper)


@dataclass(frozen=True)
class BatchGridResult:
    """Per-column outcome of a batched zooming log-grid search.

    Attributes
    ----------
    x, fun:
        Per-column argmin estimates and objective values.
    aux:
        Per-column auxiliary payload captured at each column's best
        point (``None`` unless the objective returned one) — the batch
        allocation optimiser threads the inner optimal period through
        this channel instead of re-solving it at the end.
    nfev:
        Per-column objective evaluations (``points`` per executed round).
    rounds:
        Zoom rounds each column executed before converging.
    at_lower / at_upper:
        Per-column boundary flags against the *original* interval.
    """

    x: np.ndarray
    fun: np.ndarray
    aux: np.ndarray | None
    nfev: np.ndarray
    rounds: np.ndarray
    at_lower: np.ndarray
    at_upper: np.ndarray


def log_grid(lo: float, hi: float, points: int) -> np.ndarray:
    """Geometrically spaced grid on ``[lo, hi]`` (inclusive).

    Vectorised over array ``lo``/``hi`` (columns of a batched zoom):
    per column the values are bit-identical to a scalar call.
    """
    if np.any(np.asarray(lo) <= 0.0) or np.any(np.asarray(hi) <= np.asarray(lo)):
        raise OptimizationError(f"invalid log-grid range [{lo}, {hi}]")
    if points < 2:
        raise OptimizationError(f"need at least 2 grid points, got {points}")
    return np.logspace(np.log10(lo), np.log10(hi), points)


def refine_log_minimum_batch(
    f: Callable[[np.ndarray, np.ndarray], np.ndarray],
    lo,
    hi,
    points: int = 33,
    rounds: int = 14,
    rtol: float = 1e-10,
    init_x=None,
    require_finite: bool = True,
    track_aux: bool = False,
) -> BatchGridResult:
    """Minimise a column-vectorised objective over per-column intervals.

    Parameters
    ----------
    f:
        Objective ``f(xs, idx)`` where ``xs`` is a ``(points, k)``
        abscissa matrix for the ``k`` still-active columns and ``idx``
        their original column indices; returns a matching value matrix
        (or a ``(values, aux)`` pair when ``track_aux``).  Non-finite
        values are treated as ``+inf``.  Converged columns are dropped
        from subsequent calls, so expensive objectives never waste work
        on frozen columns.
    lo, hi:
        Per-column search intervals (scalars broadcast to all columns).
    init_x:
        Per-column fallback argmin reported if a column's objective
        never produces a finite value (the historical scalar loops
        return the lower bound there).  Required when
        ``require_finite`` is off; ignored otherwise because the first
        round always improves on ``+inf``.
    require_finite:
        Raise :class:`OptimizationError` when any active column's round
        evaluates non-finite everywhere (the scalar
        :func:`refine_log_minimum` contract); with it off such columns
        keep zooming and fall back to ``init_x``.
    track_aux:
        Capture the objective's auxiliary payload at each column's
        best-so-far point.

    Returns
    -------
    BatchGridResult
        Per-column argmins, objective values, evaluation counts and
        boundary flags against the original intervals.
    """
    lo = np.atleast_1d(np.asarray(lo, dtype=float)).copy()
    hi = np.atleast_1d(np.asarray(hi, dtype=float)).copy()
    if lo.shape != hi.shape:
        lo, hi = np.broadcast_arrays(lo, hi)
        lo, hi = lo.copy(), hi.copy()
    n = lo.size
    if init_x is None:
        if not require_finite:
            raise OptimizationError(
                "refine_log_minimum_batch needs init_x when require_finite is off"
            )
        best_x = np.full(n, np.nan)
    else:
        best_x = np.broadcast_to(np.asarray(init_x, dtype=float), (n,)).astype(float)
        best_x = best_x.copy()
    orig_lo, orig_hi = lo.copy(), hi.copy()
    best_f = np.full(n, np.inf)
    best_aux = np.full(n, np.nan) if track_aux else None
    nfev = np.zeros(n, dtype=int)
    executed = np.zeros(n, dtype=int)
    active = np.ones(n, dtype=bool)
    for _ in range(rounds):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        xs = log_grid(lo[idx], hi[idx], points)
        out = f(xs, idx)
        fs, aux = out if track_aux else (out, None)
        fs = np.where(np.isfinite(np.asarray(fs, dtype=float)), fs, np.inf)
        nfev[idx] += points
        executed[idx] += 1
        finite_cols = np.any(np.isfinite(fs), axis=0)
        if require_finite and not np.all(finite_cols):
            raise OptimizationError("objective is non-finite over the whole grid")
        i = np.argmin(fs, axis=0)
        cols = np.arange(idx.size)
        round_best = fs[i, cols]
        better = round_best < best_f[idx]
        upd = idx[better]
        best_f[upd] = round_best[better]
        best_x[upd] = xs[i[better], cols[better]]
        if track_aux:
            best_aux[upd] = np.asarray(aux)[i[better], cols[better]]
        # Zoom between the neighbours of each column's best grid point.
        lo_i = xs[np.maximum(i - 1, 0), cols]
        hi_i = xs[np.minimum(i + 1, points - 1), cols]
        done = hi_i / lo_i - 1.0 < rtol
        lo[idx] = lo_i
        hi[idx] = hi_i
        active[idx[done]] = False
    edge_tol = 1.0 + 10.0 * rtol
    return BatchGridResult(
        x=best_x,
        fun=best_f,
        aux=best_aux,
        nfev=nfev,
        rounds=executed,
        at_lower=best_x / orig_lo < edge_tol,
        at_upper=orig_hi / best_x < edge_tol,
    )


def refine_log_minimum(
    f: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    points: int = 33,
    rounds: int = 14,
    rtol: float = 1e-10,
) -> GridResult:
    """Minimise a vectorised objective over ``[lo, hi]`` in log space.

    Single-column front-end of :func:`refine_log_minimum_batch` (the
    historical scalar entry point — identical iteration, break and
    best-tracking semantics).

    Parameters
    ----------
    f:
        Vectorised objective: maps an ndarray of abscissae to an ndarray
        of values.  Non-finite values are treated as ``+inf`` (useful
        when parts of the domain overflow).
    lo, hi:
        Search interval (must be positive).
    points:
        Grid points per round.
    rounds:
        Maximum zoom rounds.
    rtol:
        Stop when the relative grid spacing drops below this.

    Returns
    -------
    GridResult
        With boundary flags when the optimum never left the original
        interval edges (monotone objective).
    """
    result = refine_log_minimum_batch(
        lambda xs, idx: np.asarray(f(xs[:, 0]), dtype=float)[:, None],
        lo,
        hi,
        points=points,
        rounds=rounds,
        rtol=rtol,
    )
    return GridResult(
        x=float(result.x[0]),
        fun=float(result.fun[0]),
        nfev=int(result.nfev[0]),
        at_lower=bool(result.at_lower[0]),
        at_upper=bool(result.at_upper[0]),
    )
