"""One-dimensional minimisation primitives.

The numerical "optimal" reference results in the paper's figures come
from minimising the *exact* overhead of Proposition 1 — a smooth,
strictly unimodal function of ``T`` (for fixed ``P``) and, in practice,
of ``log P`` (for ``T`` at its inner optimum).  We implement the classic
bracket / golden-section / Brent trio from first principles so the
optimisation path is fully deterministic and dependency-light; the test
suite cross-validates every routine against ``scipy.optimize``.

All routines minimise; maximise by negating the objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..exceptions import OptimizationError

__all__ = ["ScalarResult", "bracket_minimum", "golden_section", "brent", "minimize_scalar"]

#: Golden ratio constants.
_GOLD = (math.sqrt(5.0) - 1.0) / 2.0  # ~0.618
_GROW = 1.0 + (math.sqrt(5.0) + 1.0) / 2.0  # bracket growth factor


@dataclass(frozen=True)
class ScalarResult:
    """Outcome of a scalar minimisation.

    Attributes
    ----------
    x:
        Argmin estimate.
    fun:
        Objective value at ``x``.
    iterations:
        Iterations used by the refinement loop.
    nfev:
        Total objective evaluations (including bracketing).
    converged:
        Whether the tolerance was met before the iteration cap.
    """

    x: float
    fun: float
    iterations: int
    nfev: int
    converged: bool


def bracket_minimum(
    f: Callable[[float], float],
    a: float,
    b: float,
    grow_limit: float = 110.0,
    max_iter: int = 200,
) -> tuple[float, float, float, int]:
    """Expand ``(a, b)`` downhill into a triple ``a < m < b`` with ``f(m)`` lowest.

    Standard downhill bracketing (Numerical Recipes ``mnbrak`` shape):
    starting from two points, walk in the descending direction with
    golden-ratio growth until the function turns upward.

    Returns ``(a, m, b, nfev)`` with ``f(m) <= min(f(a), f(b))``.

    Raises
    ------
    OptimizationError
        If no bracket is found within ``max_iter`` expansions (e.g. the
        function is monotone over the reachable range).
    """
    fa, fb = f(a), f(b)
    nfev = 2
    if fb > fa:  # ensure downhill from a to b
        a, b = b, a
        fa, fb = fb, fa
    m = b + _GROW * (b - a)
    fm = f(m)
    nfev += 1
    it = 0
    while fm < fb:
        if it >= max_iter:
            raise OptimizationError(
                f"no bracket found after {max_iter} expansions; "
                "objective appears monotone"
            )
        step = m - b
        if abs(step) > grow_limit * max(abs(b - a), 1e-300):
            step = grow_limit * (b - a)
        a, b = b, m
        fa, fb = fb, fm
        m = b + _GROW * step if step != 0.0 else b + 1.0
        fm = f(m)
        nfev += 1
        it += 1
    lo, hi = (a, m) if a < m else (m, a)
    return lo, b, hi, nfev


def golden_section(
    f: Callable[[float], float],
    a: float,
    b: float,
    xtol: float = 1e-10,
    rtol: float = 1e-10,
    max_iter: int = 500,
) -> ScalarResult:
    """Golden-section search on the interval ``[a, b]``.

    Robust (no derivative or smoothness assumptions beyond unimodality)
    but linearly convergent; used as the fallback when Brent's parabolic
    steps stall.
    """
    if not (a < b):
        raise OptimizationError(f"invalid interval [{a}, {b}]")
    x1 = b - _GOLD * (b - a)
    x2 = a + _GOLD * (b - a)
    f1, f2 = f(x1), f(x2)
    nfev = 2
    it = 0
    while it < max_iter:
        tol = xtol + rtol * (abs(x1) + abs(x2)) / 2.0
        if (b - a) <= tol:
            break
        if f1 <= f2:
            b, x2, f2 = x2, x1, f1
            x1 = b - _GOLD * (b - a)
            f1 = f(x1)
        else:
            a, x1, f1 = x1, x2, f2
            x2 = a + _GOLD * (b - a)
            f2 = f(x2)
        nfev += 1
        it += 1
    if f1 <= f2:
        return ScalarResult(x=x1, fun=f1, iterations=it, nfev=nfev, converged=it < max_iter)
    return ScalarResult(x=x2, fun=f2, iterations=it, nfev=nfev, converged=it < max_iter)


def brent(
    f: Callable[[float], float],
    a: float,
    b: float,
    xtol: float = 1e-12,
    rtol: float = 3e-12,
    max_iter: int = 200,
) -> ScalarResult:
    """Brent's method on ``[a, b]``: parabolic interpolation + golden fallback.

    Superlinear on smooth objectives (ours are analytic), with the
    golden-section guarantee in the worst case.
    """
    if not (a < b):
        raise OptimizationError(f"invalid interval [{a}, {b}]")
    x = w = v = a + _GOLD * (b - a)
    fx = fw = fv = f(x)
    nfev = 1
    d = e = 0.0
    for it in range(max_iter):
        m = 0.5 * (a + b)
        tol = rtol * abs(x) + xtol
        tol2 = 2.0 * tol
        if abs(x - m) <= tol2 - 0.5 * (b - a):
            return ScalarResult(x=x, fun=fx, iterations=it, nfev=nfev, converged=True)
        use_golden = True
        if abs(e) > tol:
            # Fit a parabola through (v, fv), (w, fw), (x, fx).
            r = (x - w) * (fx - fv)
            q = (x - v) * (fx - fw)
            p = (x - v) * q - (x - w) * r
            q = 2.0 * (q - r)
            if q > 0.0:
                p = -p
            q = abs(q)
            e_prev, e = e, d
            if abs(p) < abs(0.5 * q * e_prev) and q * (a - x) < p < q * (b - x):
                d = p / q
                u = x + d
                if (u - a) < tol2 or (b - u) < tol2:
                    d = tol if x < m else -tol
                use_golden = False
        if use_golden:
            e = (b - x) if x < m else (a - x)
            d = (1.0 - _GOLD) * e
        u = x + d if abs(d) >= tol else x + (tol if d > 0.0 else -tol)
        fu = f(u)
        nfev += 1
        if fu <= fx:
            if u < x:
                b = x
            else:
                a = x
            v, w, x = w, x, u
            fv, fw, fx = fw, fx, fu
        else:
            if u < x:
                a = u
            else:
                b = u
            if fu <= fw or w == x:
                v, w = w, u
                fv, fw = fw, fu
            elif fu <= fv or v == x or v == w:
                v, fv = u, fu
    return ScalarResult(x=x, fun=fx, iterations=max_iter, nfev=nfev, converged=False)


def minimize_scalar(
    f: Callable[[float], float],
    bounds: tuple[float, float] | None = None,
    bracket: tuple[float, float] | None = None,
    xtol: float = 1e-12,
    rtol: float = 3e-12,
    max_iter: int = 200,
) -> ScalarResult:
    """Minimise ``f`` over an interval, bracketing automatically if needed.

    Exactly one of ``bounds`` (hard interval for Brent) or ``bracket``
    (two seed points to expand downhill first) must be given.
    """
    if (bounds is None) == (bracket is None):
        raise OptimizationError("provide exactly one of bounds= or bracket=")
    extra_nfev = 0
    if bracket is not None:
        a, _, b, extra_nfev = bracket_minimum(f, bracket[0], bracket[1])
    else:
        a, b = bounds  # type: ignore[misc]
        if not (a < b):
            raise OptimizationError(f"invalid bounds [{a}, {b}]")
    result = brent(f, a, b, xtol=xtol, rtol=rtol, max_iter=max_iter)
    return ScalarResult(
        x=result.x,
        fun=result.fun,
        iterations=result.iterations,
        nfev=result.nfev + extra_nfev,
        converged=result.converged,
    )
