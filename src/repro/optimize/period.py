"""Numerically optimal checkpointing period for a fixed processor count.

The paper's "optimal" reference curves minimise the **exact** expected
overhead :math:`H(T, P) = H(P)\\,E(T, P)/T` of Proposition 1 (no Taylor
truncation), which is what this module computes.  The objective is
smooth and strictly unimodal in ``T`` — it blows up as
:math:`(V_P + C_P)/T` for small ``T`` and as :math:`e^{\\lambda T}/T`
for large ``T`` — so a log-space zoom plus a Brent polish converges to
machine precision in a few dozen evaluations.

A vectorised variant optimises the period for a whole *array* of
processor counts at once (all rounds evaluate a 2-D ``(T, P)`` grid in a
single broadcast call), which is the hot path of the allocation
optimiser and the figure sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.first_order import optimal_period
from ..core.pattern import PatternModel, stack_models
from ..exceptions import OptimizationError
from .scalar import minimize_scalar

__all__ = [
    "PeriodResult",
    "optimize_period",
    "optimize_period_batch",
    "optimize_period_batch_grouped",
]

#: Log-width of the initial search window around the first-order seed.
_SEED_DECADES = 3.0


@dataclass(frozen=True)
class PeriodResult:
    """Numerically optimal period for a fixed ``P``.

    Attributes
    ----------
    period:
        Argmin :math:`T^{opt}_P` of the exact overhead.
    overhead:
        Exact expected overhead at the optimum.
    expected_time:
        Exact expected pattern time :math:`E(T^{opt}_P, P)`.
    nfev:
        Objective evaluations used.
    converged:
        Whether the scalar solver met its tolerance.
    """

    period: float
    overhead: float
    expected_time: float
    nfev: int
    converged: bool


def _seed_period(model: PatternModel, P: float) -> float:
    """First-order T* (Theorem 1) as the centre of the search window."""
    lam_eff = model.errors.fail_stop_rate(P) / 2.0 + model.errors.silent_rate(P)
    if lam_eff <= 0.0:
        raise OptimizationError(
            "the platform is error-free: the optimal period is unbounded "
            "(never checkpoint)"
        )
    return float(optimal_period(P, model.errors, model.costs))


def optimize_period(model: PatternModel, P: float, seed: float | None = None) -> PeriodResult:
    """Minimise the exact overhead over ``T`` for a fixed ``P``.

    Parameters
    ----------
    model:
        The platform/application bundle.
    P:
        Processor count (fixed).
    seed:
        Optional centre for the search window; defaults to the
        first-order optimum of Theorem 1, which is within a small factor
        of the exact optimum everywhere in the validity regime.
    """
    T0 = seed if seed is not None else _seed_period(model, P)
    lo = T0 * 10.0**-_SEED_DECADES
    hi = T0 * 10.0**_SEED_DECADES

    def objective(T: float) -> float:
        value = model.overhead(T, P)
        return float(value) if np.isfinite(value) else np.inf

    result = minimize_scalar(objective, bounds=(lo, hi), rtol=1e-12)
    # If the optimum pinned to the window edge the seed was off; widen once.
    if result.x / lo < 1.001 or hi / result.x < 1.001:
        lo, hi = lo * 1e-3, hi * 1e3
        result = minimize_scalar(objective, bounds=(lo, hi), rtol=1e-12)
        if result.x / lo < 1.001 or hi / result.x < 1.001:
            raise OptimizationError(
                f"optimal period not interior to [{lo:g}, {hi:g}] for P={P:g}; "
                "the overhead appears monotone in T"
            )
    return PeriodResult(
        period=result.x,
        overhead=result.fun,
        expected_time=float(model.expected_time(result.x, P)),
        nfev=result.nfev,
        converged=result.converged,
    )


def _zoom_batch(
    model: PatternModel,
    P: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    points: int,
    rounds: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-column log-space zoom of the exact overhead over ``[lo, hi]``."""
    rows = np.arange(points)[:, None]  # (points, 1)
    cols = np.arange(P.size)
    for _ in range(rounds):
        ratio = hi / lo
        # Per-column geometric grid: lo * ratio**(k/(points-1)).
        Ts = lo[None, :] * ratio[None, :] ** (rows / (points - 1))
        with np.errstate(over="ignore", invalid="ignore"):
            Hs = np.asarray(model.overhead(Ts, P[None, :]), dtype=float)
        Hs = np.where(np.isfinite(Hs), Hs, np.inf)
        best = np.argmin(Hs, axis=0)
        lo = Ts[np.maximum(best - 1, 0), cols]
        hi = Ts[np.minimum(best + 1, points - 1), cols]
        if np.max(hi / lo) - 1.0 < 1e-11:
            break
    T_opt = np.sqrt(lo * hi)
    with np.errstate(over="ignore", invalid="ignore"):
        H_opt = np.asarray(model.overhead(T_opt, P), dtype=float)
    # Overflowed regions of the search domain read as +inf, never NaN,
    # so downstream argmins stay well-defined.
    H_opt = np.where(np.isfinite(H_opt), H_opt, np.inf)
    return T_opt, H_opt


def _zoom_batch_grouped(
    model: PatternModel,
    P: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    points: int,
    rounds: int,
    starts: np.ndarray,
    group_of: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`_zoom_batch` with one break decision per column *group*.

    Each group's columns share the break condition their own scalar
    :func:`_zoom_batch` call would use (max bracket ratio over the
    group's columns only), so a slow-converging group never forces extra
    rounds on an already-converged one.  Converged groups keep their
    brackets frozen; per column the evaluated abscissae, bracket updates
    and break round are bit-identical to a per-group scalar call.
    """
    rows = np.arange(points)[:, None]
    cols = np.arange(P.size)
    active = np.ones(starts.size, dtype=bool)
    col_active = np.ones(P.size, dtype=bool)
    for _ in range(rounds):
        ratio = hi / lo
        Ts = lo[None, :] * ratio[None, :] ** (rows / (points - 1))
        with np.errstate(over="ignore", invalid="ignore"):
            Hs = np.asarray(model.overhead(Ts, P[None, :]), dtype=float)
        Hs = np.where(np.isfinite(Hs), Hs, np.inf)
        best = np.argmin(Hs, axis=0)
        lo = np.where(col_active, Ts[np.maximum(best - 1, 0), cols], lo)
        hi = np.where(col_active, Ts[np.minimum(best + 1, points - 1), cols], hi)
        group_max = np.maximum.reduceat(hi / lo, starts)
        active &= ~(group_max - 1.0 < 1e-11)
        if not active.any():
            break
        col_active = active[group_of]
    T_opt = np.sqrt(lo * hi)
    with np.errstate(over="ignore", invalid="ignore"):
        H_opt = np.asarray(model.overhead(T_opt, P), dtype=float)
    H_opt = np.where(np.isfinite(H_opt), H_opt, np.inf)
    return T_opt, H_opt


def optimize_period_batch_grouped(
    models,
    P: np.ndarray,
    sizes,
    points: int = 17,
    rounds: int = 14,
    seed_decades: float = _SEED_DECADES,
) -> tuple[np.ndarray, np.ndarray]:
    """Period optimisation for several models' ``P`` columns in one sweep.

    ``models`` is a list of scalar-parameter models; model ``g`` owns the
    next ``sizes[g]`` entries of the flat ``P`` array (contiguous,
    model-major layout).  All models are fused into one array-parameter
    model via :func:`repro.core.pattern.stack_models` so every zoom round
    is a single broadcast ``(points, sum(sizes))`` overhead evaluation —
    this is what lets the allocation optimiser resolve a whole grid
    column of models per round instead of looping model by model.

    Per column the result is bit-identical to
    ``optimize_period_batch(models[g], P[block_g])``: the overhead
    evaluators are elementwise, the zoom brackets never interact across
    columns, and each group breaks on its own columns' joint tolerance.

    Returns
    -------
    (T_opt, H_opt):
        Flat arrays aligned with ``P``.
    """
    P = np.asarray(P, dtype=float)
    sizes = np.asarray(sizes, dtype=int)
    if P.ndim != 1 or P.size == 0:
        raise OptimizationError("P must be a non-empty 1-D array")
    if sizes.size != len(models) or np.any(sizes < 1) or sizes.sum() != P.size:
        raise OptimizationError(
            f"group sizes {sizes!r} do not partition {P.size} columns "
            f"over {len(models)} models"
        )
    # A single group needs no stacking: use the model as-is, which also
    # keeps exotic (non-stackable) speedup profiles working.
    stacked = models[0] if len(models) == 1 else stack_models(models, repeat=sizes)
    lam_eff = stacked.errors.fail_stop_rate(P) / 2.0 + stacked.errors.silent_rate(P)
    if np.any(lam_eff <= 0.0):
        raise OptimizationError("error-free platform: optimal period unbounded")
    T0 = np.asarray(optimal_period(P, stacked.errors, stacked.costs), dtype=float)
    lo = T0 * 10.0**-seed_decades
    hi = T0 * 10.0**seed_decades

    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    group_of = np.repeat(np.arange(len(models)), sizes)
    T_opt, H_opt = _zoom_batch_grouped(
        stacked, P, lo, hi, points, rounds, starts, group_of
    )
    pinned = ((T_opt / lo < 1.001) | (hi / T_opt < 1.001)) & np.isfinite(H_opt)
    if np.any(pinned):
        # Widen and re-zoom pinned columns per owning model, exactly as
        # the ungrouped path does (the widened re-zoom is rare and
        # small, so scalar-model calls are fine here).
        T_opt = T_opt.copy()
        H_opt = H_opt.copy()
        for g, member in enumerate(models):
            idx = np.flatnonzero(pinned & (group_of == g))
            if idx.size == 0:
                continue
            lo_w = lo[idx] * 1e-3
            hi_w = hi[idx] * 1e3
            T_wide, H_wide = _zoom_batch(member, P[idx], lo_w, hi_w, points, rounds)
            T_opt[idx] = T_wide
            H_opt[idx] = H_wide
            still = ((T_wide / lo_w < 1.001) | (hi_w / T_wide < 1.001)) & np.isfinite(
                H_wide
            )
            if np.any(still):
                bad = P[idx][still]
                raise OptimizationError(
                    f"optimal period not interior to the widened bracket for "
                    f"P={np.array2string(bad, max_line_width=60)}; the overhead "
                    "appears monotone in T"
                )
    return T_opt, H_opt


def optimize_period_batch(
    model: PatternModel,
    P: np.ndarray,
    points: int = 17,
    rounds: int = 14,
    seed_decades: float = _SEED_DECADES,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-``P`` period optimisation.

    For each entry of ``P`` the exact overhead is minimised over ``T``
    by a per-column log-space zoom: every round evaluates one broadcast
    ``(points, len(P))`` overhead matrix and shrinks each column's
    bracket around its own argmin.  Precision after ``rounds`` rounds is
    ``(2 * seed_decades) * (2/(points-1))**rounds`` decades — below 1e-9
    relative with the defaults.

    Columns whose optimum pins to a bracket edge (the first-order seed
    was off by more than ``seed_decades`` decades) are re-zoomed once on
    a window widened by three decades each side — the same fallback the
    scalar :func:`optimize_period` applies — and an
    :class:`~repro.exceptions.OptimizationError` is raised if any column
    is still edge-pinned after widening (the overhead appears monotone
    over the searchable range).

    Returns
    -------
    (T_opt, H_opt):
        Arrays of optimal periods and exact overheads, aligned with ``P``.
    """
    P = np.asarray(P, dtype=float)
    if P.ndim != 1 or P.size == 0:
        raise OptimizationError("P must be a non-empty 1-D array")
    lam_eff = model.errors.fail_stop_rate(P) / 2.0 + model.errors.silent_rate(P)
    if np.any(lam_eff <= 0.0):
        raise OptimizationError("error-free platform: optimal period unbounded")
    T0 = np.asarray(optimal_period(P, model.errors, model.costs), dtype=float)
    lo = T0 * 10.0**-seed_decades
    hi = T0 * 10.0**seed_decades

    T_opt, H_opt = _zoom_batch(model, P, lo, hi, points, rounds)
    # Columns whose overhead overflows everywhere legitimately report
    # +inf (the outer allocation search discards them); only a *finite*
    # optimum sitting on a bracket edge means the seed window was off.
    pinned = ((T_opt / lo < 1.001) | (hi / T_opt < 1.001)) & np.isfinite(H_opt)
    if np.any(pinned):
        # The seed window missed the optimum for some columns; widen
        # those once (1e3 each side, like the scalar path) and re-zoom
        # only the pinned columns.
        idx = np.flatnonzero(pinned)
        lo_w = lo[idx] * 1e-3
        hi_w = hi[idx] * 1e3
        T_wide, H_wide = _zoom_batch(model, P[idx], lo_w, hi_w, points, rounds)
        T_opt = T_opt.copy()
        H_opt = H_opt.copy()
        T_opt[idx] = T_wide
        H_opt[idx] = H_wide
        still = ((T_wide / lo_w < 1.001) | (hi_w / T_wide < 1.001)) & np.isfinite(
            H_wide
        )
        if np.any(still):
            bad = P[idx][still]
            raise OptimizationError(
                f"optimal period not interior to the widened bracket for "
                f"P={np.array2string(bad, max_line_width=60)}; the overhead "
                "appears monotone in T"
            )
    return T_opt, H_opt
