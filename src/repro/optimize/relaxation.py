"""Iterative-relaxation baseline (Jin et al., ICPP 2010 style).

The paper cites Jin et al. [14] as the prior numerical procedure for
choosing the resource count of a fault-tolerant run: alternate between
(i) the optimal checkpointing period for the current allocation and
(ii) the optimal allocation for the current period, until a fixed point.
We implement that procedure against our exact overhead objective so the
benchmark harness can compare its convergence behaviour and result
quality with the direct nested optimiser
(:mod:`repro.optimize.allocation`) and the closed forms of Theorems 2-3.

On a unimodal objective the relaxation converges to the same optimum;
its interest is as an ablation (iterations vs. nested-search cost) and
as a faithful reproduction of the related-work method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import OptimizationError
from .grid import refine_log_minimum_batch
from .period import optimize_period

__all__ = ["RelaxationResult", "relaxation_optimize"]


@dataclass(frozen=True)
class RelaxationResult:
    """Fixed point of the alternating T/P relaxation.

    Attributes
    ----------
    processors, period, overhead:
        The converged pattern and its exact expected overhead.
    iterations:
        Number of alternation sweeps performed.
    converged:
        Whether both coordinates moved less than the tolerance on the
        final sweep.
    history:
        Per-iteration ``(P, T, overhead)`` triples, for the convergence
        benchmark.
    """

    processors: float
    period: float
    overhead: float
    iterations: int
    converged: bool
    history: tuple[tuple[float, float, float], ...] = field(default_factory=tuple)


def _optimize_p_for_fixed_t(
    model: PatternModel, T: float, p_min: float, p_max: float, points: int = 33, rounds: int = 10
) -> float:
    """Log-space zoom over ``P`` with the period held fixed.

    Thin wrapper over the shared batch zoom engine; allocation-style
    monotone cases report the lower bound, matching the historical
    private loop.
    """

    def objective(xs: np.ndarray, idx: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            return np.asarray(model.overhead(T, xs[:, 0]), dtype=float)[:, None]

    result = refine_log_minimum_batch(
        objective,
        p_min,
        p_max,
        points=points,
        rounds=rounds,
        rtol=1e-9,
        init_x=p_min,
        require_finite=False,
    )
    return float(result.x[0])


def relaxation_optimize(
    model: PatternModel,
    p_start: float = 1024.0,
    p_min: float = 1.0,
    p_max: float | None = None,
    tol: float = 1e-6,
    max_iterations: int = 50,
) -> RelaxationResult:
    """Alternate period / allocation optimisation until a fixed point.

    Parameters
    ----------
    model:
        Platform/application bundle.
    p_start:
        Initial allocation guess (the procedure is insensitive to it on
        unimodal objectives; the default matches a mid-size partition).
    tol:
        Relative movement of both ``P`` and ``T`` below which the
        procedure stops.
    """
    lam = model.errors.lambda_ind
    if lam <= 0.0:
        raise OptimizationError("error-free platform: relaxation has no finite fixed point")
    if p_max is None:
        p_max = max(1e4, 100.0 / lam)
    if not (p_min <= p_start <= p_max):
        raise OptimizationError(
            f"p_start={p_start} outside the search range [{p_min}, {p_max}]"
        )

    P = float(p_start)
    T = optimize_period(model, P).period
    history: list[tuple[float, float, float]] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        P_new = _optimize_p_for_fixed_t(model, T, p_min, p_max)
        T_new = optimize_period(model, P_new).period
        H_new = float(model.overhead(T_new, P_new))
        history.append((P_new, T_new, H_new))
        moved_p = abs(P_new - P) / max(P, 1e-300)
        moved_t = abs(T_new - T) / max(T, 1e-300)
        P, T = P_new, T_new
        if moved_p < tol and moved_t < tol:
            converged = True
            break
    return RelaxationResult(
        processors=P,
        period=T,
        overhead=float(model.overhead(T, P)),
        iterations=iterations,
        converged=converged,
        history=tuple(history),
    )
