"""Joint numerical optimisation of the pattern: processors *and* period.

This is the "optimal" solution the paper's figures compare the
first-order formulas against: minimise the exact expected overhead

.. math::

    \\min_{P \\ge 1,\\; T > 0} \\; H(T, P) = H(P)\\,\\frac{E(T, P)}{T}

with :math:`E` from Proposition 1.  The structure is a nested search:
the inner problem (optimal ``T`` for fixed ``P``) is solved by the
vectorised zoom of :mod:`repro.optimize.period`, and the outer problem
is a log-space zoom over ``P`` (values of interest span 1e2 … 1e13
across the figures).  The outer objective
:math:`g(P) = \\min_T H(T, P)` is unimodal: parallelism reduces the
error-free term :math:`H(P)` while failures and resilience costs grow
with ``P``.

Monotone cases (perfectly parallel jobs with cheap resilience — case 3
and parts of case 4) have no interior optimum; the result then carries
``at_upper = True`` and the caller decides how to interpret the bound
(the paper caps those sweeps at the validity limit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pattern import PatternModel, stack_models
from ..exceptions import InvalidParameterError, OptimizationError
from .grid import refine_log_minimum_batch
from .period import optimize_period, optimize_period_batch, optimize_period_batch_grouped

__all__ = ["AllocationResult", "optimize_allocation", "optimize_allocation_batch"]


@dataclass(frozen=True)
class AllocationResult:
    """Jointly optimal pattern found by the numerical search.

    Attributes
    ----------
    processors:
        Optimal processor count ``P_opt`` (integer if requested).
    period:
        Optimal period ``T_opt`` at that allocation.
    overhead:
        Exact expected overhead at ``(T_opt, P_opt)``.
    expected_time:
        Exact expected pattern time at the optimum.
    nfev:
        Total overhead evaluations across both nesting levels.
    at_lower / at_upper:
        The optimum pinned to the search bound — the objective is
        monotone over ``[p_min, p_max]`` in that direction.
    """

    processors: float
    period: float
    overhead: float
    expected_time: float
    nfev: int
    at_lower: bool = False
    at_upper: bool = False

    @property
    def interior(self) -> bool:
        return not (self.at_lower or self.at_upper)

    @property
    def speedup(self) -> float:
        return 1.0 / self.overhead


def optimize_allocation(
    model: PatternModel,
    p_min: float = 1.0,
    p_max: float | None = None,
    integer: bool = False,
    points: int = 33,
    rounds: int = 12,
) -> AllocationResult:
    """Minimise the exact overhead jointly over ``(T, P)``.

    Parameters
    ----------
    model:
        Platform/application bundle.
    p_min, p_max:
        Processor search range.  ``p_max`` defaults to
        ``100 / lambda_ind`` which comfortably contains every optimum
        reported in the paper (:math:`P^* \\lesssim \\lambda^{-1}`, Fig. 6).
    integer:
        Round the final allocation to the better of floor/ceil.
    points, rounds:
        Outer log-grid resolution (see :mod:`repro.optimize.grid`).

    Returns
    -------
    AllocationResult
        With boundary flags set when the objective is monotone over the
        requested range instead of raising, since "enroll the whole
        machine" is a meaningful answer for case-3/4 models.
    """
    lam = model.errors.lambda_ind
    if lam <= 0.0:
        raise OptimizationError("error-free platform: enrol all processors, never checkpoint")
    if p_max is None:
        p_max = max(1e4, 100.0 / lam)
    if not (0.0 < p_min < p_max):
        raise OptimizationError(f"invalid processor range [{p_min}, {p_max}]")

    nfev = 0
    lo, hi = p_min, p_max
    best_P = lo
    best_T = np.nan
    best_H = np.inf
    for _ in range(rounds):
        Ps = np.logspace(np.log10(lo), np.log10(hi), points)
        Ts, Hs = optimize_period_batch(model, Ps)
        nfev += Ps.size * 17 * 14  # inner grid budget (points * rounds)
        Hs = np.where(np.isfinite(Hs), Hs, np.inf)
        i = int(np.argmin(Hs))
        if Hs[i] < best_H:
            best_H = float(Hs[i])
            best_P = float(Ps[i])
            best_T = float(Ts[i])
        lo_new = Ps[max(i - 1, 0)]
        hi_new = Ps[min(i + 1, points - 1)]
        if hi_new / lo_new - 1.0 < 1e-10:
            break
        lo, hi = lo_new, hi_new

    at_lower = best_P / p_min < 1.0 + 1e-6
    at_upper = p_max / best_P < 1.0 + 1e-6

    if integer:
        candidates = sorted({max(1, int(np.floor(best_P))), max(1, int(np.ceil(best_P)))})
        results = [(optimize_period(model, float(P)), P) for P in candidates]
        nfev += sum(r.nfev for r, _ in results)
        inner, P_int = min(results, key=lambda pair: pair[0].overhead)
        return AllocationResult(
            processors=float(P_int),
            period=inner.period,
            overhead=inner.overhead,
            expected_time=inner.expected_time,
            nfev=nfev,
            at_lower=at_lower,
            at_upper=at_upper,
        )

    return AllocationResult(
        processors=best_P,
        period=best_T,
        overhead=best_H,
        expected_time=float(model.expected_time(best_T, best_P)),
        nfev=nfev,
        at_lower=at_lower,
        at_upper=at_upper,
    )


def optimize_allocation_batch(
    models,
    p_min: float = 1.0,
    p_max: float | None = None,
    integer: bool = False,
    points: int = 33,
    rounds: int = 12,
) -> list[AllocationResult]:
    """Jointly optimise ``(T, P)`` for many models in one array sweep.

    Batch counterpart of :func:`optimize_allocation`: the outer
    processor zoom runs all models as columns of one
    :func:`repro.optimize.grid.refine_log_minimum_batch` search, and the
    inner period solves go through
    :func:`repro.optimize.period.optimize_period_batch_grouped` — every
    outer round is a single broadcast ``(T, P)`` overhead evaluation
    over ``points * len(models)`` columns instead of a per-model Python
    loop.  This is the figure sweeps' hot path: a whole grid column of
    scenario models resolves per call.

    Per model the returned :class:`AllocationResult` is bit-identical to
    a scalar :func:`optimize_allocation` call with the same options: the
    abscissa grids, overhead evaluations, best-so-far updates and break
    rounds all replicate the scalar loop exactly (numpy's elementwise
    kernels do not depend on array width), and converged models drop out
    of later rounds without perturbing the rest.

    Models whose parameters cannot be stacked into one array-parameter
    model (heterogeneous speedup profile types, mixed recovery
    overrides) transparently fall back to per-model scalar solves.
    """
    models = list(models)
    if not models:
        return []
    p_maxs = np.empty(len(models))
    for j, model in enumerate(models):
        lam = model.errors.lambda_ind
        if lam <= 0.0:
            raise OptimizationError(
                "error-free platform: enrol all processors, never checkpoint"
            )
        p_maxs[j] = p_max if p_max is not None else max(1e4, 100.0 / lam)
        if not (0.0 < p_min < p_maxs[j]):
            raise OptimizationError(f"invalid processor range [{p_min}, {p_maxs[j]}]")
    if len(models) > 1:
        try:
            stack_models(models)
        except InvalidParameterError:
            return [
                optimize_allocation(
                    model, p_min=p_min, p_max=p_max, integer=integer,
                    points=points, rounds=rounds,
                )
                for model in models
            ]

    def objective(xs: np.ndarray, idx: np.ndarray):
        # xs is (points, k) for the k still-active models; flatten
        # model-major so each model owns a contiguous column group of
        # the grouped period solve.
        k = idx.size
        flat_P = xs.T.ravel()
        Ts, Hs = optimize_period_batch_grouped(
            [models[i] for i in idx], flat_P, np.full(k, points)
        )
        return Hs.reshape(k, points).T, Ts.reshape(k, points).T

    result = refine_log_minimum_batch(
        objective,
        p_min,
        p_maxs,
        points=points,
        rounds=rounds,
        rtol=1e-10,
        init_x=p_min,
        require_finite=False,
        track_aux=True,
    )
    # The scalar path flags edges with a 1e-6 tolerance (wider than the
    # batch engine's rtol-based one); reproduce it from the argmins.
    at_lower = result.x / p_min < 1.0 + 1e-6
    at_upper = p_maxs / result.x < 1.0 + 1e-6

    out: list[AllocationResult] = []
    for j, model in enumerate(models):
        # Inner grid budget: 17 * 14 overhead points per outer abscissa.
        nfev = int(result.nfev[j]) * 17 * 14
        best_P = float(result.x[j])
        if integer:
            candidates = sorted(
                {max(1, int(np.floor(best_P))), max(1, int(np.ceil(best_P)))}
            )
            inner_results = [
                (optimize_period(model, float(P)), P) for P in candidates
            ]
            nfev += sum(r.nfev for r, _ in inner_results)
            inner, P_int = min(inner_results, key=lambda pair: pair[0].overhead)
            out.append(
                AllocationResult(
                    processors=float(P_int),
                    period=inner.period,
                    overhead=inner.overhead,
                    expected_time=inner.expected_time,
                    nfev=nfev,
                    at_lower=bool(at_lower[j]),
                    at_upper=bool(at_upper[j]),
                )
            )
            continue
        best_T = float(result.aux[j])
        out.append(
            AllocationResult(
                processors=best_P,
                period=best_T,
                overhead=float(result.fun[j]),
                expected_time=float(model.expected_time(best_T, best_P)),
                nfev=nfev,
                at_lower=bool(at_lower[j]),
                at_upper=bool(at_upper[j]),
            )
        )
    return out
