"""Plain-text table rendering for the experiment reports.

The benchmark harness "regenerates the figures" as printed series; this
module renders them as aligned ASCII tables that read like the paper's
plots (one row per x-value, one column per curve).  No third-party
table library: alignment-aware monospace rendering is 60 lines.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_cell", "render_table"]


def format_cell(value: Any, floatfmt: str = "{:.6g}") -> str:
    """Render one cell: floats through ``floatfmt``, None as '-', rest via str."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return floatfmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = "{:.6g}",
) -> str:
    """Render an aligned ASCII table.

    Numeric-looking columns are right-aligned, text columns left-aligned.

    >>> print(render_table(["name", "x"], [["a", 1.5], ["bb", 20.25]]))
    name      x
    ----  -----
    a       1.5
    bb    20.25
    """
    str_rows = [[format_cell(v, floatfmt) for v in row] for row in rows]
    n_cols = len(headers)
    for row in str_rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells but the table has {n_cols} columns"
            )

    def _is_numeric(text: str) -> bool:
        if text in ("-", ""):
            return True
        try:
            float(text)
            return True
        except ValueError:
            return False

    right_align = [
        all(_is_numeric(row[i]) for row in str_rows) if str_rows else False
        for i in range(n_cols)
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows else len(headers[i])
        for i in range(n_cols)
    ]

    def _fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if right_align[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_fmt_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_fmt_line(row) for row in str_rows)
    return "\n".join(lines)
