"""CSV export of experiment results.

Each figure generator can dump its series to a CSV so external plotting
tools (gnuplot/matplotlib notebooks) can redraw the paper's figures
from the regenerated data.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = ["write_csv"]


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> Path:
    """Write ``rows`` under ``headers`` to ``path`` (parents created).

    ``None`` cells are written as empty strings.  Returns the path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(["" if v is None else v for v in row])
    return path
