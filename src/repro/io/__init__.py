"""Reporting: ASCII tables, CSV export and streaming emission."""

from .csvout import write_csv
from .stream import StreamingEmitter
from .tables import format_cell, render_table

__all__ = ["render_table", "format_cell", "write_csv", "StreamingEmitter"]
