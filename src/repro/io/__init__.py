"""Reporting: ASCII tables and CSV export."""

from .csvout import write_csv
from .tables import format_cell, render_table

__all__ = ["render_table", "format_cell", "write_csv"]
