"""Banded table emission: the streaming output of the scenario lab.

A scenario family aggregates only once its *last* member resolves, so
banded output is naturally completion-driven: the runner feeds
families (any object with the ``ready()``/``finish()`` staging
contract, e.g.
:class:`~repro.experiments.scenarios.scenario_set.ScenarioFamily`)
into a :class:`BandedEmitter`, pumps it on every point event, and each
family's quantile-band tables print the moment the family completes —
while other families (other platforms of a catalog cross product) are
still simulating.  Head-of-line flushing pins the emission order, so
the bytes are independent of the executor, window size and completion
interleaving, exactly like plain figure streaming.
"""

from __future__ import annotations

from .stream import StreamingEmitter

__all__ = ["BandedEmitter"]


class BandedEmitter(StreamingEmitter):
    """A :class:`StreamingEmitter` that banners each emitted family.

    The banner line names the family (``== label ==``) ahead of its
    band tables — scenario output interleaves many families, and the
    banner is what keeps a streamed transcript scannable.  Entries
    without a ``label`` attribute (plain staged studies) emit bare.
    """

    def _emit_one(self, staged) -> None:
        label = getattr(staged, "label", None)
        if label:
            print(f"== {label} ==", file=self.stream)
            print(file=self.stream)
        super()._emit_one(staged)
