"""Consolidated markdown report of regenerated results.

``python -m repro report --out report.md`` regenerates every figure
(and the extension studies) and writes one self-contained markdown
document: the input tables, each figure's series as a fenced code
block, and the notes (slope fits, gap bounds) underneath — a
machine-written companion to the hand-curated EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from datetime import date
from pathlib import Path
from typing import Iterable, Sequence

from .._version import __version__
from ..experiments.common import FigureResult

__all__ = ["write_report"]

_HEADER = """# Regenerated results — When Amdahl Meets Young/Daly

Produced by `repro` {version} on {today}.
Simulation: {sim}.

Every table below is a printed rendition of one (sub)figure of the
paper's evaluation (or an extension study); see EXPERIMENTS.md for the
paper-vs-measured commentary and DESIGN.md for the module map.
"""


def write_report(
    path: str | Path,
    sections: Iterable[tuple[str, Sequence[FigureResult]]],
    sim_description: str,
    input_tables: str | None = None,
) -> Path:
    """Write all ``sections`` (title, figure results) to ``path``.

    Returns the written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    out = io.StringIO()
    out.write(
        _HEADER.format(version=__version__, today=date.today(), sim=sim_description)
    )
    if input_tables:
        out.write("\n## Inputs (Tables II-III)\n\n```\n")
        out.write(input_tables.rstrip())
        out.write("\n```\n")
    for title, results in sections:
        out.write(f"\n## {title}\n")
        for result in results:
            out.write(f"\n### {result.title}\n\n```\n")
            out.write(result.table().rstrip())
            out.write("\n```\n")
    path.write_text(out.getvalue())
    return path
