"""Streaming figure emission, driven by point completions.

The CLI runner stages every study of an invocation up front, then
resolves the shared simulation pipeline in **one event-driven round**:
all studies' chunk jobs share a global in-flight window, and every
completed point fires an event.  This emitter is the output half of
that loop — the runner pumps it on each event, so a study's tables
(and optional CSV dumps) print the moment its *last* point lands,
while other studies are still simulating; ``repro-experiments all
--jobs N`` shows Figure 2 while Figure 5's Monte-Carlo points are
still in flight, instead of buffering the whole evaluation.

Because :meth:`StreamingEmitter.pump` flushes head-of-line (a study
prints only once every study registered before it has printed), the
emitted bytes are identical to the historical
materialize-everything-then-print path whatever order the points
complete in: event-driven emission changes *when* a table appears,
never what it contains or the order tables are printed.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Sequence

from ..obs.trace import NULL_TRACE

__all__ = ["StreamingEmitter"]


class StreamingEmitter:
    """Print figure tables (and CSVs) as their studies resolve.

    Studies register in presentation order via :meth:`add`; each entry
    carries a ``ready()`` probe and a ``finish()`` producer (the
    :class:`~repro.experiments.spec.StagedStudy` contract).
    :meth:`pump` flushes the queue head-first so output order always
    matches registration order, whatever order the values resolved in.
    ``trace`` journals one ``emit`` event per flushed study.
    """

    def __init__(self, stream=None, csv_dir: str | Path | None = None, trace=None):
        self.stream = stream if stream is not None else sys.stdout
        self.csv_dir = csv_dir
        self.trace = trace if trace is not None else NULL_TRACE
        self._queue: list = []
        self.emitted = 0

    def add(self, staged) -> None:
        """Queue one staged study for emission."""
        self._queue.append(staged)

    def emit_results(self, results: Sequence) -> None:
        """Print a batch of :class:`FigureResult` tables immediately."""
        for result in results:
            print(result.table(), file=self.stream)
            print(file=self.stream)
            if self.csv_dir:
                path = result.to_csv(self.csv_dir)
                print(f"  [csv] {path}", file=self.stream)
                print(file=self.stream)
            self.emitted += 1

    def _emit_one(self, staged) -> None:
        """Flush one queue entry (subclass hook: banners, extra output)."""
        results = staged.finish()
        if self.trace.enabled:
            label = getattr(staged, "group", None) or getattr(staged, "label", None)
            self.trace.event(
                "emit",
                study=label if label else "?",
                tables=len(results),
            )
        self.emit_results(results)

    def pump(self) -> int:
        """Emit every leading queued study whose values have resolved.

        Returns the number of studies flushed.  Head-of-line blocking
        is deliberate: it pins the output order.  Cheap enough to call
        once per completed point — the readiness probe touches only the
        queue head, so out-of-order completions deep in the queue cost
        nothing until their study reaches the front.
        """
        flushed = 0
        while self._queue and self._queue[0].ready():
            staged = self._queue.pop(0)
            self._emit_one(staged)
            flushed += 1
        return flushed

    def on_event(self, event=None) -> int:
        """Completion-event hook: alias of :meth:`pump` for callbacks.

        Suitable as (part of) a ``SimulationPipeline.resolve``
        ``on_event`` callback; the event payload itself is ignored —
        any resolved point may have been the head study's last one.
        """
        return self.pump()

    def drain(self, resolve: Callable[[], None] | None = None) -> int:
        """Flush the whole queue, optionally resolving first."""
        if resolve is not None and self._queue:
            resolve()
        flushed = 0
        while self._queue:
            staged = self._queue.pop(0)
            self._emit_one(staged)
            flushed += 1
        return flushed
