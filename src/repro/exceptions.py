"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "ValidityError",
    "OptimizationError",
    "SimulationError",
    "UnknownPlatformError",
    "UnknownScenarioError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A model parameter is outside its mathematically valid domain.

    Examples: a negative error rate, a sequential fraction outside
    ``[0, 1]``, or a non-positive checkpoint period.
    """


class ValidityError(ReproError):
    """A first-order formula was requested outside its validity regime.

    Section III-B of the paper bounds the orders of ``P`` and ``T`` for
    which the first-order approximation holds.  Closed-form helpers raise
    this error when no first-order optimum exists (e.g. Theorem 2 with
    ``alpha = 0``) rather than returning a meaningless number.
    """


class OptimizationError(ReproError, RuntimeError):
    """A numerical optimisation failed to bracket or converge."""


class SimulationError(ReproError, RuntimeError):
    """The Monte-Carlo simulator was configured inconsistently."""


class UnknownPlatformError(ReproError, KeyError):
    """Requested platform name is not in the catalog (Table II)."""


class UnknownScenarioError(ReproError, KeyError):
    """Requested resilience scenario is not one of the six in Table III."""
