"""Node-level failure modelling: P independent streams, superposed.

The paper works with *platform-level* rates, invoking Proposition 1.2
of [13]: a platform of ``P`` processors of individual rate
``lambda_ind`` fails at rate ``P * lambda_ind``.  This module models the
platform at the level it physically exists — one renewal failure stream
**per node** — and superposes them:

* with exponential nodes, the superposition is exactly a Poisson
  process of rate ``P * lambda``, so the node-level simulator must
  reproduce the aggregated model's distribution (this *is* Proposition
  1.2, validated empirically in the tests);
* with non-exponential nodes (e.g. per-node Weibull), the superposition
  is **not** Weibull — and for large ``P`` it approaches a Poisson
  process regardless of the node law (Palm–Khintchine theorem).  That
  is the deep justification for the paper's exponential platform
  assumption: even if individual nodes are bursty, a 512-node machine's
  aggregate failure process is already close to memoryless.  The test
  suite demonstrates this convergence quantitatively.

Renewal semantics: each node carries its own next-arrival timestamp in
global *exposed time* (downtime pauses every clock, per the paper's
error-free-downtime assumption).  When a node fails, only *its* stream
renews — other nodes keep their ages, which is exactly what makes the
non-exponential case physically meaningful.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from .protocol import RunStats
from .streams import ArrivalProcess, ExponentialArrivals

__all__ = ["NodePool", "simulate_run_nodes"]


class NodePool:
    """``P`` independent renewal failure streams with a min-heap frontier."""

    def __init__(
        self,
        n_nodes: int,
        process: ArrivalProcess,
        rng: np.random.Generator,
    ) -> None:
        if n_nodes < 1:
            raise SimulationError(f"need at least one node, got {n_nodes!r}")
        self.n_nodes = int(n_nodes)
        self.process = process
        self.rng = rng
        # (next_failure_exposed_time, node_id); drawn lazily in bulk at
        # construction for reproducibility.
        self._heap: list[tuple[float, int]] = [
            (process.sample_interarrival(rng), node) for node in range(self.n_nodes)
        ]
        heapq.heapify(self._heap)

    def peek(self) -> float:
        """Exposed-time instant of the next platform failure."""
        return self._heap[0][0]

    def fail_and_renew(self) -> int:
        """Consume the imminent failure; renew that node's stream.

        Returns the failing node id.
        """
        time, node = heapq.heappop(self._heap)
        heapq.heappush(
            self._heap, (time + self.process.sample_interarrival(self.rng), node)
        )
        return node

    def empirical_rate(self, horizon: float) -> float:
        """Arrivals per unit exposed time over ``[0, horizon)`` (destructive).

        Consumes the pool; used by the Proposition-1.2 validation tests.
        """
        count = 0
        while self.peek() < horizon:
            self.fail_and_renew()
            count += 1
        return count / horizon

    def warm_up(self, mean_multiples: float = 3.0) -> int:
        """Advance the pool into the stationary regime and rebase time to 0.

        A freshly built pool has every node at age zero.  For
        non-exponential laws that is a *transient*: Weibull nodes with
        shape < 1 have diverging hazard at age 0, so a fresh machine
        fails measurably more often than a seasoned one (the
        infant-mortality effect, visible in the tests).  Running the
        pool for a few mean inter-arrivals and rebasing makes each
        node's age distribution approach stationarity, which is the
        regime the paper's steady-state analysis describes.

        Returns the number of warm-up failures consumed.
        """
        horizon = mean_multiples * self.process.mean
        consumed = 0
        while self.peek() < horizon:
            self.fail_and_renew()
            consumed += 1
        self._heap = [(t - horizon, node) for (t, node) in self._heap]
        heapq.heapify(self._heap)
        return consumed


class _NodeRun:
    """VC protocol driven by a node-level failure pool."""

    def __init__(
        self,
        model: PatternModel,
        T: float,
        P: int,
        rng: np.random.Generator,
        node_process: ArrivalProcess | None,
        stationary: bool,
    ) -> None:
        if T <= 0.0:
            raise SimulationError(f"pattern period must be positive, got {T!r}")
        if P < 1:
            raise SimulationError(f"node count must be >= 1, got {P!r}")
        self.rng = rng
        self.T = float(T)
        if node_process is None:
            lam_node = model.errors.lambda_ind * model.errors.fail_stop_fraction
            if lam_node <= 0.0:
                raise SimulationError(
                    "node-level simulation needs a positive per-node fail-stop "
                    "rate or an explicit node_process"
                )
            node_process = ExponentialArrivals(lam_node)
        self.pool = NodePool(P, node_process, rng)
        if stationary:
            self.pool.warm_up()
        self.lam_s = float(model.errors.silent_rate(P))
        self.C = float(model.costs.checkpoint_cost(P))
        self.R = float(model.costs.recovery_cost(P))
        self.V = float(model.costs.verification_cost(P))
        self.D = float(model.costs.downtime)
        self.wall = 0.0
        self.exposed = 0.0
        self.stats = RunStats(
            total_time=0.0,
            n_patterns=0,
            n_attempts=0,
            n_fail_stop=0,
            n_silent_struck=0,
            n_silent_detected=0,
            n_recoveries=0,
            n_downtimes=0,
        )

    def _run_segment(self, duration: float) -> float | None:
        next_fail = self.pool.peek()
        if next_fail < self.exposed + duration:
            elapsed = next_fail - self.exposed
            self.exposed = next_fail
            self.wall += elapsed
            self.pool.fail_and_renew()
            self.stats.n_fail_stop += 1
            return elapsed
        self.exposed += duration
        self.wall += duration
        return None

    def _downtime(self) -> None:
        self.wall += self.D
        self.stats.n_downtimes += 1
        self.stats.breakdown.downtime += self.D

    def _recover(self) -> None:
        while True:
            failed_at = self._run_segment(self.R)
            if failed_at is None:
                self.stats.n_recoveries += 1
                self.stats.breakdown.recovery += self.R
                return
            self.stats.breakdown.lost += failed_at
            self._downtime()

    def _silent_within(self, computed: float) -> bool:
        if self.lam_s <= 0.0 or computed <= 0.0:
            return False
        return self.rng.exponential(1.0 / self.lam_s) < computed

    def run_pattern(self) -> None:
        while True:
            self.stats.n_attempts += 1
            failed_at = self._run_segment(self.T + self.V)
            if failed_at is not None:
                if self._silent_within(min(failed_at, self.T)):
                    self.stats.n_silent_struck += 1
                self.stats.breakdown.lost += failed_at
                self._downtime()
                self._recover()
                continue
            if self._silent_within(self.T):
                self.stats.n_silent_struck += 1
                self.stats.n_silent_detected += 1
                self.stats.breakdown.wasted_work += self.T
                self.stats.breakdown.verification += self.V
                self._recover()
                continue
            failed_at = self._run_segment(self.C)
            if failed_at is not None:
                self.stats.breakdown.wasted_work += self.T
                self.stats.breakdown.verification += self.V
                self.stats.breakdown.lost += failed_at
                self._downtime()
                self._recover()
                continue
            self.stats.n_patterns += 1
            self.stats.breakdown.useful_work += self.T
            self.stats.breakdown.verification += self.V
            self.stats.breakdown.checkpoint += self.C
            return


def simulate_run_nodes(
    model: PatternModel,
    T: float,
    P: int,
    n_patterns: int,
    rng: np.random.Generator,
    node_process: ArrivalProcess | None = None,
    stationary: bool = True,
) -> RunStats:
    """Simulate the VC protocol with one fail-stop stream per node.

    Parameters
    ----------
    P:
        Integer node count (this simulator models physical nodes).
    node_process:
        Per-node inter-arrival law.  ``None`` uses the model's
        exponential per-node fail-stop rate (``f * lambda_ind``), under
        which the superposition equals the aggregated platform process —
        Proposition 1.2.  Pass per-node Weibull laws to study how fast
        the superposition "poissonises" (Palm–Khintchine).
    stationary:
        Warm the pool up into the stationary regime before the run
        (default).  ``False`` starts every node at age zero — for
        infant-mortality laws (Weibull shape < 1) that fresh-machine
        transient measurably *raises* the failure rate.

    Notes
    -----
    Silent errors remain at the aggregated platform rate (they are
    detected by verifications regardless of which node hosts the flip,
    so node identity carries no information for the protocol).
    """
    if n_patterns <= 0:
        raise SimulationError(f"n_patterns must be positive, got {n_patterns!r}")
    run = _NodeRun(model, T, P, rng, node_process, stationary)
    for _ in range(n_patterns):
        run.run_pattern()
    run.stats.total_time = run.wall
    return run.stats
