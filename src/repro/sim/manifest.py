"""Durable runs: an atomically-journaled manifest per CLI invocation.

A killed ``all``/``scenario run`` used to restart from whatever the
npz cache happened to hold — the cache deduplicates work, but nothing
represented *the run itself* as a durable object: which points it
planned, which completed, under which code/config world.  This module
adds that object, dogfooding the paper's own checkpoint-recovery
story:

* a :class:`RunManifest` records the run id, the full CLI ``argv``, a
  config hash over the result-relevant arguments,
  :data:`repro.sim.plan.BACKEND_VERSION`, and a journal of plan keys
  with their fates (``computed`` / ``served`` / ``skipped``);
* a :class:`RunRecorder` updates the manifest **atomically** (temp
  file + ``os.replace`` + fsync) as the event-driven scheduler
  delivers points, so the on-disk manifest is always a consistent
  prefix of the run — a ``kill -9`` at any instant leaves a loadable
  checkpoint;
* on resume (``repro-experiments resume <run-id>``),
  :func:`validate_resume` re-derives the plan from the *current*
  world and checks every journaled fate against it — the REQ-10
  "checkpoint recovery integrity" pattern: a checkpoint faithfully
  restores internal state, but the world may have moved on.  A fate
  whose plan key still exists in the new plan and whose cache entry
  verifies is **reused**; a key the new plan no longer produces
  (code/config drift, ``BACKEND_VERSION`` bump) is **stale**; a key
  whose cache entry is missing or corrupt is **invalidated** (the
  corrupt entry is deleted so it reads as a clean miss).  Only
  invalidated/stale work is recomputed, through the same event-driven
  round — resumed output is byte-identical to an uninterrupted run
  because the cache-served values are the very estimates the
  interrupted run computed.

The manifest never stores results — those live in the
content-addressed :class:`~repro.sim.plan.ResultCache`, which is why
``--run-id`` requires a cache directory: fates without cached values
could prove *what* completed but not reuse it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ReproError
from .plan import BACKEND_VERSION

__all__ = [
    "RunManifest",
    "RunRecorder",
    "ResumeReport",
    "validate_resume",
    "config_hash",
    "manifest_path",
    "DEFAULT_RUNS_DIR",
    "MANIFEST_NAME",
]

#: Default directory run manifests live under (one subdirectory per
#: run id), relative to the working directory unless ``--runs-dir``
#: points elsewhere.
DEFAULT_RUNS_DIR = ".repro-runs"

MANIFEST_NAME = "manifest.json"

#: Current manifest schema version (bumped on incompatible changes; a
#: mismatched manifest refuses to resume rather than misvalidating).
MANIFEST_FORMAT = 1

#: CLI flags that change *where/how fast* a run executes but never the
#: result bytes — excluded from the config hash so a resume may
#: override them (e.g. resume a serial run with ``--jobs 4``).
_EXECUTION_FLAGS = {
    "--jobs": 1,
    "--max-inflight": 1,
    "--progress": 0,
    "--dry-run": 0,
    "--run-id": 1,
    "--runs-dir": 1,
    "--resume": 0,
    "--fault-plan": 1,
    "--claim-ttl": 1,
    "--trace": 0,
    "--trace-file": 1,
}


def config_hash(argv: list[str] | tuple[str, ...]) -> str:
    """Digest of the result-relevant CLI arguments plus backend version.

    Execution-only flags (:data:`_EXECUTION_FLAGS`) are stripped, so
    two invocations that must produce identical bytes hash identically
    even when their parallelism or observability flags differ.
    """
    import hashlib

    kept: list[str] = []
    skip = 0
    for arg in argv:
        if skip:
            skip -= 1
            continue
        flag, _, inline_value = arg.partition("=")
        if flag in _EXECUTION_FLAGS:
            if not inline_value:
                skip = _EXECUTION_FLAGS[flag]
            continue
        kept.append(arg)
    payload = ("run-config", MANIFEST_FORMAT, BACKEND_VERSION, tuple(kept))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def manifest_path(runs_dir: str | Path, run_id: str) -> Path:
    return Path(runs_dir) / run_id / MANIFEST_NAME


@dataclass
class RunManifest:
    """The durable state of one run (see module docstring).

    ``fates`` maps each delivered plan key to how its value last
    materialized; duplicate declarations of one key share one entry,
    so ``len(fates)`` counts unique points, matching the cache.
    """

    run_id: str
    argv: tuple[str, ...]
    backend_version: int = BACKEND_VERSION
    config: str = ""
    status: str = "running"  # running | complete
    resumes: int = 0
    #: plan key -> "computed" | "served" | "skipped"
    fates: dict[str, str] = field(default_factory=dict)
    #: Fate tallies of the latest (resumed) round, for the
    #: zero-duplicate-work acceptance check.
    reused: int = 0
    recomputed: int = 0
    #: Adaptive-replicate decision journal (``{"policy": ...,
    #: "families": {label: {"waves": [...], "converged": ...}}}``) —
    #: every wave the engine staged and every per-row stopping
    #: decision, so a resume replays them verbatim instead of
    #: re-deriving convergence.  Empty for fixed-replicate runs.
    adaptive: dict = field(default_factory=dict)
    #: Metrics-registry snapshot (``repro-metrics/1``) taken when the
    #: run finished — what ``resume`` diffs its own round against.
    #: Empty until a recorder with a registry finishes.
    metrics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.config:
            self.config = config_hash(self.argv)

    def counts(self) -> dict[str, int]:
        out = {"computed": 0, "served": 0, "skipped": 0}
        for fate in self.fates.values():
            out[fate] = out.get(fate, 0) + 1
        return out

    def to_json(self) -> dict:
        out = {
            "format": MANIFEST_FORMAT,
            "run_id": self.run_id,
            "argv": list(self.argv),
            "backend_version": self.backend_version,
            "config": self.config,
            "status": self.status,
            "resumes": self.resumes,
            "reused": self.reused,
            "recomputed": self.recomputed,
            "fates": self.fates,
        }
        # Only adaptive runs carry the journal, and only finished runs
        # carry a metrics snapshot; manifests written before those
        # features keep their historical shape byte-for-byte.
        if self.adaptive:
            out["adaptive"] = self.adaptive
        if self.metrics:
            out["metrics"] = self.metrics
        return out

    @classmethod
    def from_json(cls, data: dict) -> "RunManifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise ReproError(
                f"run manifest format {data.get('format')!r} is not "
                f"{MANIFEST_FORMAT} (written by an incompatible version)"
            )
        return cls(
            run_id=data["run_id"],
            argv=tuple(data["argv"]),
            backend_version=data["backend_version"],
            config=data["config"],
            status=data["status"],
            resumes=data.get("resumes", 0),
            fates=dict(data.get("fates", {})),
            reused=data.get("reused", 0),
            recomputed=data.get("recomputed", 0),
            adaptive=dict(data.get("adaptive", {})),
            metrics=dict(data.get("metrics", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise ReproError(f"no run manifest at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"unreadable run manifest {path}: {exc}") from None
        return cls.from_json(data)


class RunRecorder:
    """Journals a run's point fates into its manifest, atomically.

    Designed as a ``SimulationPipeline.resolve`` ``on_event`` callback:
    every delivered :class:`~repro.experiments.pipeline.PointEvent`
    carrying a plan key updates the fate map and rewrites the manifest
    via temp file + ``os.replace`` (with an fsync), so a crash between
    any two events leaves a consistent, loadable journal of exactly
    the delivered prefix.
    """

    def __init__(self, path: str | Path, manifest: RunManifest, metrics=None):
        self.path = Path(path)
        self.manifest = manifest
        #: The invocation's metrics registry: the reused/recomputed
        #: counters live here (``resume_points{outcome}``); the
        #: manifest ints mirror them so the journal stays readable
        #: without the registry, and :meth:`finish` snapshots the
        #: whole registry into the manifest.  ``None`` keeps the
        #: registry-free historical behaviour (library callers).
        self.metrics = metrics
        #: Fates journaled by previous (interrupted) rounds — the
        #: baseline the reused/recomputed accounting compares against.
        self._prior = dict(manifest.fates)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.write()

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        runs_dir: str | Path,
        run_id: str,
        argv: list[str] | tuple[str, ...],
        metrics=None,
    ) -> "RunRecorder":
        """Start a fresh run journal; refuses to clobber an existing one."""
        path = manifest_path(runs_dir, run_id)
        if path.exists():
            raise ReproError(
                f"run {run_id!r} already has a manifest under {path.parent} — "
                f"resume it (`repro-experiments resume {run_id}` or --resume), "
                f"or pick a new --run-id"
            )
        return cls(path, RunManifest(run_id=run_id, argv=tuple(argv)), metrics=metrics)

    @classmethod
    def resume(
        cls,
        runs_dir: str | Path,
        run_id: str,
        argv: list[str] | tuple[str, ...],
        metrics=None,
    ) -> "RunRecorder":
        """Reopen an existing run journal for a resumed round."""
        path = manifest_path(runs_dir, run_id)
        manifest = RunManifest.load(path)
        manifest.status = "running"
        manifest.resumes += 1
        manifest.reused = 0
        manifest.recomputed = 0
        # The *stored* argv stays authoritative for the config hash;
        # the resumed argv may override execution flags only, which the
        # hash ignores — a result-relevant drift shows up in validate.
        manifest.argv = tuple(argv)
        return cls(path, manifest, metrics=metrics)

    # -- journaling --------------------------------------------------------

    def _count(self, outcome: str) -> None:
        """Mirror one reused/recomputed tick into the metrics registry."""
        if self.metrics is not None:
            self.metrics.counter("resume_points", outcome=outcome).inc()

    def on_event(self, event) -> None:
        """Record one delivered point fate (events without keys pass)."""
        key = getattr(event, "key", None)
        if key is None:
            return
        first = key not in self.manifest.fates or self.manifest.fates[key] != event.status
        self.manifest.fates[key] = event.status
        prior = self._prior.get(key)
        if event.status == "computed" and prior == "computed":
            # The acceptance smell: work a previous round already did.
            self.manifest.recomputed += 1
            self._count("recomputed")
        elif event.status == "served" and prior in ("computed", "served"):
            self.manifest.reused += 1
            self._count("reused")
        if first or event.status == "computed":
            self.write()

    def record_adaptive(self, journal: dict) -> None:
        """Journal the adaptive engine's staging/stopping decisions.

        Called the moment a wave is *staged* (before any of its points
        resolve) and after each convergence evaluation, so a crash at
        any instant leaves every decision taken so far on disk — a
        resume replays the journal instead of re-deriving convergence.
        """
        self.manifest.adaptive = journal
        self.write()

    def finish(self, status: str = "complete") -> None:
        if self.metrics is not None and len(self.metrics):
            self.manifest.metrics = self.metrics.snapshot()
        self.manifest.status = status
        self.write()

    def write(self) -> None:
        """Atomic rewrite: temp + fsync + ``os.replace``."""
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        payload = json.dumps(self.manifest.to_json(), indent=1, sort_keys=True)
        with open(tmp, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


@dataclass(frozen=True)
class ResumeReport:
    """What a resume found when it checked the checkpoint against the world."""

    run_id: str
    backend_changed: bool
    config_changed: bool
    reusable: tuple[str, ...]
    invalidated: tuple[str, ...]  # cache entry corrupt: deleted, recomputed
    missing: tuple[str, ...]  # cache entry vanished: recomputed
    stale: tuple[str, ...]  # key absent from the re-derived plan
    pending: int  # points the resumed round still has to deliver

    def lines(self) -> list[str]:
        """Human-readable validation summary (one ``[resume]`` line each)."""
        done = len(self.reusable) + len(self.invalidated) + len(self.missing)
        out = [
            f"[resume] run {self.run_id!r}: {done + len(self.stale)} journaled "
            f"fates, {self.pending} points pending this round",
        ]
        if self.backend_changed:
            out.append(
                "[resume] BACKEND_VERSION changed since the manifest was "
                "written — every journaled key is stale and recomputes"
            )
        if self.config_changed:
            out.append(
                "[resume] result-relevant CLI arguments changed — fates that "
                "no longer match the re-derived plan recompute"
            )
        out.append(
            f"[resume] {len(self.reusable)} reusable from cache, "
            f"{len(self.invalidated)} invalidated (corrupt), "
            f"{len(self.missing)} missing, {len(self.stale)} stale"
        )
        return out


def validate_resume(
    manifest: RunManifest,
    pending_keys,
    cache,
    argv: list[str] | tuple[str, ...] | None = None,
) -> ResumeReport:
    """Check every journaled fate against the current world.

    ``pending_keys`` is the set of plan keys the resumed invocation is
    about to resolve (re-derived from current code and config — these
    keys embed model parameters, seed, backend and
    :data:`~repro.sim.plan.BACKEND_VERSION`), ``cache`` the result
    cache that would serve them.  Corrupt cache entries are deleted
    here so they read as clean misses; everything else is reported,
    not mutated.
    """
    pending_keys = set(pending_keys)
    backend_changed = manifest.backend_version != BACKEND_VERSION
    # The resumed round runs under the *current* backend; stamp it so
    # the manifest reflects the world its newest fates come from (the
    # drift was captured in backend_changed just above).
    manifest.backend_version = BACKEND_VERSION
    reusable: list[str] = []
    invalidated: list[str] = []
    missing: list[str] = []
    stale: list[str] = []
    for key, fate in sorted(manifest.fates.items()):
        if fate == "skipped":
            continue
        if key not in pending_keys:
            stale.append(key)
            continue
        ok, reason = cache.verify_entry(key)
        if ok:
            reusable.append(key)
        elif reason == "missing":
            missing.append(key)
        else:
            cache.invalidate(key)
            invalidated.append(key)
    return ResumeReport(
        run_id=manifest.run_id,
        backend_changed=backend_changed,
        config_changed=(
            manifest.config != config_hash(argv if argv is not None else manifest.argv)
        ),
        reusable=tuple(reusable),
        invalidated=tuple(invalidated),
        missing=tuple(missing),
        stale=tuple(stale),
        pending=len(pending_keys),
    )
