"""A small discrete-event simulation kernel.

Classic event-heap design: a priority queue of ``(time, sequence)``
keys with lazy cancellation (cancelled handles are skipped on pop).
The VC-protocol simulator schedules segment completions and failure
arrivals against this kernel; races (a fail-stop arriving before a
segment finishes) are resolved by timestamp with FIFO tie-breaking,
and the loser is cancelled.

The kernel is deliberately protocol-agnostic — the unit tests drive it
with synthetic event streams, and it can host other resilience
protocols (e.g. multi-level checkpointing extensions) without change.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..exceptions import SimulationError
from .events import Event, EventKind

__all__ = ["EventEngine"]


class EventEngine:
    """Chronological event queue with scheduling and cancellation.

    Notes
    -----
    * Time is a float in seconds and never decreases.
    * ``schedule`` returns an integer handle; ``cancel(handle)`` is O(1)
      (lazy deletion).
    * ``pop`` advances the clock to the next live event and returns it.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, EventKind, Any]] = []
        self._cancelled: set[int] = set()
        self._seq = itertools.count()
        self._live = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, kind: EventKind, payload: Any = None) -> int:
        """Schedule an event ``delay`` seconds from now; returns its handle."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        handle = next(self._seq)
        heapq.heappush(self._heap, (self._now + delay, handle, kind, payload))
        self._live += 1
        return handle

    def schedule_at(self, time: float, kind: EventKind, payload: Any = None) -> int:
        """Schedule an event at an absolute timestamp."""
        return self.schedule(time - self._now, kind, payload)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        self._cancelled.add(handle)

    # -- consumption ----------------------------------------------------------

    def __len__(self) -> int:
        """Number of scheduled-and-not-cancelled events (upper bound)."""
        return max(self._live - len(self._cancelled), 0)

    def empty(self) -> bool:
        """True when no live event remains."""
        return self.peek_time() is None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None."""
        while self._heap and self._heap[0][1] in self._cancelled:
            _, handle, _, _ = heapq.heappop(self._heap)
            self._cancelled.discard(handle)
            self._live -= 1
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event:
        """Advance the clock to the next live event and return it."""
        when = self.peek_time()
        if when is None:
            raise SimulationError("event queue is empty")
        time, handle, kind, payload = heapq.heappop(self._heap)
        self._live -= 1
        self._now = time
        return Event(time=time, kind=kind, payload=payload, handle=handle)

    def advance(self, duration: float) -> None:
        """Move the clock forward without an event (e.g. error-free downtime).

        Raises if a live event would fire inside the skipped window —
        that would reorder history.
        """
        if duration < 0.0:
            raise SimulationError(f"cannot advance by a negative duration ({duration!r})")
        when = self.peek_time()
        target = self._now + duration
        if when is not None and when < target:
            raise SimulationError(
                f"advance({duration}) would skip an event scheduled at t={when}"
            )
        self._now = target

    # -- driving ----------------------------------------------------------

    def run(
        self,
        handler: Callable[[Event], bool],
        max_events: int = 10_000_000,
    ) -> int:
        """Pop events into ``handler`` until it returns False or queue empties.

        Returns the number of events processed.  ``max_events`` guards
        against runaway protocols.
        """
        processed = 0
        while not self.empty():
            if processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if not handler(self.pop()):
                processed += 1
                break
            processed += 1
        return processed
