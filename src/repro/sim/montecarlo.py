"""High-level Monte-Carlo driver used by the experiment harness.

Wraps the two simulators behind one call:

>>> from repro.platforms import build_model
>>> from repro.sim import simulate_overhead
>>> est = simulate_overhead(build_model("Hera", 1), T=6000.0, P=256,
...                         n_runs=20, n_patterns=50, seed=1)
>>> 0.1 < est.mean < 0.2
True

The paper's protocol (Section IV-A) averages 500 runs of at least 500
patterns; those are the ``paper``-fidelity defaults, while tests and
quick sweeps use far smaller numbers (the estimator is unbiased at any
size, only the CI widens).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from .batch import simulate_batch
from .protocol import simulate_run
from .results import OverheadEstimate, overhead_estimate
from .rng import make_rng, spawn_rngs

__all__ = ["Fidelity", "FAST", "PAPER", "simulate_overhead"]


@dataclass(frozen=True)
class Fidelity:
    """A (runs x patterns) Monte-Carlo budget."""

    n_runs: int
    n_patterns: int
    name: str = "custom"


#: Quick sweeps / CI: wide CIs but unbiased.
FAST = Fidelity(n_runs=50, n_patterns=100, name="fast")
#: The paper's protocol: 500 runs, each >= 500 patterns.
PAPER = Fidelity(n_runs=500, n_patterns=500, name="paper")


def simulate_overhead(
    model: PatternModel,
    T: float,
    P: float,
    n_runs: int = FAST.n_runs,
    n_patterns: int = FAST.n_patterns,
    seed: int | None = None,
    method: str = "batch",
) -> OverheadEstimate:
    """Estimate the expected execution overhead of PATTERN(T, P) by simulation.

    Parameters
    ----------
    model:
        Platform/application bundle.
    T, P:
        Pattern parameters (P is used as given, fractional allocations
        are meaningful in the model and accepted).
    n_runs, n_patterns:
        Monte-Carlo budget; see :data:`FAST` and :data:`PAPER`.
    seed:
        Master seed (default: the library-wide fixed seed).
    method:
        ``"batch"`` (vectorised, default) or ``"des"`` (event-driven
        reference; ~1000x slower, for validation).
    """
    if method == "batch":
        stats = simulate_batch(model, T, P, n_runs, n_patterns, make_rng(seed))
        return overhead_estimate(model, T, P, stats)
    if method == "des":
        rngs = spawn_rngs(n_runs, seed)
        runs = [simulate_run(model, T, P, n_patterns, rng) for rng in rngs]
        return overhead_estimate(model, T, P, runs)
    raise SimulationError(f"unknown simulation method {method!r}; use 'batch' or 'des'")
