"""High-level Monte-Carlo driver used by the experiment harness.

Wraps the three simulators behind one call:

>>> from repro.platforms import build_model
>>> from repro.sim import simulate_overhead
>>> est = simulate_overhead(build_model("Hera", 1), T=6000.0, P=256,
...                         n_runs=20, n_patterns=50, seed=1)
>>> 0.1 < est.mean < 0.2
True

The paper's protocol (Section IV-A) averages 500 runs of at least 500
patterns; those are the ``paper``-fidelity defaults, while tests and
quick sweeps use far smaller numbers (the estimator is unbiased at any
size, only the CI widens).

Backends
--------
``"des"``
    Event-driven reference (:func:`repro.sim.protocol.simulate_run`);
    legible specification, ~1000x slower, for validation.
``"batch"``
    Per-pattern closed-form sampler (:func:`repro.sim.batch.simulate_batch`).
``"vectorized"``
    Whole-budget aggregated sampler
    (:func:`repro.sim.vectorized.simulate_vectorized`); chunked and
    optionally multiprocess, another order of magnitude faster on
    paper-fidelity budgets.
``"auto"`` (default)
    ``vectorized`` for budgets of at least
    :data:`VECTORIZED_THRESHOLD` pattern cells, ``batch`` below.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from . import batch as _batch
from .batch import simulate_batch, simulate_batch_chunked
from .protocol import simulate_run
from .results import OverheadEstimate, overhead_estimate
from .rng import make_rng, spawn_rngs
from .vectorized import simulate_vectorized

__all__ = [
    "Fidelity",
    "FAST",
    "PAPER",
    "METHODS",
    "VECTORIZED_THRESHOLD",
    "resolve_method",
    "simulate_overhead",
]


@dataclass(frozen=True)
class Fidelity:
    """A (runs x patterns) Monte-Carlo budget."""

    n_runs: int
    n_patterns: int
    name: str = "custom"

    @property
    def n_cells(self) -> int:
        """Total pattern cells in the budget."""
        return self.n_runs * self.n_patterns


#: Quick sweeps / CI: wide CIs but unbiased.
FAST = Fidelity(n_runs=50, n_patterns=100, name="fast")
#: The paper's protocol: 500 runs, each >= 500 patterns.
PAPER = Fidelity(n_runs=500, n_patterns=500, name="paper")

#: Valid ``method=`` choices of :func:`simulate_overhead`.
METHODS = ("auto", "batch", "des", "vectorized")

#: ``method="auto"`` switches from ``batch`` to ``vectorized`` at this
#: many ``runs x patterns`` cells (the PAPER budget is 250 000).
VECTORIZED_THRESHOLD = 100_000


def resolve_method(method: str, n_runs: int, n_patterns: int) -> str:
    """Resolve ``"auto"`` to a concrete backend for the given budget."""
    if method not in METHODS:
        raise SimulationError(
            f"unknown simulation method {method!r}; valid choices are "
            + ", ".join(repr(m) for m in METHODS)
        )
    if method == "auto":
        return "vectorized" if n_runs * n_patterns >= VECTORIZED_THRESHOLD else "batch"
    return method


def simulate_overhead(
    model: PatternModel,
    T: float,
    P: float,
    n_runs: int = FAST.n_runs,
    n_patterns: int = FAST.n_patterns,
    seed: int | None = None,
    method: str = "auto",
    workers: int | None = None,
) -> OverheadEstimate:
    """Estimate the expected execution overhead of PATTERN(T, P) by simulation.

    Parameters
    ----------
    model:
        Platform/application bundle.
    T, P:
        Pattern parameters (P is used as given, fractional allocations
        are meaningful in the model and accepted).
    n_runs, n_patterns:
        Monte-Carlo budget; see :data:`FAST` and :data:`PAPER`.
    seed:
        Master seed (default: the library-wide fixed seed).
    method:
        One of :data:`METHODS`.  ``"auto"`` (default) picks
        ``"vectorized"`` for budgets of at least
        :data:`VECTORIZED_THRESHOLD` cells and ``"batch"`` below;
        ``"des"`` is the event-driven reference (~1000x slower, for
        validation).
    workers:
        Worker-process count for the chunk dispatch of the array
        backends (``"des"`` ignores it).  An explicit ``workers > 1``
        refines the chunk plan, so it selects a different (equally
        valid) sample stream: results are reproducible for fixed call
        arguments, and whether the pool actually starts never changes
        the numbers — only the wall-clock.
    """
    method = resolve_method(method, n_runs, n_patterns)
    if method == "batch":
        if n_runs * n_patterns > _batch.MAX_CHUNK_ELEMENTS:
            # Bound the per-pattern transient arrays of giant custom
            # budgets; below the cap the single-pass sampler keeps its
            # historical RNG stream.
            stats = simulate_batch_chunked(
                model, T, P, n_runs, n_patterns, seed, workers=workers
            )
        else:
            stats = simulate_batch(model, T, P, n_runs, n_patterns, make_rng(seed))
        return overhead_estimate(model, T, P, stats)
    if method == "vectorized":
        stats = simulate_vectorized(
            model, T, P, n_runs, n_patterns, seed, workers=workers
        )
        return overhead_estimate(model, T, P, stats)
    rngs = spawn_rngs(n_runs, seed)
    runs = [simulate_run(model, T, P, n_patterns, rng) for rng in rngs]
    return overhead_estimate(model, T, P, runs)
