"""Failure arrival processes: exponential and beyond.

Section II assumes Poisson (exponential inter-arrival) error processes,
which makes the analysis tractable but is an idealisation — field
studies commonly fit platform failures with **Weibull** inter-arrivals
of shape < 1 (bursty: a failure makes the next one more likely soon).
This module abstracts the arrival law so the renewal simulator
(:mod:`repro.sim.renewal`) can quantify how robust the paper's
exponential-optimal patterns are under non-memoryless failures.

Arrival processes are *renewal* processes: inter-arrival times are
i.i.d. draws; the clock renews at each arrival.  Streams live in
"exposed time" — time during which errors can strike (everything except
the downtime, which the paper defines as error-free).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["ArrivalProcess", "ExponentialArrivals", "WeibullArrivals"]


class ArrivalProcess(ABC):
    """An i.i.d. inter-arrival law for a renewal failure process."""

    @abstractmethod
    def sample_interarrival(self, rng: np.random.Generator) -> float:
        """Draw one inter-arrival time (seconds of exposed time)."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Mean inter-arrival time (the process MTBF)."""

    @property
    def rate(self) -> float:
        """Long-run arrival rate ``1/mean``."""
        return 1.0 / self.mean


@dataclass(frozen=True)
class ExponentialArrivals(ArrivalProcess):
    """Poisson arrivals — the paper's assumption (memoryless)."""

    lam: float

    def __post_init__(self) -> None:
        if self.lam <= 0.0 or not math.isfinite(self.lam):
            raise InvalidParameterError(f"rate must be positive, got {self.lam!r}")

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.lam))

    @property
    def mean(self) -> float:
        return 1.0 / self.lam


@dataclass(frozen=True)
class WeibullArrivals(ArrivalProcess):
    """Weibull inter-arrivals with shape ``shape`` and scale ``scale``.

    ``shape < 1`` models infant-mortality-heavy platforms (bursty
    failures; the common HPC field fit is shape ~ 0.5-0.8);
    ``shape = 1`` is exactly exponential; ``shape > 1`` models wear-out.
    Mean inter-arrival: ``scale * Gamma(1 + 1/shape)``.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or not math.isfinite(self.shape):
            raise InvalidParameterError(f"shape must be positive, got {self.shape!r}")
        if self.scale <= 0.0 or not math.isfinite(self.scale):
            raise InvalidParameterError(f"scale must be positive, got {self.scale!r}")

    @classmethod
    def from_mean(cls, shape: float, mean: float) -> "WeibullArrivals":
        """Build with a prescribed mean inter-arrival (match an MTBF).

        >>> w = WeibullArrivals.from_mean(0.7, 3600.0)
        >>> round(w.mean, 6)
        3600.0
        """
        if mean <= 0.0:
            raise InvalidParameterError(f"mean must be positive, got {mean!r}")
        if shape <= 0.0:
            raise InvalidParameterError(f"shape must be positive, got {shape!r}")
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=scale)

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)
