"""Aggregated whole-budget Monte-Carlo backend (the paper-fidelity path).

:mod:`repro.sim.batch` already replaced the event loop with bulk array
sampling, but it still draws one geometric variate **per pattern** — a
500-runs-by-500-patterns budget costs 250 000 geometric draws even when
almost every attempt succeeds.  This backend pushes the renewal algebra
one level higher and samples whole ``(runs x patterns)`` budgets:

* the failed attempts of one run are a sum of ``n_patterns`` iid
  geometric counts, i.e. a **negative binomial** — one draw per *run*
  instead of one per pattern;
* the failures of a run split into the A/B/C outcomes as a
  **multinomial** over the conditional outcome probabilities — one
  draw per run instead of one classification uniform per failure;
* silent-detected failures (outcome B) cost exactly ``T + V`` each, so
  their contribution is ``n_B * (T + V)`` — zero random draws;
* the recovery retries of a run are again negative binomial in the
  run's failure count; only the truncated-exponential losses of the
  fail-stop interruptions that actually happened are materialised and
  reduced to runs with masked ``bincount`` arithmetic.

The sampled per-run wall-clock distribution is *exactly* the batch
backend's (sums of iid pattern costs commute), so the two agree with
the event-driven reference to statistical identity — the test suite
pins this — while the work drops from ``O(runs x patterns)`` to
``O(runs + failures)``.  At the paper's protocol on the Figure 5-7
workloads that is a 10-50x speedup (see
``benchmarks/test_bench_vectorized.py``), which is what makes
paper-fidelity sweeps routine instead of overnight jobs.

Budgets larger than :data:`repro.sim.batch.MAX_CHUNK_ELEMENTS` cells
(or any budget when ``workers > 1`` is requested) are split into run
chunks with independent spawned seed streams and optionally dispatched
to a process pool; the result is a pure function of the call
arguments — whether the pool actually starts only affects wall-clock.
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from .batch import (
    BatchStats,
    PatternRates,
    _error_free_stats,
    run_chunked,
    truncated_exponential,
)

__all__ = ["simulate_vectorized", "simulate_chunk"]


def _per_run_loss_sums(
    rng: np.random.Generator,
    lam: float,
    window: float,
    counts: np.ndarray,
) -> np.ndarray:
    """Per-run sums of ``counts[i]`` iid truncated-exponential losses."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(counts.size)
    losses = truncated_exponential(rng, lam, window, total)
    return np.bincount(
        np.repeat(np.arange(counts.size), counts), weights=losses, minlength=counts.size
    )


def simulate_chunk(
    rates: PatternRates,
    n_runs: int,
    n_patterns: int,
    seed: np.random.SeedSequence | int | None,
) -> BatchStats:
    """Simulate one chunk of runs from scalar rates.

    Module-level and picklable-argument-only, so
    :func:`repro.sim.batch.dispatch_chunks` can ship it to worker
    processes.
    """
    if n_runs <= 0 or n_patterns <= 0:
        raise SimulationError("n_runs and n_patterns must be positive")
    rng = np.random.default_rng(seed)

    if rates.p_success >= 1.0:  # error-free: every attempt succeeds
        return _error_free_stats(rates, n_runs, n_patterns)

    # Failures per run: sum of n_patterns iid Geometric(p) failure
    # counts == NegativeBinomial(n_patterns, p).
    failures = rng.negative_binomial(n_patterns, rates.p_success, size=n_runs)
    n_failures = int(failures.sum())

    # Split each run's failures into the A/B/C outcomes: multinomial
    # over the conditional outcome probabilities.  q_fail comes from
    # expm1 of the summed exponent (not 1 - p_success, which loses all
    # precision for tiny rates), and the clips keep p_A + p_B <= 1 when
    # rounding would otherwise push the pvals out of numpy's domain —
    # e.g. silent-only models, where p_B is mathematically exactly 1.
    q_fail = -np.expm1(
        -(rates.lam_f * (rates.A + rates.C) + rates.lam_s * rates.T)
    )
    p_A = min(1.0, -np.expm1(-rates.lam_f * rates.A) / q_fail)
    p_B = min(1.0 - p_A, rates.p_ok_A * -np.expm1(-rates.lam_s * rates.T) / q_fail)
    outcome = rng.multinomial(failures, [p_A, p_B, max(0.0, 1.0 - p_A - p_B)])
    n_A, n_B, n_C = outcome[:, 0], outcome[:, 1], outcome[:, 2]

    # Per-run cost, resolved with masked bincount arithmetic; only the
    # fail-stop losses that actually happened draw random numbers —
    # a silent-detected attempt (B) costs exactly the full T+V segment.
    extra = n_B * rates.A + n_C * rates.A + failures * rates.R
    if rates.lam_f > 0.0:
        extra = extra + _per_run_loss_sums(rng, rates.lam_f, rates.A, n_A)
        extra = extra + _per_run_loss_sums(rng, rates.lam_f, rates.C, n_C)
        # Each recovery retries through a geometric number of fail-stop
        # interruptions; per run that is again negative binomial in the
        # failure count.
        n_sub = np.zeros(n_runs, dtype=np.int64)
        struck = failures > 0
        if struck.any():
            n_sub[struck] = rng.negative_binomial(failures[struck], rates.p_ok_R)
        extra = extra + _per_run_loss_sums(rng, rates.lam_f, rates.R, n_sub)
        extra = extra + (n_A + n_C + n_sub) * rates.D
    else:
        n_sub = np.zeros(n_runs, dtype=np.int64)

    n_interrupts = int(n_A.sum() + n_C.sum() + n_sub.sum())
    return BatchStats(
        run_times=n_patterns * rates.base_pattern_time + extra,
        n_patterns=n_patterns,
        n_attempts=n_runs * n_patterns + n_failures,
        n_fail_stop=n_interrupts,
        n_silent_detected=int(n_B.sum()),
        n_recoveries=n_failures,
        n_downtimes=n_interrupts,
    )


def simulate_vectorized(
    model: PatternModel,
    T: float,
    P: float,
    n_runs: int,
    n_patterns: int,
    seed: int | np.random.SeedSequence | None = None,
    *,
    chunk_runs: int | None = None,
    workers: int | None = None,
) -> BatchStats:
    """Simulate the whole ``(n_runs x n_patterns)`` budget as arrays.

    Same model and distribution as :func:`repro.sim.batch.simulate_batch`
    (the equivalence is asserted statistically against the event-driven
    reference in the test suite), an order of magnitude faster on
    paper-fidelity budgets.

    Parameters
    ----------
    model, T, P:
        Platform/application bundle and pattern parameters.
    n_runs, n_patterns:
        Monte-Carlo budget; the paper uses 500 x 500.
    seed:
        Master seed; each chunk receives an independent spawned child
        stream, so results are reproducible for a fixed chunk plan.
    chunk_runs:
        Runs per chunk (default: sized to keep a chunk under
        :data:`repro.sim.batch.MAX_CHUNK_ELEMENTS` cells).
    workers:
        Process-pool width (default: auto — serial on a single-core
        machine).  Requesting ``workers > 1`` refines the default
        chunk plan so every worker gets chunks; for fixed call
        arguments the sampled numbers are deterministic, and pool
        availability only ever affects the wall-clock.
    """
    return run_chunked(
        simulate_chunk,
        PatternRates.from_model(model, T, P),
        n_runs,
        n_patterns,
        seed,
        chunk_runs,
        workers,
    )
