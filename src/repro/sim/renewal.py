"""VC-protocol simulation under general renewal failure processes.

The reference simulator (:mod:`repro.sim.protocol`) resamples the
fail-stop clock at each segment — valid *only* for the exponential law
(memorylessness).  This variant keeps a **persistent renewal stream**:
the next fail-stop arrival is a point in cumulative *exposed time*
(time excluding downtime), segments consume exposed time, and the
stream renews when an arrival fires.  With exponential arrivals it is
distribution-identical to the reference (asserted statistically in the
tests); with Weibull arrivals it answers the robustness question the
paper's exponential assumption leaves open.

Silent errors remain Poisson (they model independent radiation-induced
bit flips, for which the memoryless assumption is uncontroversial);
only the fail-stop law is swappable.
"""

from __future__ import annotations

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from .protocol import RunStats
from .streams import ArrivalProcess, ExponentialArrivals

__all__ = ["simulate_run_renewal"]


class _RenewalRun:
    """One run with a persistent fail-stop renewal stream."""

    def __init__(
        self,
        model: PatternModel,
        T: float,
        P: float,
        rng: np.random.Generator,
        fail_stop: ArrivalProcess | None,
    ) -> None:
        if T <= 0.0 or P <= 0.0:
            raise SimulationError("T and P must be positive")
        self.rng = rng
        self.T = float(T)
        lam_f = float(model.errors.fail_stop_rate(P))
        if fail_stop is None:
            fail_stop = ExponentialArrivals(lam_f) if lam_f > 0.0 else None
        self.fail_stop = fail_stop
        self.lam_s = float(model.errors.silent_rate(P))
        self.C = float(model.costs.checkpoint_cost(P))
        self.R = float(model.costs.recovery_cost(P))
        self.V = float(model.costs.verification_cost(P))
        self.D = float(model.costs.downtime)
        self.wall = 0.0  # wall-clock (includes downtime)
        self.exposed = 0.0  # exposure clock (excludes downtime)
        self.next_fail = (
            self.exposed + self.fail_stop.sample_interarrival(rng)
            if self.fail_stop is not None
            else np.inf
        )
        self.stats = RunStats(
            total_time=0.0,
            n_patterns=0,
            n_attempts=0,
            n_fail_stop=0,
            n_silent_struck=0,
            n_silent_detected=0,
            n_recoveries=0,
            n_downtimes=0,
        )

    def _run_segment(self, duration: float) -> float | None:
        """Consume exposed time; return elapsed-at-failure or None."""
        if self.next_fail < self.exposed + duration:
            elapsed = self.next_fail - self.exposed
            self.exposed = self.next_fail
            self.wall += elapsed
            self.stats.n_fail_stop += 1
            # Renew the stream at the arrival.
            self.next_fail = self.exposed + self.fail_stop.sample_interarrival(self.rng)
            return elapsed
        self.exposed += duration
        self.wall += duration
        return None

    def _downtime(self) -> None:
        # Downtime advances the wall clock only: errors cannot strike,
        # and the renewal stream (defined on exposed time) is paused.
        self.wall += self.D
        self.stats.n_downtimes += 1
        self.stats.breakdown.downtime += self.D

    def _recover(self) -> None:
        while True:
            failed_at = self._run_segment(self.R)
            if failed_at is None:
                self.stats.n_recoveries += 1
                self.stats.breakdown.recovery += self.R
                return
            self.stats.breakdown.lost += failed_at
            self._downtime()

    def _silent_within(self, computed: float) -> bool:
        if self.lam_s <= 0.0 or computed <= 0.0:
            return False
        return self.rng.exponential(1.0 / self.lam_s) < computed

    def run_pattern(self) -> None:
        while True:
            self.stats.n_attempts += 1
            failed_at = self._run_segment(self.T + self.V)
            if failed_at is not None:
                if self._silent_within(min(failed_at, self.T)):
                    self.stats.n_silent_struck += 1
                self.stats.breakdown.lost += failed_at
                self._downtime()
                self._recover()
                continue
            if self._silent_within(self.T):
                self.stats.n_silent_struck += 1
                self.stats.n_silent_detected += 1
                self.stats.breakdown.wasted_work += self.T
                self.stats.breakdown.verification += self.V
                self._recover()
                continue
            failed_at = self._run_segment(self.C)
            if failed_at is not None:
                self.stats.breakdown.wasted_work += self.T
                self.stats.breakdown.verification += self.V
                self.stats.breakdown.lost += failed_at
                self._downtime()
                self._recover()
                continue
            self.stats.n_patterns += 1
            self.stats.breakdown.useful_work += self.T
            self.stats.breakdown.verification += self.V
            self.stats.breakdown.checkpoint += self.C
            return


def simulate_run_renewal(
    model: PatternModel,
    T: float,
    P: float,
    n_patterns: int,
    rng: np.random.Generator,
    fail_stop: ArrivalProcess | None = None,
) -> RunStats:
    """Simulate the VC protocol with a persistent renewal fail-stop stream.

    Parameters
    ----------
    fail_stop:
        The inter-arrival law.  ``None`` uses the model's exponential
        fail-stop rate (distribution-identical to
        :func:`repro.sim.protocol.simulate_run`); pass a
        :class:`~repro.sim.streams.WeibullArrivals` (typically built
        with ``from_mean(shape, 1/lambda_f_P)``) for the robustness
        studies.
    """
    if n_patterns <= 0:
        raise SimulationError(f"n_patterns must be positive, got {n_patterns!r}")
    run = _RenewalRun(model, T, P, rng, fail_stop)
    for _ in range(n_patterns):
        run.run_pattern()
    run.stats.total_time = run.wall
    return run.stats
