"""In-process executor: no pool, no partitioning."""

from __future__ import annotations

from typing import Callable, Sequence

from .base import Executor

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Run every job in the calling process, in submission order."""

    workers = 1

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"
