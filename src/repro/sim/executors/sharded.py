"""Sharded executor: deterministic key partition for multi-machine sweeps.

A sharded run computes only the planned points whose plan key hashes to
its ``shard_index`` (see :func:`repro.sim.executors.base.shard_of`) and
leaves the rest unresolved.  Pointing the pipeline's result cache at a
per-shard directory turns each shard run into a content-addressed
``.npz`` drop; :func:`merge_shard_dirs` (the ``repro-experiments
merge`` command) fuses the shard directories into one cache, after
which an unsharded run over the same spec is served entirely from cache
— bit-identical to computing everything on one machine, because every
job, seed and reduction is a pure function of the plan key.
"""

from __future__ import annotations

import filecmp
import shutil
from pathlib import Path
from typing import Callable, Sequence

from ...exceptions import SimulationError
from .base import Executor, shard_of
from .serial import SerialExecutor

__all__ = ["ShardedExecutor", "merge_shard_dirs"]


class ShardedExecutor(Executor):
    """Own the deterministic ``shard_index``-th slice of the planned keys.

    Wraps an inner executor (serial or pooled) that runs the owned
    jobs; foreign points are skipped entirely — their chunk jobs are
    never expanded, so a shard's wall-clock scales with its share of
    the sweep.
    """

    def __init__(self, shard_index: int, shard_count: int, inner: Executor | None = None):
        if shard_count < 1:
            raise SimulationError("shard_count must be >= 1")
        if not 0 <= shard_index < shard_count:
            raise SimulationError(
                f"shard_index {shard_index} outside [0, {shard_count})"
            )
        self.shard_index = int(shard_index)
        self.shard_count = int(shard_count)
        self.inner = inner if inner is not None else SerialExecutor()

    @property
    def workers(self) -> int:  # type: ignore[override]
        return self.inner.workers

    def owns(self, key: str) -> bool:
        return shard_of(key, self.shard_count) == self.shard_index

    def map(self, fn: Callable, items: Sequence) -> list:
        return self.inner.map(fn, items)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor({self.shard_index}/{self.shard_count}, "
            f"inner={self.inner!r})"
        )


def merge_shard_dirs(
    shard_dirs: Sequence[str | Path], target: str | Path
) -> tuple[int, int]:
    """Fuse shard ``.npz`` drops into the cache directory ``target``.

    Entries are content-addressed (the file name is the plan key), so
    merging is a copy; a key present in several inputs must be
    byte-identical — a mismatch means a corrupt or foreign file and
    raises rather than silently preferring one side.  Returns
    ``(copied, skipped_duplicates)``.
    """
    target = Path(target)
    target.mkdir(parents=True, exist_ok=True)
    copied = skipped = 0
    for shard_dir in shard_dirs:
        shard_dir = Path(shard_dir)
        if not shard_dir.is_dir():
            raise SimulationError(f"shard directory {shard_dir} does not exist")
        for path in sorted(shard_dir.glob("*.npz")):
            if path.name.startswith("."):
                continue  # torn atomic-write temp: never a real entry
            dest = target / path.name
            if dest.exists():
                if not filecmp.cmp(path, dest, shallow=False):
                    raise SimulationError(
                        f"shard entry {path.name} conflicts with an existing "
                        f"cache entry under {target} — refusing to merge"
                    )
                skipped += 1
                continue
            tmp = dest.with_name(f".{path.name}.merge.tmp")
            shutil.copyfile(path, tmp)
            tmp.replace(dest)
            copied += 1
    return copied, skipped
