"""Sharded executor: static or work-stealing key partition for sweeps.

A sharded run computes only a slice of the planned points and leaves
the rest unresolved.  Pointing the pipeline's result cache at a
per-shard directory turns each shard run into a content-addressed
``.npz`` drop; :func:`merge_shard_dirs` (the ``repro-experiments
merge`` command) fuses the shard directories into one cache, after
which an unsharded run over the same spec is served entirely from cache
— bit-identical to computing everything on one machine, because every
job, seed and reduction is a pure function of the plan key.

Two partitioning modes:

* ``static`` — the historical coordination-free partition: shard ``i``
  owns exactly the keys with ``shard_of(key, N) == i``.  No shared
  state, but a slow or dead shard leaves its slice uncomputed while the
  others sit idle.
* ``stealing`` — shards share a :class:`ClaimBoard` (a directory of
  atomically-created claim markers, e.g. on a shared filesystem) and
  claim keys exclusively in :func:`claim_order`: their own static
  partition first, then the other shards' keys in ring order.  An idle
  shard therefore drains whatever work is left, wherever it "belongs";
  every key is still computed by exactly one shard, so the merged
  result is identical to the static partition's.
"""

from __future__ import annotations

import filecmp
import os
import shutil
from pathlib import Path
from typing import Callable, Sequence

from ...exceptions import SimulationError
from .base import Executor, JobFuture, shard_of
from .serial import SerialExecutor

__all__ = ["ShardedExecutor", "ClaimBoard", "claim_order", "merge_shard_dirs"]

#: Valid ``ShardedExecutor`` partitioning modes.
SHARD_MODES = ("static", "stealing")


def claim_order(keys: Sequence[str], shard_index: int, shard_count: int) -> list[str]:
    """Deterministic order in which a stealing shard tries to claim keys.

    The shard's own static partition comes first (so under no
    contention the stealing mode degenerates to the static one), then
    foreign keys grouped by owning shard in ring order starting from
    the next shard — concurrent stealers fan out over *different*
    victims instead of colliding on the same keys.  Keys sort
    lexicographically within each group, so the order is a pure
    function of ``(keys, shard_index, shard_count)``.
    """

    def rank(key: str) -> tuple[int, str]:
        owner = shard_of(key, shard_count)
        return ((owner - shard_index) % shard_count, key)

    return sorted(keys, key=rank)


class ClaimBoard:
    """Filesystem claim registry: at most one shard computes each key.

    One marker file per claimed key, recording the claiming owner so
    re-claims by the same owner are idempotent (a restarted shard
    keeps its claims).  The marker is published with the classic
    lockfile pattern — write a private temp file, then ``os.link`` it
    to the claim name — so it appears *atomically with its owner
    already inside*: the first claimer wins even across machines, and
    a shard dying mid-claim can never leave a torn owner-less marker
    that would orphan the key for everyone.

    **Leases.** A marker's mtime is its lease timestamp: claiming (or
    re-claiming, which every scheduling round does) renews it.  With
    ``lease_ttl`` set, a *foreign* marker older than the TTL is
    treated as abandoned by a dead worker and reclaimed — previously
    such a key was blocked forever.  Reclamation is made safe by a
    tombstone rename: exactly one contender wins the ``os.rename`` of
    the stale marker (the loser's rename fails), and the winner then
    re-runs the normal atomic claim.  The one unavoidable TOCTOU
    window (a marker renewed between the staleness check and the
    rename) can at worst cause a duplicate computation — harmless,
    because jobs are pure and duplicate cache entries are
    byte-identical, which ``merge`` accepts.  Pick a TTL longer than
    the slowest single point plus the gap between scheduling rounds.
    """

    def __init__(self, directory: str | Path, lease_ttl: float | None = None):
        if lease_ttl is not None and lease_ttl <= 0:
            raise SimulationError("lease_ttl must be positive (or None)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.lease_ttl = lease_ttl
        #: Stale foreign claims taken over (observability/tests).
        self.reclaimed = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.claim"

    def _publish(self, key: str, owner: str) -> bool | None:
        """One atomic claim attempt: True won, False lost, None raced."""
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(owner)
        try:
            os.link(tmp, path)
        except FileExistsError:
            if self.owner_of(key) == owner:
                os.utime(path, None)  # renew our lease
                return True
            return False
        finally:
            tmp.unlink(missing_ok=True)
        return True

    def try_claim(self, key: str, owner: str) -> bool:
        """Atomically claim ``key`` for ``owner`` (idempotent per owner).

        With a lease TTL, a stale foreign marker is reclaimed (see the
        class docstring) before one more claim attempt.
        """
        won = self._publish(key, owner)
        if won:
            return True
        if self.lease_ttl is None:
            return False
        age = self.age_of(key)
        if age is None or age <= self.lease_ttl:
            return False
        return self._reclaim(key, owner)

    def _reclaim(self, key: str, owner: str) -> bool:
        """Tombstone a stale marker, then re-run the atomic claim."""
        path = self._path(key)
        tomb = path.with_name(f".{path.name}.{os.getpid()}.stale")
        try:
            os.rename(path, tomb)
        except OSError:
            # Another contender renamed it first (and may already have
            # republished); fall back to whether we now own the key.
            return self.owner_of(key) == owner
        tomb.unlink(missing_ok=True)
        self.reclaimed += 1
        return bool(self._publish(key, owner))

    def age_of(self, key: str) -> float | None:
        """Seconds since the claim's lease was last renewed (None: unclaimed)."""
        import time as _time

        try:
            return _time.time() - self._path(key).stat().st_mtime
        except OSError:
            return None

    def owner_of(self, key: str) -> str | None:
        """The owner that claimed ``key``, or ``None`` if unclaimed."""
        try:
            return self._path(key).read_text()
        except OSError:
            return None

    def claimed(self) -> dict[str, str]:
        """Every claimed key with its owner (introspection/tests)."""
        out = {}
        for path in self.directory.glob("*.claim"):
            out[path.name[: -len(".claim")]] = path.read_text()
        return out


class ShardedExecutor(Executor):
    """Compute one shard's slice of the planned keys.

    Wraps an inner executor (serial or pooled) that runs the claimed
    jobs; foreign points are skipped entirely — their chunk jobs are
    never expanded, so a shard's wall-clock scales with its share of
    the sweep.  ``mode="stealing"`` replaces the static ``shard_of``
    partition with exclusive claims on a shared :class:`ClaimBoard`
    (``claim_dir``), letting idle shards take over unclaimed keys.
    """

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        inner: Executor | None = None,
        mode: str = "static",
        claim_dir: str | Path | None = None,
        lease_ttl: float | None = None,
    ):
        if shard_count < 1:
            raise SimulationError("shard_count must be >= 1")
        if not 0 <= shard_index < shard_count:
            raise SimulationError(
                f"shard_index {shard_index} outside [0, {shard_count})"
            )
        if mode not in SHARD_MODES:
            raise SimulationError(
                f"unknown shard mode {mode!r} (expected one of {SHARD_MODES})"
            )
        if mode == "stealing" and claim_dir is None:
            raise SimulationError(
                "work-stealing shards need a shared claim_dir (the claim board)"
            )
        self.shard_index = int(shard_index)
        self.shard_count = int(shard_count)
        self.inner = inner if inner is not None else SerialExecutor()
        self.mode = mode
        self.board = (
            ClaimBoard(claim_dir, lease_ttl=lease_ttl)
            if mode == "stealing"
            else None
        )
        self.owner_id = f"shard-{self.shard_index}"

    @property
    def workers(self) -> int:  # type: ignore[override]
        return self.inner.workers

    def owns(self, key: str) -> bool:
        if self.mode == "static":
            return shard_of(key, self.shard_count) == self.shard_index
        # Stealing: claim-on-query (single-key callers, e.g. generic
        # call jobs); batch rounds go through claim() for steal order.
        return self.board.try_claim(key, self.owner_id)

    def claim(self, keys: Sequence[str]) -> list[str]:
        if self.mode == "static":
            return [key for key in keys if self.owns(key)]
        ordered = claim_order(keys, self.shard_index, self.shard_count)
        return [key for key in ordered if self.board.try_claim(key, self.owner_id)]

    def map(self, fn: Callable, items: Sequence) -> list:
        return self.inner.map(fn, items)

    def submit(self, fn: Callable, item, tag=None) -> JobFuture:
        return self.inner.submit(fn, item, tag=tag)

    def next_completed(self) -> JobFuture | None:
        return self.inner.next_completed()

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor({self.shard_index}/{self.shard_count}, "
            f"mode={self.mode!r}, inner={self.inner!r})"
        )


def merge_shard_dirs(
    shard_dirs: Sequence[str | Path], target: str | Path
) -> tuple[int, int]:
    """Fuse shard ``.npz`` drops into the cache directory ``target``.

    Entries are content-addressed (the file name is the plan key), so
    merging is a copy; a key present in several inputs must be
    byte-identical — a mismatch means a corrupt or foreign file and
    raises rather than silently preferring one side.  Returns
    ``(copied, skipped_duplicates)``.
    """
    target = Path(target)
    target.mkdir(parents=True, exist_ok=True)
    copied = skipped = 0
    for shard_dir in shard_dirs:
        shard_dir = Path(shard_dir)
        if not shard_dir.is_dir():
            raise SimulationError(f"shard directory {shard_dir} does not exist")
        for path in sorted(shard_dir.glob("*.npz")):
            if path.name.startswith("."):
                continue  # torn atomic-write temp: never a real entry
            dest = target / path.name
            if dest.exists():
                if not filecmp.cmp(path, dest, shallow=False):
                    raise SimulationError(
                        f"shard entry {path.name} conflicts with an existing "
                        f"cache entry under {target} — refusing to merge"
                    )
                skipped += 1
                continue
            tmp = dest.with_name(f".{path.name}.merge.tmp")
            shutil.copyfile(path, tmp)
            tmp.replace(dest)
            copied += 1
    return copied, skipped
