"""The executor protocol shared by serial, pooled and sharded dispatch.

Two dispatch surfaces coexist on the protocol:

* the historical blocking :meth:`Executor.map` (order-preserving, one
  barrier per call) — kept for library callers and the plan-level
  :func:`repro.sim.plan.execute_plan`;
* the event-driven pair :meth:`Executor.submit` /
  :meth:`Executor.as_completed` used by
  :class:`repro.sim.scheduler.Scheduler`: jobs enter one at a time and
  complete out of order, so a slow chunk never barriers the rest of the
  sweep.  The base implementation runs each submitted job inline and
  queues its (already resolved) :class:`JobFuture` FIFO — exactly
  serial semantics — so every executor is schedulable even before it
  overrides anything.

:meth:`Executor.claim` is the partitioning hook: given the plan keys
that still need computing, it returns the subset this executor will
run.  The default claims everything via :meth:`owns`; the sharded
executor overrides it with a static partition or a work-stealing claim
order.  Jobs are pure functions of their arguments, so none of this
ever changes a sampled number — only where and when it is produced.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

from ...exceptions import SimulationError

__all__ = ["Executor", "JobFuture", "shard_of"]


def shard_of(key: str, shard_count: int) -> int:
    """Deterministic shard owning a plan key (hex SHA-256 digest).

    A pure function of the key and the shard count, so every machine of
    a multi-host sweep computes the same partition without coordination.
    """
    return int(key[:8], 16) % shard_count


class JobFuture:
    """Completion handle of one submitted executor job.

    Carries the job itself (``fn``, ``item``) so an executor whose pool
    dies mid-flight can re-run the job inline — jobs are pure, so the
    retry yields the identical result — plus an opaque ``tag`` the
    scheduler uses to map completions back to plan bookkeeping.  A job
    exception is captured and re-raised at :meth:`result` time.
    """

    __slots__ = ("fn", "item", "tag", "_done", "_result", "_error")

    def __init__(self, fn: Callable, item, tag=None):
        self.fn = fn
        self.item = item
        self.tag = tag
        self._done = False
        self._result = None
        self._error: BaseException | None = None

    def _finish(self, result) -> None:
        self._result = result
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def _run_inline(self) -> None:
        """Execute the job in the calling process (submit or retry path)."""
        try:
            self._finish(self.fn(self.item))
        except Exception as exc:
            self._fail(exc)

    @property
    def done(self) -> bool:
        return self._done

    def result(self):
        """The job's return value (raises the job's exception, if any)."""
        if not self._done:
            raise SimulationError("job future read before completion")
        if self._error is not None:
            raise self._error
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self._done else (
            "failed" if self._error is not None else "done"
        )
        return f"JobFuture({state}, tag={self.tag!r})"


class Executor:
    """Where the planned chunk jobs of a simulation batch run.

    Blocking surface: :meth:`map` mirrors
    :meth:`repro.sim.plan.WorkerPool.map` (order-preserving).  Async
    surface: :meth:`submit` returns a :class:`JobFuture` and
    :meth:`next_completed` / :meth:`as_completed` drain completions in
    whatever order they land.  :meth:`claim` / :meth:`owns` are the
    partitioning hooks — the pipeline never expands a point whose plan
    key the executor does not claim (serial and pooled executors claim
    every key).
    """

    #: Worker-process count the executor dispatches over (1 = serial).
    workers: int = 1

    # -- partitioning ------------------------------------------------------

    def owns(self, key: str) -> bool:
        """Whether this executor computes the point with plan key ``key``."""
        return True

    def claim(self, keys: Sequence[str]) -> list[str]:
        """The subset of ``keys`` this executor will compute.

        Called once per scheduling round with every key that still
        needs computing (cache misses only), before any job is
        expanded.  The default claims whatever :meth:`owns` accepts,
        preserving order; the work-stealing sharded executor overrides
        this with an exclusive claim in deterministic steal order.
        """
        return [key for key in keys if self.owns(key)]

    # -- blocking dispatch -------------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Order-preserving map of ``fn`` over ``items``."""
        raise NotImplementedError

    # -- event-driven dispatch ---------------------------------------------

    @property
    def _completed(self) -> deque:
        """FIFO of resolved futures not yet handed to the caller."""
        queue = getattr(self, "_completed_futures", None)
        if queue is None:
            queue = self._completed_futures = deque()
        return queue

    def submit(self, fn: Callable, item, tag=None) -> JobFuture:
        """Submit one job; the base implementation runs it inline.

        Inline execution gives serial executors their semantics for
        free: every future is already resolved when it returns, and
        :meth:`next_completed` yields them in submission order.
        """
        future = JobFuture(fn, item, tag)
        future._run_inline()
        self._completed.append(future)
        return future

    def next_completed(self) -> JobFuture | None:
        """The next completed outstanding future, or ``None`` when idle.

        Blocks until a completion is available if jobs are genuinely
        in flight (pooled executors); never blocks when nothing is
        outstanding.
        """
        if self._completed:
            return self._completed.popleft()
        return None

    def as_completed(self) -> Iterator[JobFuture]:
        """Yield outstanding futures as they complete (drains the queue)."""
        while True:
            future = self.next_completed()
            if future is None:
                return
            yield future

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release any held resources (idempotent).

        Also discards completed-but-unconsumed futures: after an
        aborted round their stale tags must never leak into the next
        round's bookkeeping.
        """
        self._completed.clear()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
