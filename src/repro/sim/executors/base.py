"""The executor protocol shared by serial, pooled and sharded dispatch."""

from __future__ import annotations

from typing import Callable, Sequence

__all__ = ["Executor", "shard_of"]


def shard_of(key: str, shard_count: int) -> int:
    """Deterministic shard owning a plan key (hex SHA-256 digest).

    A pure function of the key and the shard count, so every machine of
    a multi-host sweep computes the same partition without coordination.
    """
    return int(key[:8], 16) % shard_count


class Executor:
    """Where the planned chunk jobs of a simulation batch run.

    The contract mirrors :meth:`repro.sim.plan.WorkerPool.map`: an
    order-preserving map over pure job functions.  :meth:`owns` is the
    sharding hook — the pipeline skips expanding any point whose plan
    key the executor disowns (serial and pooled executors own every
    key).
    """

    #: Worker-process count the executor dispatches over (1 = serial).
    workers: int = 1

    def owns(self, key: str) -> bool:
        """Whether this executor computes the point with plan key ``key``."""
        return True

    def map(self, fn: Callable, items: Sequence) -> list:
        """Order-preserving map of ``fn`` over ``items``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
