"""Pluggable job executors for the fused simulation pipeline.

:mod:`repro.sim.plan` turns simulation requests into a flat list of
pure ``(fn, args, kwargs)`` chunk jobs; an *executor* decides where
those jobs run.  All executors preserve the bit-identity contract:
jobs are pure functions of their arguments, so the executor choice
changes wall-clock and placement only, never the sampled numbers.

* :class:`SerialExecutor` — in-process, no pool.  The default.
* :class:`PoolExecutor` — one shared :class:`~repro.sim.plan.WorkerPool`
  (today's ``--jobs`` behaviour), with a real async ``submit`` path.
* :class:`ShardedExecutor` — computes a subset of the planned points
  and skips the rest, so a sweep can be split across machines; each
  shard writes its results into a content-addressed shard directory
  that ``repro-experiments merge`` fuses into one cache.  Partitioning
  is either the static ``shard_of`` key hash or a work-stealing claim
  over a shared :class:`ClaimBoard`.

Every executor speaks both dispatch dialects: the blocking
order-preserving :meth:`~repro.sim.executors.base.Executor.map`, and
the event-driven :meth:`~repro.sim.executors.base.Executor.submit` /
:meth:`~repro.sim.executors.base.Executor.as_completed` pair consumed
by :class:`repro.sim.scheduler.Scheduler`.
"""

from .base import Executor, JobFuture, shard_of
from .pooled import PoolExecutor
from .serial import SerialExecutor
from .sharded import ClaimBoard, ShardedExecutor, claim_order, merge_shard_dirs

__all__ = [
    "Executor",
    "JobFuture",
    "SerialExecutor",
    "PoolExecutor",
    "ShardedExecutor",
    "ClaimBoard",
    "claim_order",
    "merge_shard_dirs",
    "shard_of",
    "make_executor",
]


def make_executor(
    jobs: int | None = 1,
    shard_index: int | None = None,
    shard_count: int | None = None,
    shard_mode: str = "static",
    claim_dir=None,
    claim_ttl: float | None = None,
) -> Executor:
    """Build the executor implied by the CLI flags.

    ``jobs`` follows :class:`~repro.sim.plan.WorkerPool` semantics
    (``None`` auto-sizes, ``<= 1`` is serial); shard flags wrap the
    resulting executor in a :class:`ShardedExecutor` (``shard_mode``
    picks the static partition or work stealing over ``claim_dir``;
    ``claim_ttl`` is the lease TTL in seconds after which a dead
    shard's claims may be reclaimed).
    """
    inner: Executor
    if jobs is not None and jobs <= 1:
        inner = SerialExecutor()
    else:
        inner = PoolExecutor(jobs)
    if shard_count is not None:
        return ShardedExecutor(
            shard_index if shard_index is not None else 0,
            shard_count,
            inner,
            mode=shard_mode,
            claim_dir=claim_dir,
            lease_ttl=claim_ttl,
        )
    return inner
