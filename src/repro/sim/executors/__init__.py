"""Pluggable job executors for the fused simulation pipeline.

:mod:`repro.sim.plan` turns simulation requests into a flat list of
pure ``(fn, args, kwargs)`` chunk jobs; an *executor* decides where
those jobs run.  All executors preserve the bit-identity contract:
jobs are pure functions of their arguments, so the executor choice
changes wall-clock and placement only, never the sampled numbers.

* :class:`SerialExecutor` — in-process, no pool.  The default.
* :class:`PoolExecutor` — one shared :class:`~repro.sim.plan.WorkerPool`
  (today's ``--jobs`` behaviour).
* :class:`ShardedExecutor` — deterministically *owns* a subset of the
  planned points (partitioned by plan key) and skips the rest, so a
  sweep can be split across machines; each shard writes its results
  into a content-addressed shard directory that
  ``repro-experiments merge`` fuses into one cache.
"""

from .base import Executor, shard_of
from .pooled import PoolExecutor
from .serial import SerialExecutor
from .sharded import ShardedExecutor, merge_shard_dirs

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "ShardedExecutor",
    "merge_shard_dirs",
    "shard_of",
    "make_executor",
]


def make_executor(
    jobs: int | None = 1,
    shard_index: int | None = None,
    shard_count: int | None = None,
) -> Executor:
    """Build the executor implied by the CLI flags.

    ``jobs`` follows :class:`~repro.sim.plan.WorkerPool` semantics
    (``None`` auto-sizes, ``<= 1`` is serial); shard flags wrap the
    resulting executor in a :class:`ShardedExecutor`.
    """
    inner: Executor
    if jobs is not None and jobs <= 1:
        inner = SerialExecutor()
    else:
        inner = PoolExecutor(jobs)
    if shard_count is not None:
        return ShardedExecutor(
            shard_index if shard_index is not None else 0, shard_count, inner
        )
    return inner
