"""Process-pool executor wrapping the shared :class:`WorkerPool`."""

from __future__ import annotations

from typing import Callable, Sequence

from ...exceptions import SimulationError
from ..plan import WorkerPool
from .base import Executor, JobFuture

__all__ = ["PoolExecutor"]


class PoolExecutor(Executor):
    """Dispatch jobs over one shared process pool.

    Accepts either a worker count (``None`` auto-sizes, like
    :class:`~repro.sim.plan.WorkerPool`) or an existing pool to share.
    The pool is created lazily on the first parallel dispatch and
    reused until :meth:`close`.

    Both surfaces degrade to serial without changing results:
    :meth:`map` via the pool's own fallback, :meth:`submit` by running
    the job inline when the pool is unavailable — and a pool that
    breaks *mid-flight* (a killed worker, a sandbox revoking fork)
    re-runs the lost jobs inline, which is safe because every job is a
    pure function of its arguments.
    """

    def __init__(self, workers: int | WorkerPool | None = None):
        self.pool = workers if isinstance(workers, WorkerPool) else WorkerPool(workers)
        #: stdlib future -> JobFuture for jobs genuinely on the pool.
        self._inflight: dict = {}

    @property
    def workers(self) -> int:  # type: ignore[override]
        return self.pool.workers

    def map(self, fn: Callable, items: Sequence) -> list:
        return self.pool.map(fn, items)

    def submit(self, fn: Callable, item, tag=None) -> JobFuture:
        future = JobFuture(fn, item, tag)
        inner = self.pool.submit(fn, item)
        if inner is None:  # pool unavailable: permanent serial fallback
            future._run_inline()
            self._completed.append(future)
        else:
            self._inflight[inner] = future
        return future

    def next_completed(self) -> JobFuture | None:
        if self._completed:
            return self._completed.popleft()
        if not self._inflight:
            return None
        import pickle
        from concurrent.futures import FIRST_COMPLETED, CancelledError, wait
        from concurrent.futures.process import BrokenProcessPool

        done, _ = wait(list(self._inflight), return_when=FIRST_COMPLETED)
        for inner in done:
            future = self._inflight.pop(inner)
            try:
                future._finish(inner.result())
            except (OSError, pickle.PicklingError, BrokenProcessPool, CancelledError):
                # Pool infrastructure died (or a broken pool's shutdown
                # cancelled queued jobs — CancelledError is a
                # BaseException, so it needs naming here), not the job:
                # fall back to serial and replay the pure job for the
                # identical result.
                self.pool.mark_broken()
                future._run_inline()
            except Exception as exc:
                future._fail(exc)
            self._completed.append(future)
        if not self._completed:  # pragma: no cover - wait() contract
            raise SimulationError("process pool wait returned no completion")
        return self._completed.popleft()

    def close(self) -> None:
        # Drop unconsumed bookkeeping along with the pool: a round
        # aborted by a job exception must not leave stale completions
        # whose tags would collide with the next round's.
        self._inflight.clear()
        self._completed.clear()
        self.pool.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoolExecutor(workers={self.pool.workers})"
