"""Process-pool executor wrapping the shared :class:`WorkerPool`."""

from __future__ import annotations

from typing import Callable, Sequence

from ..plan import WorkerPool
from .base import Executor

__all__ = ["PoolExecutor"]


class PoolExecutor(Executor):
    """Dispatch jobs over one shared process pool.

    Accepts either a worker count (``None`` auto-sizes, like
    :class:`~repro.sim.plan.WorkerPool`) or an existing pool to share.
    The pool is created lazily on the first parallel map and reused
    until :meth:`close`; pool-infrastructure failures fall back to the
    serial path without changing any result.
    """

    def __init__(self, workers: int | WorkerPool | None = None):
        self.pool = workers if isinstance(workers, WorkerPool) else WorkerPool(workers)

    @property
    def workers(self) -> int:  # type: ignore[override]
        return self.pool.workers

    def map(self, fn: Callable, items: Sequence) -> list:
        return self.pool.map(fn, items)

    def close(self) -> None:
        self.pool.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoolExecutor(workers={self.pool.workers})"
