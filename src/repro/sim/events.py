"""Event vocabulary for the discrete-event simulator.

The VC-protocol simulation needs only a handful of event kinds, but the
engine itself (:mod:`repro.sim.engine`) is generic: events are opaque
``(kind, payload)`` pairs ordered by timestamp with FIFO tie-breaking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event"]


class EventKind(enum.Enum):
    """What happened at a simulation timestamp."""

    #: A protocol segment (work+verification, checkpoint, recovery,
    #: downtime) ran to completion without interruption.
    SEGMENT_END = "segment-end"
    #: A fail-stop error struck the platform.
    FAIL_STOP = "fail-stop"
    #: A silent error struck a computation (detected only at the next
    #: verification).
    SILENT = "silent"
    #: Generic user event for engine tests / other protocols.
    CUSTOM = "custom"


@dataclass(frozen=True)
class Event:
    """An occurrence at an instant of simulated time.

    Attributes
    ----------
    time:
        Absolute simulation timestamp (seconds).
    kind:
        The event's :class:`EventKind`.
    payload:
        Arbitrary attached data (e.g. which segment completed).
    handle:
        The scheduling handle, usable for identity checks.
    """

    time: float
    kind: EventKind
    payload: Any = field(default=None, compare=False)
    handle: int = field(default=-1, compare=False)
