"""Execution traces of the event-driven simulator.

For debugging protocols and for teaching (see
``examples/simulator_tour.py``), the reference simulator can record a
timestamped trace of everything that happens: pattern attempts,
fail-stop strikes, silent detections, downtimes, recoveries,
checkpoints.  Traces are plain data — render with :func:`format_trace`
or post-process freely.

Recording is opt-in (pass ``trace=Trace()`` to
:func:`repro.sim.protocol.simulate_run`) and costs nothing when off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["TraceEventKind", "TraceEvent", "Trace", "format_trace"]


class TraceEventKind(enum.Enum):
    """What a trace entry records."""

    PATTERN_START = "pattern-start"
    SEGMENT_START = "segment-start"
    FAIL_STOP = "fail-stop"
    SILENT_DETECTED = "silent-detected"
    DOWNTIME = "downtime"
    RECOVERY_DONE = "recovery-done"
    CHECKPOINT_DONE = "checkpoint-done"
    PATTERN_DONE = "pattern-done"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol occurrence."""

    time: float
    kind: TraceEventKind
    detail: str = ""


@dataclass
class Trace:
    """An append-only event log with small query helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, time: float, kind: TraceEventKind, detail: str = "") -> None:
        self.events.append(TraceEvent(time=time, kind=kind, detail=detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def count(self, kind: TraceEventKind) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for e in self.events if e.kind is kind)

    def of_kind(self, kind: TraceEventKind) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with ``start <= time < end``."""
        return [e for e in self.events if start <= e.time < end]

    @property
    def makespan(self) -> float:
        """Timestamp of the last event (0 for an empty trace)."""
        return self.events[-1].time if self.events else 0.0


def format_trace(trace: Trace | Iterable[TraceEvent], limit: int | None = None) -> str:
    """Human-readable rendition, one line per event.

    >>> t = Trace()
    >>> t.record(0.0, TraceEventKind.PATTERN_START, "pattern 1")
    >>> print(format_trace(t))
    t=       0.0s  pattern-start    pattern 1
    """
    events = list(trace)
    if limit is not None:
        events = events[:limit]
    lines = [
        f"t={e.time:10.1f}s  {e.kind.value:<16} {e.detail}".rstrip() for e in events
    ]
    return "\n".join(lines)
