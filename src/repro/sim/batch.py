"""Vectorised Monte-Carlo simulation of the VC protocol.

The reference simulator (:mod:`repro.sim.protocol`) steps through every
event; fine for one run, too slow for the paper's 500-runs-by-500-
patterns grids times dozens of parameter points.  This module samples
the **exact same distribution** without an event loop by exploiting the
renewal structure of a pattern:

* an attempt succeeds with probability
  :math:`p = e^{-\\lambda^f (T+V+C) - \\lambda^s T}`, so the number of
  failed attempts per pattern is geometric;
* conditioned on failing, an attempt fails in exactly one of three ways:

  - **A** — fail-stop during work+verification
    (prob :math:`1 - e^{-\\lambda^f (T+V)}`): costs a truncated
    exponential over ``T+V``, plus downtime, plus one recovery;
  - **B** — no fail-stop, silent error detected by the verification
    (prob :math:`e^{-\\lambda^f (T+V)}(1 - e^{-\\lambda^s T})`): costs
    the full ``T+V`` plus one recovery (no downtime);
  - **C** — no fail-stop in work+verify, no silent, fail-stop during
    the checkpoint: costs ``T+V`` plus a truncated exponential over
    ``C``, plus downtime, plus one recovery;

* each recovery itself suffers a geometric number of fail-stop
  interruptions (rate :math:`e^{-\\lambda^f R}` of success), each
  costing a truncated exponential over ``R`` plus downtime.

Every step above is a closed-form sample (geometric counts, inverse-CDF
truncated exponentials) evaluated in bulk numpy arrays; per-run sums
use ``bincount`` segment reductions.  The equivalence with the
event-driven reference is asserted statistically in the test suite, and
the empirical mean converges to Proposition 1 by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError

__all__ = ["BatchStats", "simulate_batch", "truncated_exponential"]


def truncated_exponential(
    rng: np.random.Generator, lam: float, window: float, size: int
) -> np.ndarray:
    """Sample ``Exp(lam)`` arrivals conditioned on landing inside ``window``.

    Inverse-CDF form :math:`-\\log(1 - u\\,q)/\\lambda` with
    :math:`q = 1 - e^{-\\lambda W}`, stable for tiny ``lam * window``.
    This is the "time lost" distribution whose mean is
    :func:`repro.core.errors.expected_time_lost`.
    """
    if size == 0:
        return np.empty(0)
    if lam <= 0.0:
        raise SimulationError("truncated exponential needs a positive rate")
    q = -np.expm1(-lam * window)
    return -np.log1p(-rng.random(size) * q) / lam


@dataclass(frozen=True)
class BatchStats:
    """Aggregate outcome of a vectorised simulation batch.

    Attributes
    ----------
    run_times:
        Simulated wall-clock per run, shape ``(n_runs,)``.
    n_patterns:
        Patterns per run (all runs complete the same count).
    n_attempts:
        Total pattern attempts across all runs.
    n_fail_stop / n_silent_detected / n_recoveries / n_downtimes:
        Event totals across all runs (masked silent strikes are not
        modelled here — they cost nothing; the DES reference counts
        them for curiosity).
    """

    run_times: np.ndarray
    n_patterns: int
    n_attempts: int
    n_fail_stop: int
    n_silent_detected: int
    n_recoveries: int
    n_downtimes: int

    @property
    def n_runs(self) -> int:
        return int(self.run_times.size)

    @property
    def mean_pattern_time(self) -> float:
        """Empirical :math:`E(T, P)` — converges to Proposition 1."""
        return float(self.run_times.mean() / self.n_patterns)


def simulate_batch(
    model: PatternModel,
    T: float,
    P: float,
    n_runs: int,
    n_patterns: int,
    rng: np.random.Generator,
) -> BatchStats:
    """Simulate ``n_runs`` independent runs of ``n_patterns`` patterns each.

    Distribution-identical to looping :func:`repro.sim.protocol.simulate_run`,
    about three orders of magnitude faster.
    """
    if T <= 0.0:
        raise SimulationError(f"pattern period must be positive, got {T!r}")
    if P <= 0.0:
        raise SimulationError(f"processor count must be positive, got {P!r}")
    if n_runs <= 0 or n_patterns <= 0:
        raise SimulationError("n_runs and n_patterns must be positive")

    lam_f = float(model.errors.fail_stop_rate(P))
    lam_s = float(model.errors.silent_rate(P))
    C = float(model.costs.checkpoint_cost(P))
    R = float(model.costs.recovery_cost(P))
    V = float(model.costs.verification_cost(P))
    D = float(model.costs.downtime)
    A = T + V  # the work + verification segment

    p_ok_A = np.exp(-lam_f * A)
    p_ok_S = np.exp(-lam_s * T)
    p_ok_C = np.exp(-lam_f * C)
    p_ok_R = np.exp(-lam_f * R)
    p_success = p_ok_A * p_ok_S * p_ok_C

    n_total = n_runs * n_patterns
    base_time = n_patterns * (A + C)

    if p_success >= 1.0:  # error-free: every attempt succeeds
        return BatchStats(
            run_times=np.full(n_runs, base_time),
            n_patterns=n_patterns,
            n_attempts=n_total,
            n_fail_stop=0,
            n_silent_detected=0,
            n_recoveries=0,
            n_downtimes=0,
        )

    # Failed attempts per pattern: geometric trials minus the success.
    attempts = rng.geometric(p_success, size=n_total)
    failures = attempts - 1
    n_failures = int(failures.sum())
    run_of_pattern = np.repeat(np.arange(n_runs), n_patterns)
    run_of_failure = np.repeat(run_of_pattern, failures)

    # Classify each failure: A (fail-stop in work+verify), B (silent
    # detected), C (fail-stop in checkpoint) — conditional on failure.
    q_A = -np.expm1(-lam_f * A)
    q_B = p_ok_A * -np.expm1(-lam_s * T)
    q_fail = 1.0 - p_success
    u = rng.random(n_failures)
    is_A = u < q_A / q_fail
    is_C = u >= (q_A + q_B) / q_fail
    is_B = ~is_A & ~is_C
    n_A = int(is_A.sum())
    n_B = int(is_B.sum())
    n_C = int(is_C.sum())

    cost = np.empty(n_failures)
    if n_A:
        cost[is_A] = truncated_exponential(rng, lam_f, A, n_A) + D
    if n_B:
        cost[is_B] = A
    if n_C:
        cost[is_C] = A + truncated_exponential(rng, lam_f, C, n_C) + D

    # Every failure triggers exactly one recovery; the recovery itself
    # is retried through a geometric number of fail-stop interruptions.
    if lam_f > 0.0 and n_failures:
        rec_failures = rng.geometric(p_ok_R, size=n_failures) - 1
        n_sub = int(rec_failures.sum())
        sub_losses = truncated_exponential(rng, lam_f, R, n_sub)
        per_failure_loss = np.bincount(
            np.repeat(np.arange(n_failures), rec_failures),
            weights=sub_losses,
            minlength=n_failures,
        )
        cost += R + rec_failures * D + per_failure_loss
    else:
        n_sub = 0
        cost += R

    run_times = base_time + np.bincount(run_of_failure, weights=cost, minlength=n_runs)

    return BatchStats(
        run_times=run_times,
        n_patterns=n_patterns,
        n_attempts=int(attempts.sum()),
        n_fail_stop=n_A + n_C + n_sub,
        n_silent_detected=n_B,
        n_recoveries=n_failures,
        n_downtimes=n_A + n_C + n_sub,
    )
