"""Vectorised Monte-Carlo simulation of the VC protocol.

The reference simulator (:mod:`repro.sim.protocol`) steps through every
event; fine for one run, too slow for the paper's 500-runs-by-500-
patterns grids times dozens of parameter points.  This module samples
the **exact same distribution** without an event loop by exploiting the
renewal structure of a pattern:

* an attempt succeeds with probability
  :math:`p = e^{-\\lambda^f (T+V+C) - \\lambda^s T}`, so the number of
  failed attempts per pattern is geometric;
* conditioned on failing, an attempt fails in exactly one of three ways:

  - **A** — fail-stop during work+verification
    (prob :math:`1 - e^{-\\lambda^f (T+V)}`): costs a truncated
    exponential over ``T+V``, plus downtime, plus one recovery;
  - **B** — no fail-stop, silent error detected by the verification
    (prob :math:`e^{-\\lambda^f (T+V)}(1 - e^{-\\lambda^s T})`): costs
    the full ``T+V`` plus one recovery (no downtime);
  - **C** — no fail-stop in work+verify, no silent, fail-stop during
    the checkpoint: costs ``T+V`` plus a truncated exponential over
    ``C``, plus downtime, plus one recovery;

* each recovery itself suffers a geometric number of fail-stop
  interruptions (rate :math:`e^{-\\lambda^f R}` of success), each
  costing a truncated exponential over ``R`` plus downtime.

Every step above is a closed-form sample (geometric counts, inverse-CDF
truncated exponentials) evaluated in bulk numpy arrays; per-run sums
use ``bincount`` segment reductions.  The equivalence with the
event-driven reference is asserted statistically in the test suite, and
the empirical mean converges to Proposition 1 by construction.

The scalar protocol rates (:class:`PatternRates`) and the per-failure
cost sampler (:func:`sample_failure_costs`) are shared with the
aggregated backend in :mod:`repro.sim.vectorized`, which collapses the
per-pattern geometric draws into one negative-binomial draw per run.
This module also hosts the chunked/multiprocess dispatch helpers
(:func:`plan_chunks`, :func:`dispatch_chunks`, :func:`merge_batch_stats`,
:func:`simulate_batch_chunked`) both array backends use to run the
paper's 500 x 500 protocol with bounded memory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError

__all__ = [
    "BatchStats",
    "PatternRates",
    "simulate_batch",
    "simulate_batch_chunked",
    "sample_failure_costs",
    "truncated_exponential",
    "plan_chunks",
    "plan_chunk_jobs",
    "dispatch_chunks",
    "merge_batch_stats",
    "run_chunked",
]

#: Soft cap on ``runs x patterns`` cells simulated per chunk; keeps the
#: transient arrays of a paper-fidelity sweep in the tens of megabytes.
MAX_CHUNK_ELEMENTS = 4_000_000


def truncated_exponential(
    rng: np.random.Generator, lam: float, window: float, size: int
) -> np.ndarray:
    """Sample ``Exp(lam)`` arrivals conditioned on landing inside ``window``.

    Inverse-CDF form :math:`-\\log(1 - u\\,q)/\\lambda` with
    :math:`q = 1 - e^{-\\lambda W}`, stable for tiny ``lam * window``.
    This is the "time lost" distribution whose mean is
    :func:`repro.core.errors.expected_time_lost`.
    """
    if size == 0:
        return np.empty(0)
    if lam <= 0.0:
        raise SimulationError("truncated exponential needs a positive rate")
    q = -np.expm1(-lam * window)
    return -np.log1p(-rng.random(size) * q) / lam


@dataclass(frozen=True)
class PatternRates:
    """Scalar rates of PATTERN(T, P) shared by the array backends.

    Plain floats only, so instances pickle cheaply across process
    boundaries when chunks are dispatched to a worker pool.
    """

    T: float
    A: float  #: work + verification segment length (T + V)
    C: float
    R: float
    V: float
    D: float
    lam_f: float
    lam_s: float
    p_ok_A: float
    p_ok_C: float
    p_ok_R: float
    p_success: float

    @classmethod
    def from_model(cls, model: PatternModel, T: float, P: float) -> "PatternRates":
        if T <= 0.0:
            raise SimulationError(f"pattern period must be positive, got {T!r}")
        if P <= 0.0:
            raise SimulationError(f"processor count must be positive, got {P!r}")
        lam_f = float(model.errors.fail_stop_rate(P))
        lam_s = float(model.errors.silent_rate(P))
        C = float(model.costs.checkpoint_cost(P))
        R = float(model.costs.recovery_cost(P))
        V = float(model.costs.verification_cost(P))
        D = float(model.costs.downtime)
        A = T + V
        p_ok_A = float(np.exp(-lam_f * A))
        p_ok_S = float(np.exp(-lam_s * T))
        p_ok_C = float(np.exp(-lam_f * C))
        p_ok_R = float(np.exp(-lam_f * R))
        return cls(
            T=float(T),
            A=A,
            C=C,
            R=R,
            V=V,
            D=D,
            lam_f=lam_f,
            lam_s=lam_s,
            p_ok_A=p_ok_A,
            p_ok_C=p_ok_C,
            p_ok_R=p_ok_R,
            p_success=p_ok_A * p_ok_S * p_ok_C,
        )

    @property
    def base_pattern_time(self) -> float:
        """Error-free duration of one pattern: work + verify + checkpoint."""
        return self.A + self.C


@dataclass(frozen=True)
class BatchStats:
    """Aggregate outcome of a vectorised simulation batch.

    Attributes
    ----------
    run_times:
        Simulated wall-clock per run, shape ``(n_runs,)``.
    n_patterns:
        Patterns per run (all runs complete the same count).
    n_attempts:
        Total pattern attempts across all runs.
    n_fail_stop / n_silent_detected / n_recoveries / n_downtimes:
        Event totals across all runs (masked silent strikes are not
        modelled here — they cost nothing; the DES reference counts
        them for curiosity).
    """

    run_times: np.ndarray
    n_patterns: int
    n_attempts: int
    n_fail_stop: int
    n_silent_detected: int
    n_recoveries: int
    n_downtimes: int

    @property
    def n_runs(self) -> int:
        return int(self.run_times.size)

    @property
    def mean_pattern_time(self) -> float:
        """Empirical :math:`E(T, P)` — converges to Proposition 1."""
        return float(self.run_times.mean() / self.n_patterns)


def sample_failure_costs(
    rng: np.random.Generator, rates: PatternRates, n_failures: int
) -> tuple[np.ndarray, int, int, int, int]:
    """Sample the wall-clock cost of ``n_failures`` iid failed attempts.

    Classifies each failure into outcome A/B/C with masked array
    arithmetic, adds the truncated-exponential time lost, the downtime,
    and the (retried) recovery.  Returns ``(cost, n_A, n_B, n_C, n_sub)``
    where ``n_sub`` counts fail-stop interruptions of recoveries.
    """
    if n_failures == 0:
        return np.empty(0), 0, 0, 0, 0

    # Classify each failure: A (fail-stop in work+verify), B (silent
    # detected), C (fail-stop in checkpoint) — conditional on failure.
    q_A = -np.expm1(-rates.lam_f * rates.A)
    q_B = rates.p_ok_A * -np.expm1(-rates.lam_s * rates.T)
    q_fail = 1.0 - rates.p_success
    u = rng.random(n_failures)
    is_A = u < q_A / q_fail
    is_C = u >= (q_A + q_B) / q_fail
    is_B = ~is_A & ~is_C
    n_A = int(is_A.sum())
    n_B = int(is_B.sum())
    n_C = int(is_C.sum())

    cost = np.empty(n_failures)
    if n_A:
        cost[is_A] = truncated_exponential(rng, rates.lam_f, rates.A, n_A) + rates.D
    if n_B:
        cost[is_B] = rates.A
    if n_C:
        cost[is_C] = (
            rates.A + truncated_exponential(rng, rates.lam_f, rates.C, n_C) + rates.D
        )

    # Every failure triggers exactly one recovery; the recovery itself
    # is retried through a geometric number of fail-stop interruptions.
    if rates.lam_f > 0.0:
        rec_failures = rng.geometric(rates.p_ok_R, size=n_failures) - 1
        n_sub = int(rec_failures.sum())
        sub_losses = truncated_exponential(rng, rates.lam_f, rates.R, n_sub)
        per_failure_loss = np.bincount(
            np.repeat(np.arange(n_failures), rec_failures),
            weights=sub_losses,
            minlength=n_failures,
        )
        cost += rates.R + rec_failures * rates.D + per_failure_loss
    else:
        n_sub = 0
        cost += rates.R

    return cost, n_A, n_B, n_C, n_sub


def _error_free_stats(rates: PatternRates, n_runs: int, n_patterns: int) -> BatchStats:
    return BatchStats(
        run_times=np.full(n_runs, n_patterns * rates.base_pattern_time),
        n_patterns=n_patterns,
        n_attempts=n_runs * n_patterns,
        n_fail_stop=0,
        n_silent_detected=0,
        n_recoveries=0,
        n_downtimes=0,
    )


def _simulate_batch_rates(
    rates: PatternRates, n_runs: int, n_patterns: int, rng: np.random.Generator
) -> BatchStats:
    """Core of :func:`simulate_batch` on pre-computed scalar rates."""
    if n_runs <= 0 or n_patterns <= 0:
        raise SimulationError("n_runs and n_patterns must be positive")

    if rates.p_success >= 1.0:  # error-free: every attempt succeeds
        return _error_free_stats(rates, n_runs, n_patterns)

    n_total = n_runs * n_patterns
    base_time = n_patterns * rates.base_pattern_time

    # Failed attempts per pattern: geometric trials minus the success.
    attempts = rng.geometric(rates.p_success, size=n_total)
    failures = attempts - 1
    n_failures = int(failures.sum())
    run_of_pattern = np.repeat(np.arange(n_runs), n_patterns)
    run_of_failure = np.repeat(run_of_pattern, failures)

    cost, n_A, n_B, n_C, n_sub = sample_failure_costs(rng, rates, n_failures)
    run_times = base_time + np.bincount(run_of_failure, weights=cost, minlength=n_runs)

    return BatchStats(
        run_times=run_times,
        n_patterns=n_patterns,
        n_attempts=int(attempts.sum()),
        n_fail_stop=n_A + n_C + n_sub,
        n_silent_detected=n_B,
        n_recoveries=n_failures,
        n_downtimes=n_A + n_C + n_sub,
    )


def simulate_batch(
    model: PatternModel,
    T: float,
    P: float,
    n_runs: int,
    n_patterns: int,
    rng: np.random.Generator,
) -> BatchStats:
    """Simulate ``n_runs`` independent runs of ``n_patterns`` patterns each.

    Distribution-identical to looping :func:`repro.sim.protocol.simulate_run`,
    about three orders of magnitude faster.
    """
    return _simulate_batch_rates(
        PatternRates.from_model(model, T, P), n_runs, n_patterns, rng
    )


# -- chunked / multiprocess dispatch -----------------------------------------


def plan_chunks(n_runs: int, chunk_runs: int) -> list[int]:
    """Split ``n_runs`` into consecutive chunks of at most ``chunk_runs``.

    The plan is a pure function of its arguments, so a fixed master seed
    reproduces the same result whatever the worker count.
    """
    if n_runs <= 0:
        raise SimulationError(f"n_runs must be positive, got {n_runs!r}")
    if chunk_runs <= 0:
        raise SimulationError(f"chunk_runs must be positive, got {chunk_runs!r}")
    full, rest = divmod(n_runs, chunk_runs)
    return [chunk_runs] * full + ([rest] if rest else [])


def dispatch_chunks(
    worker: Callable[..., BatchStats],
    jobs: Sequence[tuple],
    workers: int | None = None,
) -> list[BatchStats]:
    """Run ``worker(*job)`` for every job, serially or on a process pool.

    ``workers=None`` auto-sizes to the machine (serial on a single-core
    box, one process per core otherwise, capped by the job count); any
    pool failure — a sandbox refusing to fork, a worker dying — falls
    back to the serial path so results are always produced.
    """
    if workers is None:
        workers = min(os.cpu_count() or 1, len(jobs))
    if workers > 1 and len(jobs) > 1:
        # Only pool-infrastructure failures (no fork in a sandbox, an
        # unpicklable worker, a killed child) fall back to the serial
        # path; an exception raised *inside* a worker propagates as-is.
        try:
            import pickle
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(worker, *zip(*jobs)))
        except (ImportError, OSError, pickle.PicklingError, BrokenProcessPool):
            pass  # pragma: no cover - depends on host sandboxing
    return [worker(*job) for job in jobs]


def merge_batch_stats(parts: Sequence[BatchStats]) -> BatchStats:
    """Concatenate per-chunk results into one :class:`BatchStats`."""
    if not parts:
        raise SimulationError("no chunk results to merge")
    counts = {p.n_patterns for p in parts}
    if len(counts) != 1:
        raise SimulationError(f"chunks disagree on pattern count: {sorted(counts)}")
    return BatchStats(
        run_times=np.concatenate([p.run_times for p in parts]),
        n_patterns=counts.pop(),
        n_attempts=sum(p.n_attempts for p in parts),
        n_fail_stop=sum(p.n_fail_stop for p in parts),
        n_silent_detected=sum(p.n_silent_detected for p in parts),
        n_recoveries=sum(p.n_recoveries for p in parts),
        n_downtimes=sum(p.n_downtimes for p in parts),
    )


def _batch_chunk_worker(
    rates: PatternRates,
    n_runs: int,
    n_patterns: int,
    seed: np.random.SeedSequence,
) -> BatchStats:
    """Module-level so a process pool can pickle it."""
    return _simulate_batch_rates(rates, n_runs, n_patterns, np.random.default_rng(seed))


def default_chunk_runs(n_runs: int, n_patterns: int) -> int:
    """Largest run count keeping a chunk under :data:`MAX_CHUNK_ELEMENTS`."""
    return max(1, min(n_runs, MAX_CHUNK_ELEMENTS // max(1, n_patterns)))


def plan_chunk_jobs(
    n_runs: int,
    n_patterns: int,
    seed,
    chunk_runs: int | None,
    workers: int | None,
) -> tuple[list[int], list[np.random.SeedSequence]]:
    """The chunk plan and its spawned seed streams, as pure functions.

    This is the single source of the chunk policy — the memory-bounded
    default size, the ``workers > 1`` refinement, and the per-chunk
    seed spawning — shared by :func:`run_chunked` (sequential dispatch)
    and the fused planner in :mod:`repro.sim.plan`, so the two can
    never drift apart (which would break the planner's bit-identity
    guarantee and poison its cache keys).
    """
    from .rng import spawn_seed_sequences

    if chunk_runs is None:
        chunk_runs = default_chunk_runs(n_runs, n_patterns)
        if workers is not None and workers > 1:
            # An explicit worker request must actually produce enough
            # chunks to feed the pool, even for budgets small enough to
            # fit one memory-bounded chunk.
            chunk_runs = min(chunk_runs, -(-n_runs // workers))
    plan = plan_chunks(n_runs, chunk_runs)
    return plan, spawn_seed_sequences(len(plan), seed)


def run_chunked(
    worker: Callable[..., BatchStats],
    rates: PatternRates,
    n_runs: int,
    n_patterns: int,
    seed: int | np.random.SeedSequence | None,
    chunk_runs: int | None,
    workers: int | None,
) -> BatchStats:
    """Shared chunk orchestration for the array backends.

    Plans the run chunks via :func:`plan_chunk_jobs`, spawns one
    independent child stream per chunk from ``seed``, runs
    ``worker(rates, chunk_runs, n_patterns, seed)`` per chunk (serially
    or on a process pool) and merges.  The chunk plan — and therefore
    the sampled numbers — is a pure function of the call arguments (an
    explicit ``workers`` request refines the default plan so the pool
    has chunks to chew on); whether the pool actually starts never
    changes the results, only the wall-clock.
    """
    if n_runs <= 0 or n_patterns <= 0:
        raise SimulationError("n_runs and n_patterns must be positive")
    plan, seeds = plan_chunk_jobs(n_runs, n_patterns, seed, chunk_runs, workers)
    if len(plan) == 1:
        return worker(rates, n_runs, n_patterns, seeds[0])
    jobs = [(rates, c, n_patterns, s) for c, s in zip(plan, seeds)]
    return merge_batch_stats(dispatch_chunks(worker, jobs, workers))


def simulate_batch_chunked(
    model: PatternModel,
    T: float,
    P: float,
    n_runs: int,
    n_patterns: int,
    seed: int | np.random.SeedSequence | None = None,
    *,
    chunk_runs: int | None = None,
    workers: int | None = None,
) -> BatchStats:
    """Chunked (and optionally multiprocess) :func:`simulate_batch`.

    Splits the runs into chunks of ``chunk_runs`` (default: sized so a
    chunk stays under :data:`MAX_CHUNK_ELEMENTS` cells), bounding the
    transient per-pattern arrays of a paper-protocol budget.
    """
    return run_chunked(
        _batch_chunk_worker,
        PatternRates.from_model(model, T, P),
        n_runs,
        n_patterns,
        seed,
        chunk_runs,
        workers,
    )
