"""Aggregation of Monte-Carlo results into overhead estimates.

The paper's simulated "execution overhead" (Section IV-A) is the ratio
of the application's execution time with faults to its fault-free
*sequential* execution time: for a run of ``n`` patterns of length
``T`` on ``P`` processors, each pattern performs ``T * S(P)`` seconds
of sequential-equivalent work, so

.. math::

    \\hat H = \\frac{\\text{total simulated time}}{n \\, T \\, S(P)} .

Its error-free floor is :math:`H(P) \\approx \\alpha`, matching the
``~0.11`` levels of Figure 2 at ``alpha = 0.1``.  Estimates carry a
normal-approximation 95% confidence interval over the independent runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from .batch import BatchStats
from .protocol import RunStats

__all__ = ["OverheadEstimate", "overhead_samples", "overhead_estimate"]

#: Two-sided 95% normal quantile.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class OverheadEstimate:
    """Sample statistics of the simulated execution overhead.

    Attributes
    ----------
    mean / std / stderr:
        Sample mean, standard deviation (ddof=1) and standard error
        across runs.
    ci_low / ci_high:
        Normal-approximation 95% confidence interval for the mean.
    n_runs:
        Number of independent runs aggregated.
    """

    mean: float
    std: float
    stderr: float
    ci_low: float
    ci_high: float
    n_runs: int

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "OverheadEstimate":
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise SimulationError("cannot estimate from zero samples")
        mean = float(samples.mean())
        if samples.size == 1:
            return cls(mean=mean, std=0.0, stderr=0.0, ci_low=mean, ci_high=mean, n_runs=1)
        std = float(samples.std(ddof=1))
        stderr = std / np.sqrt(samples.size)
        return cls(
            mean=mean,
            std=std,
            stderr=stderr,
            ci_low=mean - _Z95 * stderr,
            ci_high=mean + _Z95 * stderr,
            n_runs=int(samples.size),
        )

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the 95% CI (used by the tests)."""
        return self.ci_low <= value <= self.ci_high

    @property
    def halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


def overhead_samples(
    model: PatternModel,
    T: float,
    P: float,
    run_times: np.ndarray,
    n_patterns: int,
) -> np.ndarray:
    """Convert per-run wall-clock times into per-run overhead samples."""
    if n_patterns <= 0:
        raise SimulationError(f"n_patterns must be positive, got {n_patterns!r}")
    work = n_patterns * T * float(model.speedup.speedup(P))
    return np.asarray(run_times, dtype=float) / work


def overhead_estimate(
    model: PatternModel,
    T: float,
    P: float,
    results: BatchStats | Iterable[RunStats],
) -> OverheadEstimate:
    """Overhead estimate from either simulator's output.

    Accepts a :class:`~repro.sim.batch.BatchStats` (vectorised
    simulator) or an iterable of :class:`~repro.sim.protocol.RunStats`
    (event-driven reference).
    """
    if isinstance(results, BatchStats):
        samples = overhead_samples(model, T, P, results.run_times, results.n_patterns)
        return OverheadEstimate.from_samples(samples)
    stats_list = list(results)
    if not stats_list:
        raise SimulationError("no run statistics supplied")
    counts = {s.n_patterns for s in stats_list}
    if len(counts) != 1:
        raise SimulationError(f"runs disagree on pattern count: {sorted(counts)}")
    times = np.array([s.total_time for s in stats_list])
    return OverheadEstimate.from_samples(
        overhead_samples(model, T, P, times, counts.pop())
    )
