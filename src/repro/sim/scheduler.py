"""Event-driven job scheduling: one global in-flight window.

The wave-barriered pipeline resolved one study at a time: every chunk
job of a study had to finish before the next study's jobs could start,
so a single slow chunk stalled every figure behind it.  This module
replaces the barrier with a :class:`Scheduler` that treats *all*
queued jobs — across every study of an invocation — as one stream:

* jobs join the queue in plan dispatch order (slowest backend first,
  exactly the order the blocking path used);
* the scheduler keeps at most ``max_inflight`` jobs outstanding on the
  executor's :meth:`~repro.sim.executors.base.Executor.submit` /
  :meth:`~repro.sim.executors.base.Executor.next_completed` surface,
  refilling a slot the moment any completion lands;
* completions are yielded as ``(tag, result)`` events in completion
  order — the caller (:class:`repro.experiments.pipeline.SimulationPipeline`)
  delivers each into its per-point bookkeeping and resolves the
  point's deferred value the moment its last chunk arrives.

The scheduler is also where the execution layer stops being
fail-fast.  A *transient* job failure — an :class:`OSError`-family
infrastructure error, a broken/cancelled process pool, an injected
:class:`~repro.sim.faults.TransientFault` — is retried under a
:class:`RetryPolicy`: bounded resubmissions with exponential backoff,
then one last inline execution in the scheduling process, and only if
*that* fails does the error propagate and abort the round.  Job-level
errors that are not infrastructure (a :class:`SimulationError`, a
``ValueError`` from bad arguments) are never retried — retrying a
deterministic failure only hides it.  A :class:`~repro.sim.faults.FaultPlan`
can be attached to inject deterministic failures, worker kills and
simulated crashes for the crash-resume tests.

Determinism: the sampled numbers are pure functions of the job
arguments, and per-point merging happens in part order (never
completion order), so the window size, the executor, the completion
interleaving — and any retries, which re-run the identical pure job —
change wall-clock only.  With a serial executor every submit resolves
inline and the event stream degenerates to exact submission order —
``max_inflight=1`` on any executor does the same.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..exceptions import SimulationError
from ..obs.trace import NULL_TRACE
from .plan import run_job

__all__ = [
    "Scheduler",
    "RetryPolicy",
    "is_transient",
    "default_inflight",
    "DEFAULT_WINDOW_FACTOR",
]


def _tag_str(tag) -> str:
    """A tag's stable trace label (``"3.1"`` / ``"call:ab12cd34"``)."""
    if isinstance(tag, tuple):
        if tag and tag[0] == "call":
            return f"call:{str(tag[1])[:8]}"
        return ".".join(str(part) for part in tag)
    return str(tag)


class _TimedResult:
    """A job result wrapped with its wall time and worker identity."""

    __slots__ = ("value", "seconds", "pid")

    def __init__(self, value, seconds: float, pid: int):
        self.value = value
        self.seconds = seconds
        self.pid = pid

    def __getstate__(self):
        return (self.value, self.seconds, self.pid)

    def __setstate__(self, state):
        self.value, self.seconds, self.pid = state


def _timed_call(job: tuple) -> _TimedResult:
    """Run one job, capturing wall time and the executing process.

    The timing envelope rides the job *into* the worker (module-level,
    so it pickles) and back out — the scheduler unwraps it before
    yielding, so consumers and caches see the identical raw result.
    """
    started = time.perf_counter()
    value = run_job(job)
    return _TimedResult(value, time.perf_counter() - started, os.getpid())

#: Default in-flight window per pool worker: deep enough to hide the
#: submit/collect round-trip, shallow enough that a cancelled run
#: abandons little queued work.
DEFAULT_WINDOW_FACTOR = 4


def default_inflight(workers: int) -> int:
    """The in-flight window implied by an executor's worker count."""
    return max(1, DEFAULT_WINDOW_FACTOR * int(workers))


def is_transient(error: BaseException) -> bool:
    """Whether a job failure is infrastructure-shaped (worth retrying).

    Transient: :class:`OSError` and subclasses (which covers the
    injected :class:`~repro.sim.faults.TransientFault`), a broken
    process pool, and a cancelled pool future (a broken pool's
    shutdown cancels its queue).  Everything else is treated as a
    deterministic job error and never retried.
    """
    from concurrent.futures import CancelledError
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, (OSError, BrokenProcessPool, CancelledError))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient job failures.

    A failing job is resubmitted to the executor up to ``attempts``
    times, sleeping ``delay(attempt)`` before each resubmission
    (``base_delay * backoff ** (attempt-1)``, capped at ``max_delay``);
    if every resubmission fails transiently too, the job runs once
    *inline* in the scheduling process — the executor may be broken,
    but the run can still finish serially.  ``sleep`` is injectable so
    tests assert the backoff sequence without waiting it out.
    """

    attempts: int = 2
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def delay(self, attempt: int) -> float:
        """Backoff before the ``attempt``-th resubmission (1-based)."""
        return min(self.max_delay, self.base_delay * self.backoff ** (attempt - 1))


class _Entry:
    """One queued job with its retry bookkeeping."""

    __slots__ = ("job", "tag", "attempts")

    def __init__(self, job: tuple, tag):
        self.job = job
        self.tag = tag
        self.attempts = 0


class Scheduler:
    """Windowed submit / as_completed dispatch over one executor.

    Jobs are ``(fn, args, kwargs)`` tuples (the
    :func:`repro.sim.plan.run_job` shape) queued via :meth:`add` with
    an opaque tag; :meth:`events` drives the dispatch loop and yields
    ``(tag, result)`` per completion.  The scheduler owns no processes
    — lifecycle stays with the executor — and is reusable: new jobs
    may be added between drains *or* by the consumer while a drain is
    yielding (the loop re-reads the queue after every event, so
    mid-drain additions join the same drain's window — the hook the
    adaptive replicate engine's incremental staging relies on).

    ``retry`` (default :class:`RetryPolicy`) bounds how hard transient
    failures are retried before the run gives up; ``retry=None``
    restores the historical fail-fast behaviour.  ``fault`` attaches a
    deterministic :class:`~repro.sim.faults.FaultPlan` (test harness).
    """

    def __init__(
        self,
        executor,
        max_inflight: int | None = None,
        retry: RetryPolicy | None = RetryPolicy(),
        fault=None,
        trace=None,
        metrics=None,
    ):
        if max_inflight is None:
            max_inflight = default_inflight(executor.workers)
        if int(max_inflight) < 1:
            raise SimulationError("max_inflight must be >= 1")
        self.executor = executor
        self.max_inflight = int(max_inflight)
        self.retry = retry
        self.fault = fault
        self.trace = trace if trace is not None else NULL_TRACE
        self.metrics = metrics
        self._queue: deque[_Entry] = deque()
        self._inflight: dict = {}  # JobFuture -> _Entry
        #: Transient-failure resubmissions performed (observability).
        self.retries = 0
        #: Last-resort inline executions after retries were exhausted.
        self.inline_fallbacks = 0

    @property
    def pending(self) -> int:
        """Queued-but-unsubmitted jobs."""
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        """Submitted jobs whose completion has not been consumed yet."""
        return len(self._inflight)

    def add(self, job: tuple, tag=None) -> None:
        """Queue one ``(fn, args, kwargs)`` job for dispatch."""
        self._queue.append(_Entry(job, tag))

    def _submit(self, entry: _Entry) -> None:
        job = entry.job
        if self.fault is not None:
            job = self.fault.wrap_job(job, entry.tag, entry.attempts)
        if self.trace.enabled:
            # The timing envelope only rides when tracing asked for it —
            # the untraced submit path is byte-for-byte the historical one.
            self.trace.event(
                "job_submit", job=_tag_str(entry.tag), attempt=entry.attempts
            )
            job = (_timed_call, (job,), {})
        future = self.executor.submit(run_job, job, tag=entry.tag)
        self._inflight[future] = entry
        if self.metrics is not None:
            self.metrics.gauge("scheduler_inflight_highwater").update_max(
                len(self._inflight)
            )

    def events(self) -> Iterator[tuple]:
        """Submit with a bounded window; yield ``(tag, result)`` events.

        A transient job failure is retried per :attr:`retry` (backoff
        resubmissions, then one inline run); a deterministic job
        exception — or a transient one that survives the whole retry
        ladder — propagates out of the iteration (the in-flight window
        is abandoned); the caller is responsible for closing the
        executor, which cancels whatever was still queued on the pool.
        """
        if self._queue and self.trace.enabled:
            self.trace.event(
                "schedule",
                jobs=len(self._queue),
                max_inflight=self.max_inflight,
                workers=self.executor.workers,
            )
        while self._queue or self._inflight:
            while self._queue and len(self._inflight) < self.max_inflight:
                self._submit(self._queue.popleft())
            future = self.executor.next_completed()
            if future is None:  # pragma: no cover - executor contract
                raise SimulationError(
                    f"executor lost track of {len(self._inflight)} in-flight jobs"
                )
            entry = self._inflight.pop(future)
            try:
                result = future.result()
            except Exception as error:
                if self.retry is None or not is_transient(error):
                    raise
                entry.attempts += 1
                if entry.attempts <= self.retry.attempts:
                    # Bounded resubmission with exponential backoff.
                    self.retries += 1
                    if self.metrics is not None:
                        self.metrics.counter("scheduler_retries").inc()
                    if self.trace.enabled:
                        self.trace.event(
                            "job_retry",
                            job=_tag_str(entry.tag),
                            attempt=entry.attempts,
                            error=type(error).__name__,
                        )
                    self.retry.sleep(self.retry.delay(entry.attempts))
                    self._queue.appendleft(entry)
                    continue
                # Retries exhausted: one last inline execution in this
                # process before the run gives up.  Jobs are pure, so
                # an inline success is the identical result; an inline
                # failure propagates (nothing left to try).
                self.inline_fallbacks += 1
                if self.metrics is not None:
                    self.metrics.counter("scheduler_inline_fallbacks").inc()
                started = time.perf_counter()
                result = run_job(entry.job)
                if self.trace.enabled:
                    self.trace.event(
                        "job_inline",
                        job=_tag_str(entry.tag),
                        dur=round(time.perf_counter() - started, 6),
                    )
            if isinstance(result, _TimedResult):
                if self.trace.enabled:
                    self.trace.event(
                        "job_complete",
                        job=_tag_str(entry.tag),
                        dur=round(result.seconds, 6),
                        worker=result.pid,
                    )
                if self.metrics is not None:
                    self.metrics.histogram(
                        "scheduler_job_seconds", worker=str(result.pid)
                    ).observe(result.seconds)
                result = result.value
            if self.metrics is not None:
                self.metrics.counter("scheduler_jobs").inc()
            yield entry.tag, result
            if self.fault is not None:
                self.fault.on_completion()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheduler(max_inflight={self.max_inflight}, "
            f"pending={self.pending}, outstanding={self.outstanding}, "
            f"retries={self.retries})"
        )
