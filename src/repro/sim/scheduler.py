"""Event-driven job scheduling: one global in-flight window.

The wave-barriered pipeline resolved one study at a time: every chunk
job of a study had to finish before the next study's jobs could start,
so a single slow chunk stalled every figure behind it.  This module
replaces the barrier with a :class:`Scheduler` that treats *all*
queued jobs — across every study of an invocation — as one stream:

* jobs join the queue in plan dispatch order (slowest backend first,
  exactly the order the blocking path used);
* the scheduler keeps at most ``max_inflight`` jobs outstanding on the
  executor's :meth:`~repro.sim.executors.base.Executor.submit` /
  :meth:`~repro.sim.executors.base.Executor.next_completed` surface,
  refilling a slot the moment any completion lands;
* completions are yielded as ``(tag, result)`` events in completion
  order — the caller (:class:`repro.experiments.pipeline.SimulationPipeline`)
  delivers each into its per-point bookkeeping and resolves the
  point's deferred value the moment its last chunk arrives.

Determinism: the sampled numbers are pure functions of the job
arguments, and per-point merging happens in part order (never
completion order), so the window size, the executor and the completion
interleaving change wall-clock only.  With a serial executor every
submit resolves inline and the event stream degenerates to exact
submission order — ``max_inflight=1`` on any executor does the same.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..exceptions import SimulationError
from .plan import run_job

__all__ = ["Scheduler", "default_inflight", "DEFAULT_WINDOW_FACTOR"]

#: Default in-flight window per pool worker: deep enough to hide the
#: submit/collect round-trip, shallow enough that a cancelled run
#: abandons little queued work.
DEFAULT_WINDOW_FACTOR = 4


def default_inflight(workers: int) -> int:
    """The in-flight window implied by an executor's worker count."""
    return max(1, DEFAULT_WINDOW_FACTOR * int(workers))


class Scheduler:
    """Windowed submit / as_completed dispatch over one executor.

    Jobs are ``(fn, args, kwargs)`` tuples (the
    :func:`repro.sim.plan.run_job` shape) queued via :meth:`add` with
    an opaque tag; :meth:`events` drives the dispatch loop and yields
    ``(tag, result)`` per completion.  The scheduler owns no processes
    — lifecycle stays with the executor — and is reusable: new jobs
    may be added between (not during) :meth:`events` drains.
    """

    def __init__(self, executor, max_inflight: int | None = None):
        if max_inflight is None:
            max_inflight = default_inflight(executor.workers)
        if int(max_inflight) < 1:
            raise SimulationError("max_inflight must be >= 1")
        self.executor = executor
        self.max_inflight = int(max_inflight)
        self._queue: deque = deque()
        self._outstanding = 0

    @property
    def pending(self) -> int:
        """Queued-but-unsubmitted jobs."""
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        """Submitted jobs whose completion has not been consumed yet."""
        return self._outstanding

    def add(self, job: tuple, tag=None) -> None:
        """Queue one ``(fn, args, kwargs)`` job for dispatch."""
        self._queue.append((job, tag))

    def events(self) -> Iterator[tuple]:
        """Submit with a bounded window; yield ``(tag, result)`` events.

        A job exception propagates out of the iteration (the in-flight
        window is abandoned); the caller is responsible for closing the
        executor, which cancels whatever was still queued on the pool.
        """
        while self._queue or self._outstanding:
            while self._queue and self._outstanding < self.max_inflight:
                job, tag = self._queue.popleft()
                self.executor.submit(run_job, job, tag=tag)
                self._outstanding += 1
            future = self.executor.next_completed()
            if future is None:  # pragma: no cover - executor contract
                raise SimulationError(
                    f"executor lost track of {self._outstanding} in-flight jobs"
                )
            self._outstanding -= 1
            yield future.tag, future.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheduler(max_inflight={self.max_inflight}, "
            f"pending={self.pending}, outstanding={self.outstanding})"
        )
