"""Monte-Carlo simulation of the VC protocol.

Three simulators, one distribution:

``protocol``
    Event-driven reference (legible specification, per-event stats).
``batch``
    Vectorised closed-form sampler (~1000x faster than the reference).
``vectorized``
    Whole-budget aggregated sampler (negative-binomial failure counts,
    chunked/multiprocess dispatch; the paper-fidelity hot path).

Plus the :class:`~repro.sim.engine.EventEngine` kernel, reproducible
RNG streams, estimators, and the high-level
:func:`~repro.sim.montecarlo.simulate_overhead` driver.
"""

from .batch import (
    BatchStats,
    PatternRates,
    merge_batch_stats,
    plan_chunks,
    simulate_batch,
    simulate_batch_chunked,
    truncated_exponential,
)
from .engine import EventEngine
from .events import Event, EventKind
from .montecarlo import (
    FAST,
    METHODS,
    PAPER,
    VECTORIZED_THRESHOLD,
    Fidelity,
    resolve_method,
    simulate_overhead,
)
from .executors import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
    merge_shard_dirs,
)
from .nodes import NodePool, simulate_run_nodes
from .protocol import RunStats, TimeBreakdown, simulate_run
from .plan import (
    BACKEND_VERSION,
    ResultCache,
    SimRequest,
    SimulationPlan,
    WorkerPool,
    execute_plan,
    plan_simulations,
    simulate_requests,
)
from .renewal import simulate_run_renewal
from .vectorized import simulate_vectorized
from .results import OverheadEstimate, overhead_estimate, overhead_samples
from .rng import make_rng, spawn_rngs, spawn_seed_sequences
from .streams import ArrivalProcess, ExponentialArrivals, WeibullArrivals
from .trace import Trace, TraceEvent, TraceEventKind, format_trace

__all__ = [
    "EventEngine",
    "Event",
    "EventKind",
    "RunStats",
    "TimeBreakdown",
    "simulate_run",
    "BatchStats",
    "PatternRates",
    "simulate_batch",
    "simulate_batch_chunked",
    "simulate_vectorized",
    "plan_chunks",
    "merge_batch_stats",
    "truncated_exponential",
    "OverheadEstimate",
    "overhead_estimate",
    "overhead_samples",
    "make_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "Fidelity",
    "FAST",
    "PAPER",
    "METHODS",
    "VECTORIZED_THRESHOLD",
    "resolve_method",
    "simulate_overhead",
    "BACKEND_VERSION",
    "SimRequest",
    "SimulationPlan",
    "WorkerPool",
    "ResultCache",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "ShardedExecutor",
    "make_executor",
    "merge_shard_dirs",
    "plan_simulations",
    "execute_plan",
    "simulate_requests",
    "simulate_run_renewal",
    "NodePool",
    "simulate_run_nodes",
    "ArrivalProcess",
    "ExponentialArrivals",
    "WeibullArrivals",
    "Trace",
    "TraceEvent",
    "TraceEventKind",
    "format_trace",
]
