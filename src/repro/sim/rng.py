"""Reproducible random-number streams for the simulators.

Monte-Carlo experiments need (1) run-to-run reproducibility for tests
and figure regeneration and (2) *independent* streams per simulated run
so results do not correlate across the 500-run averages of Section IV.
Both come from numpy's ``SeedSequence`` spawning: one master seed fans
out into any number of statistically independent child generators.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SimulationError

__all__ = ["make_rng", "spawn_rngs", "spawn_seed_sequences"]

#: Default master seed used across the experiment harness (fixed so the
#: published tables regenerate bit-identically).
DEFAULT_SEED = 20160913  # Cluster'16 conference week


def make_rng(seed: int | np.random.SeedSequence | None = None) -> np.random.Generator:
    """Create a single PCG64 generator from a seed (or fresh entropy)."""
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_seed_sequences(
    n: int, seed: int | np.random.SeedSequence | None = None
) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seed sequences from a master seed."""
    if n <= 0:
        raise SimulationError(f"need a positive stream count, got {n!r}")
    if isinstance(seed, np.random.SeedSequence):
        master = seed
    else:
        master = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return master.spawn(n)


def spawn_rngs(n: int, seed: int | np.random.SeedSequence | None = None) -> list[np.random.Generator]:
    """``n`` independent generators suitable for per-run Monte-Carlo streams.

    >>> a, b = spawn_rngs(2, seed=1)
    >>> a.random() != b.random()
    True
    """
    return [np.random.default_rng(ss) for ss in spawn_seed_sequences(n, seed)]
