"""Fused simulation planning: many Monte-Carlo points, one dispatch.

The experiment harness evaluates *sweeps*: dozens of ``(model, T, P)``
points per figure, hundreds per full evaluation.  Calling
:func:`repro.sim.montecarlo.simulate_overhead` once per point is
correct but wasteful — every call re-derives its own chunk plan and
(with ``workers > 1``) spins up and tears down its own process pool,
which at FAST fidelity costs an order of magnitude more than the
sampling itself.  This module amortises that:

* a :class:`SimRequest` names one simulation point with its full budget
  (model, ``T``, ``P``, runs x patterns, seed, backend, workers);
* :func:`plan_simulations` fuses a list of requests into one
  :class:`SimulationPlan` — deduplicating identical points and grouping
  the rest by resolved backend;
* :func:`request_jobs` expands a request into the **exact chunk jobs
  the sequential path would run**: the same chunk plan, the same
  spawned ``SeedSequence`` children, the same per-chunk workers
  (reusing :func:`repro.sim.batch.plan_chunks` /
  :func:`~repro.sim.batch.default_chunk_runs` and the module-level
  chunk workers).  Results are therefore **bit-identical** to per-point
  ``simulate_overhead`` calls with the same arguments, whatever the
  pool width;
* :func:`execute_plan` runs all jobs of all points through one shared
  :class:`WorkerPool` (created once, reused across figures) and merges
  the chunks back into per-point
  :class:`~repro.sim.results.OverheadEstimate` values;
* :class:`ResultCache` is a content-addressed on-disk cache (one
  ``.npz`` per point under a cache directory, keyed by a stable SHA-256
  over the model parameters, pattern, budget, seed, backend and a
  :data:`BACKEND_VERSION` tag) so repeated evaluations — ``all`` after
  ``fig5``, ``report`` after ``all``, CI re-runs — skip every
  already-computed point.

The experiment-facing wrapper (deferred values, generic DES jobs for
the extension studies, CLI flags) lives in
:mod:`repro.experiments.pipeline`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from . import batch as _batch
from .batch import (
    PatternRates,
    _batch_chunk_worker,
    merge_batch_stats,
    plan_chunk_jobs,
)
from .montecarlo import FAST, resolve_method
from .protocol import simulate_run
from .results import OverheadEstimate, overhead_estimate
from .rng import DEFAULT_SEED, make_rng, spawn_seed_sequences
from .vectorized import simulate_chunk

__all__ = [
    "BACKEND_VERSION",
    "SimRequest",
    "SimulationPlan",
    "WorkerPool",
    "ResultCache",
    "CacheEntry",
    "canonical_signature",
    "request_key",
    "plan_simulations",
    "request_jobs",
    "merge_request_results",
    "run_job",
    "serve_or_expand",
    "PointJobs",
    "claim_serve_expand",
    "merge_spans",
    "execute_plan",
    "simulate_requests",
    "DISPATCH_ORDER",
]

#: Version tag mixed into every cache key.  Bump whenever a backend's
#: sampled stream changes, so stale cached results can never be served.
BACKEND_VERSION = 2

#: Upper bound on the jobs one DES request expands into (each job
#: simulates a consecutive slice of the request's runs).
_DES_SLICES = 8

#: Backend dispatch order, slowest first: event-driven jobs are queued
#: ahead of the array backends so the pool's tail is short.
DISPATCH_ORDER = ("des", "vectorized", "batch")


# -- requests and cache keys -------------------------------------------------


@dataclass(frozen=True)
class SimRequest:
    """One Monte-Carlo point: PATTERN(T, P) under ``model`` at a budget.

    Mirrors the signature of
    :func:`repro.sim.montecarlo.simulate_overhead`; a request is a pure
    value object, so identical requests are fused by the planner and
    share one computation (and one cache entry).
    """

    model: PatternModel
    T: float
    P: float
    n_runs: int = FAST.n_runs
    n_patterns: int = FAST.n_patterns
    seed: int | None = None
    method: str = "auto"
    workers: int | None = None

    @property
    def n_cells(self) -> int:
        return self.n_runs * self.n_patterns

    @property
    def resolved_method(self) -> str:
        """The concrete backend ``"auto"`` resolves to for this budget."""
        return resolve_method(self.method, self.n_runs, self.n_patterns)


def canonical_signature(obj):
    """Stable, hashable rendition of a (nested-dataclass) parameter tree.

    Floats are rendered via ``float.hex()`` so the signature is exact
    (no repr rounding); dataclasses carry their class name so two cost
    models with equal coefficients but different forms never collide.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__,) + tuple(
            (f.name, canonical_signature(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, (tuple, list)):
        return ("seq",) + tuple(canonical_signature(v) for v in obj)
    if isinstance(obj, dict):
        return ("map",) + tuple(
            (k, canonical_signature(v)) for k, v in sorted(obj.items())
        )
    raise SimulationError(
        f"cannot build a stable cache signature for {type(obj).__name__!r}"
    )


def _digest(payload: tuple) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def _plan_workers(request: SimRequest, method: str) -> int | None:
    """The ``workers`` value iff it enters the chunk plan, else ``None``.

    ``des`` ignores workers entirely, and ``batch`` at or below
    :data:`repro.sim.batch.MAX_CHUNK_ELEMENTS` takes the single-pass
    branch; in both cases (and for ``workers <= 1``) the sampled
    numbers are independent of the worker count, so it must not enter
    the cache key.
    """
    if method == "des":
        return None
    if method == "batch" and request.n_cells <= _batch.MAX_CHUNK_ELEMENTS:
        return None
    if request.workers is None or request.workers <= 1:
        return None
    return request.workers


def request_key(request: SimRequest) -> str:
    """Content address of a request's result (hex SHA-256).

    Two requests share a key iff the sequential path would produce the
    same numbers for both: same model parameters, pattern, budget,
    seed, resolved backend, chunk-plan-relevant worker count (only
    where it actually refines the chunk plan), and backend version.
    """
    method = request.resolved_method
    return _digest(
        (
            "overhead",
            BACKEND_VERSION,
            canonical_signature(request.model),
            float(request.T).hex(),
            float(request.P).hex(),
            request.n_runs,
            request.n_patterns,
            DEFAULT_SEED if request.seed is None else request.seed,
            method,
            _plan_workers(request, method),
        )
    )


def call_key(fn: Callable, args: tuple, kwargs: dict) -> str:
    """Content address of a generic simulation call (extension studies)."""
    return _digest(
        (
            "call",
            BACKEND_VERSION,
            f"{fn.__module__}.{fn.__qualname__}",
            canonical_signature(args),
            canonical_signature(kwargs),
        )
    )


# -- planning ----------------------------------------------------------------


@dataclass(frozen=True)
class SimulationPlan:
    """A fused batch of unique simulation points.

    Attributes
    ----------
    requests:
        The unique requests, in first-seen order.
    slots:
        For every *input* request (in submission order), the index of
        its unique representative in :attr:`requests` — duplicated
        points are computed once and fanned back out.
    methods / keys:
        Resolved backend and cache key per unique request.
    """

    requests: tuple[SimRequest, ...]
    slots: tuple[int, ...]
    methods: tuple[str, ...]
    keys: tuple[str, ...]

    @property
    def n_points(self) -> int:
        """Submitted points (including duplicates)."""
        return len(self.slots)

    @property
    def n_unique(self) -> int:
        return len(self.requests)

    def groups(self) -> dict[str, tuple[int, ...]]:
        """Unique-request indices grouped by resolved backend.

        Dispatch expands the groups slowest-backend-first (see
        :data:`DISPATCH_ORDER`) so long event-driven jobs start while
        the pool still has idle workers.
        """
        out: dict[str, list[int]] = {}
        for i, method in enumerate(self.methods):
            out.setdefault(method, []).append(i)
        return {m: tuple(idx) for m, idx in out.items()}

    def dispatch_order(self) -> list[int]:
        """Unique-request indices in job-submission order."""
        groups = self.groups()
        return [
            i
            for method in sorted(groups, key=DISPATCH_ORDER.index)
            for i in groups[method]
        ]


def plan_simulations(requests: Sequence[SimRequest]) -> SimulationPlan:
    """Fuse a list of requests into one deduplicated plan.

    Backend names are resolved (and validated) here, so an unknown
    ``method`` fails at plan time rather than mid-dispatch.
    """
    unique: list[SimRequest] = []
    methods: list[str] = []
    keys: list[str] = []
    slots: list[int] = []
    by_key: dict[str, int] = {}
    for request in requests:
        key = request_key(request)  # validates method via resolved_method
        slot = by_key.get(key)
        if slot is None:
            slot = len(unique)
            by_key[key] = slot
            unique.append(request)
            methods.append(request.resolved_method)
            keys.append(key)
        slots.append(slot)
    return SimulationPlan(
        requests=tuple(unique),
        slots=tuple(slots),
        methods=tuple(methods),
        keys=tuple(keys),
    )


# -- job expansion (mirrors the sequential dispatch bit for bit) -------------


def _batch_single_job(
    rates: PatternRates, n_runs: int, n_patterns: int, seed
) -> _batch.BatchStats:
    """The unchunked batch path: one generator seeded with the master seed."""
    return _batch._simulate_batch_rates(rates, n_runs, n_patterns, make_rng(seed))


def _des_slice_job(
    model: PatternModel, T: float, P: float, n_patterns: int, seeds: tuple
) -> list:
    """A consecutive slice of a DES request's independent runs."""
    return [
        simulate_run(model, T, P, n_patterns, np.random.default_rng(ss))
        for ss in seeds
    ]


def run_job(job: tuple) -> object:
    """Execute one ``(fn, args, kwargs)`` job (module-level: picklable)."""
    fn, args, kwargs = job
    return fn(*args, **kwargs)


def request_jobs(request: SimRequest, method: str | None = None) -> list[tuple]:
    """Expand a request into the exact jobs of the sequential path.

    The chunk plan and the spawned seed streams replicate
    :func:`repro.sim.montecarlo.simulate_overhead` /
    :func:`repro.sim.batch.run_chunked` as pure functions of the
    request, so executing these jobs — in any pool, in any order — and
    merging yields numbers bit-identical to the per-point call.
    """
    method = request.resolved_method if method is None else method
    model, T, P = request.model, request.T, request.P
    n_runs, n_patterns = request.n_runs, request.n_patterns
    if n_runs <= 0 or n_patterns <= 0:
        raise SimulationError("n_runs and n_patterns must be positive")
    if method == "des":
        seeds = spawn_seed_sequences(n_runs, request.seed)
        size = max(1, -(-n_runs // _DES_SLICES))
        return [
            (_des_slice_job, (model, T, P, n_patterns, tuple(seeds[i : i + size])), {})
            for i in range(0, n_runs, size)
        ]
    rates = PatternRates.from_model(model, T, P)
    if method == "batch" and request.n_cells <= _batch.MAX_CHUNK_ELEMENTS:
        # Single-pass sampler with its historical RNG stream.
        return [(_batch_single_job, (rates, n_runs, n_patterns, request.seed), {})]
    worker = _batch_chunk_worker if method == "batch" else simulate_chunk
    chunk_plan, seeds = plan_chunk_jobs(
        n_runs, n_patterns, request.seed, None, request.workers
    )
    if len(chunk_plan) == 1:
        return [(worker, (rates, n_runs, n_patterns, seeds[0]), {})]
    return [
        (worker, (rates, c, n_patterns, s), {}) for c, s in zip(chunk_plan, seeds)
    ]


def merge_request_results(
    request: SimRequest, method: str, parts: Sequence
) -> OverheadEstimate:
    """Merge a request's job results back into one overhead estimate."""
    if not parts:
        raise SimulationError("no job results to merge")
    if method == "des":
        runs = [run for part in parts for run in part]
        return overhead_estimate(request.model, request.T, request.P, runs)
    stats = parts[0] if len(parts) == 1 else merge_batch_stats(list(parts))
    return overhead_estimate(request.model, request.T, request.P, stats)


# -- shared worker pool ------------------------------------------------------


class WorkerPool:
    """A process pool created once and shared across all dispatches.

    ``workers=None`` auto-sizes to the machine; ``workers <= 1`` (or a
    single-core box) runs serially in-process.  Pool-infrastructure
    failures — a sandbox refusing to fork, an unpicklable job, a killed
    child — permanently fall back to the serial path, mirroring
    :func:`repro.sim.batch.dispatch_chunks`; because jobs are pure
    functions of their arguments, the fallback changes wall-clock only,
    never results.
    """

    def __init__(self, workers: int | None = None):
        self.workers = (os.cpu_count() or 1) if workers is None else max(1, int(workers))
        self._pool = None
        self._broken = False

    @property
    def parallel(self) -> bool:
        """Whether dispatches may actually use worker processes."""
        return self.workers > 1 and not self._broken

    def _ensure_pool(self):
        """The live process pool, or ``None`` (pool impossible here)."""
        if not self.parallel:
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor
        except ImportError:  # pragma: no cover - exotic stdlib builds
            self._broken = True
            return None
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool
        except OSError:  # pragma: no cover - depends on host sandboxing
            self.mark_broken()
            return None

    def map(self, fn: Callable, items: Sequence) -> list:
        """Order-preserving map over the pool (serial when unavailable)."""
        items = list(items)
        if self.parallel and len(items) > 1:
            import pickle
            from concurrent.futures.process import BrokenProcessPool

            pool = self._ensure_pool()
            if pool is not None:
                try:
                    chunksize = max(1, len(items) // (self.workers * 4))
                    return list(pool.map(fn, items, chunksize=chunksize))
                except (OSError, pickle.PicklingError, BrokenProcessPool):
                    # pragma: no cover - depends on host sandboxing
                    self.mark_broken()
        return [fn(item) for item in items]

    def submit(self, fn: Callable, item):
        """Schedule one job on the pool; ``None`` when unavailable.

        A ``None`` return tells the caller to run the job inline (the
        permanent serial fallback, mirroring :meth:`map`).  Submission
        failures mark the pool broken exactly like map failures.
        """
        import pickle

        pool = self._ensure_pool()
        if pool is None:
            return None
        try:
            return pool.submit(fn, item)
        except (OSError, pickle.PicklingError, RuntimeError):
            # pragma: no cover - depends on host sandboxing
            self.mark_broken()
            return None

    def mark_broken(self) -> None:
        """Permanently fall back to serial dispatch (infra failure)."""
        self._broken = True
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            # cancel_futures: a job exception aborts the dispatch loop
            # mid-run, and queued-but-unstarted jobs must not keep the
            # worker processes alive after the executor is closed.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- on-disk result cache ----------------------------------------------------


class ResultCache:
    """Content-addressed ``.npz`` store for simulation results.

    One file per result under ``directory``, named by the request's
    SHA-256 key, written atomically (temp file + rename) so concurrent
    runs sharing a cache directory never observe torn files.  Unreadable
    or mismatched entries read as misses and are recomputed.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        # Observability hooks (see bind_obs): None until a pipeline
        # attaches its trace writer and metrics registry.
        self.trace = None
        self.metrics = None

    def bind_obs(self, trace, metrics) -> None:
        """Attach a run's trace writer / metrics registry to this cache.

        The cache predates the obs layer and is constructed in many
        contexts that have neither (tests, `cache` subcommands, shard
        merges), so the hooks arrive by late binding instead of
        constructor arguments.
        """
        self.trace = trace
        self.metrics = metrics

    def _note(self, event: str, key: str, **fields) -> None:
        """One cache access, into the metrics registry and the trace."""
        if self.metrics is not None:
            self.metrics.counter("cache", event=event).inc()
        if self.trace is not None and self.trace.enabled:
            self.trace.event(f"cache_{event}", key=key, **fields)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def _load(self, key: str, kind: str) -> dict | None:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if str(data["kind"][()]) != kind:
                    return None
                return {name: data[name][()] for name in data.files}
        except Exception:
            return None  # corrupt or foreign file: treat as a miss

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (no hit/miss accounting).

        A cheap existence probe for dry-run previews; the entry may
        still read as a miss later if it turns out corrupt.
        """
        return self._path(key).exists()

    # -- integrity ---------------------------------------------------------

    #: Entry kinds this cache writes (anything else is a foreign file).
    _KINDS = ("estimate", "value")

    def verify_entry(self, key: str) -> tuple[bool, str]:
        """Integrity-check one entry without hit/miss accounting.

        Returns ``(True, "ok")`` for a fully readable entry,
        ``(False, "missing")`` when no file exists, and
        ``(False, <reason>)`` for a truncated/corrupt/foreign file.
        Every array is force-read, so a file truncated mid-payload is
        caught, not just a mangled header.
        """
        path = self._path(key)
        if not path.exists():
            return False, "missing"
        if path.stat().st_size == 0:
            return False, "empty file"
        try:
            with np.load(path, allow_pickle=False) as data:
                kind = str(data["kind"][()])
                if kind not in self._KINDS:
                    return False, f"unknown entry kind {kind!r}"
                for name in data.files:
                    data[name]  # force-read: catches truncated payloads
        except KeyError:
            return False, "no 'kind' field (foreign file)"
        except Exception as exc:
            return False, f"unreadable ({type(exc).__name__}: {exc})"
        return True, "ok"

    def verify(self) -> tuple[list["CacheEntry"], list[tuple["CacheEntry", str]]]:
        """Integrity-check every entry; returns ``(ok, corrupt)``.

        ``corrupt`` pairs each bad entry with its reason.  Corrupt
        entries are *reported*, never deleted — that is the caller's
        decision (``cache verify --delete``, or the resume validator).
        """
        ok: list[CacheEntry] = []
        corrupt: list[tuple[CacheEntry, str]] = []
        for entry in self.entries():
            good, reason = self.verify_entry(entry.key)
            if good:
                ok.append(entry)
            else:
                corrupt.append((entry, reason))
        return ok, corrupt

    def invalidate(self, key: str) -> bool:
        """Delete one entry (a corrupt checkpoint must read as a miss)."""
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def _store(self, key: str, **fields) -> None:
        # Atomic publish: write the whole entry to a private temp file,
        # fsync it, then rename over the final name.  A reader (or a
        # crash) can therefore never observe a torn entry — only the
        # old state, or the complete new one.
        path = self._path(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp.npz")
        with open(tmp, "wb") as handle:
            np.savez(handle, **fields)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- overhead estimates ------------------------------------------------

    def get_estimate(self, key: str) -> OverheadEstimate | None:
        data = self._load(key, "estimate")
        if data is None:
            self.misses += 1
            self._note("miss", key)
            return None
        self.hits += 1
        self._note("hit", key)
        return OverheadEstimate(
            mean=float(data["mean"]),
            std=float(data["std"]),
            stderr=float(data["stderr"]),
            ci_low=float(data["ci_low"]),
            ci_high=float(data["ci_high"]),
            n_runs=int(data["n_runs"]),
        )

    def put_estimate(self, key: str, estimate: OverheadEstimate) -> None:
        self._note("store", key, kind="estimate")
        self._store(
            key,
            kind="estimate",
            mean=estimate.mean,
            std=estimate.std,
            stderr=estimate.stderr,
            ci_low=estimate.ci_low,
            ci_high=estimate.ci_high,
            n_runs=estimate.n_runs,
        )

    # -- generic scalar values (extension-study DES sweeps) ----------------

    def get_value(self, key: str) -> float | None:
        data = self._load(key, "value")
        if data is None:
            self.misses += 1
            self._note("miss", key)
            return None
        self.hits += 1
        self._note("hit", key)
        return float(data["value"])

    def put_value(self, key: str, value: float) -> None:
        self._note("store", key, kind="value")
        self._store(key, kind="value", value=float(value))

    # -- introspection and garbage collection ------------------------------

    def entries(self) -> list["CacheEntry"]:
        """Every cache entry with its size and age, oldest first."""
        out = []
        for path in self.directory.glob("*.npz"):
            if path.name.startswith("."):
                continue  # in-flight atomic-write temp (or crash leftover)
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with a concurrent prune
                continue
            out.append(CacheEntry(key=path.stem, path=path, size=stat.st_size,
                                  mtime=stat.st_mtime))
        out.sort(key=lambda e: (e.mtime, e.key))
        return out

    def stats(self) -> dict:
        """Aggregate cache statistics (entry count, bytes, age span)."""
        entries = self.entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(e.size for e in entries),
            "oldest_mtime": entries[0].mtime if entries else None,
            "newest_mtime": entries[-1].mtime if entries else None,
            # Cheap corruption signal (no loads): a zero-byte entry can
            # only be a torn write from a pre-atomic cache or a full
            # disk; `verify` does the thorough per-entry check.
            "empty_entries": sum(1 for e in entries if e.size == 0),
        }

    def prune(
        self,
        max_age_days: float | None = None,
        max_size_mb: float | None = None,
        now: float | None = None,
        dry_run: bool = False,
    ) -> tuple[list["CacheEntry"], list["CacheEntry"]]:
        """Age- and size-based GC.  Returns ``(removed, kept)``.

        Entries older than ``max_age_days`` go first; if the survivors
        still exceed ``max_size_mb``, the oldest are evicted until the
        cache fits (LRU by file mtime — hits do not touch mtime, so
        this is creation-time eviction, which is the right order for a
        content-addressed store: older entries are the most likely to
        belong to superseded sweeps).
        """
        import time as _time

        entries = self.entries()
        now = _time.time() if now is None else now
        removed: list[CacheEntry] = []
        kept: list[CacheEntry] = []
        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            for entry in entries:
                (removed if entry.mtime < cutoff else kept).append(entry)
        else:
            kept = list(entries)
        if max_size_mb is not None:
            budget = max_size_mb * 1024 * 1024
            total = sum(e.size for e in kept)
            survivors = []
            for entry in kept:  # oldest first: evict from the front
                if total > budget:
                    removed.append(entry)
                    total -= entry.size
                else:
                    survivors.append(entry)
            kept = survivors
        if not dry_run:
            for entry in removed:
                try:
                    entry.path.unlink()
                except OSError:  # pragma: no cover - raced with another prune
                    pass
        return removed, kept


@dataclass(frozen=True)
class CacheEntry:
    """One content-addressed cache file (key = file stem)."""

    key: str
    path: Path
    size: int
    mtime: float


# -- execution ---------------------------------------------------------------


def serve_or_expand(
    plan: SimulationPlan,
    cache: ResultCache | None = None,
    memo: dict | None = None,
    owned: Callable[[str], bool] | None = None,
) -> tuple[list, list[tuple], list[tuple[int, int, int]]]:
    """Serve cached points; expand the rest into one fused job list.

    Returns ``(estimates, jobs, spans)``: per-unique-request estimates
    (``None`` where a job span must still run), the fused job list in
    :meth:`SimulationPlan.dispatch_order` (slowest backend first), and
    ``(request_index, start, stop)`` spans into the job list.  Callers
    may append further jobs before dispatch — the spans stay valid.

    ``owned`` is the sharding hook (see
    :class:`repro.sim.executors.ShardedExecutor`): a point whose key it
    rejects is neither expanded nor computed and its estimate stays
    ``None`` — cache and memo hits are still served, so a merged cache
    resolves every shard's points.
    """
    estimates: list[OverheadEstimate | None] = [None] * plan.n_unique
    jobs: list[tuple] = []
    spans: list[tuple[int, int, int]] = []
    for i in plan.dispatch_order():
        key = plan.keys[i]
        if memo is not None and key in memo:
            estimates[i] = memo[key]
            continue
        if cache is not None:
            hit = cache.get_estimate(key)
            if hit is not None:
                estimates[i] = hit
                if memo is not None:
                    memo[key] = hit
                continue
        if owned is not None and not owned(key):
            continue
        expanded = request_jobs(plan.requests[i], plan.methods[i])
        spans.append((i, len(jobs), len(jobs) + len(expanded)))
        jobs.extend(expanded)
    return estimates, jobs, spans


@dataclass
class PointJobs:
    """In-flight bookkeeping of one unique request's chunk jobs.

    The event-driven scheduler completes jobs out of order; each
    completion is delivered into its part slot, and the point merges
    (in part order, never completion order — that is what keeps the
    reduction bit-identical) once the last part lands.
    """

    index: int
    parts: list
    remaining: int

    def deliver(self, part: int, result) -> bool:
        """Store one part result; ``True`` when the point is complete."""
        self.parts[part] = result
        self.remaining -= 1
        return self.remaining == 0


def claim_serve_expand(
    plan: SimulationPlan,
    cache: ResultCache | None = None,
    memo: dict | None = None,
    executor=None,
) -> tuple[list, list[tuple], dict[int, "PointJobs"]]:
    """Cache-serve short-circuit, batch claim, and tagged expansion.

    The event-driven counterpart of :func:`serve_or_expand`: memo and
    disk hits are served immediately (they never touch the scheduler),
    the keys still needing compute are offered to the executor's
    :meth:`~repro.sim.executors.Executor.claim` in **one batch** (so a
    work-stealing shard sees the whole round and applies its claim
    order), and each claimed point expands into ``(job, (index, part))``
    tagged jobs in :meth:`SimulationPlan.dispatch_order`.

    Returns ``(estimates, tagged_jobs, books)``: per-unique-request
    estimates (``None`` where jobs must run or the point is unclaimed),
    the tagged job list, and a :class:`PointJobs` book per expanded
    unique index (a point with no book and no estimate was unclaimed).
    """
    estimates: list[OverheadEstimate | None] = [None] * plan.n_unique
    needing: list[int] = []
    for i in plan.dispatch_order():
        key = plan.keys[i]
        if memo is not None and key in memo:
            estimates[i] = memo[key]
            continue
        if cache is not None:
            hit = cache.get_estimate(key)
            if hit is not None:
                estimates[i] = hit
                if memo is not None:
                    memo[key] = hit
                continue
        needing.append(i)
    if executor is not None:
        claimed = set(executor.claim([plan.keys[i] for i in needing]))
        needing = [i for i in needing if plan.keys[i] in claimed]
    tagged: list[tuple] = []
    books: dict[int, PointJobs] = {}
    for i in needing:
        expanded = request_jobs(plan.requests[i], plan.methods[i])
        books[i] = PointJobs(index=i, parts=[None] * len(expanded), remaining=len(expanded))
        for part, job in enumerate(expanded):
            tagged.append((job, (i, part)))
    return estimates, tagged, books


def merge_spans(
    plan: SimulationPlan,
    estimates: list,
    spans: Sequence[tuple[int, int, int]],
    results: Sequence,
    cache: ResultCache | None = None,
    memo: dict | None = None,
) -> list[OverheadEstimate]:
    """Merge job results back into ``estimates`` (cache/memo write-back)."""
    for i, start, stop in spans:
        estimate = merge_request_results(
            plan.requests[i], plan.methods[i], results[start:stop]
        )
        estimates[i] = estimate
        if memo is not None:
            memo[plan.keys[i]] = estimate
        if cache is not None:
            cache.put_estimate(plan.keys[i], estimate)
    return estimates


def execute_plan(
    plan: SimulationPlan,
    pool: WorkerPool | None = None,
    cache: ResultCache | None = None,
    memo: dict | None = None,
) -> list[OverheadEstimate]:
    """Run every unique request of ``plan`` and return aligned estimates.

    Cached points are served from ``cache`` (and ``memo``) without
    touching the pool; the remaining points expand into chunk jobs that
    are all dispatched in **one** fused map over the shared pool, then
    merged per point and written back to the caches.
    """
    estimates, jobs, spans = serve_or_expand(plan, cache, memo)
    results = pool.map(run_job, jobs) if pool is not None else [run_job(j) for j in jobs]
    return merge_spans(plan, estimates, spans, results, cache, memo)


def simulate_requests(
    requests: Sequence[SimRequest],
    pool: WorkerPool | None = None,
    cache: ResultCache | None = None,
) -> list[OverheadEstimate]:
    """Plan, execute and fan out: one estimate per *submitted* request.

    Bit-identical to calling
    :func:`repro.sim.montecarlo.simulate_overhead` once per request
    with the same arguments, for any pool width and cache state.
    """
    plan = plan_simulations(requests)
    estimates = execute_plan(plan, pool=pool, cache=cache)
    return [estimates[slot] for slot in plan.slots]
