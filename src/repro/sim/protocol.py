"""Reference discrete-event simulation of the VC protocol.

This is the *legible specification* of the protocol of Section II,
driven event-by-event on the :class:`~repro.sim.engine.EventEngine`:

* each pattern attempt runs a **work + verification** segment of length
  ``T + V_P``, then a **checkpoint** segment of length ``C_P``;
* fail-stop errors arrive as a Poisson process of rate
  :math:`\\lambda^f_P` and interrupt any segment (work, verification,
  checkpoint, recovery) immediately — the platform then pays the
  constant downtime ``D`` (error-free by assumption) and a **recovery**
  segment ``R_P``, itself interruptible, before re-executing the
  pattern from the last verified checkpoint;
* silent errors arrive at rate :math:`\\lambda^s_P` but only during the
  computation part ``T``; they do not interrupt — they are *detected*
  by the verification at the end of the segment, which triggers a
  recovery (no downtime: the processors are alive) and re-execution.
  A silent error masked by a later fail-stop in the same attempt needs
  no detection since the attempt is discarded anyway;
* the exponential inter-arrival clocks are resampled per segment,
  which is distribution-identical to a persistent Poisson stream by
  memorylessness (and keeps downtime windows error-free for free).

The vectorised sampler in :mod:`repro.sim.batch` reproduces the same
distribution about three orders of magnitude faster; the test suite
holds the two against each other and against Proposition 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import SimulationError
from .engine import EventEngine
from .events import EventKind
from .trace import Trace, TraceEventKind

__all__ = ["RunStats", "TimeBreakdown", "simulate_run"]


@dataclass
class TimeBreakdown:
    """Where the simulated time went, by protocol activity (seconds)."""

    useful_work: float = 0.0  #: work of successfully completed segments
    wasted_work: float = 0.0  #: work re-executed or cut short by errors
    verification: float = 0.0  #: completed verifications
    checkpoint: float = 0.0  #: completed checkpoints
    recovery: float = 0.0  #: completed recoveries
    downtime: float = 0.0  #: downtime after fail-stop errors
    lost: float = 0.0  #: partial segments destroyed by fail-stop errors

    @property
    def total(self) -> float:
        return (
            self.useful_work
            + self.wasted_work
            + self.verification
            + self.checkpoint
            + self.recovery
            + self.downtime
            + self.lost
        )


@dataclass
class RunStats:
    """Statistics of one simulated run (a sequence of patterns).

    ``total_time / (n_patterns * T * S(P))`` is the paper's simulated
    execution overhead; :func:`repro.sim.results.overhead_estimate`
    aggregates it across runs.
    """

    total_time: float
    n_patterns: int
    n_attempts: int
    n_fail_stop: int
    n_silent_struck: int
    n_silent_detected: int
    n_recoveries: int
    n_downtimes: int
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)


class _ProtocolRun:
    """Mutable state of one VC-protocol run on the event engine."""

    def __init__(
        self,
        model: PatternModel,
        T: float,
        P: float,
        rng: np.random.Generator,
        trace: Trace | None = None,
    ) -> None:
        if T <= 0.0:
            raise SimulationError(f"pattern period must be positive, got {T!r}")
        if P <= 0.0:
            raise SimulationError(f"processor count must be positive, got {P!r}")
        self.engine = EventEngine()
        self.rng = rng
        self.trace = trace
        self.T = float(T)
        self.lam_f = float(model.errors.fail_stop_rate(P))
        self.lam_s = float(model.errors.silent_rate(P))
        self.C = float(model.costs.checkpoint_cost(P))
        self.R = float(model.costs.recovery_cost(P))
        self.V = float(model.costs.verification_cost(P))
        self.D = float(model.costs.downtime)
        self.stats = RunStats(
            total_time=0.0,
            n_patterns=0,
            n_attempts=0,
            n_fail_stop=0,
            n_silent_struck=0,
            n_silent_detected=0,
            n_recoveries=0,
            n_downtimes=0,
        )

    # -- primitives -----------------------------------------------------

    def _record(self, kind: TraceEventKind, detail: str = "") -> None:
        if self.trace is not None:
            self.trace.record(self.engine.now, kind, detail)

    def _run_segment(self, duration: float, label: str) -> float | None:
        """Execute one interruptible segment.

        Returns ``None`` on clean completion, or the elapsed time at
        which a fail-stop error struck.  The engine clock advances to
        the completion / interruption instant either way.
        """
        start = self.engine.now
        end_handle = self.engine.schedule(duration, EventKind.SEGMENT_END, label)
        fail_handle = None
        if self.lam_f > 0.0:
            arrival = self.rng.exponential(1.0 / self.lam_f)
            if arrival < duration:
                fail_handle = self.engine.schedule(arrival, EventKind.FAIL_STOP, label)
        event = self.engine.pop()
        if event.kind is EventKind.FAIL_STOP:
            self.engine.cancel(end_handle)
            self.stats.n_fail_stop += 1
            self._record(TraceEventKind.FAIL_STOP, f"during {label}")
            return event.time - start
        if fail_handle is not None:
            self.engine.cancel(fail_handle)
        return None

    def _downtime(self) -> None:
        """Pay the constant downtime D (no errors strike during it)."""
        self.engine.advance(self.D)
        self.stats.n_downtimes += 1
        self.stats.breakdown.downtime += self.D
        self._record(TraceEventKind.DOWNTIME)

    def _recover(self) -> None:
        """Complete one recovery, retrying through fail-stop errors."""
        while True:
            failed_at = self._run_segment(self.R, "recovery")
            if failed_at is None:
                self.stats.n_recoveries += 1
                self.stats.breakdown.recovery += self.R
                self._record(TraceEventKind.RECOVERY_DONE)
                return
            self.stats.breakdown.lost += failed_at
            self._downtime()

    def _silent_struck_within(self, computed: float) -> bool:
        """Did a silent error strike within ``computed`` seconds of work?"""
        if self.lam_s <= 0.0 or computed <= 0.0:
            return False
        arrival = self.rng.exponential(1.0 / self.lam_s)
        return arrival < computed

    # -- pattern loop -----------------------------------------------------

    def run_pattern(self) -> None:
        """Execute one pattern to successful (verified) checkpoint."""
        self._record(
            TraceEventKind.PATTERN_START, f"pattern {self.stats.n_patterns + 1}"
        )
        while True:
            self.stats.n_attempts += 1
            self._record(
                TraceEventKind.SEGMENT_START, f"attempt {self.stats.n_attempts}"
            )
            # Work + verification segment.
            failed_at = self._run_segment(self.T + self.V, "work+verify")
            if failed_at is not None:
                # A silent error may have struck the computed prefix; it
                # is masked by the fail-stop error but counted for stats.
                if self._silent_struck_within(min(failed_at, self.T)):
                    self.stats.n_silent_struck += 1
                self.stats.breakdown.lost += failed_at
                self._downtime()
                self._recover()
                continue
            # Segment completed: the verification now rules on silent errors.
            if self._silent_struck_within(self.T):
                self.stats.n_silent_struck += 1
                self.stats.n_silent_detected += 1
                self._record(TraceEventKind.SILENT_DETECTED, "at verification")
                self.stats.breakdown.wasted_work += self.T
                self.stats.breakdown.verification += self.V
                self._recover()
                continue
            # Checkpoint segment.
            failed_at = self._run_segment(self.C, "checkpoint")
            if failed_at is not None:
                self.stats.breakdown.wasted_work += self.T
                self.stats.breakdown.verification += self.V
                self.stats.breakdown.lost += failed_at
                self._downtime()
                self._recover()
                continue
            self.stats.n_patterns += 1
            self.stats.breakdown.useful_work += self.T
            self.stats.breakdown.verification += self.V
            self.stats.breakdown.checkpoint += self.C
            self._record(TraceEventKind.CHECKPOINT_DONE)
            self._record(TraceEventKind.PATTERN_DONE, f"pattern {self.stats.n_patterns}")
            return


def simulate_run(
    model: PatternModel,
    T: float,
    P: float,
    n_patterns: int,
    rng: np.random.Generator,
    trace: Trace | None = None,
) -> RunStats:
    """Simulate ``n_patterns`` consecutive patterns of the VC protocol.

    Parameters
    ----------
    model:
        Platform/application bundle (only errors and costs are used —
        overhead normalisation happens in :mod:`repro.sim.results`).
    T, P:
        The pattern parameters under test.
    n_patterns:
        Number of successful patterns to complete (the paper uses
        >= 500 per run).
    rng:
        Run-private generator (see :func:`repro.sim.rng.spawn_rngs`).
    trace:
        Optional :class:`~repro.sim.trace.Trace` receiving a
        timestamped event log of the run (costs nothing when omitted).

    Returns
    -------
    RunStats
        Counters plus a full time breakdown; ``total_time`` is the
        simulated wall-clock for the whole run.
    """
    if n_patterns <= 0:
        raise SimulationError(f"n_patterns must be positive, got {n_patterns!r}")
    run = _ProtocolRun(model, T, P, rng, trace=trace)
    for _ in range(n_patterns):
        run.run_pattern()
    run.stats.total_time = run.engine.now
    return run.stats
