"""Deterministic fault injection for the durable-run machinery.

The repo reproduces a paper about surviving failures with optimal
checkpointing; this module lets the evaluation harness *test* that it
survives its own failures.  A :class:`FaultPlan` is a small, fully
deterministic script of injected faults, parsed from the developer
flag ``--fault-plan`` and threaded into the
:class:`repro.sim.scheduler.Scheduler`:

* ``fail-job=N[:M]`` — the ``N``-th job submitted this run raises a
  :class:`TransientFault` ``M`` times (default once) before running
  normally, exercising the scheduler's bounded retry + backoff path;
* ``kill-worker=N`` — the ``N``-th job hard-kills its worker process
  (``os._exit``), so a pooled executor observes a genuine
  ``BrokenProcessPool``; under a serial executor the job raises a
  :class:`TransientFault` instead (the closest in-process analogue);
* ``crash-after=N`` — the run dies with a :class:`SimulatedCrash`
  after the ``N``-th job completion has been delivered (manifest
  fates for everything delivered so far are already journaled), the
  harness for crash→resume tests;
* ``corrupt-entry=N`` — before anything runs, the ``N``-th entry of
  the result cache (sorted by key) is truncated mid-file, exercising
  ``cache verify`` and the resume invalidation path.

Counters are plain integers — no wall clock, no RNG — so a fault plan
replays identically on every run, which is what makes the
crash-resume determinism tests (kill after K completions, resume, pin
the output bytes) possible.  ``seed`` is carried for future
randomized plans but unused today.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..exceptions import ReproError

__all__ = [
    "FaultInjected",
    "TransientFault",
    "SimulatedCrash",
    "FaultPlan",
    "parse_fault_plan",
    "CRASH_EXIT_CODE",
]

#: Process exit code of a run killed by a :class:`SimulatedCrash`
#: (distinct from argparse's 2 and a generic traceback's 1, so tests
#: and CI can assert the crash was the injected one).
CRASH_EXIT_CODE = 86


class FaultInjected(ReproError):
    """Base class of all injected faults (never raised by real code)."""


class TransientFault(FaultInjected, OSError):
    """An injected infrastructure-style failure (retryable).

    Derives from :class:`OSError` so it is classified transient by the
    same rule as a real worker/pool infrastructure error.
    """


class SimulatedCrash(FaultInjected):
    """The injected analogue of ``kill -9`` on the whole run.

    Raised out of the scheduler loop after the configured number of
    completions; nothing downstream of the raise runs, so whatever the
    run manifest journaled up to that point is exactly what a resume
    finds.
    """


def _fault_fail_job(sequence: int) -> None:
    """Module-level (picklable) job body that always fails transiently."""
    raise TransientFault(f"injected transient fault on job {sequence}")


def _fault_kill_worker(sequence: int) -> None:
    """Hard-kill the executing worker process (inline: raise instead).

    In a process-pool worker this is the real thing — the parent sees
    a ``BrokenProcessPool`` covering every in-flight job.  Executed
    inline (serial executor, or a pool replaying inline) there is no
    separate process to kill, so it degrades to a transient raise.
    """
    import multiprocessing

    if multiprocessing.parent_process() is not None:  # pragma: no cover - dies
        os._exit(CRASH_EXIT_CODE)
    raise TransientFault(f"injected worker kill on job {sequence} (inline)")


@dataclass
class FaultPlan:
    """A deterministic script of injected faults (see module docstring).

    Job indices are 1-based over *first submissions* in scheduler
    dispatch order — retries of a job do not advance the sequence, so
    a plan means the same thing whatever the retry policy.
    """

    fail_job: int | None = None
    fail_times: int = 1
    kill_worker: int | None = None
    crash_after: int | None = None
    corrupt_entry: int | None = None
    seed: int = 0

    #: Submission sequence (first submissions only).
    _sequence: int = field(default=0, repr=False)
    #: Delivered-completion count (for ``crash-after``).
    _completions: int = field(default=0, repr=False)
    #: tag -> remaining injected failures for that job.
    _fails_left: dict = field(default_factory=dict, repr=False)

    def wrap_job(self, job: tuple, tag, attempt: int) -> tuple:
        """The job to actually submit: ``job`` itself, or a fault body.

        Called by the scheduler on every (re)submission; ``attempt`` is
        0 for the first submission.  While a matched job still has
        injected failures left, the returned job raises (or kills its
        worker) instead of running; once they are spent, the original
        job passes through and computes its normal, bit-identical
        result.
        """
        marker = ("tag", tag)
        if attempt == 0:
            self._sequence += 1
            if self.fail_job == self._sequence:
                self._fails_left[marker] = ("raise", max(1, self.fail_times))
            if self.kill_worker == self._sequence:
                # A killed worker never reports back, so one injection
                # is both the first and the last.
                self._fails_left[marker] = ("kill", 1)
        kind, left = self._fails_left.get(marker, (None, 0))
        if left > 0:
            self._fails_left[marker] = (kind, left - 1)
            body = _fault_kill_worker if kind == "kill" else _fault_fail_job
            return (body, (self._sequence,), {})
        return job

    def on_completion(self) -> None:
        """Count one delivered completion; crash when the plan says so."""
        self._completions += 1
        if self.crash_after is not None and self._completions == self.crash_after:
            raise SimulatedCrash(
                f"injected crash after {self.crash_after} completed jobs"
            )

    def corrupt_cache(self, cache) -> str | None:
        """Truncate the configured cache entry; returns the hurt key.

        Entries sort by key (the content address), so "the N-th entry"
        is stable across runs of the same plan.  A missing index is a
        no-op (``None``) — the plan may run before the cache is warm.
        """
        if self.corrupt_entry is None:
            return None
        entries = sorted(cache.entries(), key=lambda e: e.key)
        if not 0 <= self.corrupt_entry < len(entries):
            return None
        entry = entries[self.corrupt_entry]
        data = entry.path.read_bytes()
        entry.path.write_bytes(data[: max(1, len(data) // 2)])
        return entry.key


_FAULT_KINDS = ("fail-job", "kill-worker", "crash-after", "corrupt-entry", "seed")


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``--fault-plan`` spec string into a :class:`FaultPlan`.

    Comma-separated ``kind=N`` terms; ``fail-job`` takes an optional
    repeat count as ``fail-job=N:M``.  Examples::

        crash-after=20
        fail-job=3:2,crash-after=40
        kill-worker=5
        corrupt-entry=0
    """
    plan = FaultPlan()
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        kind, sep, value = term.partition("=")
        if not sep or kind not in _FAULT_KINDS:
            raise ReproError(
                f"unknown fault-plan term {term!r} "
                f"(expected one of {', '.join(_FAULT_KINDS)})"
            )
        try:
            if kind == "fail-job":
                count, sep2, times = value.partition(":")
                plan.fail_job = int(count)
                if sep2:
                    plan.fail_times = int(times)
            elif kind == "kill-worker":
                plan.kill_worker = int(value)
            elif kind == "crash-after":
                plan.crash_after = int(value)
            elif kind == "corrupt-entry":
                plan.corrupt_entry = int(value)
            else:
                plan.seed = int(value)
        except ValueError:
            raise ReproError(f"fault-plan term {term!r} needs an integer") from None
    for name, value in (
        ("fail-job", plan.fail_job),
        ("kill-worker", plan.kill_worker),
        ("crash-after", plan.crash_after),
    ):
        if value is not None and value < 1:
            raise ReproError(f"fault-plan {name} index is 1-based (got {value})")
    if plan.fail_times < 1:
        raise ReproError("fault-plan fail-job repeat count must be >= 1")
    if plan.corrupt_entry is not None and plan.corrupt_entry < 0:
        raise ReproError("fault-plan corrupt-entry index must be >= 0")
    return plan
