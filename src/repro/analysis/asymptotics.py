"""Log-log slope fitting for the asymptotic-order validations.

Figures 5 and 6 of the paper overlay reference power laws
(:math:`P^* = \\lambda^{-1/4}`, :math:`T^* = \\lambda^{-1/2}`, ...) on
the measured optima.  The harness goes one step further and *fits* the
empirical order by least squares in log-log space, so the shape checks
in EXPERIMENTS.md are quantitative: a fitted slope of ``-0.252`` against
a predicted ``-1/4`` passes; ``-0.4`` would not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["SlopeFit", "fit_loglog_slope", "estimate_order", "reference_power_law"]


@dataclass(frozen=True)
class SlopeFit:
    """Least-squares fit ``log10(y) = slope * log10(x) + intercept``.

    ``r_squared`` is the coefficient of determination in log space; the
    paper's power laws fit with ``r^2 > 0.999`` over four decades.
    """

    slope: float
    intercept: float
    r_squared: float
    n_points: int

    def predict(self, x):
        """Evaluate the fitted power law at ``x`` (scalar or array)."""
        return 10.0**self.intercept * np.asarray(x, dtype=float) ** self.slope

    def matches(self, expected_slope: float, tol: float = 0.05) -> bool:
        """Whether the fitted slope is within ``tol`` of the prediction."""
        return abs(self.slope - expected_slope) <= tol


def fit_loglog_slope(x, y) -> SlopeFit:
    """Fit a power law ``y ~ x^slope`` by least squares in log-log space.

    Requires strictly positive data and at least two points.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise InvalidParameterError("x and y must be 1-D arrays of equal length")
    if x.size < 2:
        raise InvalidParameterError("need at least two points to fit a slope")
    if np.any(x <= 0.0) or np.any(y <= 0.0):
        raise InvalidParameterError("power-law fits need strictly positive data")
    lx = np.log10(x)
    ly = np.log10(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    # Constant data yields ss_tot at round-off scale: call that a perfect fit
    # rather than dividing noise by noise.
    scale = max(1.0, float(np.sum(ly**2)))
    r_squared = 1.0 if ss_tot <= 1e-24 * scale else 1.0 - ss_res / ss_tot
    return SlopeFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        n_points=int(x.size),
    )


def estimate_order(lambdas, values) -> float:
    """Empirical order ``k`` such that ``values ~ lambda^k``.

    Convention matches the paper: :math:`P^* = \\Theta(\\lambda^{-1/4})`
    gives ``estimate_order(...) == -0.25`` (approximately).
    """
    return fit_loglog_slope(lambdas, values).slope


def reference_power_law(x, exponent: float, anchor_x: float, anchor_y: float):
    """The guide-line ``y = anchor_y * (x/anchor_x)^exponent`` of the figures."""
    if anchor_x <= 0.0 or anchor_y <= 0.0:
        raise InvalidParameterError("anchors must be positive")
    return anchor_y * (np.asarray(x, dtype=float) / anchor_x) ** exponent
