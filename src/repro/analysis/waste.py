"""Waste accounting: where does the overhead come from?

The first-order overhead of Theorem 1 decomposes into physically
meaningful channels (everything scaled by the error-free ``H(P)`` and
expressed per unit of useful work ``T``):

* **resilience bill** — the deterministic verification + checkpoint
  time, :math:`(V_P + C_P)/T`;
* **fail-stop re-execution** — half a period on average plus the
  protocol costs around each failure,
  :math:`\\lambda^f_P (T/2 + V + C + R + D)`;
* **silent re-execution** — a full period plus verification/recovery,
  :math:`\\lambda^s_P (T + V + R)`;

with a residual capturing the higher-order terms of the exact
expectation.  The decomposition is *exact by construction* — the
channels are defined so that they sum to ``H(T, P)/H(P) - 1`` — and the
split mirrors the event-driven simulator's
:class:`~repro.sim.protocol.TimeBreakdown`, which
:func:`compare_with_simulation` checks channel by channel.

This quantifies the Young/Daly intuition: at the optimal period the
deterministic bill and the expected re-execution loss are (to first
order) *equal* — tested as ``test_balance_at_optimum``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pattern import PatternModel
from ..exceptions import InvalidParameterError
from ..sim.protocol import RunStats

__all__ = ["WasteBreakdown", "waste_breakdown", "simulated_waste", "compare_with_simulation"]


@dataclass(frozen=True)
class WasteBreakdown:
    """Overhead channels per unit of useful work (dimensionless).

    ``total`` is the exact relative waste ``E(T,P)/T - 1``; the three
    named channels are its first-order split and ``residual`` the
    higher-order remainder (small inside the validity regime).
    """

    resilience_bill: float
    fail_stop_reexecution: float
    silent_reexecution: float
    residual: float
    total: float

    @property
    def first_order_total(self) -> float:
        return self.resilience_bill + self.fail_stop_reexecution + self.silent_reexecution

    def fractions(self) -> dict[str, float]:
        """Each channel as a fraction of the total waste."""
        if self.total <= 0.0:
            return {
                "resilience_bill": 0.0,
                "fail_stop_reexecution": 0.0,
                "silent_reexecution": 0.0,
                "residual": 0.0,
            }
        return {
            "resilience_bill": self.resilience_bill / self.total,
            "fail_stop_reexecution": self.fail_stop_reexecution / self.total,
            "silent_reexecution": self.silent_reexecution / self.total,
            "residual": self.residual / self.total,
        }


def waste_breakdown(model: PatternModel, T: float, P: float) -> WasteBreakdown:
    """Decompose the relative waste of PATTERN(T, P) into channels."""
    if T <= 0.0:
        raise InvalidParameterError(f"T must be positive, got {T!r}")
    lam_f = float(model.errors.fail_stop_rate(P))
    lam_s = float(model.errors.silent_rate(P))
    C = float(model.costs.checkpoint_cost(P))
    R = float(model.costs.recovery_cost(P))
    V = float(model.costs.verification_cost(P))
    D = float(model.costs.downtime)

    bill = (V + C) / T
    fail_stop = lam_f * (T / 2.0 + V + C + R + D)
    silent = lam_s * (T + V + R)
    total = float(model.expected_time(T, P)) / T - 1.0
    residual = total - (bill + fail_stop + silent)
    return WasteBreakdown(
        resilience_bill=bill,
        fail_stop_reexecution=fail_stop,
        silent_reexecution=silent,
        residual=residual,
        total=total,
    )


def simulated_waste(stats: RunStats, T: float) -> dict[str, float]:
    """Channelise a simulated run's :class:`TimeBreakdown` per useful work.

    Maps the simulator's activity accounting onto the analytic channels:
    the resilience bill is the verification+checkpoint time of
    *successful* patterns; fail-stop losses are the destroyed partial
    segments plus downtime plus recoveries following fail-stop errors;
    silent losses are the wasted (re-executed) full segments.  Recovery
    time cannot be attributed per-cause by the aggregate counters, so it
    is reported in its own key.
    """
    useful = stats.n_patterns * T
    if useful <= 0.0:
        raise InvalidParameterError("run completed no useful work")
    b = stats.breakdown
    return {
        "resilience_bill": (b.verification + b.checkpoint) / useful,
        "lost_and_down": (b.lost + b.downtime) / useful,
        "reexecuted_work": b.wasted_work / useful,
        "recovery": b.recovery / useful,
        "total": stats.total_time / useful - 1.0,
    }


def compare_with_simulation(
    model: PatternModel, T: float, P: float, stats: RunStats
) -> dict[str, float]:
    """Analytic-vs-simulated total waste (relative difference per channel).

    Returns the simulated channel dict augmented with
    ``analytic_total`` and ``total_relative_error`` — the headline
    check used by the tests and the waste example.
    """
    analytic = waste_breakdown(model, T, P)
    sim = simulated_waste(stats, T)
    out = dict(sim)
    out["analytic_total"] = analytic.total
    denom = max(abs(analytic.total), 1e-300)
    out["total_relative_error"] = abs(sim["total"] - analytic.total) / denom
    return out
