"""Post-processing analytics: asymptotic slope fits and sensitivity."""

from .asymptotics import SlopeFit, estimate_order, fit_loglog_slope, reference_power_law
from .sensitivity import (
    RobustnessCurve,
    first_order_gap,
    period_robustness,
    processor_robustness,
)
from .waste import (
    WasteBreakdown,
    compare_with_simulation,
    simulated_waste,
    waste_breakdown,
)

__all__ = [
    "SlopeFit",
    "fit_loglog_slope",
    "estimate_order",
    "reference_power_law",
    "RobustnessCurve",
    "period_robustness",
    "processor_robustness",
    "first_order_gap",
    "WasteBreakdown",
    "waste_breakdown",
    "simulated_waste",
    "compare_with_simulation",
]
