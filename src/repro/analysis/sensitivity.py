"""Sensitivity and robustness analysis of optimal patterns.

Two practical questions the paper's discussion raises but does not
quantify, answered here:

1. **How flat is the optimum?**  If the deployed period or allocation
   misses the optimum by a factor ``k``, how much overhead is lost?
   (Young/Daly folklore says the period optimum is very flat; the
   processor optimum under Theorem 2 is flatter still because the
   overhead varies as :math:`P + 1/P` around :math:`P^*`.)

2. **How big is the first-order gap?**  Figure 3(c) plots the overhead
   difference between the first-order and the numerically optimal
   solution; :func:`first_order_gap` computes exactly that quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.first_order import optimal_period
from ..core.pattern import PatternModel
from ..exceptions import InvalidParameterError
from ..optimize.period import optimize_period

__all__ = [
    "RobustnessCurve",
    "period_robustness",
    "processor_robustness",
    "first_order_gap",
]


@dataclass(frozen=True)
class RobustnessCurve:
    """Overhead penalty as a function of a mis-sizing factor.

    ``penalties[i]`` is ``H(factor_i * optimum) / H(optimum)`` — 1.0
    means no loss.
    """

    factors: np.ndarray
    penalties: np.ndarray
    optimum: float
    optimum_overhead: float

    def worst(self) -> float:
        """Largest penalty over the factor range."""
        return float(np.max(self.penalties))

    def penalty_at(self, factor: float) -> float:
        """Penalty at the factor closest to ``factor`` in the grid."""
        i = int(np.argmin(np.abs(self.factors - factor)))
        return float(self.penalties[i])


def period_robustness(
    model: PatternModel, P: float, factors=None
) -> RobustnessCurve:
    """Overhead penalty for deploying ``k * T_opt`` instead of ``T_opt``.

    ``factors`` defaults to half a decade either side of the optimum.
    """
    if factors is None:
        factors = np.logspace(-0.5, 0.5, 21)
    factors = np.asarray(factors, dtype=float)
    if np.any(factors <= 0.0):
        raise InvalidParameterError("mis-sizing factors must be positive")
    opt = optimize_period(model, P)
    overheads = np.asarray(model.overhead(opt.period * factors, P), dtype=float)
    return RobustnessCurve(
        factors=factors,
        penalties=overheads / opt.overhead,
        optimum=opt.period,
        optimum_overhead=opt.overhead,
    )


def processor_robustness(
    model: PatternModel, P_opt: float, factors=None
) -> RobustnessCurve:
    """Overhead penalty for enrolling ``k * P_opt`` processors.

    The period is re-optimised (Theorem 1) at each mis-sized allocation —
    the realistic deployment model where the period is tunable but the
    allocation is fixed by the scheduler.
    """
    if factors is None:
        factors = np.logspace(-0.5, 0.5, 21)
    factors = np.asarray(factors, dtype=float)
    if np.any(factors <= 0.0):
        raise InvalidParameterError("mis-sizing factors must be positive")
    if P_opt <= 0.0:
        raise InvalidParameterError(f"P_opt must be positive, got {P_opt!r}")
    Ps = P_opt * factors
    overheads = np.empty_like(Ps)
    for i, P in enumerate(Ps):
        overheads[i] = optimize_period(model, float(P)).overhead
    base = optimize_period(model, float(P_opt)).overhead
    return RobustnessCurve(
        factors=factors,
        penalties=overheads / base,
        optimum=P_opt,
        optimum_overhead=base,
    )


def first_order_gap(model: PatternModel, P: float) -> float:
    """Figure 3(c): overhead excess of the first-order period vs the optimum.

    Returns :math:`H(T^{fo}_P, P) - H(T^{opt}_P, P) \\ge 0` evaluated on
    the exact objective (the paper reports this stays below 0.2% over
    the whole processor range on Hera).
    """
    T_fo = float(optimal_period(P, model.errors, model.costs))
    H_fo = float(model.overhead(T_fo, P))
    H_opt = optimize_period(model, P).overhead
    return H_fo - H_opt
