"""Fail-stop-only baseline (Zheng et al., IEEE TC 2015 style).

The closest prior work the paper compares against is the
reliability-aware speedup model of Zheng, Yu and Lan [22]: periodic
checkpointing with *fail-stop* errors only — no silent errors and hence
no verification.  Two uses here:

1. **The model itself** — expected pattern time, overhead and optimal
   pattern when the platform genuinely has only fail-stop errors.  We
   get this for free by projecting our general model: set the silent
   fraction to zero while keeping the fail-stop rate, and drop the
   verification cost.  Every formula of Proposition 1 / Theorems 1-3
   specialises correctly (the tests assert e.g. Theorem 1 reduces to a
   Young-like :math:`\\sqrt{2 C_P/\\lambda^f_P}`).

2. **The "price of ignoring silent errors"** — a practitioner who sizes
   ``(T, P)`` from the fail-stop-only formulas but runs on a platform
   where a fraction ``s`` of errors are silent.  The benchmark harness
   quantifies the resulting overhead penalty against the paper's
   two-source optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.costs import ResilienceCosts, VerificationCost
from ..core.errors import ErrorModel
from ..core.first_order import FirstOrderSolution, optimal_pattern, optimal_period
from ..core.pattern import PatternModel

__all__ = [
    "failstop_projection",
    "naive_pattern",
    "price_of_ignoring_silent",
    "NaiveDeployment",
]


def failstop_projection(model: PatternModel, keep_verification: bool = False) -> PatternModel:
    """A copy of ``model`` with silent errors (and verification) removed.

    The fail-stop rate is preserved: the projected individual rate is
    ``f * lambda_ind`` with a fail-stop fraction of 1.  With
    ``keep_verification=False`` the verification cost is dropped too —
    a pure checkpoint/restart protocol, as in the fail-stop-only
    literature.
    """
    errors = ErrorModel(
        lambda_ind=model.errors.lambda_ind * model.errors.fail_stop_fraction,
        fail_stop_fraction=1.0,
    )
    costs = model.costs
    if not keep_verification:
        costs = ResilienceCosts(
            checkpoint=costs.checkpoint,
            verification=VerificationCost(),
            downtime=costs.downtime,
            recovery=costs.recovery,
        )
    return PatternModel(errors=errors, costs=costs, speedup=model.speedup)


@dataclass(frozen=True)
class NaiveDeployment:
    """A pattern sized while ignoring silent errors, evaluated truthfully.

    Attributes
    ----------
    naive_solution:
        The first-order pattern computed from fail-stop-only rates.
    true_overhead:
        Exact expected overhead of that pattern under the *full*
        two-source model (verification still performed, so silent
        errors are caught — just not accounted for when sizing).
    optimal_overhead:
        Exact overhead of the correctly sized two-source first-order
        pattern, for reference.
    """

    naive_solution: FirstOrderSolution
    true_overhead: float
    optimal_overhead: float

    @property
    def penalty(self) -> float:
        """Multiplicative overhead penalty for ignoring silent errors."""
        return self.true_overhead / self.optimal_overhead


def naive_pattern(model: PatternModel) -> FirstOrderSolution:
    """First-order pattern sized with silent errors ignored.

    Keeps the verification cost in the sizing (the protocol still runs
    it), but uses the fail-stop-only effective rate ``(f/2) lambda_ind``.
    """
    projected = failstop_projection(model, keep_verification=True)
    return optimal_pattern(projected)


def price_of_ignoring_silent(model: PatternModel) -> NaiveDeployment:
    """Quantify the overhead penalty of sizing ``(T, P)`` without SDC awareness."""
    naive = naive_pattern(model)
    informed = optimal_pattern(model)
    true_overhead = float(model.overhead(naive.period, naive.processors))
    optimal_overhead = float(model.overhead(informed.period, informed.processors))
    return NaiveDeployment(
        naive_solution=naive,
        true_overhead=true_overhead,
        optimal_overhead=optimal_overhead,
    )


def failstop_optimal_period(model: PatternModel, P: float) -> float:
    """Optimal period of the fail-stop-only projection at fixed ``P``.

    Young-like: :math:`\\sqrt{2 C_P / \\lambda^f_P}` (no verification).
    """
    projected = failstop_projection(model)
    return float(optimal_period(P, projected.errors, projected.costs))
