"""Baseline models the paper compares against or extends."""

from .error_free import ErrorFreeModel
from .failstop_only import (
    NaiveDeployment,
    failstop_optimal_period,
    failstop_projection,
    naive_pattern,
    price_of_ignoring_silent,
)

__all__ = [
    "ErrorFreeModel",
    "failstop_projection",
    "failstop_optimal_period",
    "naive_pattern",
    "price_of_ignoring_silent",
    "NaiveDeployment",
]
