"""Error-free execution baseline.

In a failure-free world the overhead of an Amdahl job is exactly
``H(P)`` and is strictly decreasing in ``P`` — "enroll as many
processors as possible", as the paper's introduction puts it.  This
trivial model is the floor every resilient execution is compared
against, and the contrast object for the paper's headline message (on
failure-prone platforms a finite ``P*`` exists).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.speedup import SpeedupModel
from ..exceptions import InvalidParameterError

__all__ = ["ErrorFreeModel"]


@dataclass(frozen=True)
class ErrorFreeModel:
    """Failure-free execution of an application with a given speedup profile."""

    speedup: SpeedupModel

    def overhead(self, P):
        """Execution overhead ``H(P)`` — no resilience, no failures."""
        return self.speedup.overhead(P)

    def makespan(self, total_work: float, P):
        """Error-free makespan ``H(P) * W_total``."""
        if total_work <= 0.0:
            raise InvalidParameterError(f"total work must be positive, got {total_work!r}")
        return np.asarray(self.speedup.overhead(P)) * total_work if np.ndim(P) \
            else self.speedup.overhead(P) * total_work

    def optimal_processors(self) -> float:
        """Always infinity: more processors never hurt without failures."""
        return float("inf")
