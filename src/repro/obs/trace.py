"""Structured run tracing: one JSON Lines journal per traced run.

``--trace`` turns every layer's notable moments — study declares,
plan dedup, job submit/complete/retry, cache hits/misses/stores,
analytic memo serves, adaptive wave staging and convergence, table
emission — into a stream of schema-validated events under
``<runs-dir>/<run-id>/trace.jsonl`` (or ``--trace-file``):

* **point events** record one fact (``{"ev": "cache_hit", "t": 0.81,
  "key": "ab12…"}``); **span events** come in ``span_begin`` /
  ``span_end`` pairs sharing a sequential ``sid``, and the end event
  carries the duration — the ``trace summary`` per-phase breakdown
  sums them;
* timestamps are monotonic seconds relative to the trace start, so a
  clock step mid-run cannot reorder the journal;
* each event is one ``json.dumps`` line written in a single flushed
  ``write()`` — an append is atomic with respect to crashes (a killed
  run leaves a valid prefix) and to any other writer of the stream;
* event shapes live in :data:`EVENT_FIELDS`; :func:`validate_event`
  rejects unknown events, missing required fields and undeclared
  fields, so the trace format cannot drift silently.

When tracing is off every instrumentation site holds the
:data:`NULL_TRACE` null writer whose ``enabled`` flag is ``False`` —
hot paths pay one attribute check and skip even building the event's
keyword arguments.  The sampled numbers never depend on tracing:
instrumentation only observes, so output bytes are identical with
``--trace`` on or off.

Determinism: with timing/process identity stripped
(:data:`VOLATILE_FIELDS`) and the environment-describing events
dropped (:data:`ENVIRONMENT_EVENTS`), the same command produces the
same event *multiset* on any executor — serial, pooled or sharded —
because every remaining field is a pure function of the plan.
:func:`comparable_events` applies exactly that reduction for tests.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from ..exceptions import ReproError

__all__ = [
    "TraceWriter",
    "NullTraceWriter",
    "NULL_TRACE",
    "TRACE_FORMAT",
    "TRACE_NAME",
    "EVENT_FIELDS",
    "VOLATILE_FIELDS",
    "ENVIRONMENT_EVENTS",
    "validate_event",
    "iter_trace",
    "load_trace",
    "comparable_events",
]

#: Current trace schema version (stamped into ``trace_start``).
TRACE_FORMAT = 1

#: Default file name of a run's trace journal, next to its manifest.
TRACE_NAME = "trace.jsonl"

#: Fields whose values vary run-to-run (timing, process identity) even
#: when the computation is identical — stripped before determinism
#: comparisons and by ``trace timeline``'s compact detail column.
VOLATILE_FIELDS = frozenset({"t", "dur", "worker", "pid"})

#: Events that describe the execution environment (argv, worker
#: counts, window sizes) rather than the computation — dropped before
#: cross-executor determinism comparisons.
ENVIRONMENT_EVENTS = frozenset({"trace_start", "trace_end", "schedule", "snapshot"})

#: Event vocabulary: ``ev`` -> (required fields, optional fields).
#: ``ev`` and ``t`` are implicit on every event.  Adding an event or a
#: field here *is* the schema change; everything else validates
#: against this table.
EVENT_FIELDS: dict[str, tuple[frozenset, frozenset]] = {
    # lifecycle
    "trace_start": (frozenset({"format", "pid", "argv"}), frozenset({"run_id", "command"})),
    "trace_end": (frozenset({"status"}), frozenset()),
    "snapshot": (frozenset({"metrics"}), frozenset()),
    # spans (declare | execute)
    "span_begin": (frozenset({"name", "sid"}), frozenset({"study", "platform", "round"})),
    "span_end": (
        frozenset({"name", "sid", "dur"}),
        frozenset({"study", "platform", "round", "points"}),
    ),
    # planning and point delivery
    "plan": (frozenset({"round", "points", "unique", "jobs"}), frozenset()),
    "point": (frozenset({"study", "status", "key"}), frozenset()),
    # scheduler
    "schedule": (frozenset({"jobs", "max_inflight", "workers"}), frozenset()),
    "job_submit": (frozenset({"job", "attempt"}), frozenset()),
    "job_complete": (frozenset({"job"}), frozenset({"dur", "worker"})),
    "job_retry": (frozenset({"job", "attempt", "error"}), frozenset()),
    "job_inline": (frozenset({"job"}), frozenset({"dur"})),
    # result cache / analytic memo
    "cache_hit": (frozenset({"key"}), frozenset()),
    "cache_miss": (frozenset({"key"}), frozenset()),
    "cache_store": (frozenset({"key", "kind"}), frozenset()),
    "memo_serve": (frozenset({"study", "count"}), frozenset()),
    "analytic_batch": (frozenset({"study", "evaluated", "served"}), frozenset()),
    # adaptive replicate engine
    "wave_stage": (
        frozenset({"family", "wave", "start", "stop"}),
        frozenset({"rows"}),
    ),
    "wave_converge": (
        frozenset({"family", "wave", "converged", "active", "rows_converged"}),
        frozenset(),
    ),
    # output and resume
    "emit": (frozenset({"study", "tables"}), frozenset()),
    "resume_validate": (
        frozenset({"reused", "invalidated", "missing", "stale"}),
        frozenset(),
    ),
}


def validate_event(event: dict) -> None:
    """Raise :class:`ReproError` unless ``event`` matches its schema."""
    if not isinstance(event, dict):
        raise ReproError(f"trace event is not an object: {event!r}")
    ev = event.get("ev")
    if ev not in EVENT_FIELDS:
        raise ReproError(f"unknown trace event type {ev!r}")
    if not isinstance(event.get("t"), (int, float)):
        raise ReproError(f"trace event {ev!r} lacks a numeric timestamp 't'")
    required, optional = EVENT_FIELDS[ev]
    fields = set(event) - {"ev", "t"}
    missing = required - fields
    if missing:
        raise ReproError(
            f"trace event {ev!r} is missing required fields {sorted(missing)}"
        )
    unknown = fields - required - optional
    if unknown:
        raise ReproError(
            f"trace event {ev!r} carries undeclared fields {sorted(unknown)}"
        )


class TraceWriter:
    """Append-only JSON Lines journal of one run's events.

    Single-writer by construction (one writer per CLI invocation);
    the internal lock additionally serialises line writes so callbacks
    firing from any thread can never interleave bytes mid-line.
    """

    enabled = True

    def __init__(
        self,
        path: str | Path,
        argv=(),
        run_id: str | None = None,
        command: str | None = None,
        clock=time.monotonic,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._sid = 0
        self.events_written = 0
        self.closed = False
        self._handle = open(self.path, "w")
        import os

        start = {"format": TRACE_FORMAT, "pid": os.getpid(), "argv": list(argv)}
        if run_id is not None:
            start["run_id"] = run_id
        if command is not None:
            start["command"] = command
        self.event("trace_start", **start)

    def _now(self) -> float:
        return round(self._clock() - self._t0, 6)

    def event(self, ev: str, **fields) -> None:
        """Journal one point event (a no-op after :meth:`close`)."""
        if self.closed:
            return
        fields["ev"] = ev
        fields["t"] = self._now()
        line = json.dumps(fields, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()
            self.events_written += 1

    @contextmanager
    def span(self, name: str, **fields):
        """A ``span_begin``/``span_end`` pair around a code region.

        Yields a dict; anything the caller puts in it before the block
        exits rides on the ``span_end`` event (e.g. how many points a
        declare phase staged).
        """
        with self._lock:
            self._sid += 1
            sid = self._sid
        started = self._clock()
        self.event("span_begin", name=name, sid=sid, **fields)
        extra: dict = {}
        try:
            yield extra
        finally:
            self.event(
                "span_end",
                name=name,
                sid=sid,
                dur=round(self._clock() - started, 6),
                **{**fields, **extra},
            )

    def close(self, status: str = "complete") -> None:
        if self.closed:
            return
        self.event("trace_end", status=status)
        self.closed = True
        self._handle.close()


class NullTraceWriter:
    """The off switch: every hook is a no-op, ``enabled`` is ``False``.

    Instrumentation sites guard their event construction with
    ``if trace.enabled:`` so a disabled run pays one attribute check —
    the null methods exist for unguarded (cold) call sites.
    """

    enabled = False
    closed = True
    path = None
    events_written = 0

    def event(self, ev: str, **fields) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields):
        yield {}

    def close(self, status: str = "complete") -> None:
        pass


#: The shared null writer (stateless, so one instance serves everyone).
NULL_TRACE = NullTraceWriter()


def iter_trace(path: str | Path, validate: bool = True):
    """Yield the events of a trace file, optionally schema-validating."""
    path = Path(path)
    try:
        handle = open(path)
    except OSError as exc:
        raise ReproError(f"no trace at {path}: {exc}") from None
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: invalid JSON: {exc}") from None
            if validate:
                try:
                    validate_event(event)
                except ReproError as exc:
                    raise ReproError(f"{path}:{lineno}: {exc}") from None
            yield event


def load_trace(path: str | Path, validate: bool = True) -> list[dict]:
    """Every event of a trace file as a list (see :func:`iter_trace`)."""
    return list(iter_trace(path, validate=validate))


def comparable_events(events, drop: frozenset = ENVIRONMENT_EVENTS) -> list[dict]:
    """Reduce events to their executor-independent core.

    Drops the environment-describing event types and strips the
    volatile fields; the result's *multiset* is invariant across
    serial/pooled/sharded execution of the same command (the emission
    order still follows completion order, so compare sorted).
    """
    out = []
    for event in events:
        if event.get("ev") in drop:
            continue
        out.append({k: v for k, v in event.items() if k not in VOLATILE_FIELDS})
    return out
