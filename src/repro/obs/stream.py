"""Torn-line-free progress output: whole-line writes under one lock.

``print(f"...", file=stream)`` issues *two* stream writes (the text,
then the newline), and under ``--jobs`` the worker processes inherit
the same stderr pipe — a worker's ``[fault]`` diagnostic landing
between those two writes tears the progress line in half.  The
:class:`LineStream` wrapper closes both gaps: each line is formatted
up front and pushed in a **single** ``write()`` call (atomic on a
pipe for sane line lengths), and an internal lock serialises callers
within the process, so interleaved output can only ever happen *at*
line boundaries.
"""

from __future__ import annotations

import sys
import threading

__all__ = ["LineStream"]


class LineStream:
    """Serialise whole-line writes to an underlying text stream."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def line(self, text: str) -> None:
        """Write ``text`` plus newline as one locked, flushed write."""
        with self._lock:
            self.stream.write(text + "\n")
            self.stream.flush()
