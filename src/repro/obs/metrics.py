"""A labeled metrics registry shared by every layer of one invocation.

The pipeline, scheduler, caches and adaptive engine used to keep their
own private tallies (``points_computed`` attributes, ``Counter`` dicts
inside the progress printer, hand-rolled ``reused``/``recomputed``
ints on the run manifest).  This module replaces them with one
:class:`MetricsRegistry` of labeled counters, gauges and histograms:

* every layer increments the same registry, so the ``--progress``
  printer, the ``--dry-run`` report, the resume summary and the
  manifest snapshot all read one source of truth instead of each
  re-counting events;
* :meth:`MetricsRegistry.snapshot` serialises the whole registry as a
  stable, sorted JSON document (``repro-metrics/1``) — journaled into
  the run manifest at exit and into the trace as its final event, and
  reused verbatim by ``cache stats --format json``.

Metrics are cheap (a dict lookup and an integer add per event — the
events are per *point*, never per Monte-Carlo sample), so the registry
is always on; only the trace writer has an off switch.
"""

from __future__ import annotations

from ..exceptions import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_SCHEMA",
]

#: Schema tag of :meth:`MetricsRegistry.snapshot` payloads (bumped on
#: incompatible changes, mirroring the manifest format discipline).
METRICS_SCHEMA = "repro-metrics/1"


class Counter:
    """A monotonically increasing count (events, points, retries)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_value(self):
        return self.value


class Gauge:
    """A point-in-time level (pending points, in-flight high-water)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def update_max(self, value) -> None:
        """High-water semantics: keep the largest observed level."""
        if value > self.value:
            self.value = value

    def to_value(self):
        return self.value


class Histogram:
    """Summary statistics of observed samples (job wall times).

    Full per-sample retention belongs in the trace; the registry keeps
    the count/total/min/max summary, which is what the manifest
    snapshot and the utilization report need.
    """

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_value(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create store of labeled metrics, keyed by (name, labels).

    Labels are keyword arguments with string values; one metric name
    must keep one kind (asking for ``counter("x")`` after ``gauge("x")``
    is a programming error and raises).  Iteration order is insertion
    order — the dry-run report relies on it to keep first-declaration
    study ordering — while :meth:`snapshot` sorts for stability.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def _get_or_create(self, cls, name: str, labels: dict):
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def get(self, name: str, **labels):
        """The metric registered under (name, labels), or ``None``."""
        return self._metrics.get(self._key(name, labels))

    def value(self, name: str, **labels):
        """The metric's current value, or ``0`` when never registered."""
        metric = self._metrics.get(self._key(name, labels))
        return 0 if metric is None else metric.value

    def labeled(self, name: str) -> list[tuple[dict, object]]:
        """Every (labels, metric) registered under ``name``, insertion order."""
        return [
            (dict(key[1]), metric)
            for key, metric in self._metrics.items()
            if key[0] == name
        ]

    def clear(self, name: str) -> None:
        """Drop every metric registered under ``name`` (preview refresh)."""
        for key in [k for k in self._metrics if k[0] == name]:
            del self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """The whole registry as a stable, JSON-serialisable document."""
        rows = [
            {
                "name": key[0],
                "labels": dict(key[1]),
                "type": metric.kind,
                "value": metric.to_value(),
            }
            for key, metric in sorted(self._metrics.items())
        ]
        return {"schema": METRICS_SCHEMA, "metrics": rows}
