"""Observability: structured tracing, metrics, and trace analysis.

One invocation, one :class:`~repro.obs.metrics.MetricsRegistry`
(always on — the progress printer, dry-run report, resume summary and
manifest snapshot all read it) and one
:class:`~repro.obs.trace.TraceWriter` (``--trace``; the
:data:`~repro.obs.trace.NULL_TRACE` null writer otherwise, so hot
paths pay a single ``enabled`` check).  :mod:`repro.obs.report` turns
a written trace back into per-phase wall-time, scheduler-occupancy
and worker-utilisation answers for the ``trace`` CLI.
"""

from .metrics import METRICS_SCHEMA, Counter, Gauge, Histogram, MetricsRegistry
from .stream import LineStream
from .trace import (
    ENVIRONMENT_EVENTS,
    EVENT_FIELDS,
    NULL_TRACE,
    TRACE_FORMAT,
    TRACE_NAME,
    VOLATILE_FIELDS,
    NullTraceWriter,
    TraceWriter,
    comparable_events,
    iter_trace,
    load_trace,
    validate_event,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_SCHEMA",
    "LineStream",
    "TraceWriter",
    "NullTraceWriter",
    "NULL_TRACE",
    "TRACE_FORMAT",
    "TRACE_NAME",
    "EVENT_FIELDS",
    "VOLATILE_FIELDS",
    "ENVIRONMENT_EVENTS",
    "validate_event",
    "iter_trace",
    "load_trace",
    "comparable_events",
]
