"""Trace analysis: the engine behind ``repro-experiments trace``.

:func:`summarize` folds a run's event stream (see
:mod:`repro.obs.trace`) into one JSON-serialisable document answering
the questions a 40-minute sweep raises afterwards:

* **phases** — wall time per span name (declare / execute), so "where
  did the time go" has a number per layer;
* **scheduler** — integrated in-flight time over the scheduling
  window: mean in-flight depth, occupancy against the configured
  window, high-water mark, retry and inline-fallback counts;
* **workers** — per-worker job counts and busy seconds (utilisation
  against the execute window) from the timed job envelopes;
* **studies / fates** — per-study computed/served/skipped tallies
  (per declaration, matching the metrics registry) and unique-key
  fates (last event wins, matching the run manifest exactly);
* **critical path** — per study, first declare to last delivered
  point: the studies that bounded the run's wall clock.

``render_summary_text`` formats that document for terminals;
``render_timeline`` prints the raw event stream with relative
timestamps for spelunking.
"""

from __future__ import annotations

from collections import defaultdict

from .trace import VOLATILE_FIELDS

__all__ = ["summarize", "render_summary_text", "render_timeline", "SUMMARY_SCHEMA"]

#: Schema tag of :func:`summarize` payloads.
SUMMARY_SCHEMA = "repro-trace-summary/1"


def _job_intervals(events):
    """(submit_t, complete_t, dur, worker) per completed job."""
    submitted: dict[str, list[float]] = defaultdict(list)
    intervals = []
    for event in events:
        ev = event["ev"]
        if ev == "job_submit":
            submitted[event["job"]].append(event["t"])
        elif ev in ("job_complete", "job_inline"):
            job = event["job"]
            start = submitted[job].pop(0) if submitted[job] else event["t"]
            intervals.append(
                (
                    start,
                    event["t"],
                    event.get("dur"),
                    event.get("worker", "inline" if ev == "job_inline" else None),
                )
            )
    return intervals


def _mean_inflight(intervals) -> tuple[float, float]:
    """(span_seconds, integrated in-flight seconds) over the schedule."""
    if not intervals:
        return 0.0, 0.0
    start = min(i[0] for i in intervals)
    end = max(i[1] for i in intervals)
    busy = sum(i[1] - i[0] for i in intervals)
    return max(end - start, 0.0), busy


def summarize(events: list[dict]) -> dict:
    """Fold one trace into the summary document (see module docstring)."""
    wall = max((e["t"] for e in events), default=0.0)

    # Per-phase wall time from span pairs (matched on sid).
    begins: dict[int, dict] = {}
    phases: dict[str, dict] = {}
    for event in events:
        if event["ev"] == "span_begin":
            begins[event["sid"]] = event
        elif event["ev"] == "span_end":
            begins.pop(event["sid"], None)
            entry = phases.setdefault(event["name"], {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] = round(entry["seconds"] + event["dur"], 6)

    # Per-study declaration tallies and unique-key fates (last wins).
    studies: dict[str, dict] = {}
    fate_by_key: dict[str, str] = {}
    study_window: dict[str, list] = {}  # study -> [first_t, last_t]
    for event in events:
        ev = event["ev"]
        if ev == "point":
            study = event["study"] if event["study"] is not None else "(ungrouped)"
            entry = studies.setdefault(
                study, {"computed": 0, "served": 0, "skipped": 0, "points": 0}
            )
            entry[event["status"]] += 1
            entry["points"] += 1
            if event["key"] is not None:
                fate_by_key[event["key"]] = event["status"]
            window = study_window.setdefault(study, [event["t"], event["t"]])
            window[1] = event["t"]
        elif ev == "span_begin" and event.get("name") == "declare":
            study = event.get("study")
            if study is not None and study not in study_window:
                study_window[study] = [event["t"], event["t"]]
    fates = {"computed": 0, "served": 0, "skipped": 0}
    for fate in fate_by_key.values():
        fates[fate] = fates.get(fate, 0) + 1

    # Scheduler occupancy from the submit/complete interval set.
    intervals = _job_intervals(events)
    span, busy = _mean_inflight(intervals)
    max_inflight = max(
        (e["max_inflight"] for e in events if e["ev"] == "schedule"), default=None
    )
    retries = sum(1 for e in events if e["ev"] == "job_retry")
    inline = sum(1 for e in events if e["ev"] == "job_inline")
    mean_inflight = busy / span if span > 0 else 0.0
    scheduler = {
        "jobs": len(intervals),
        "retries": retries,
        "inline_fallbacks": inline,
        "max_inflight": max_inflight,
        "span_seconds": round(span, 6),
        "busy_seconds": round(busy, 6),
        "mean_inflight": round(mean_inflight, 3),
        "occupancy": (
            round(mean_inflight / max_inflight, 3) if max_inflight else None
        ),
    }

    # Worker utilisation from the timed job envelopes.
    workers: dict[str, dict] = {}
    for _, _, dur, worker in intervals:
        if worker is None:
            continue
        entry = workers.setdefault(str(worker), {"jobs": 0, "busy_seconds": 0.0})
        entry["jobs"] += 1
        if dur is not None:
            entry["busy_seconds"] = round(entry["busy_seconds"] + dur, 6)
    for entry in workers.values():
        entry["utilization"] = (
            round(entry["busy_seconds"] / span, 3) if span > 0 else None
        )

    # Cache / analytic-memo traffic.
    cache = {
        "hit": sum(1 for e in events if e["ev"] == "cache_hit"),
        "miss": sum(1 for e in events if e["ev"] == "cache_miss"),
        "store": sum(1 for e in events if e["ev"] == "cache_store"),
    }
    lookups = cache["hit"] + cache["miss"]
    cache["hit_rate"] = round(cache["hit"] / lookups, 4) if lookups else None
    analytic = {"evaluated": 0, "served": 0}
    for event in events:
        if event["ev"] == "analytic_batch":
            analytic["evaluated"] += event["evaluated"]
            analytic["served"] += event["served"]
    total = analytic["evaluated"] + analytic["served"]
    analytic["hit_rate"] = round(analytic["served"] / total, 4) if total else None

    # Adaptive waves.
    adaptive: dict[str, dict] = {}
    for event in events:
        if event["ev"] == "wave_stage":
            entry = adaptive.setdefault(
                event["family"], {"waves": 0, "rows_converged": 0}
            )
            entry["waves"] += 1
        elif event["ev"] == "wave_converge":
            entry = adaptive.setdefault(
                event["family"], {"waves": 0, "rows_converged": 0}
            )
            entry["rows_converged"] = event["converged"]

    # Critical path: studies ranked by declare-to-last-point extent.
    critical = sorted(
        (
            {
                "study": study,
                "start": round(window[0], 6),
                "end": round(window[1], 6),
                "seconds": round(window[1] - window[0], 6),
            }
            for study, window in study_window.items()
        ),
        key=lambda row: -row["seconds"],
    )

    return {
        "schema": SUMMARY_SCHEMA,
        "events": len(events),
        "wall_seconds": round(wall, 6),
        "phases": phases,
        "studies": studies,
        "fates": fates,
        "scheduler": scheduler,
        "workers": workers,
        "cache": cache,
        "analytic": analytic,
        "adaptive": adaptive,
        "critical_path": critical[:10],
    }


def _table(lines: list[str], header: tuple, rows: list[tuple]) -> None:
    """Append a small aligned table to ``lines`` (no external deps)."""
    cells = [tuple(str(c) for c in row) for row in [header, *rows]]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    for n, row in enumerate(cells):
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if n == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))


def render_summary_text(summary: dict) -> list[str]:
    """The summary document as terminal lines (``--format text``)."""
    lines = [
        f"[trace] {summary['events']} events over "
        f"{summary['wall_seconds']:.3f}s wall"
    ]
    if summary["phases"]:
        lines.append("[phases]")
        _table(
            lines,
            ("phase", "spans", "seconds"),
            [
                (name, entry["count"], f"{entry['seconds']:.3f}")
                for name, entry in summary["phases"].items()
            ],
        )
    sched = summary["scheduler"]
    occupancy = (
        f"{sched['occupancy']:.0%} of window {sched['max_inflight']}"
        if sched["occupancy"] is not None
        else "n/a"
    )
    lines.append(
        f"[scheduler] {sched['jobs']} jobs over {sched['span_seconds']:.3f}s, "
        f"mean in-flight {sched['mean_inflight']:.2f} (occupancy {occupancy}), "
        f"{sched['retries']} retries, {sched['inline_fallbacks']} inline fallbacks"
    )
    if summary["workers"]:
        lines.append("[workers]")
        _table(
            lines,
            ("worker", "jobs", "busy (s)", "utilization"),
            [
                (
                    worker,
                    entry["jobs"],
                    f"{entry['busy_seconds']:.3f}",
                    f"{entry['utilization']:.0%}"
                    if entry["utilization"] is not None
                    else "n/a",
                )
                for worker, entry in sorted(summary["workers"].items())
            ],
        )
    if summary["studies"]:
        lines.append("[studies]")
        _table(
            lines,
            ("study", "points", "computed", "served", "skipped"),
            [
                (
                    study,
                    entry["points"],
                    entry["computed"],
                    entry["served"],
                    entry["skipped"],
                )
                for study, entry in summary["studies"].items()
            ],
        )
    fates = summary["fates"]
    lines.append(
        f"[fates] {sum(fates.values())} unique keys: "
        f"{fates['computed']} computed, {fates['served']} served, "
        f"{fates['skipped']} skipped"
    )
    cache = summary["cache"]
    rate = f"{cache['hit_rate']:.2%}" if cache["hit_rate"] is not None else "n/a"
    lines.append(
        f"[cache] {cache['hit']} hits, {cache['miss']} misses, "
        f"{cache['store']} stores (hit rate {rate})"
    )
    analytic = summary["analytic"]
    rate = (
        f"{analytic['hit_rate']:.2%}" if analytic["hit_rate"] is not None else "n/a"
    )
    lines.append(
        f"[analytic] {analytic['evaluated']} evaluated, "
        f"{analytic['served']} memo-served (hit rate {rate})"
    )
    for family, entry in summary["adaptive"].items():
        lines.append(
            f"[adaptive] {family}: {entry['waves']} waves, "
            f"{entry['rows_converged']} rows converged"
        )
    if summary["critical_path"]:
        lines.append("[critical-path]")
        _table(
            lines,
            ("study", "start (s)", "end (s)", "extent (s)"),
            [
                (
                    row["study"],
                    f"{row['start']:.3f}",
                    f"{row['end']:.3f}",
                    f"{row['seconds']:.3f}",
                )
                for row in summary["critical_path"]
            ],
        )
    return lines


def render_timeline(events: list[dict], limit: int | None = None) -> list[str]:
    """Raw events as ``t  ev  k=v ...`` lines (``trace timeline``)."""
    shown = events if limit is None else events[:limit]
    lines = []
    for event in shown:
        detail = " ".join(
            f"{k}={event[k]}"
            for k in sorted(event)
            if k not in VOLATILE_FIELDS and k != "ev"
        )
        lines.append(f"{event['t']:>12.6f}  {event['ev']:<15} {detail}".rstrip())
    if limit is not None and len(events) > limit:
        lines.append(f"... {len(events) - limit} more events")
    return lines
