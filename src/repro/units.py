"""Time-unit helpers and human-readable formatting.

The paper mixes units freely: platform MTBFs are quoted in years, downtimes
in hours, checkpoint costs in seconds, and error rates in 1/seconds.  All
library internals work in **seconds** (and 1/seconds for rates); this module
provides the conversion constants and a few formatting helpers used by the
experiment reports.
"""

from __future__ import annotations

import math

__all__ = [
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_YEAR",
    "minutes",
    "hours",
    "days",
    "years",
    "to_hours",
    "to_days",
    "to_years",
    "mtbf_to_rate",
    "rate_to_mtbf",
    "format_duration",
    "format_rate",
    "format_si",
]

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
#: Julian year (365.25 days), the convention used for "a one-century MTBF".
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


def minutes(x: float) -> float:
    """Convert *x* minutes to seconds."""
    return x * SECONDS_PER_MINUTE


def hours(x: float) -> float:
    """Convert *x* hours to seconds."""
    return x * SECONDS_PER_HOUR


def days(x: float) -> float:
    """Convert *x* days to seconds."""
    return x * SECONDS_PER_DAY


def years(x: float) -> float:
    """Convert *x* Julian years to seconds."""
    return x * SECONDS_PER_YEAR


def to_hours(seconds: float) -> float:
    """Convert *seconds* to hours."""
    return seconds / SECONDS_PER_HOUR


def to_days(seconds: float) -> float:
    """Convert *seconds* to days."""
    return seconds / SECONDS_PER_DAY


def to_years(seconds: float) -> float:
    """Convert *seconds* to Julian years."""
    return seconds / SECONDS_PER_YEAR


def mtbf_to_rate(mtbf_seconds: float) -> float:
    """Error rate ``lambda = 1/mu`` for an MTBF ``mu`` given in seconds."""
    if mtbf_seconds <= 0.0:
        raise ValueError(f"MTBF must be positive, got {mtbf_seconds!r}")
    return 1.0 / mtbf_seconds


def rate_to_mtbf(rate: float) -> float:
    """MTBF ``mu = 1/lambda`` in seconds for an error rate given in 1/s."""
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    return 1.0 / rate


def format_duration(seconds: float) -> str:
    """Render a duration with the most natural unit.

    >>> format_duration(90)
    '90.0 s'
    >>> format_duration(7200)
    '2.00 h'
    """
    if not math.isfinite(seconds):
        return str(seconds)
    a = abs(seconds)
    if a < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if a < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    if a < 600.0:
        return f"{seconds:.1f} s"
    if a < 2.0 * SECONDS_PER_HOUR:
        return f"{seconds / SECONDS_PER_MINUTE:.1f} min"
    if a < 2.0 * SECONDS_PER_DAY:
        return f"{seconds / SECONDS_PER_HOUR:.2f} h"
    if a < 2.0 * SECONDS_PER_YEAR:
        return f"{seconds / SECONDS_PER_DAY:.2f} d"
    return f"{seconds / SECONDS_PER_YEAR:.2f} y"


def format_rate(rate: float) -> str:
    """Render an error rate together with its MTBF.

    >>> format_rate(1e-8)
    '1e-08 /s (MTBF 3.17 y)'
    """
    if rate <= 0.0:
        return f"{rate:g} /s"
    return f"{rate:g} /s (MTBF {format_duration(1.0 / rate)})"


def format_si(value: float, digits: int = 3) -> str:
    """Format a number with an SI suffix (k, M, G, ...).

    Used by reports for large processor counts, e.g. ``1.2M`` processors.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:.{digits}g}"
    suffixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]
    a = abs(value)
    for factor, suffix in suffixes:
        if a >= factor:
            return f"{value / factor:.{digits}g}{suffix}"
    return f"{value:.{digits}g}"
