"""Platform catalog (Table II) and resilience scenarios (Table III)."""

from .catalog import (
    DEFAULT_ALPHA,
    DEFAULT_DOWNTIME,
    PLATFORM_NAMES,
    PLATFORMS,
    Platform,
    get_platform,
)
from .scenarios import (
    SCENARIO_IDS,
    SCENARIOS,
    Scenario,
    build_model,
    get_scenario,
    scenario_costs,
)

__all__ = [
    "Platform",
    "PLATFORMS",
    "PLATFORM_NAMES",
    "get_platform",
    "DEFAULT_DOWNTIME",
    "DEFAULT_ALPHA",
    "Scenario",
    "SCENARIOS",
    "SCENARIO_IDS",
    "get_scenario",
    "scenario_costs",
    "build_model",
]
