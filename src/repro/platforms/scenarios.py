"""Resilience scenarios — Table III of the paper.

Table II gives one measured checkpoint cost ``C_ref`` and verification
cost ``V_ref`` per platform, at a reference processor count ``P_ref``.
To study how cost *scalability* shapes the optimal pattern, the paper
projects these measurements onto six scenarios:

======== =========== ===========
Scenario C_P, R_P    V_P
======== =========== ===========
1        cP          v
2        cP          u/P
3        a           v
4        a           u/P
5        b/P         v
6        b/P         u/P
======== =========== ===========

The coefficient of each form is fitted so the projected cost equals the
measured one at ``P_ref`` (e.g. scenario 1: ``c = C_ref / P_ref``), and
the form then extrapolates to any ``P``.  Scenario/regime mapping for
the first-order analysis (Section IV-A):

* scenarios 1-2 → Theorem 2 (``C_P = cP``, LINEAR regime);
* scenarios 3-5 → Theorem 3 (``C_P + V_P = d + o(1)``, CONSTANT regime
  — note scenario 5's constant part is only the verification ``v``);
* scenario 6  → case 3 (``C_P + V_P = h/P``, DECAYING regime, numerical
  optimisation only).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.costs import CheckpointCost, ResilienceCosts, VerificationCost
from ..core.pattern import PatternModel
from ..core.speedup import AmdahlSpeedup
from ..exceptions import UnknownScenarioError
from .catalog import DEFAULT_ALPHA, DEFAULT_DOWNTIME, Platform, get_platform

__all__ = [
    "Scenario",
    "SCENARIOS",
    "SCENARIO_IDS",
    "get_scenario",
    "scenario_costs",
    "build_model",
]


@dataclass(frozen=True)
class Scenario:
    """One column of Table III.

    ``checkpoint_form`` and ``verification_form`` name which coefficient
    of the general models ``a + b/P + cP`` / ``v + u/P`` is active.
    """

    id: int
    checkpoint_form: str  # "cP" | "a" | "b/P"
    verification_form: str  # "v" | "u/P"

    def checkpoint_model(self, c_ref: float, p_ref: float) -> CheckpointCost:
        """Fit the checkpoint form through the measured ``(P_ref, C_ref)``."""
        if self.checkpoint_form == "cP":
            return CheckpointCost.linear(c_ref / p_ref)
        if self.checkpoint_form == "a":
            return CheckpointCost.constant(c_ref)
        if self.checkpoint_form == "b/P":
            return CheckpointCost.scaling(c_ref * p_ref)
        raise UnknownScenarioError(f"bad checkpoint form {self.checkpoint_form!r}")

    def verification_model(self, v_ref: float, p_ref: float) -> VerificationCost:
        """Fit the verification form through the measured ``(P_ref, V_ref)``."""
        if self.verification_form == "v":
            return VerificationCost.constant(v_ref)
        if self.verification_form == "u/P":
            return VerificationCost.scaling(v_ref * p_ref)
        raise UnknownScenarioError(f"bad verification form {self.verification_form!r}")

    @property
    def label(self) -> str:
        return f"C={self.checkpoint_form}, V={self.verification_form}"


#: Table III.
SCENARIOS: dict[int, Scenario] = {
    1: Scenario(1, "cP", "v"),
    2: Scenario(2, "cP", "u/P"),
    3: Scenario(3, "a", "v"),
    4: Scenario(4, "a", "u/P"),
    5: Scenario(5, "b/P", "v"),
    6: Scenario(6, "b/P", "u/P"),
}

#: Canonical ordering used by the figures.
SCENARIO_IDS: tuple[int, ...] = (1, 2, 3, 4, 5, 6)


def get_scenario(scenario_id: int) -> Scenario:
    """Look up one of the six scenarios of Table III."""
    try:
        return SCENARIOS[int(scenario_id)]
    except (KeyError, ValueError) as exc:
        raise UnknownScenarioError(
            f"unknown scenario {scenario_id!r}; valid ids: {SCENARIO_IDS}"
        ) from exc


def scenario_costs(
    platform: Platform | str,
    scenario_id: int,
    downtime: float = DEFAULT_DOWNTIME,
    checkpoint_cost: float | None = None,
    verification_cost: float | None = None,
) -> ResilienceCosts:
    """Project a platform's measured costs onto a Table-III scenario.

    The returned bundle evaluates to the measured ``C_ref``/``V_ref`` at
    the platform's reference processor count and extrapolates with the
    scenario's scalability form elsewhere.  ``checkpoint_cost`` /
    ``verification_cost`` override the measured reference values (the
    scenario-lab perturbation sweeps jitter them around the catalog
    measurements); the scenario form is fitted through the override at
    the same reference processor count.

    >>> costs = scenario_costs("Hera", 1)
    >>> round(costs.checkpoint_cost(512), 6)   # reproduces Table II
    300.0
    """
    if isinstance(platform, str):
        platform = get_platform(platform)
    scenario = get_scenario(scenario_id)
    p_ref = float(platform.reference_processors)
    c_ref = platform.checkpoint_cost if checkpoint_cost is None else float(checkpoint_cost)
    v_ref = (
        platform.verification_cost
        if verification_cost is None
        else float(verification_cost)
    )
    return ResilienceCosts(
        checkpoint=scenario.checkpoint_model(c_ref, p_ref),
        verification=scenario.verification_model(v_ref, p_ref),
        downtime=downtime,
    )


def build_model(
    platform: Platform | str,
    scenario_id: int,
    alpha: float = DEFAULT_ALPHA,
    downtime: float = DEFAULT_DOWNTIME,
    lambda_ind: float | None = None,
    checkpoint_cost: float | None = None,
    verification_cost: float | None = None,
) -> PatternModel:
    """Assemble the full :class:`PatternModel` for a platform + scenario.

    This is the entry point every experiment module uses:

    >>> model = build_model("Hera", 1)
    >>> model.costs.regime.value
    'linear'

    Parameters
    ----------
    platform:
        Platform object or name from Table II.
    scenario_id:
        Scenario 1-6 from Table III.
    alpha:
        Sequential fraction (default 0.1, Section IV-A).
    downtime:
        Downtime D in seconds (default one hour).
    lambda_ind:
        Optional override of the per-processor error rate (sweeps).
    checkpoint_cost / verification_cost:
        Optional overrides of the measured reference costs at the
        platform's reference processor count (perturbation sweeps).
    """
    if isinstance(platform, str):
        platform = get_platform(platform)
    return PatternModel(
        errors=platform.error_model(lambda_ind),
        costs=scenario_costs(
            platform,
            scenario_id,
            downtime,
            checkpoint_cost=checkpoint_cost,
            verification_cost=verification_cost,
        ),
        speedup=AmdahlSpeedup(alpha),
    )
