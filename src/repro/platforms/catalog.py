"""Platform parameter catalog — Table II of the paper.

The paper evaluates on four real platforms whose failure and
checkpointing characteristics were measured for the Scalable
Checkpoint/Restart (SCR) library (Moody et al., SC'10 [16]):

========== ========== ======= ======= ===== ======= =======
Platform   lambda_ind f       s       P     C_P (s) V_P (s)
========== ========== ======= ======= ===== ======= =======
Hera       1.69e-8    0.2188  0.7812  512   300     15.4
Atlas      1.62e-8    0.0625  0.9375  1024  439     9.1
Coastal    2.34e-9    0.1667  0.8333  2048  1051    4.5
CoastalSSD 2.34e-9    0.1667  0.8333  2048  2500    180
========== ========== ======= ======= ===== ======= =======

``C_P``/``V_P`` are the measured checkpoint and verification times at
the listed *reference* processor count; :mod:`repro.platforms.scenarios`
projects them to other processor counts under the six resilience
scenarios of Table III.  Following the paper, each verification cost is
the cost of an in-memory checkpoint (the full memory footprint must be
inspected to detect silent errors), the default downtime is one hour
(repair-based restoration) and the default sequential fraction is 0.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ErrorModel
from ..exceptions import UnknownPlatformError
from ..units import SECONDS_PER_HOUR

__all__ = [
    "Platform",
    "PLATFORMS",
    "PLATFORM_NAMES",
    "get_platform",
    "DEFAULT_DOWNTIME",
    "DEFAULT_ALPHA",
]

#: Default downtime D (repair-based restoration, Section IV-A).
DEFAULT_DOWNTIME: float = SECONDS_PER_HOUR
#: Default sequential fraction alpha (Section IV-A).
DEFAULT_ALPHA: float = 0.1


@dataclass(frozen=True)
class Platform:
    """One row of Table II.

    Attributes
    ----------
    name:
        Platform identifier.
    lambda_ind:
        Individual-processor error rate (both error types), 1/s.
    fail_stop_fraction:
        Fraction ``f`` of errors that are fail-stop.
    reference_processors:
        Processor count ``P`` at which the costs were measured (each
        processor is a dual quad-core node in the SCR study).
    checkpoint_cost:
        Measured checkpoint time ``C_P`` at the reference count, seconds.
    verification_cost:
        Measured verification time ``V_P`` at the reference count,
        seconds (set to an in-memory checkpoint cost, following [2]).
    """

    name: str
    lambda_ind: float
    fail_stop_fraction: float
    reference_processors: int
    checkpoint_cost: float
    verification_cost: float

    @property
    def silent_fraction(self) -> float:
        """Fraction ``s = 1 - f`` of silent errors."""
        return 1.0 - self.fail_stop_fraction

    def error_model(self, lambda_ind: float | None = None) -> ErrorModel:
        """The platform's :class:`~repro.core.errors.ErrorModel`.

        ``lambda_ind`` overrides the catalog rate (Figure 5/6 sweeps).
        """
        return ErrorModel(
            lambda_ind=self.lambda_ind if lambda_ind is None else lambda_ind,
            fail_stop_fraction=self.fail_stop_fraction,
        )


#: Table II, keyed by canonical name.
PLATFORMS: dict[str, Platform] = {
    "Hera": Platform(
        name="Hera",
        lambda_ind=1.69e-8,
        fail_stop_fraction=0.2188,
        reference_processors=512,
        checkpoint_cost=300.0,
        verification_cost=15.4,
    ),
    "Atlas": Platform(
        name="Atlas",
        lambda_ind=1.62e-8,
        fail_stop_fraction=0.0625,
        reference_processors=1024,
        checkpoint_cost=439.0,
        verification_cost=9.1,
    ),
    "Coastal": Platform(
        name="Coastal",
        lambda_ind=2.34e-9,
        fail_stop_fraction=0.1667,
        reference_processors=2048,
        checkpoint_cost=1051.0,
        verification_cost=4.5,
    ),
    "CoastalSSD": Platform(
        name="CoastalSSD",
        lambda_ind=2.34e-9,
        fail_stop_fraction=0.1667,
        reference_processors=2048,
        checkpoint_cost=2500.0,
        verification_cost=180.0,
    ),
}

#: Canonical platform order used by the figures.
PLATFORM_NAMES: tuple[str, ...] = ("Hera", "Atlas", "Coastal", "CoastalSSD")

#: Accepted aliases (case-insensitive lookup plus the paper's spelling).
_ALIASES: dict[str, str] = {
    "hera": "Hera",
    "atlas": "Atlas",
    "coastal": "Coastal",
    "coastalssd": "CoastalSSD",
    "coastal ssd": "CoastalSSD",
    "coastal-ssd": "CoastalSSD",
    "coastal_ssd": "CoastalSSD",
}


def get_platform(name: str) -> Platform:
    """Look up a platform by (case-insensitive) name.

    >>> get_platform("hera").reference_processors
    512
    """
    key = _ALIASES.get(name.strip().lower())
    if key is None:
        raise UnknownPlatformError(
            f"unknown platform {name!r}; available: {', '.join(PLATFORM_NAMES)}"
        )
    return PLATFORMS[key]
