"""Version information for :mod:`repro`."""

__version__ = "1.9.0"
