"""Version information for :mod:`repro`."""

__version__ = "1.6.0"
