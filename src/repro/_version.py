"""Version information for :mod:`repro`."""

__version__ = "1.8.0"
