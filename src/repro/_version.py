"""Version information for :mod:`repro`."""

__version__ = "1.7.0"
