"""Classical checkpoint-period baselines: Young (1974) and Daly (2006).

The paper's Theorem 1 generalises these formulas to two error sources
and verified checkpoints; this module provides the originals both as
baselines for the benchmark harness and as sanity anchors for tests
(Theorem 1 must reduce to Young's formula when all errors are fail-stop
and verification is free).

With a *platform* MTBF :math:`\\mu` (i.e. :math:`\\mu_{ind}/P`) and
checkpoint cost ``C``:

* **Young**: :math:`T_Y = \\sqrt{2 \\mu C}`;
* **Daly** (higher order):
  :math:`T_D = \\sqrt{2 \\mu C}\\,[1 + \\tfrac13\\sqrt{C/(2\\mu)}
  + \\tfrac19 (C/(2\\mu))] - C` for :math:`C < 2\\mu`, else
  :math:`T_D = \\mu`.

Note the convention difference: Young/Daly count the period as
*work + checkpoint* or work only depending on the presentation; we use
the work-only convention matching the paper's ``T`` (useful computation
between checkpoints).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from .costs import ResilienceCosts
from .errors import ErrorModel

__all__ = [
    "young_period",
    "daly_period",
    "young_period_for",
    "daly_period_for",
    "generalized_period",
]


def _validate(mtbf, checkpoint) -> None:
    if np.any(np.asarray(mtbf, dtype=float) <= 0.0):
        raise InvalidParameterError(f"platform MTBF must be positive, got {mtbf!r}")
    if np.any(np.asarray(checkpoint, dtype=float) < 0.0):
        raise InvalidParameterError(f"checkpoint cost must be >= 0, got {checkpoint!r}")


def young_period(platform_mtbf, checkpoint):
    """Young's first-order optimal period :math:`\\sqrt{2 \\mu C}`.

    Vectorised over both arguments.

    >>> young_period(3600.0, 50.0)
    600.0
    """
    _validate(platform_mtbf, checkpoint)
    result = np.sqrt(2.0 * np.asarray(platform_mtbf, dtype=float) * np.asarray(checkpoint))
    return float(result) if (np.ndim(platform_mtbf) == 0 and np.ndim(checkpoint) == 0) else result


def daly_period(platform_mtbf, checkpoint):
    """Daly's higher-order optimal period (Future Gen. Comp. Syst. 2006).

    .. math::

        T_D = \\begin{cases}
          \\sqrt{2\\mu C}\\big[1 + \\tfrac13\\sqrt{\\tfrac{C}{2\\mu}}
          + \\tfrac19\\tfrac{C}{2\\mu}\\big] - C & C < 2\\mu \\\\
          \\mu & C \\ge 2\\mu
        \\end{cases}

    More accurate than Young's formula when ``C`` is not negligible
    relative to the MTBF.  Vectorised.
    """
    _validate(platform_mtbf, checkpoint)
    mu = np.asarray(platform_mtbf, dtype=float)
    C = np.asarray(checkpoint, dtype=float)
    ratio = C / (2.0 * mu)
    series = np.sqrt(2.0 * mu * C) * (1.0 + np.sqrt(ratio) / 3.0 + ratio / 9.0) - C
    result = np.where(C < 2.0 * mu, series, mu)
    return float(result) if (np.ndim(platform_mtbf) == 0 and np.ndim(checkpoint) == 0) else result


def young_period_for(P, errors: ErrorModel, costs: ResilienceCosts):
    """Young's period using only the *fail-stop* platform rate.

    This is the period a practitioner unaware of silent errors would
    deploy: :math:`\\sqrt{2 C_P / \\lambda^f_P}`.  Benchmarks compare its
    overhead against Theorem 1 to quantify the price of ignoring SDCs.
    """
    lam_f = errors.fail_stop_rate(P)
    if np.any(np.asarray(lam_f) <= 0.0):
        raise InvalidParameterError("Young's formula needs a positive fail-stop rate")
    mu = 1.0 / np.asarray(lam_f, dtype=float)
    return young_period(mu, costs.checkpoint_cost(P))


def daly_period_for(P, errors: ErrorModel, costs: ResilienceCosts):
    """Daly's higher-order period using only the fail-stop platform rate."""
    lam_f = errors.fail_stop_rate(P)
    if np.any(np.asarray(lam_f) <= 0.0):
        raise InvalidParameterError("Daly's formula needs a positive fail-stop rate")
    mu = 1.0 / np.asarray(lam_f, dtype=float)
    return daly_period(mu, costs.checkpoint_cost(P))


def generalized_period(P, errors: ErrorModel, costs: ResilienceCosts):
    """The paper's two-source generalisation (identical to Theorem 1).

    :math:`T^* = \\sqrt{(V_P + C_P)/(\\lambda^f_P/2 + \\lambda^s_P)}`.
    Exposed here as well so baseline comparisons can import every period
    rule from one module.
    """
    lam = errors.fail_stop_rate(P) / 2.0 + errors.silent_rate(P)
    if np.any(np.asarray(lam) <= 0.0):
        raise InvalidParameterError("generalized period needs a positive error rate")
    result = np.sqrt(np.asarray(costs.combined_cost(P)) / np.asarray(lam))
    return float(result) if np.ndim(P) == 0 else result
