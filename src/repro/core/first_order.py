"""First-order optimal pattern parameters (Theorems 1-3 of the paper).

Section III of the paper derives closed-form approximations for the
optimal checkpointing period :math:`T^*` and processor allocation
:math:`P^*` by Taylor-expanding the exact expectation of Proposition 1.
Writing :math:`L = (f/2 + s)\\,\\lambda_{ind}` (the *effective* rate — a
fail-stop error loses half a period on average, a silent error a full
period):

**Theorem 1** (optimal period for fixed ``P``):

.. math::

    T^*_P = \\sqrt{\\frac{V_P + C_P}{\\lambda^f_P/2 + \\lambda^s_P}},
    \\qquad
    H(T^*_P, P) = H(P)\\Big(1 + 2\\sqrt{(\\lambda^f_P/2 + \\lambda^s_P)(V_P + C_P)}\\Big).

**Theorem 2** (``alpha > 0``, checkpoint cost ``C_P = cP + o(P)``):

.. math::

    P^* = \\Big(\\frac{1}{cL}\\Big)^{1/4}\\Big(\\frac{1-\\alpha}{2\\alpha}\\Big)^{1/2},
    \\quad T^* = \\Big(\\frac{c}{L}\\Big)^{1/2},
    \\quad H^* = \\alpha + 2\\big(4\\alpha^2(1-\\alpha)^2 c L\\big)^{1/4}.

**Theorem 3** (``alpha > 0``, combined cost ``C_P + V_P = d + o(1)``):

.. math::

    P^* = \\Big(\\frac{1}{dL}\\Big)^{1/3}\\Big(\\frac{1-\\alpha}{\\alpha}\\Big)^{2/3},
    \\quad T^* = \\Big(\\frac{d^2}{L}\\Big)^{1/3}\\Big(\\frac{\\alpha}{1-\\alpha}\\Big)^{1/3},
    \\quad H^* = \\alpha + 3\\big(\\alpha^2(1-\\alpha) d L\\big)^{1/3}.

**Case 3** (``C_P + V_P = h/P``): the first-order overhead
:math:`H(P)(1 + 2\\sqrt{hL})` decreases monotonically with ``P`` — no
finite first-order optimum exists; callers must use the numerical
optimiser (:mod:`repro.optimize.allocation`).

**Case 4** (``alpha = 0``): same situation — the overhead decreases
monotonically in every cost regime; :func:`case4_overhead` gives the
first-order overhead curves listed in Section III-D.4.

The striking asymptotic orders are: :math:`P^* = \\Theta(\\lambda^{-1/4})`
with :math:`T^* = \\Theta(\\lambda^{-1/2})` for linear checkpoint cost,
versus :math:`P^* = T^* = \\Theta(\\lambda^{-1/3})` for bounded cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidityError
from .costs import CostRegime, ResilienceCosts
from .errors import ErrorModel
from .pattern import PatternModel
from .speedup import AmdahlSpeedup

__all__ = [
    "FirstOrderSolution",
    "optimal_period",
    "overhead_at_optimal_period",
    "theorem2_solution",
    "theorem3_solution",
    "optimal_pattern",
    "optimal_pattern_batch",
    "case3_overhead",
    "case4_overhead",
    "asymptotic_orders",
]


@dataclass(frozen=True)
class FirstOrderSolution:
    """Closed-form optimal pattern ``(P*, T*)`` and its predicted overhead.

    Attributes
    ----------
    processors:
        First-order optimal processor count :math:`P^*` (continuous —
        round as needed for deployment).
    period:
        First-order optimal pattern length :math:`T^*` in seconds.
    overhead:
        Predicted expected execution overhead :math:`H(T^*, P^*)`
        (sequential-work normalised; its floor is ``alpha``).
    theorem:
        Which result produced the numbers: ``"theorem-2"`` (linear
        checkpoint cost) or ``"theorem-3"`` (bounded combined cost).
    regime:
        The cost regime of the model.
    """

    processors: float
    period: float
    overhead: float
    theorem: str
    regime: CostRegime

    @property
    def speedup(self) -> float:
        """Predicted expected speedup :math:`1/H^*`."""
        return 1.0 / self.overhead


def optimal_period(P, errors: ErrorModel, costs: ResilienceCosts):
    """Theorem 1, Eq. (7): first-order optimal period for fixed ``P``.

    Vectorised over ``P``.  This is the Young/Daly formula generalised to
    two error sources and a verified checkpoint: the "cost" is
    :math:`V_P + C_P` and the "rate" is :math:`\\lambda^f_P/2 + \\lambda^s_P`.
    """
    lam = errors.fail_stop_rate(P) / 2.0 + errors.silent_rate(P)
    combined = costs.combined_cost(P)
    lam_arr = np.asarray(lam, dtype=float)
    if np.any(lam_arr <= 0.0):
        raise ValidityError(
            "Theorem 1 needs a positive error rate; with lambda = 0 the optimal "
            "period is unbounded (never checkpoint)."
        )
    result = np.sqrt(np.asarray(combined) / lam_arr)
    return float(result) if np.ndim(P) == 0 else result


def overhead_at_optimal_period(P, model: PatternModel):
    """Theorem 1, Eq. (8): first-order overhead :math:`H(T^*_P, P)`.

    Vectorised over ``P``; this is the curve swept in Figure 3.
    """
    errors, costs = model.errors, model.costs
    lam = errors.fail_stop_rate(P) / 2.0 + errors.silent_rate(P)
    combined = costs.combined_cost(P)
    H = model.speedup.overhead(P)
    result = np.asarray(H) * (1.0 + 2.0 * np.sqrt(np.asarray(lam) * np.asarray(combined)))
    return float(result) if np.ndim(P) == 0 else result


def _require_amdahl_interior(model: PatternModel, theorem: str) -> float:
    if not isinstance(model.speedup, AmdahlSpeedup):
        raise ValidityError(
            f"{theorem} is derived for Amdahl's law; got "
            f"{type(model.speedup).__name__}. Use repro.optimize.allocation instead."
        )
    alpha = model.speedup.alpha
    if alpha == 0.0:
        raise ValidityError(
            f"{theorem} requires a positive sequential fraction; with alpha = 0 the "
            "first-order overhead decreases monotonically in P (Section III-D.4). "
            "Use repro.optimize.allocation for the numerical optimum."
        )
    if alpha == 1.0:
        raise ValidityError(
            f"{theorem} requires alpha < 1; a fully sequential job gains nothing "
            "from parallelism (use P = 1)."
        )
    return alpha


def theorem2_solution(model: PatternModel) -> FirstOrderSolution:
    """Theorem 2: optimal pattern for ``C_P = cP + o(P)`` and ``alpha > 0``.

    Raises
    ------
    ValidityError
        If the cost regime is not LINEAR, or alpha is 0 or 1, or the
        speedup profile is not Amdahl.
    """
    alpha = _require_amdahl_interior(model, "Theorem 2")
    costs = model.costs
    if costs.regime is not CostRegime.LINEAR:
        raise ValidityError(
            f"Theorem 2 needs a linearly growing checkpoint cost (c != 0); "
            f"this model is in the {costs.regime.value!r} regime."
        )
    c = costs.c
    L = model.errors.effective_lambda
    if L <= 0.0:
        raise ValidityError("Theorem 2 needs a positive error rate.")
    P_star = (1.0 / (c * L)) ** 0.25 * ((1.0 - alpha) / (2.0 * alpha)) ** 0.5
    T_star = (c / L) ** 0.5
    H_star = alpha + 2.0 * (4.0 * alpha**2 * (1.0 - alpha) ** 2 * c * L) ** 0.25
    return FirstOrderSolution(
        processors=P_star,
        period=T_star,
        overhead=H_star,
        theorem="theorem-2",
        regime=CostRegime.LINEAR,
    )


def theorem3_solution(model: PatternModel) -> FirstOrderSolution:
    """Theorem 3: optimal pattern for ``C_P + V_P = d + o(1)`` and ``alpha > 0``.

    Raises
    ------
    ValidityError
        If the cost regime is not CONSTANT, or alpha is 0 or 1, or the
        speedup profile is not Amdahl.
    """
    alpha = _require_amdahl_interior(model, "Theorem 3")
    costs = model.costs
    if costs.regime is not CostRegime.CONSTANT:
        raise ValidityError(
            f"Theorem 3 needs a bounded, non-vanishing combined cost (c = 0, d != 0); "
            f"this model is in the {costs.regime.value!r} regime."
        )
    d = costs.d
    L = model.errors.effective_lambda
    if L <= 0.0:
        raise ValidityError("Theorem 3 needs a positive error rate.")
    P_star = (1.0 / (d * L)) ** (1.0 / 3.0) * ((1.0 - alpha) / alpha) ** (2.0 / 3.0)
    T_star = (d**2 / L) ** (1.0 / 3.0) * (alpha / (1.0 - alpha)) ** (1.0 / 3.0)
    H_star = alpha + 3.0 * (alpha**2 * (1.0 - alpha) * d * L) ** (1.0 / 3.0)
    return FirstOrderSolution(
        processors=P_star,
        period=T_star,
        overhead=H_star,
        theorem="theorem-3",
        regime=CostRegime.CONSTANT,
    )


def optimal_pattern(model: PatternModel) -> FirstOrderSolution:
    """Dispatch to Theorem 2 or 3 based on the model's cost regime.

    Raises
    ------
    ValidityError
        In the DECAYING regime (case 3) or for ``alpha`` in ``{0, 1}``,
        where no finite first-order optimum exists — use
        :func:`repro.optimize.allocation.optimize_allocation` there.
    """
    regime = model.costs.regime
    if regime is CostRegime.LINEAR:
        return theorem2_solution(model)
    if regime is CostRegime.CONSTANT:
        return theorem3_solution(model)
    raise ValidityError(
        f"No first-order optimal processor count exists in the {regime.value!r} "
        "regime: the first-order overhead decreases monotonically with P "
        "(Section III-D case 3). Use the numerical optimiser."
    )


def optimal_pattern_batch(models) -> list["FirstOrderSolution | None"]:
    """Closed-form optimal patterns for a whole column of models.

    Batch counterpart of :func:`optimal_pattern` for the sweep engine:
    instead of a try/except per grid point, the validity classification
    (Amdahl profile, interior ``alpha``, positive rate, LINEAR/CONSTANT
    regime) runs vectorised over the column, and models with no finite
    first-order optimum map to ``None`` — exactly the set for which
    :func:`optimal_pattern` raises :class:`~repro.exceptions.ValidityError`.

    The closed-form arithmetic itself deliberately stays on Python
    floats: numpy's SIMD ``**`` kernel for arrays differs from the libm
    ``pow`` used for scalars in the last ulp (measured: ~5% of random
    inputs for exponents 1/4, 1/3, 2/3), and the figure goldens pin the
    scalar bit patterns.  Classification is where the per-point Python
    overhead lived; the per-valid-point kernels are a handful of flops.
    """
    models = list(models)
    amdahl = np.fromiter(
        (isinstance(m.speedup, AmdahlSpeedup) for m in models), bool, len(models)
    )
    alpha = np.fromiter(
        (m.speedup.alpha if ok else np.nan for m, ok in zip(models, amdahl)),
        float,
        len(models),
    )
    c = np.fromiter((m.costs.c for m in models), float, len(models))
    d = np.fromiter((m.costs.d for m in models), float, len(models))
    L = np.fromiter((m.errors.effective_lambda for m in models), float, len(models))
    linear = c != 0.0
    constant = ~linear & (d != 0.0)
    valid = amdahl & (alpha > 0.0) & (alpha < 1.0) & (L > 0.0) & (linear | constant)
    out: list[FirstOrderSolution | None] = [None] * len(models)
    for j in np.flatnonzero(valid):
        solve = theorem2_solution if linear[j] else theorem3_solution
        out[j] = solve(models[j])
    return out


def case3_overhead(P, model: PatternModel):
    """Case 3 first-order overhead: ``C_P + V_P = h/P``.

    :math:`H(T^*_P, P) = H(P)\\,(1 + 2\\sqrt{hL})` — monotonically
    decreasing in ``P``; valid only while ``P`` stays within
    :math:`O(\\lambda^{-1/2})` (Section III-B).  Vectorised over ``P``.
    """
    costs = model.costs
    if costs.regime is not CostRegime.DECAYING:
        raise ValidityError(
            f"case3_overhead applies to the decaying regime; model is {costs.regime.value!r}."
        )
    h = costs.h
    L = model.errors.effective_lambda
    H = model.speedup.overhead(P)
    result = np.asarray(H) * (1.0 + 2.0 * np.sqrt(h * L))
    return float(result) if np.ndim(P) == 0 else result


def case4_overhead(P, model: PatternModel):
    """Case 4 (``alpha = 0``): first-order overhead of a perfectly parallel job.

    Section III-D.4 gives, with :math:`L = (f/2+s)\\lambda_{ind}`:

    * ``c != 0``            : :math:`1/P + 2\\sqrt{cL}`
    * ``c = 0, d != 0``     : :math:`1/P + 2\\sqrt{dL/P}`
    * ``c = 0, d = 0``      : :math:`(1/P)(1 + 2\\sqrt{hL})`

    All decrease monotonically in ``P``; vectorised over ``P``.
    """
    if not (isinstance(model.speedup, AmdahlSpeedup) and model.speedup.alpha == 0.0):
        raise ValidityError("case4_overhead requires a perfectly parallel job (alpha = 0).")
    costs = model.costs
    L = model.errors.effective_lambda
    P_arr = np.asarray(P, dtype=float)
    if costs.c != 0.0:
        result = 1.0 / P_arr + 2.0 * np.sqrt(costs.c * L)
    elif costs.d != 0.0:
        result = 1.0 / P_arr + 2.0 * np.sqrt(costs.d * L / P_arr)
    else:
        result = (1.0 + 2.0 * np.sqrt(costs.h * L)) / P_arr
    return float(result) if np.ndim(P) == 0 else result


def asymptotic_orders(regime: CostRegime, alpha: float) -> dict[str, float | None]:
    """Asymptotic orders ``P* = Θ(λ^-x)``, ``T* = Θ(λ^-y)``, ``H*-α = Θ(λ^z)``.

    Returns a dict with keys ``"x"``, ``"y"``, ``"z"`` (``None`` where the
    quantity is unbounded / not a power law).  These are the slopes the
    Figure 5/6 log-log fits validate:

    * LINEAR, alpha>0:   x=1/4, y=1/2, z=1/4   (Theorem 2)
    * CONSTANT, alpha>0: x=1/3, y=1/3, z=1/3   (Theorem 3)
    * LINEAR, alpha=0:   x≈1/2, y≈1/2, z≈1/2   (numerical, Fig. 6)
    * CONSTANT/DECAYING, alpha=0: x≈1, y≈0, z≈1 (numerical, Fig. 6)
    """
    if alpha > 0.0:
        if regime is CostRegime.LINEAR:
            return {"x": 0.25, "y": 0.5, "z": 0.25}
        if regime is CostRegime.CONSTANT:
            return {"x": 1.0 / 3.0, "y": 1.0 / 3.0, "z": 1.0 / 3.0}
        # Case 3: first-order P* unbounded (within validity x < 1/2).
        return {"x": None, "y": None, "z": None}
    if regime is CostRegime.LINEAR:
        return {"x": 0.5, "y": 0.5, "z": 0.5}
    if regime is CostRegime.CONSTANT:
        return {"x": 1.0, "y": 0.0, "z": 1.0}
    return {"x": 1.0, "y": 0.0, "z": 1.0}
