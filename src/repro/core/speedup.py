"""Application speedup profiles.

The paper studies jobs whose speedup obeys **Amdahl's law** (Eq. (1)):

.. math::

    S(P) = \\frac{1}{\\alpha + (1-\\alpha)/P},

where :math:`\\alpha` is the inherently sequential fraction of the work.
The *execution overhead* is defined as :math:`H(P) = 1/S(P)`; it is the
time needed per unit of sequential work.

The paper's future-work section calls for "jobs with different speedup
profiles", so the module is organised around an abstract
:class:`SpeedupModel` with Amdahl as the primary concrete profile plus
Gustafson (scaled speedup) and a power-law profile as extension hooks.
All profiles are vectorised: ``P`` may be a scalar or a numpy array.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "SpeedupModel",
    "AmdahlSpeedup",
    "PerfectSpeedup",
    "GustafsonSpeedup",
    "PowerLawSpeedup",
]


def _validate_processors(P) -> np.ndarray | float:
    """Check ``P > 0`` (scalar or array) and return it unchanged."""
    arr = np.asarray(P, dtype=float)
    if np.any(arr <= 0.0):
        raise InvalidParameterError(f"processor count must be positive, got {P!r}")
    return P


class SpeedupModel(ABC):
    """Failure-free speedup profile :math:`S(P)` of a parallel application."""

    @abstractmethod
    def speedup(self, P):
        """Speedup :math:`S(P)` on ``P`` processors (scalar or array)."""

    @abstractmethod
    def overhead(self, P):
        """Execution overhead :math:`H(P) = 1/S(P)` (scalar or array)."""

    @abstractmethod
    def overhead_derivative(self, P):
        """Derivative :math:`dH/dP`, used by numerical optimisers."""

    @property
    @abstractmethod
    def asymptotic_overhead(self) -> float:
        """:math:`\\lim_{P\\to\\infty} H(P)` — the overhead floor."""

    def efficiency(self, P):
        """Parallel efficiency :math:`S(P)/P`."""
        return self.speedup(P) / np.asarray(P, dtype=float)

    def __call__(self, P):
        return self.speedup(P)


@dataclass(frozen=True)
class AmdahlSpeedup(SpeedupModel):
    """Amdahl's law with sequential fraction ``alpha`` (paper Eq. (1)).

    ``alpha = 0`` degenerates to a perfectly parallel job
    (:math:`S(P) = P`, Section III-D case 4); ``alpha = 1`` is a fully
    sequential job.

    >>> AmdahlSpeedup(0.1).speedup(np.inf)
    10.0
    """

    alpha: float

    def __post_init__(self) -> None:
        # Array-tolerant: the batch optimisers stack models into one
        # whose alpha is a per-column array.
        alpha = np.asarray(self.alpha)
        if np.any(alpha < 0.0) or np.any(alpha > 1.0) or np.any(np.isnan(alpha)):
            raise InvalidParameterError(
                f"sequential fraction alpha must be in [0, 1], got {self.alpha!r}"
            )

    def speedup(self, P):
        _validate_processors(P)
        return 1.0 / self.overhead(P)

    def overhead(self, P):
        _validate_processors(P)
        P = np.asarray(P, dtype=float) if np.ndim(P) else float(P)
        return self.alpha + (1.0 - self.alpha) / P

    def overhead_derivative(self, P):
        _validate_processors(P)
        P = np.asarray(P, dtype=float) if np.ndim(P) else float(P)
        return -(1.0 - self.alpha) / P**2

    @property
    def asymptotic_overhead(self) -> float:
        return self.alpha

    @property
    def is_perfectly_parallel(self) -> bool:
        """True when ``alpha == 0`` (case 4 of Section III-D)."""
        return self.alpha == 0.0

    def max_speedup(self) -> float:
        """Upper bound :math:`1/\\alpha` on the speedup (``inf`` if alpha=0)."""
        return np.inf if self.alpha == 0.0 else 1.0 / self.alpha


def PerfectSpeedup() -> AmdahlSpeedup:
    """Perfectly parallel profile :math:`S(P) = P` (Amdahl with alpha=0)."""
    return AmdahlSpeedup(0.0)


@dataclass(frozen=True)
class GustafsonSpeedup(SpeedupModel):
    """Gustafson's scaled speedup :math:`S(P) = \\alpha + (1-\\alpha)P`.

    Models weak scaling, where the parallel part of the workload grows
    with the machine.  Provided as an extension hook for the paper's
    "weak vs. strong scalability" future work; it is supported by the
    numerical optimiser but not by the first-order closed forms (which
    are Amdahl-specific).
    """

    alpha: float

    def __post_init__(self) -> None:
        alpha = np.asarray(self.alpha)
        if np.any(alpha < 0.0) or np.any(alpha > 1.0) or np.any(np.isnan(alpha)):
            raise InvalidParameterError(
                f"sequential fraction alpha must be in [0, 1], got {self.alpha!r}"
            )

    def speedup(self, P):
        _validate_processors(P)
        P = np.asarray(P, dtype=float) if np.ndim(P) else float(P)
        return self.alpha + (1.0 - self.alpha) * P

    def overhead(self, P):
        return 1.0 / self.speedup(P)

    def overhead_derivative(self, P):
        s = self.speedup(P)
        return -(1.0 - self.alpha) / s**2

    @property
    def asymptotic_overhead(self) -> float:
        return 0.0 if self.alpha < 1.0 else 1.0


@dataclass(frozen=True)
class PowerLawSpeedup(SpeedupModel):
    """Power-law profile :math:`S(P) = P^{\\gamma}` with ``0 < gamma <= 1``.

    A common empirical fit for communication-bound codes; ``gamma = 1``
    recovers the perfectly parallel profile.  Extension hook only.
    """

    gamma: float

    def __post_init__(self) -> None:
        gamma = np.asarray(self.gamma)
        if np.any(gamma <= 0.0) or np.any(gamma > 1.0) or np.any(np.isnan(gamma)):
            raise InvalidParameterError(f"gamma must be in (0, 1], got {self.gamma!r}")

    def speedup(self, P):
        _validate_processors(P)
        P = np.asarray(P, dtype=float) if np.ndim(P) else float(P)
        return P**self.gamma

    def overhead(self, P):
        _validate_processors(P)
        P = np.asarray(P, dtype=float) if np.ndim(P) else float(P)
        return P ** (-self.gamma)

    def overhead_derivative(self, P):
        _validate_processors(P)
        P = np.asarray(P, dtype=float) if np.ndim(P) else float(P)
        return -self.gamma * P ** (-self.gamma - 1.0)

    @property
    def asymptotic_overhead(self) -> float:
        return 0.0
