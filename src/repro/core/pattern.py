"""Exact expected execution time of a periodic checkpointing pattern.

This module implements **Proposition 1** of the paper, which is its core
analytical result: for a pattern ``PATTERN(T, P)`` (work ``T``, then
verification ``V_P``, then checkpoint ``C_P``) under fail-stop errors of
rate :math:`\\lambda^f_P` (striking anywhere except downtime) and silent
errors of rate :math:`\\lambda^s_P` (striking only computation),

.. math::

    E(T, P) = \\Big(\\frac{1}{\\lambda^f_P} + D\\Big)
        \\Big( e^{\\lambda^f_P C_P}\\,(1 - e^{\\lambda^s_P T})
            + e^{\\lambda^f_P R_P}\\,
              \\big(e^{\\lambda^f_P (C_P + T + V_P) + \\lambda^s_P T} - 1\\big)
        \\Big).

The proof decomposes :math:`E = E(T + V_P) + E(C_P)` with

.. math::

    E(R_P)     &= (1/\\lambda^f + D)(e^{\\lambda^f R} - 1), \\\\
    E(C_P)     &= (e^{\\lambda^f C} - 1)(1/\\lambda^f + D + E(R) + E(T+V)), \\\\
    E(T + V_P) &= e^{\\lambda^s T}(e^{\\lambda^f (T+V)} - 1)(1/\\lambda^f + D)
                  + (e^{\\lambda^f (T+V) + \\lambda^s T} - 1) E(R),

all of which are exposed here because the Monte-Carlo simulators validate
against them component by component.  (The published text of the paper
renders the :math:`E(T+V_P)` intermediate with a stray
:math:`e^{\\lambda^s(T+V)}(T+V)` term; re-deriving the recurrence — done in
``tests/test_pattern.py`` symbolically and numerically — confirms the two-term
form above, which is the one consistent with the final Eq. (2).)

Every function is vectorised: ``T`` and ``P`` may be scalars or numpy
arrays (broadcast together), which is how the figure sweeps evaluate
whole parameter grids in one call.  The fail-stop-free case
(:math:`\\lambda^f = 0`) is handled through its exact limit

.. math::

    E = C - R + e^{\\lambda^s T} (R + T + V),

avoiding the ``inf * 0`` indeterminacy of the general formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from .costs import CheckpointCost, ResilienceCosts, VerificationCost
from .errors import ErrorModel
from .speedup import AmdahlSpeedup, GustafsonSpeedup, PowerLawSpeedup, SpeedupModel

__all__ = [
    "expected_pattern_time",
    "expected_recovery_time",
    "expected_checkpoint_time",
    "expected_work_time",
    "expected_pattern_time_first_order",
    "pattern_overhead",
    "pattern_speedup",
    "PatternModel",
    "stack_models",
    "take_model",
]


def _validate_period(T) -> None:
    arr = np.asarray(T, dtype=float)
    if np.any(arr < 0.0) or not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"pattern period T must be finite and >= 0, got {T!r}")


def _rates_and_costs(T, P, errors: ErrorModel, costs: ResilienceCosts):
    """Broadcast-compatible platform rates and resilience costs."""
    _validate_period(T)
    T = np.asarray(T, dtype=float) if (np.ndim(T) or np.ndim(P)) else float(T)
    lam_f = errors.fail_stop_rate(P)
    lam_s = errors.silent_rate(P)
    C = costs.checkpoint_cost(P)
    R = costs.recovery_cost(P)
    V = costs.verification_cost(P)
    return T, lam_f, lam_s, C, R, V, costs.downtime


def _scalarize(x, *inputs):
    """Collapse 0-d results back to Python floats when all inputs are scalars."""
    if all(np.ndim(i) == 0 for i in inputs):
        return float(x)
    return np.asarray(x)


def expected_recovery_time(P, errors: ErrorModel, costs: ResilienceCosts):
    """Expected time to complete one recovery, :math:`E(R_P)`.

    A recovery of cost ``R_P`` may itself be hit by fail-stop errors
    (each retry paying the time lost plus the downtime ``D``):

    .. math:: E(R_P) = (1/\\lambda^f_P + D)(e^{\\lambda^f_P R_P} - 1).
    """
    lam_f = errors.fail_stop_rate(P)
    R = costs.recovery_cost(P)
    D = costs.downtime
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        generic = (1.0 / np.asarray(lam_f, dtype=float) + D) * np.expm1(
            np.asarray(lam_f) * np.asarray(R)
        )
    result = np.where(np.asarray(lam_f) > 0.0, generic, np.asarray(R, dtype=float))
    return _scalarize(result, P, lam_f)


def expected_work_time(T, P, errors: ErrorModel, costs: ResilienceCosts):
    """Expected time to complete the work + verification segment, E(T + V_P).

    Both error sources can force re-execution: fail-stop errors interrupt
    anywhere in ``T + V_P``; silent errors (struck during ``T`` only) are
    caught by the verification and trigger a recovery plus re-execution.
    """
    T, lam_f, lam_s, C, R, V, D = _rates_and_costs(T, P, errors, costs)
    A = T + V
    ER = expected_recovery_time(P, errors, costs)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        generic = np.exp(lam_s * T) * np.expm1(lam_f * A) * (1.0 / np.asarray(lam_f) + D) + np.expm1(
            lam_f * A + lam_s * T
        ) * np.asarray(ER)
        # lambda_f == 0 limit: every attempt of A survives fail-stop errors;
        # silent errors force a geometric number of (A + R) re-executions.
        silent_only = np.exp(lam_s * T) * A + np.expm1(lam_s * T) * np.asarray(R)
    result = np.where(np.asarray(lam_f) > 0.0, generic, silent_only)
    result = np.where(np.isnan(result), np.inf, result)
    return _scalarize(result, T, P, lam_f)


def expected_checkpoint_time(T, P, errors: ErrorModel, costs: ResilienceCosts):
    """Expected time to store the checkpoint at the end of a pattern, E(C_P).

    A fail-stop error during checkpointing costs the lost time, the
    downtime, a recovery and a *full pattern re-execution* before the
    checkpoint can be retried — hence the dependence on ``T``.
    """
    T, lam_f, lam_s, C, R, V, D = _rates_and_costs(T, P, errors, costs)
    ER = expected_recovery_time(P, errors, costs)
    EA = expected_work_time(T, P, errors, costs)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        generic = np.expm1(lam_f * C) * (
            1.0 / np.asarray(lam_f) + D + np.asarray(ER) + np.asarray(EA)
        )
    result = np.where(np.asarray(lam_f) > 0.0, generic, np.asarray(C, dtype=float))
    # 0 * inf (free checkpoint but overflowed work expectation) is 0: a
    # cost-free segment completes instantly regardless.
    zero_cost = np.asarray(C, dtype=float) == 0.0
    result = np.where(np.isnan(result) & zero_cost, 0.0, result)
    result = np.where(np.isnan(result), np.inf, result)
    return _scalarize(result, T, P, lam_f)


def expected_pattern_time(T, P, errors: ErrorModel, costs: ResilienceCosts):
    """Exact expected execution time of PATTERN(T, P) — Proposition 1, Eq. (2).

    Parameters
    ----------
    T:
        Pattern length (useful computation time per checkpoint), seconds.
        Scalar or array.
    P:
        Number of processors.  Scalar or array (broadcast with ``T``).
    errors:
        Platform error model (individual rate + fail-stop fraction).
    costs:
        Resilience costs :math:`C_P, R_P, V_P, D`.

    Returns
    -------
    float or ndarray
        :math:`E(T, P)` in seconds.

    Notes
    -----
    The implementation evaluates Eq. (2) in the ``expm1`` form

    .. math::

        E = (1/\\lambda^f + D)\\big(
              e^{\\lambda^f R}\\,\\mathrm{expm1}(\\lambda^f(C+T+V) + \\lambda^s T)
            - e^{\\lambda^f C}\\,\\mathrm{expm1}(\\lambda^s T)\\big)

    which keeps full precision for rates down to ``1e-300``.
    """
    T, lam_f, lam_s, C, R, V, D = _rates_and_costs(T, P, errors, costs)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        # Cancellation-free factoring of Eq. (2):
        #   term = e^{lf R + ls T} expm1(lf (C+T+V))
        #        + e^{lf C} expm1(ls T) expm1(lf (R - C))
        # (algebraically identical; avoids subtracting two nearly equal
        # exponentials when lf is many orders below ls).
        term = np.exp(lam_f * R + lam_s * T) * np.expm1(lam_f * (C + T + V)) + np.exp(
            lam_f * C
        ) * np.expm1(lam_s * T) * np.expm1(lam_f * (R - C))
        generic = (1.0 / np.asarray(lam_f) + D) * term
        # Exact lambda_f -> 0 limit (silent errors only).
        silent_only = C - R + np.exp(lam_s * T) * (R + T + V)
    result = np.where(np.asarray(lam_f) > 0.0, generic, silent_only)
    # When the exponentials overflow, products involving inf can read as
    # NaN; the true expectation is beyond float range: report +inf.
    result = np.where(np.isnan(result), np.inf, result)
    return _scalarize(result, T, P)


def expected_pattern_time_first_order(T, P, errors: ErrorModel, costs: ResilienceCosts):
    """Second-order Taylor expansion of E(T, P) used in the proof of Theorem 1.

    .. math::

        E \\approx T + V + C
            + (\\lambda^f/2 + \\lambda^s) T^2
            + \\lambda^f T (V + C + R + D)
            + \\lambda^s T (V + R)
            + \\lambda^f C (C/2 + R + V + D)
            + \\lambda^f V (V + R + D)

    Valid when all of :math:`\\lambda^f_P (T + V + C + R)` and
    :math:`\\lambda^s_P T` are :math:`\\ll 1` (Section III-B).
    """
    T, lam_f, lam_s, C, R, V, D = _rates_and_costs(T, P, errors, costs)
    result = (
        T
        + V
        + C
        + (lam_f / 2.0 + lam_s) * T**2
        + lam_f * T * (V + C + R + D)
        + lam_s * T * (V + R)
        + lam_f * C * (C / 2.0 + R + V + D)
        + lam_f * V * (V + R + D)
    )
    return _scalarize(result, T, P)


def pattern_overhead(T, P, errors: ErrorModel, costs: ResilienceCosts, speedup: SpeedupModel):
    """Expected execution overhead :math:`H(T, P) = H(P) \\, E(T, P) / T`.

    This is the paper's optimisation objective: the expected time per
    unit of *sequential* work, whose error-free floor is ``H(P)``.
    Requires ``T > 0``.
    """
    T_arr = np.asarray(T, dtype=float)
    if np.any(T_arr <= 0.0):
        raise InvalidParameterError(f"overhead needs T > 0, got {T!r}")
    E = expected_pattern_time(T, P, errors, costs)
    result = np.asarray(speedup.overhead(P)) * np.asarray(E) / T_arr
    return _scalarize(result, T, P)


def pattern_speedup(T, P, errors: ErrorModel, costs: ResilienceCosts, speedup: SpeedupModel):
    """Expected speedup :math:`S(T, P) = T\\,S(P)/E(T, P) = 1/H(T, P)`."""
    return 1.0 / pattern_overhead(T, P, errors, costs, speedup)


@dataclass(frozen=True)
class PatternModel:
    """Bundle of error model, resilience costs and speedup profile.

    This is the main user-facing object: it fixes the *platform and
    application*, leaving the pattern parameters ``(T, P)`` free.  All
    evaluators are thin wrappers over the module-level functions, and
    the optimisers in :mod:`repro.optimize` and the closed forms in
    :mod:`repro.core.first_order` consume it directly.

    >>> from repro.core import ErrorModel, ResilienceCosts, AmdahlSpeedup
    >>> model = PatternModel(
    ...     errors=ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.25),
    ...     costs=ResilienceCosts.simple(checkpoint=300.0, verification=15.0),
    ...     speedup=AmdahlSpeedup(0.1),
    ... )
    >>> round(model.overhead(T=3600.0, P=1000), 4) > 0.1
    True
    """

    errors: ErrorModel
    costs: ResilienceCosts
    speedup: SpeedupModel

    # -- exact evaluators -------------------------------------------------

    def expected_time(self, T, P):
        """Exact :math:`E(T, P)` (Proposition 1)."""
        return expected_pattern_time(T, P, self.errors, self.costs)

    def expected_time_first_order(self, T, P):
        """Taylor-expanded :math:`E(T, P)` (Theorem 1 proof)."""
        return expected_pattern_time_first_order(T, P, self.errors, self.costs)

    def overhead(self, T, P):
        """Expected execution overhead :math:`H(T, P)`."""
        return pattern_overhead(T, P, self.errors, self.costs, self.speedup)

    def expected_speedup(self, T, P):
        """Expected speedup :math:`S(T, P)`."""
        return pattern_speedup(T, P, self.errors, self.costs, self.speedup)

    def error_free_overhead(self, P):
        """Failure-free floor :math:`H(P)`."""
        return self.speedup.overhead(P)

    def expected_recovery(self, P):
        """:math:`E(R_P)` (proof of Proposition 1)."""
        return expected_recovery_time(P, self.errors, self.costs)

    def expected_work(self, T, P):
        """:math:`E(T + V_P)` (proof of Proposition 1)."""
        return expected_work_time(T, P, self.errors, self.costs)

    def expected_checkpoint(self, T, P):
        """:math:`E(C_P)` (proof of Proposition 1)."""
        return expected_checkpoint_time(T, P, self.errors, self.costs)

    # -- makespan projection ----------------------------------------------

    def pattern_work(self, T, P):
        """Sequential-equivalent work :math:`T \\cdot S(P)` done per pattern."""
        return np.asarray(T, dtype=float) * np.asarray(self.speedup.speedup(P)) \
            if (np.ndim(T) or np.ndim(P)) else float(T) * float(self.speedup.speedup(P))

    def expected_makespan(self, total_work: float, T, P):
        """Expected application makespan for total sequential work ``W_total``.

        :math:`E(W_{final}) \\approx H(T, P) \\cdot W_{total}` — the
        long-job approximation of Section II (the application is an
        integral number of patterns).
        """
        if total_work <= 0.0:
            raise InvalidParameterError(f"total work must be positive, got {total_work!r}")
        return self.overhead(T, P) * total_work

    def pattern_count(self, total_work: float, T, P):
        """Approximate number of patterns :math:`W_{total}/(T\\,S(P))`."""
        if total_work <= 0.0:
            raise InvalidParameterError(f"total work must be positive, got {total_work!r}")
        return total_work / self.pattern_work(T, P)

    # -- convenience -------------------------------------------------------

    @property
    def alpha(self) -> float:
        """Sequential fraction when the profile is Amdahl; raises otherwise."""
        if not isinstance(self.speedup, AmdahlSpeedup):
            raise InvalidParameterError(
                "alpha is only defined for AmdahlSpeedup profiles; "
                f"got {type(self.speedup).__name__}"
            )
        return self.speedup.alpha

    def with_downtime(self, downtime: float) -> "PatternModel":
        """Copy with a different downtime (Figure 7)."""
        return PatternModel(self.errors, self.costs.with_downtime(downtime), self.speedup)

    def with_lambda(self, lambda_ind: float) -> "PatternModel":
        """Copy with a different individual error rate (Figures 5-6)."""
        return PatternModel(self.errors.with_lambda(lambda_ind), self.costs, self.speedup)

    def with_alpha(self, alpha: float) -> "PatternModel":
        """Copy with a different sequential fraction (Figure 4)."""
        return PatternModel(self.errors, self.costs, AmdahlSpeedup(alpha))


# -- model stacking (batch optimisers) ----------------------------------------
#
# The batch optimisers evaluate many models at once by fusing them into
# one :class:`PatternModel` whose leaf parameters are per-column numpy
# arrays.  Every evaluator above is elementwise over its inputs, so a
# stacked model's column ``i`` produces bit-identical values to
# ``models[i]`` evaluated alone (numpy's elementwise ufuncs are
# value-deterministic regardless of array length or element position).


def _stack_field(models, getter, repeat) -> np.ndarray:
    values = np.asarray([float(getter(m)) for m in models], dtype=float)
    return np.repeat(values, repeat)


def stack_models(models, repeat=1) -> PatternModel:
    """Fuse scalar-parameter models into one array-parameter model.

    ``repeat`` (an int, or one int per model) replicates every model's
    parameters that many times in a row, so the stacked model lines up
    with a column layout that gives each source model a contiguous
    block of columns (the batch allocation optimiser assigns each model
    a block of outer grid points).

    Raises
    ------
    InvalidParameterError
        When the models are structurally heterogeneous (different
        speedup profiles, or recovery overridden on some models only) —
        callers fall back to per-model evaluation there.
    """
    models = list(models)
    if not models:
        raise InvalidParameterError("stack_models needs at least one model")

    speedup_type = type(models[0].speedup)
    if any(type(m.speedup) is not speedup_type for m in models):
        raise InvalidParameterError(
            "cannot stack models with heterogeneous speedup profiles"
        )
    if speedup_type is AmdahlSpeedup:
        speedup = AmdahlSpeedup(_stack_field(models, lambda m: m.speedup.alpha, repeat))
    elif speedup_type is GustafsonSpeedup:
        speedup = GustafsonSpeedup(_stack_field(models, lambda m: m.speedup.alpha, repeat))
    elif speedup_type is PowerLawSpeedup:
        speedup = PowerLawSpeedup(_stack_field(models, lambda m: m.speedup.gamma, repeat))
    else:
        raise InvalidParameterError(
            f"cannot stack models with speedup profile {speedup_type.__name__}"
        )

    has_recovery = [m.costs.recovery is not None for m in models]
    if any(has_recovery) and not all(has_recovery):
        raise InvalidParameterError(
            "cannot stack models where only some override the recovery cost"
        )
    recovery = (
        CheckpointCost(
            a=_stack_field(models, lambda m: m.costs.recovery.a, repeat),
            b=_stack_field(models, lambda m: m.costs.recovery.b, repeat),
            c=_stack_field(models, lambda m: m.costs.recovery.c, repeat),
        )
        if all(has_recovery)
        else None
    )
    return PatternModel(
        errors=ErrorModel(
            lambda_ind=_stack_field(models, lambda m: m.errors.lambda_ind, repeat),
            fail_stop_fraction=_stack_field(
                models, lambda m: m.errors.fail_stop_fraction, repeat
            ),
        ),
        costs=ResilienceCosts(
            checkpoint=CheckpointCost(
                a=_stack_field(models, lambda m: m.costs.checkpoint.a, repeat),
                b=_stack_field(models, lambda m: m.costs.checkpoint.b, repeat),
                c=_stack_field(models, lambda m: m.costs.checkpoint.c, repeat),
            ),
            verification=VerificationCost(
                v=_stack_field(models, lambda m: m.costs.verification.v, repeat),
                u=_stack_field(models, lambda m: m.costs.verification.u, repeat),
            ),
            downtime=_stack_field(models, lambda m: m.costs.downtime, repeat),
            recovery=recovery,
        ),
        speedup=speedup,
    )


def _field_at(value, i: int) -> float:
    return float(np.asarray(value).reshape(-1)[i]) if np.ndim(value) else float(value)


def take_model(stacked: PatternModel, i: int) -> PatternModel:
    """Extract column ``i`` of a stacked model as a scalar-parameter model."""
    speedup = stacked.speedup
    if isinstance(speedup, (AmdahlSpeedup, GustafsonSpeedup)):
        speedup = type(speedup)(_field_at(speedup.alpha, i))
    elif isinstance(speedup, PowerLawSpeedup):
        speedup = PowerLawSpeedup(_field_at(speedup.gamma, i))
    else:
        raise InvalidParameterError(
            f"cannot take a column from speedup profile {type(speedup).__name__}"
        )
    recovery = stacked.costs.recovery
    if recovery is not None:
        recovery = CheckpointCost(
            a=_field_at(recovery.a, i), b=_field_at(recovery.b, i), c=_field_at(recovery.c, i)
        )
    return PatternModel(
        errors=ErrorModel(
            lambda_ind=_field_at(stacked.errors.lambda_ind, i),
            fail_stop_fraction=_field_at(stacked.errors.fail_stop_fraction, i),
        ),
        costs=ResilienceCosts(
            checkpoint=CheckpointCost(
                a=_field_at(stacked.costs.checkpoint.a, i),
                b=_field_at(stacked.costs.checkpoint.b, i),
                c=_field_at(stacked.costs.checkpoint.c, i),
            ),
            verification=VerificationCost(
                v=_field_at(stacked.costs.verification.v, i),
                u=_field_at(stacked.costs.verification.u, i),
            ),
            downtime=_field_at(stacked.costs.downtime, i),
            recovery=recovery,
        ),
        speedup=speedup,
    )
