"""Failure model: fail-stop and silent errors on a P-processor platform.

Following Section II of the paper, each individual processor has error
rate :math:`\\lambda_{ind} = 1/\\mu_{ind}` accounting for *both* error
types; a fraction ``f`` of errors are fail-stop and ``s = 1 - f`` are
silent.  Both arrival processes are Poisson and independent, so on ``P``
processors (Proposition 1.2 of the Hérault/Robert book [13]):

.. math::

    \\lambda^f_P = f \\lambda_{ind} P, \\qquad
    \\lambda^s_P = s \\lambda_{ind} P.

The probability of at least one fail-stop error within a window of
length ``W`` is :math:`q^f_P(W) = 1 - e^{-\\lambda^f_P W}` and similarly
for silent errors.  The expected time lost when a fail-stop error strikes
within a window of length ``W`` (the truncated-exponential mean used in
the proof of Proposition 1) is

.. math::

    E_{lost}(W) = \\frac{1}{\\lambda} - \\frac{W}{e^{\\lambda W} - 1}.

All functions are vectorised over numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..units import SECONDS_PER_YEAR

__all__ = ["ErrorModel", "expected_time_lost"]


def _positive(P):
    arr = np.asarray(P, dtype=float)
    if np.any(arr <= 0.0):
        raise InvalidParameterError(f"processor count must be positive, got {P!r}")
    return arr if np.ndim(P) else float(arr)


@dataclass(frozen=True)
class ErrorModel:
    """Per-processor error rate split into fail-stop and silent fractions.

    Parameters
    ----------
    lambda_ind:
        Total error rate of one processor, in 1/seconds (``1/mu_ind``).
    fail_stop_fraction:
        Fraction ``f`` in ``[0, 1]`` of errors that are fail-stop; the
        remaining ``s = 1 - f`` are silent data corruptions.
    """

    lambda_ind: float
    fail_stop_fraction: float

    def __post_init__(self) -> None:
        # Array-tolerant validation: the batch optimisers stack many
        # models into one whose fields are per-column arrays.
        lam = np.asarray(self.lambda_ind)
        if np.any(lam < 0.0) or not np.all(np.isfinite(lam)):
            raise InvalidParameterError(
                f"lambda_ind must be finite and >= 0, got {self.lambda_ind!r}"
            )
        frac = np.asarray(self.fail_stop_fraction)
        if np.any(frac < 0.0) or np.any(frac > 1.0) or np.any(np.isnan(frac)):
            raise InvalidParameterError(
                f"fail-stop fraction f must be in [0, 1], got {self.fail_stop_fraction!r}"
            )

    # -- basic derived quantities ---------------------------------------

    @property
    def f(self) -> float:
        """Shorthand for the fail-stop fraction (paper notation)."""
        return self.fail_stop_fraction

    @property
    def s(self) -> float:
        """Silent fraction ``s = 1 - f`` (paper notation)."""
        return 1.0 - self.fail_stop_fraction

    @property
    def silent_fraction(self) -> float:
        return self.s

    @property
    def mtbf_ind(self) -> float:
        """Individual-processor MTBF :math:`\\mu_{ind} = 1/\\lambda_{ind}`."""
        if self.lambda_ind == 0.0:
            return np.inf
        return 1.0 / self.lambda_ind

    @property
    def mtbf_ind_years(self) -> float:
        """Individual MTBF in Julian years (how the paper quotes it)."""
        return self.mtbf_ind / SECONDS_PER_YEAR

    # -- platform-level rates -------------------------------------------

    def fail_stop_rate(self, P):
        """:math:`\\lambda^f_P = f \\lambda_{ind} P`."""
        return self.fail_stop_fraction * self.lambda_ind * _positive(P)

    def silent_rate(self, P):
        """:math:`\\lambda^s_P = s \\lambda_{ind} P`."""
        return self.s * self.lambda_ind * _positive(P)

    def total_rate(self, P):
        """Total platform error rate :math:`\\lambda_{ind} P`."""
        return self.lambda_ind * _positive(P)

    def platform_mtbf(self, P):
        """Platform MTBF :math:`\\mu_{ind}/P`."""
        rate = self.total_rate(P)
        with np.errstate(divide="ignore"):
            return np.where(np.asarray(rate) > 0.0, 1.0 / np.asarray(rate), np.inf) \
                if np.ndim(rate) else (np.inf if rate == 0.0 else 1.0 / rate)

    @property
    def effective_lambda(self) -> float:
        """First-order weight :math:`(f/2 + s)\\,\\lambda_{ind}`.

        This combination appears in every closed-form of Theorems 1-3:
        fail-stop errors lose on average *half* a period (factor 1/2)
        while silent errors always lose the full period (factor 1).
        """
        return (self.fail_stop_fraction / 2.0 + self.s) * self.lambda_ind

    # -- probabilities ----------------------------------------------------

    def p_fail_stop(self, P, W):
        """:math:`q^f_P(W) = 1 - e^{-\\lambda^f_P W}` (scalar or array)."""
        lam = self.fail_stop_rate(P)
        return -np.expm1(-lam * np.asarray(W, dtype=float)) if np.ndim(W) or np.ndim(P) \
            else -np.expm1(-lam * float(W))

    def p_silent(self, P, W):
        """:math:`q^s_P(W) = 1 - e^{-\\lambda^s_P W}` (scalar or array)."""
        lam = self.silent_rate(P)
        return -np.expm1(-lam * np.asarray(W, dtype=float)) if np.ndim(W) or np.ndim(P) \
            else -np.expm1(-lam * float(W))

    def expected_time_lost_fail_stop(self, P, W):
        """:math:`E_{lost}(W)` for the platform fail-stop rate."""
        return expected_time_lost(self.fail_stop_rate(P), W)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_mtbf(cls, mtbf_seconds: float, fail_stop_fraction: float) -> "ErrorModel":
        """Build from an individual MTBF given in seconds."""
        if mtbf_seconds <= 0.0:
            raise InvalidParameterError(f"MTBF must be positive, got {mtbf_seconds!r}")
        return cls(lambda_ind=1.0 / mtbf_seconds, fail_stop_fraction=fail_stop_fraction)

    @classmethod
    def fail_stop_only(cls, lambda_ind: float) -> "ErrorModel":
        """All errors fail-stop (``f = 1``) — the classic Young/Daly world."""
        return cls(lambda_ind=lambda_ind, fail_stop_fraction=1.0)

    @classmethod
    def silent_only(cls, lambda_ind: float) -> "ErrorModel":
        """All errors silent (``f = 0``)."""
        return cls(lambda_ind=lambda_ind, fail_stop_fraction=0.0)

    def with_lambda(self, lambda_ind: float) -> "ErrorModel":
        """Copy with a different individual rate (Figure 5/6 sweeps)."""
        return ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=self.fail_stop_fraction)


def expected_time_lost(lam, W):
    """Expected time lost before an error within a window of length ``W``.

    For an exponential arrival with rate ``lam`` *conditioned on striking
    before W*:

    .. math::

        E_{lost}(W) = \\frac{1}{\\lambda} - \\frac{W}{e^{\\lambda W} - 1}.

    Numerically stable for ``lam * W`` down to 0 (limit ``W/2``) thanks to
    ``expm1``; vectorised over arrays.

    >>> round(expected_time_lost(0.0, 10.0), 6)
    5.0
    """
    lam_arr = np.asarray(lam, dtype=float)
    W_arr = np.asarray(W, dtype=float)
    if np.any(lam_arr < 0.0):
        raise InvalidParameterError(f"rate must be >= 0, got {lam!r}")
    if np.any(W_arr < 0.0):
        raise InvalidParameterError(f"window must be >= 0, got {W!r}")

    x = lam_arr * W_arr
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        generic = 1.0 / lam_arr - W_arr / np.expm1(x)
    # Small-x series W (1/2 - x/12 + x^3/720 - ...): the generic form
    # subtracts two O(1/lambda) quantities and loses ~x digits there.
    small = x < 1e-3
    series = W_arr * (0.5 - x / 12.0 + x**3 / 720.0)
    result = np.where(small, series, generic)
    if np.ndim(lam) == 0 and np.ndim(W) == 0:
        return float(result)
    return result
