"""Application-level makespan projection and scaling helpers.

Section II of the paper links pattern-level overhead to application
makespan: a long-lasting job of total sequential work ``W_total`` split
into patterns of work :math:`T\\,S(P)` has expected makespan

.. math::

    E(W_{final}) \\approx H(T, P)\\, W_{total}.

This module packages that projection plus weak-scaling helpers for the
paper's "weak vs. strong scalability" future-work direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from ..units import format_duration
from .pattern import PatternModel

__all__ = ["ApplicationSpec", "MakespanReport", "project_makespan", "weak_scaled_work"]


@dataclass(frozen=True)
class ApplicationSpec:
    """A long-running application characterised by its sequential work.

    Parameters
    ----------
    total_work:
        Total sequential execution time ``W_total`` in seconds (the time
        the job would take on one error-free processor).
    name:
        Optional human-readable label used in reports.
    """

    total_work: float
    name: str = "application"

    def __post_init__(self) -> None:
        if self.total_work <= 0.0:
            raise InvalidParameterError(
                f"total work must be positive, got {self.total_work!r}"
            )


@dataclass(frozen=True)
class MakespanReport:
    """Projection of an application run with a given pattern."""

    spec: ApplicationSpec
    processors: float
    period: float
    expected_makespan: float
    error_free_makespan: float
    pattern_count: float
    overhead: float

    @property
    def resilience_penalty(self) -> float:
        """Slowdown factor vs. the error-free run on the same ``P``."""
        return self.expected_makespan / self.error_free_makespan

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.spec.name}: W_total = {format_duration(self.spec.total_work)} "
            f"on P = {self.processors:g} with T = {format_duration(self.period)}; "
            f"expected makespan {format_duration(self.expected_makespan)} "
            f"({self.pattern_count:.0f} patterns, overhead {self.overhead:.4f}, "
            f"x{self.resilience_penalty:.3f} vs error-free)"
        )


def project_makespan(
    model: PatternModel, spec: ApplicationSpec, T: float, P: float
) -> MakespanReport:
    """Project the expected makespan of ``spec`` under pattern ``(T, P)``."""
    overhead = model.overhead(T, P)
    expected = overhead * spec.total_work
    error_free = model.error_free_overhead(P) * spec.total_work
    patterns = model.pattern_count(spec.total_work, T, P)
    return MakespanReport(
        spec=spec,
        processors=P,
        period=T,
        expected_makespan=float(expected),
        error_free_makespan=float(error_free),
        pattern_count=float(patterns),
        overhead=float(overhead),
    )


def weak_scaled_work(base_work: float, P: float, alpha: float) -> float:
    """Gustafson-style weak scaling of the total work with the machine.

    The sequential part stays fixed while the parallel part grows
    proportionally to ``P``:

    .. math:: W(P) = W_{base}\\,(\\alpha + (1 - \\alpha) P).

    Returns the scaled sequential-equivalent work ``W(P)``.
    """
    if base_work <= 0.0:
        raise InvalidParameterError(f"base work must be positive, got {base_work!r}")
    if not 0.0 <= alpha <= 1.0:
        raise InvalidParameterError(f"alpha must be in [0, 1], got {alpha!r}")
    if P <= 0.0:
        raise InvalidParameterError(f"P must be positive, got {P!r}")
    return base_work * (alpha + (1.0 - alpha) * P)
