"""Validity bounds of the first-order approximation (Section III-B).

The first-order analysis Taylor-expands :math:`e^{\\lambda_P C_P}`,
:math:`e^{\\lambda_P V_P}` and :math:`e^{\\lambda_P T}`; this is accurate
only while the exponents are small.  Writing :math:`P = \\Theta(\\lambda^{-x})`
and :math:`T = \\Theta(\\lambda^{-y})` the paper shows the expansion needs

.. math::

    x < \\delta = \\begin{cases} 1/2 & c \\ne 0 \\\\ 1 & c = 0 \\end{cases}
    \\qquad\\text{and}\\qquad  y < 1 - x .

This module provides both the *order-level* bounds (for asymptotic
sweeps) and a concrete *smallness check* for a given ``(T, P)`` pair:
the dimensionless products :math:`\\lambda_P (C_P + V_P)` and
:math:`(\\lambda^f_P/2 + \\lambda^s_P)\\,T` must be :math:`\\ll 1`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .costs import ResilienceCosts
from .errors import ErrorModel
from .pattern import PatternModel

__all__ = [
    "max_processor_order",
    "max_period_order",
    "processor_order",
    "period_order",
    "ValidityReport",
    "check_pattern",
]


def max_processor_order(costs: ResilienceCosts) -> float:
    """The bound :math:`\\delta` on ``x`` (``P = Θ(λ^-x)``), Eq. (5).

    ``1/2`` when the checkpoint cost grows linearly (``c != 0``), ``1``
    otherwise.
    """
    return 0.5 if costs.c != 0.0 else 1.0


def max_period_order(x: float) -> float:
    """The bound on ``y`` (``T = Θ(λ^-y)``) for a given ``x``, Eq. (6)."""
    return 1.0 - x


def processor_order(P, lambda_ind: float) -> float:
    """Empirical order ``x = -log(P)/log(lambda_ind)`` of a processor count.

    Useful to place a concrete allocation on the Section III-B map.
    Requires ``lambda_ind < 1`` (true for any realistic per-second rate).
    """
    if lambda_ind <= 0.0 or lambda_ind >= 1.0:
        raise ValueError(f"order is defined for 0 < lambda_ind < 1, got {lambda_ind!r}")
    return float(-np.log(P) / np.log(lambda_ind))


def period_order(T, lambda_ind: float) -> float:
    """Empirical order ``y = -log(T)/log(lambda_ind)`` of a period."""
    if lambda_ind <= 0.0 or lambda_ind >= 1.0:
        raise ValueError(f"order is defined for 0 < lambda_ind < 1, got {lambda_ind!r}")
    return float(-np.log(T) / np.log(lambda_ind))


@dataclass(frozen=True)
class ValidityReport:
    """Concrete smallness diagnostics for a pattern ``(T, P)``.

    Attributes
    ----------
    epsilon_resilience:
        :math:`\\lambda_{ind} P (C_P + V_P)` — must be small for the
        expansion of the resilience-cost exponentials.
    epsilon_period:
        :math:`(\\lambda^f_P/2 + \\lambda^s_P) T` — must be small for the
        expansion of the period exponential.
    processor_order_x / period_order_y:
        The empirical orders of ``P`` and ``T`` in terms of
        ``lambda_ind``.
    processor_bound / period_bound:
        The Section III-B bounds these orders must stay below.
    threshold:
        Smallness threshold used for the boolean verdicts.
    """

    epsilon_resilience: float
    epsilon_period: float
    processor_order_x: float
    period_order_y: float
    processor_bound: float
    period_bound: float
    threshold: float

    @property
    def resilience_ok(self) -> bool:
        return self.epsilon_resilience < self.threshold

    @property
    def period_ok(self) -> bool:
        return self.epsilon_period < self.threshold

    @property
    def orders_ok(self) -> bool:
        return (
            self.processor_order_x < self.processor_bound
            and self.period_order_y < self.period_bound
        )

    @property
    def ok(self) -> bool:
        """All smallness conditions hold — first-order results trustworthy."""
        return self.resilience_ok and self.period_ok


def check_pattern(T: float, P: float, model: PatternModel, threshold: float = 0.1) -> ValidityReport:
    """Diagnose whether first-order results are trustworthy at ``(T, P)``.

    ``threshold`` is the magnitude below which an exponent is considered
    "small"; 0.1 keeps the relative truncation error of the expansions
    under about 1%.
    """
    errors: ErrorModel = model.errors
    costs = model.costs
    lam_total = errors.total_rate(P)
    eps_res = float(lam_total * costs.combined_cost(P))
    lam_eff = errors.fail_stop_rate(P) / 2.0 + errors.silent_rate(P)
    eps_per = float(lam_eff * T)
    lam_ind = errors.lambda_ind
    if 0.0 < lam_ind < 1.0:
        x = processor_order(P, lam_ind)
        y = period_order(T, lam_ind) if T > 1.0 else 0.0
    else:  # degenerate rates: orders are meaningless, report zeros
        x = 0.0
        y = 0.0
    return ValidityReport(
        epsilon_resilience=eps_res,
        epsilon_period=eps_per,
        processor_order_x=x,
        period_order_y=y,
        processor_bound=max_processor_order(costs),
        period_bound=max_period_order(x),
        threshold=threshold,
    )
