"""Resilience cost models: checkpoint, recovery, verification, downtime.

The paper (Section II) adopts general scalable forms:

* checkpoint  :math:`C_P = a + b/P + cP`
* recovery    :math:`R_P = C_P` (same I/O volume; an independent recovery
  model is still supported for ablations)
* verification :math:`V_P = v + u/P`
* downtime    ``D`` — a constant, immune to errors.

Interpretation of the coefficients (Section II):

* ``a`` — start-up/latency term, or the I/O time :math:`\\beta + M/\\tau_{io}`
  when stable storage is the bottleneck;
* ``b/P`` — per-processor share :math:`M/(\\tau_{net} P)` of the memory
  footprint for in-memory checkpointing;
* ``cP`` — coordination/message-passing overhead growing with scale;
* ``v`` / ``u/P`` — same split for in-memory verification.

The first-order analysis of Section III-D distinguishes three *regimes*
based on the combined cost :math:`C_P + V_P = cP + d + h/P` with
``d = a + v`` and ``h = b + u``:

* :attr:`CostRegime.LINEAR`   (``c != 0``)          — Theorem 2;
* :attr:`CostRegime.CONSTANT` (``c == 0, d != 0``)  — Theorem 3;
* :attr:`CostRegime.DECAYING` (``c == d == 0``)     — case 3, numerical only.

All evaluators are vectorised over numpy arrays of ``P``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "CheckpointCost",
    "VerificationCost",
    "ResilienceCosts",
    "CostRegime",
]


def _as_float_array_or_scalar(P):
    arr = np.asarray(P, dtype=float)
    if np.any(arr <= 0.0):
        raise InvalidParameterError(f"processor count must be positive, got {P!r}")
    return arr if np.ndim(P) else float(arr)


class CostRegime(enum.Enum):
    """Scalability regime of the combined cost :math:`C_P + V_P`."""

    #: ``c != 0``: combined cost grows linearly with P (Theorem 2).
    LINEAR = "linear"
    #: ``c == 0`` and ``d = a + v != 0``: combined cost bounded (Theorem 3).
    CONSTANT = "constant"
    #: ``c == d == 0`` and ``h = b + u != 0``: cost decays as h/P (case 3).
    DECAYING = "decaying"
    #: All coefficients zero: free resilience (degenerate, testing only).
    FREE = "free"


@dataclass(frozen=True)
class CheckpointCost:
    """Checkpoint (and recovery) time model :math:`a + b/P + cP`."""

    a: float = 0.0
    b: float = 0.0
    c: float = 0.0

    def __post_init__(self) -> None:
        # Array-tolerant: the batch optimisers stack models into one
        # whose coefficients are per-column arrays.
        for name in ("a", "b", "c"):
            value = np.asarray(getattr(self, name))
            if np.any(value < 0.0) or not np.all(np.isfinite(value)):
                raise InvalidParameterError(
                    f"checkpoint coefficient {name} must be finite and >= 0, "
                    f"got {getattr(self, name)!r}"
                )

    def __call__(self, P):
        """Evaluate :math:`C_P` for scalar or array ``P``."""
        P = _as_float_array_or_scalar(P)
        return self.a + self.b / P + self.c * P

    def derivative(self, P):
        """:math:`dC_P/dP = -b/P^2 + c`."""
        P = _as_float_array_or_scalar(P)
        return -self.b / P**2 + self.c

    @property
    def is_zero(self) -> bool:
        return self.a == 0.0 and self.b == 0.0 and self.c == 0.0

    @classmethod
    def constant(cls, cost: float) -> "CheckpointCost":
        """A cost independent of P (scenario 3/4 form)."""
        return cls(a=cost)

    @classmethod
    def linear(cls, per_processor: float) -> "CheckpointCost":
        """A cost ``c * P`` (scenario 1/2 form)."""
        return cls(c=per_processor)

    @classmethod
    def scaling(cls, total: float) -> "CheckpointCost":
        """A cost ``b / P`` that shrinks with P (scenario 5/6 form)."""
        return cls(b=total)


@dataclass(frozen=True)
class VerificationCost:
    """Verification time model :math:`v + u/P`."""

    v: float = 0.0
    u: float = 0.0

    def __post_init__(self) -> None:
        for name in ("v", "u"):
            value = np.asarray(getattr(self, name))
            if np.any(value < 0.0) or not np.all(np.isfinite(value)):
                raise InvalidParameterError(
                    f"verification coefficient {name} must be finite and >= 0, "
                    f"got {getattr(self, name)!r}"
                )

    def __call__(self, P):
        """Evaluate :math:`V_P` for scalar or array ``P``."""
        P = _as_float_array_or_scalar(P)
        return self.v + self.u / P

    def derivative(self, P):
        """:math:`dV_P/dP = -u/P^2`."""
        P = _as_float_array_or_scalar(P)
        return -self.u / P**2

    @property
    def is_zero(self) -> bool:
        return self.v == 0.0 and self.u == 0.0

    @classmethod
    def constant(cls, cost: float) -> "VerificationCost":
        return cls(v=cost)

    @classmethod
    def scaling(cls, total: float) -> "VerificationCost":
        return cls(u=total)


@dataclass(frozen=True)
class ResilienceCosts:
    """Bundle of all resilience-operation costs of the VC protocol.

    Parameters
    ----------
    checkpoint:
        The checkpoint time model :math:`C_P`.
    verification:
        The verification time model :math:`V_P`.
    downtime:
        Constant downtime ``D`` (seconds) after each fail-stop error.
    recovery:
        Recovery time model :math:`R_P`.  Defaults to the checkpoint
        model, as assumed throughout the paper (``R_P = C_P``).
    """

    checkpoint: CheckpointCost
    verification: VerificationCost = field(default_factory=VerificationCost)
    downtime: float = 0.0
    recovery: CheckpointCost | None = None

    def __post_init__(self) -> None:
        downtime = np.asarray(self.downtime)
        if np.any(downtime < 0.0) or not np.all(np.isfinite(downtime)):
            raise InvalidParameterError(
                f"downtime must be finite and >= 0, got {self.downtime!r}"
            )

    # -- evaluators -----------------------------------------------------

    def checkpoint_cost(self, P):
        """:math:`C_P`."""
        return self.checkpoint(P)

    def recovery_cost(self, P):
        """:math:`R_P` (defaults to :math:`C_P`)."""
        model = self.recovery if self.recovery is not None else self.checkpoint
        return model(P)

    def verification_cost(self, P):
        """:math:`V_P`."""
        return self.verification(P)

    def combined_cost(self, P):
        """:math:`C_P + V_P` — the quantity the optimal period depends on."""
        return self.checkpoint(P) + self.verification(P)

    # -- regime algebra (Section III-D) ---------------------------------

    @property
    def c(self) -> float:
        """Linear coefficient of :math:`C_P + V_P` (verification has none)."""
        return self.checkpoint.c

    @property
    def d(self) -> float:
        """Constant coefficient ``d = a + v`` of :math:`C_P + V_P`."""
        return self.checkpoint.a + self.verification.v

    @property
    def h(self) -> float:
        """Decaying coefficient ``h = b + u`` of :math:`C_P + V_P`."""
        return self.checkpoint.b + self.verification.u

    @property
    def regime(self) -> CostRegime:
        """Which case of Section III-D this cost bundle falls into."""
        if self.c != 0.0:
            return CostRegime.LINEAR
        if self.d != 0.0:
            return CostRegime.CONSTANT
        if self.h != 0.0:
            return CostRegime.DECAYING
        return CostRegime.FREE

    # -- convenience constructors ---------------------------------------

    @classmethod
    def simple(
        cls, checkpoint: float, verification: float = 0.0, downtime: float = 0.0
    ) -> "ResilienceCosts":
        """Constant (P-independent) costs — the textbook Young/Daly setting."""
        return cls(
            checkpoint=CheckpointCost.constant(checkpoint),
            verification=VerificationCost.constant(verification),
            downtime=downtime,
        )

    def with_downtime(self, downtime: float) -> "ResilienceCosts":
        """Copy of this bundle with a different downtime (Figure 7 sweeps)."""
        return ResilienceCosts(
            checkpoint=self.checkpoint,
            verification=self.verification,
            downtime=downtime,
            recovery=self.recovery,
        )
