"""Core analytical models of *When Amdahl Meets Young/Daly*.

Submodules
----------
``speedup``
    Failure-free speedup profiles (Amdahl, Gustafson, power-law).
``costs``
    Resilience cost models :math:`C_P = a + b/P + cP`, :math:`V_P = v + u/P`.
``errors``
    Fail-stop / silent error model and platform-level rates.
``pattern``
    Exact expected pattern time (Proposition 1) and overhead objective.
``first_order``
    Closed-form optimal patterns (Theorems 1-3 and degenerate cases).
``young_daly``
    Classical Young/Daly baselines.
``validity``
    First-order validity bounds (Section III-B).
``makespan``
    Application-level makespan projection.
"""

from .costs import CheckpointCost, CostRegime, ResilienceCosts, VerificationCost
from .errors import ErrorModel, expected_time_lost
from .first_order import (
    FirstOrderSolution,
    asymptotic_orders,
    case3_overhead,
    case4_overhead,
    optimal_pattern,
    optimal_pattern_batch,
    optimal_period,
    overhead_at_optimal_period,
    theorem2_solution,
    theorem3_solution,
)
from .makespan import ApplicationSpec, MakespanReport, project_makespan, weak_scaled_work
from .pattern import (
    PatternModel,
    expected_checkpoint_time,
    expected_pattern_time,
    expected_pattern_time_first_order,
    expected_recovery_time,
    expected_work_time,
    pattern_overhead,
    pattern_speedup,
    stack_models,
    take_model,
)
from .speedup import (
    AmdahlSpeedup,
    GustafsonSpeedup,
    PerfectSpeedup,
    PowerLawSpeedup,
    SpeedupModel,
)
from .validity import (
    ValidityReport,
    check_pattern,
    max_period_order,
    max_processor_order,
    period_order,
    processor_order,
)
from .young_daly import (
    daly_period,
    daly_period_for,
    generalized_period,
    young_period,
    young_period_for,
)

__all__ = [
    # speedup
    "SpeedupModel",
    "AmdahlSpeedup",
    "PerfectSpeedup",
    "GustafsonSpeedup",
    "PowerLawSpeedup",
    # costs
    "CheckpointCost",
    "VerificationCost",
    "ResilienceCosts",
    "CostRegime",
    # errors
    "ErrorModel",
    "expected_time_lost",
    # pattern
    "PatternModel",
    "expected_pattern_time",
    "expected_pattern_time_first_order",
    "expected_recovery_time",
    "expected_checkpoint_time",
    "expected_work_time",
    "pattern_overhead",
    "pattern_speedup",
    "stack_models",
    "take_model",
    # first order
    "FirstOrderSolution",
    "optimal_period",
    "overhead_at_optimal_period",
    "optimal_pattern",
    "optimal_pattern_batch",
    "theorem2_solution",
    "theorem3_solution",
    "case3_overhead",
    "case4_overhead",
    "asymptotic_orders",
    # young/daly
    "young_period",
    "daly_period",
    "young_period_for",
    "daly_period_for",
    "generalized_period",
    # validity
    "ValidityReport",
    "check_pattern",
    "max_processor_order",
    "max_period_order",
    "processor_order",
    "period_order",
    # makespan
    "ApplicationSpec",
    "MakespanReport",
    "project_makespan",
    "weak_scaled_work",
]
