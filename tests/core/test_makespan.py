"""Application makespan projection and weak-scaling helpers."""

from __future__ import annotations

import pytest

from repro.core import ApplicationSpec, project_makespan, weak_scaled_work
from repro.exceptions import InvalidParameterError
from repro.units import days


class TestApplicationSpec:
    def test_basic(self):
        spec = ApplicationSpec(total_work=days(30), name="climate-run")
        assert spec.total_work == pytest.approx(days(30))

    def test_rejects_nonpositive_work(self):
        with pytest.raises(InvalidParameterError):
            ApplicationSpec(total_work=0.0)


class TestProjectMakespan:
    def test_overhead_times_work(self, simple_model):
        spec = ApplicationSpec(total_work=1e8)
        T, P = 3000.0, 100
        report = project_makespan(simple_model, spec, T, P)
        assert report.expected_makespan == pytest.approx(
            simple_model.overhead(T, P) * 1e8
        )

    def test_error_free_reference(self, simple_model):
        spec = ApplicationSpec(total_work=1e8)
        report = project_makespan(simple_model, spec, 3000.0, 100)
        assert report.error_free_makespan == pytest.approx(
            simple_model.error_free_overhead(100) * 1e8
        )
        assert report.resilience_penalty > 1.0

    def test_pattern_count(self, simple_model):
        spec = ApplicationSpec(total_work=1e8)
        T, P = 3000.0, 100
        report = project_makespan(simple_model, spec, T, P)
        assert report.pattern_count == pytest.approx(
            1e8 / (T * simple_model.speedup.speedup(P))
        )

    def test_summary_is_readable(self, simple_model):
        spec = ApplicationSpec(total_work=1e8, name="demo")
        text = project_makespan(simple_model, spec, 3000.0, 100).summary()
        assert "demo" in text and "overhead" in text


class TestWeakScaling:
    def test_gustafson_form(self):
        assert weak_scaled_work(100.0, 10.0, alpha=0.2) == pytest.approx(
            100.0 * (0.2 + 0.8 * 10)
        )

    def test_single_processor_identity(self):
        assert weak_scaled_work(100.0, 1.0, alpha=0.3) == pytest.approx(100.0)

    def test_fully_sequential_never_scales(self):
        assert weak_scaled_work(100.0, 1000.0, alpha=1.0) == pytest.approx(100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_work": -1.0, "P": 10.0, "alpha": 0.1},
            {"base_work": 10.0, "P": 0.0, "alpha": 0.1},
            {"base_work": 10.0, "P": 10.0, "alpha": 1.5},
        ],
    )
    def test_rejects_bad_inputs(self, kwargs):
        with pytest.raises(InvalidParameterError):
            weak_scaled_work(**kwargs)
