"""Proposition 1: exact expected pattern time, verified from first principles.

The key test re-derives the recurrences from the paper's proof and
checks that the closed forms satisfy them *exactly* (up to float
round-off), then exercises limits, monotonicity, vectorisation and the
first-order expansion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AmdahlSpeedup,
    ErrorModel,
    PatternModel,
    ResilienceCosts,
    expected_pattern_time,
    expected_pattern_time_first_order,
    pattern_overhead,
    pattern_speedup,
)
from repro.core.errors import expected_time_lost
from repro.core.pattern import (
    expected_checkpoint_time,
    expected_recovery_time,
    expected_work_time,
)
from repro.exceptions import InvalidParameterError


def _params(model: PatternModel, P: float):
    lam_f = model.errors.fail_stop_rate(P)
    lam_s = model.errors.silent_rate(P)
    C = model.costs.checkpoint_cost(P)
    R = model.costs.recovery_cost(P)
    V = model.costs.verification_cost(P)
    D = model.costs.downtime
    return lam_f, lam_s, C, R, V, D


class TestLimits:
    def test_error_free_is_sum_of_segments(self):
        model = PatternModel(
            errors=ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5),
            costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=30.0),
            speedup=AmdahlSpeedup(0.1),
        )
        assert model.expected_time(1000.0, 64) == pytest.approx(1070.0)

    def test_silent_only_closed_form(self):
        # E = C - R + e^{lam_s T}(R + T + V): geometric re-executions of
        # (T + V + R), one final checkpoint.
        model = PatternModel(
            errors=ErrorModel.silent_only(1e-5),
            costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=30.0),
            speedup=AmdahlSpeedup(0.1),
        )
        T, P = 2000.0, 50
        lam_s = model.errors.silent_rate(P)
        expected = 60.0 - 60.0 + np.exp(lam_s * T) * (60.0 + T + 10.0)
        assert model.expected_time(T, P) == pytest.approx(expected, rel=1e-12)

    def test_fail_stop_only_closed_form(self):
        # Classic checkpoint/restart: E = (1/lam + D) e^{lam R}(e^{lam(T+V+C)} - 1).
        model = PatternModel(
            errors=ErrorModel.fail_stop_only(1e-5),
            costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=30.0),
            speedup=AmdahlSpeedup(0.1),
        )
        T, P = 2000.0, 50
        lam = model.errors.fail_stop_rate(P)
        expected = (1.0 / lam + 30.0) * np.exp(lam * 60.0) * np.expm1(lam * 2070.0)
        assert model.expected_time(T, P) == pytest.approx(expected, rel=1e-12)

    def test_exact_exceeds_error_free_time(self, simple_model):
        T, P = 3000.0, 100
        base = T + simple_model.costs.combined_cost(P)
        assert simple_model.expected_time(T, P) > base

    def test_tiny_rate_converges_to_error_free(self, simple_costs):
        model = PatternModel(
            errors=ErrorModel(lambda_ind=1e-18, fail_stop_fraction=0.5),
            costs=simple_costs,
            speedup=AmdahlSpeedup(0.1),
        )
        assert model.expected_time(1000.0, 10) == pytest.approx(1070.0, rel=1e-9)

    def test_zero_period_costs_verification_and_checkpoint(self, simple_model):
        # T = 0 is legal for E (degenerate pattern with no work).
        E = simple_model.expected_time(0.0, 10)
        assert E >= simple_model.costs.combined_cost(10)


class TestProofRecurrences:
    """Verify the renewal equations from the proof of Proposition 1.

    Each expectation must satisfy its defining fixed-point equation:

      E(R) = qf(R) (Elost(R) + D + E(R)) + (1 - qf(R)) R
      E(C) = qf(C) (Elost(C) + D + E(R) + E(T+V) + E(C)) + (1 - qf(C)) C
      E(A) = qf(A) (Elost(A) + D + E(R) + E(A))
             + (1 - qf(A)) (A + qs(T) (E(R) + E(A))),  A = T + V
    """

    @pytest.fixture
    def model(self) -> PatternModel:
        return PatternModel(
            errors=ErrorModel(lambda_ind=2e-6, fail_stop_fraction=0.35),
            costs=ResilienceCosts.simple(checkpoint=80.0, verification=12.0, downtime=45.0),
            speedup=AmdahlSpeedup(0.1),
        )

    def test_recovery_recurrence(self, model):
        P = 120
        lam_f, _, _, R, _, D = _params(model, P)
        ER = expected_recovery_time(P, model.errors, model.costs)
        qf = -np.expm1(-lam_f * R)
        rhs = qf * (expected_time_lost(lam_f, R) + D + ER) + (1 - qf) * R
        assert ER == pytest.approx(rhs, rel=1e-12)

    def test_work_recurrence(self, model):
        T, P = 5000.0, 120
        lam_f, lam_s, _, _, V, D = _params(model, P)
        A = T + V
        ER = expected_recovery_time(P, model.errors, model.costs)
        EA = expected_work_time(T, P, model.errors, model.costs)
        qf = -np.expm1(-lam_f * A)
        qs = -np.expm1(-lam_s * T)
        rhs = qf * (expected_time_lost(lam_f, A) + D + ER + EA) + (1 - qf) * (
            A + qs * (ER + EA)
        )
        assert EA == pytest.approx(rhs, rel=1e-12)

    def test_checkpoint_recurrence(self, model):
        T, P = 5000.0, 120
        lam_f, _, C, _, _, D = _params(model, P)
        ER = expected_recovery_time(P, model.errors, model.costs)
        EA = expected_work_time(T, P, model.errors, model.costs)
        EC = expected_checkpoint_time(T, P, model.errors, model.costs)
        qf = -np.expm1(-lam_f * C)
        rhs = qf * (expected_time_lost(lam_f, C) + D + ER + EA + EC) + (1 - qf) * C
        assert EC == pytest.approx(rhs, rel=1e-12)

    def test_decomposition_matches_eq2(self, model):
        # E(PATTERN) = E(T + V) + E(C) must equal the closed Eq. (2).
        T, P = 5000.0, 120
        EA = expected_work_time(T, P, model.errors, model.costs)
        EC = expected_checkpoint_time(T, P, model.errors, model.costs)
        E = expected_pattern_time(T, P, model.errors, model.costs)
        assert E == pytest.approx(EA + EC, rel=1e-12)

    def test_eq2_literal_form(self, model):
        # Evaluate Eq. (2) verbatim and compare with the implementation.
        T, P = 3000.0, 200
        lam_f, lam_s, C, R, V, D = _params(model, P)
        eq2 = (1.0 / lam_f + D) * (
            np.exp(lam_f * C) * (1.0 - np.exp(lam_s * T))
            + np.exp(lam_f * R) * (np.exp(lam_f * (C + T + V) + lam_s * T) - 1.0)
        )
        assert expected_pattern_time(T, P, model.errors, model.costs) == pytest.approx(
            eq2, rel=1e-10
        )

    def test_silent_only_components(self):
        # With lam_f = 0 the components reduce to R, C, and the geometric
        # silent re-execution form.
        model = PatternModel(
            errors=ErrorModel.silent_only(1e-5),
            costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=30.0),
            speedup=AmdahlSpeedup(0.1),
        )
        T, P = 2000.0, 50
        assert expected_recovery_time(P, model.errors, model.costs) == pytest.approx(60.0)
        assert expected_checkpoint_time(T, P, model.errors, model.costs) == pytest.approx(60.0)
        lam_s = model.errors.silent_rate(P)
        expected_work = np.exp(lam_s * T) * 2010.0 + np.expm1(lam_s * T) * 60.0
        assert expected_work_time(T, P, model.errors, model.costs) == pytest.approx(
            expected_work, rel=1e-12
        )


class TestMonotonicity:
    def test_increasing_in_period(self, simple_model):
        T = np.linspace(100.0, 50_000.0, 40)
        E = simple_model.expected_time(T, 100)
        assert np.all(np.diff(E) > 0)

    def test_increasing_in_rate(self, simple_costs):
        values = []
        for lam in (1e-8, 1e-7, 1e-6, 1e-5):
            model = PatternModel(
                errors=ErrorModel(lambda_ind=lam, fail_stop_fraction=0.5),
                costs=simple_costs,
                speedup=AmdahlSpeedup(0.1),
            )
            values.append(model.expected_time(3000.0, 100))
        assert values == sorted(values)

    def test_increasing_in_downtime(self, simple_errors):
        values = []
        for D in (0.0, 60.0, 600.0, 3600.0):
            costs = ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=D)
            model = PatternModel(simple_errors, costs, AmdahlSpeedup(0.1))
            values.append(model.expected_time(3000.0, 100))
        assert values == sorted(values)

    def test_overhead_unimodal_in_period(self, simple_model):
        # H(T, P) has a single interior minimum in T.
        T = np.logspace(1, 6, 200)
        H = simple_model.overhead(T, 100)
        i = int(np.argmin(H))
        assert 0 < i < T.size - 1
        assert np.all(np.diff(H[: i + 1]) < 0)
        assert np.all(np.diff(H[i:]) > 0)


class TestVectorisation:
    def test_broadcast_t_and_p(self, simple_model):
        T = np.array([1000.0, 2000.0, 3000.0])
        P = np.array([[10.0], [100.0]])
        E = simple_model.expected_time(T, P)
        assert E.shape == (2, 3)
        assert E[1, 2] == pytest.approx(simple_model.expected_time(3000.0, 100.0))

    def test_scalar_in_scalar_out(self, simple_model):
        assert isinstance(simple_model.expected_time(1000.0, 10), float)

    def test_array_matches_scalar_loop(self, simple_model):
        T = np.array([500.0, 5000.0, 50_000.0])
        E = simple_model.expected_time(T, 64)
        for i, t in enumerate(T):
            assert E[i] == pytest.approx(simple_model.expected_time(float(t), 64))

    def test_rejects_negative_period(self, simple_model):
        with pytest.raises(InvalidParameterError):
            simple_model.expected_time(-1.0, 10)

    def test_rejects_nan_period(self, simple_model):
        with pytest.raises(InvalidParameterError):
            simple_model.expected_time(float("nan"), 10)


class TestFirstOrderExpansion:
    def test_matches_exact_for_small_rates(self):
        # Relative truncation error of the 2nd-order expansion is
        # O((lambda T)^2) ~ 1e-6 here.
        model = PatternModel(
            errors=ErrorModel(lambda_ind=1e-10, fail_stop_fraction=0.3),
            costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=300.0),
            speedup=AmdahlSpeedup(0.1),
        )
        T, P = 10_000.0, 100
        exact = model.expected_time(T, P)
        approx = model.expected_time_first_order(T, P)
        assert approx == pytest.approx(exact, rel=1e-6)

    def test_expansion_terms(self):
        # With lambda = 0 the expansion is exactly T + V + C.
        model = PatternModel(
            errors=ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5),
            costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0),
            speedup=AmdahlSpeedup(0.1),
        )
        assert expected_pattern_time_first_order(
            1000.0, 10, model.errors, model.costs
        ) == pytest.approx(1070.0)

    def test_underestimates_exact(self, simple_model):
        # The dropped higher-order terms are positive, so the truncated
        # series sits below the exact expectation.
        T, P = 5000.0, 200
        assert simple_model.expected_time_first_order(T, P) < simple_model.expected_time(T, P)


class TestOverheadAndSpeedup:
    def test_overhead_definition(self, simple_model):
        T, P = 3000.0, 100
        E = simple_model.expected_time(T, P)
        H = simple_model.overhead(T, P)
        assert H == pytest.approx(simple_model.speedup.overhead(P) * E / T)

    def test_overhead_floor_is_error_free(self, simple_model):
        T, P = 3000.0, 100
        assert simple_model.overhead(T, P) > simple_model.error_free_overhead(P)

    def test_speedup_is_reciprocal(self, simple_model):
        T, P = 3000.0, 100
        assert simple_model.expected_speedup(T, P) * simple_model.overhead(
            T, P
        ) == pytest.approx(1.0)

    def test_overhead_rejects_zero_period(self, simple_model):
        with pytest.raises(InvalidParameterError):
            simple_model.overhead(0.0, 10)

    def test_module_level_functions_agree_with_model(self, simple_model):
        T, P = 2500.0, 64
        assert pattern_overhead(
            T, P, simple_model.errors, simple_model.costs, simple_model.speedup
        ) == pytest.approx(simple_model.overhead(T, P))
        assert pattern_speedup(
            T, P, simple_model.errors, simple_model.costs, simple_model.speedup
        ) == pytest.approx(simple_model.expected_speedup(T, P))


class TestPatternModelHelpers:
    def test_pattern_work(self, simple_model):
        T, P = 1000.0, 100
        assert simple_model.pattern_work(T, P) == pytest.approx(
            T * simple_model.speedup.speedup(P)
        )

    def test_makespan_projection(self, simple_model):
        W = 1e7
        T, P = 3000.0, 100
        assert simple_model.expected_makespan(W, T, P) == pytest.approx(
            simple_model.overhead(T, P) * W
        )

    def test_pattern_count(self, simple_model):
        W = 1e7
        T, P = 3000.0, 100
        n = simple_model.pattern_count(W, T, P)
        assert n == pytest.approx(W / (T * simple_model.speedup.speedup(P)))

    def test_makespan_rejects_nonpositive_work(self, simple_model):
        with pytest.raises(InvalidParameterError):
            simple_model.expected_makespan(0.0, 100.0, 10)

    def test_alpha_property(self, simple_model):
        assert simple_model.alpha == 0.1

    def test_alpha_property_non_amdahl(self, simple_errors, simple_costs):
        from repro.core import GustafsonSpeedup

        model = PatternModel(simple_errors, simple_costs, GustafsonSpeedup(0.1))
        with pytest.raises(InvalidParameterError):
            _ = model.alpha

    def test_with_downtime(self, simple_model):
        m2 = simple_model.with_downtime(9999.0)
        assert m2.costs.downtime == 9999.0
        assert simple_model.costs.downtime == 120.0

    def test_with_lambda(self, simple_model):
        m2 = simple_model.with_lambda(1e-12)
        assert m2.errors.lambda_ind == 1e-12
        assert m2.errors.fail_stop_fraction == simple_model.errors.fail_stop_fraction

    def test_with_alpha(self, simple_model):
        m2 = simple_model.with_alpha(0.01)
        assert m2.alpha == 0.01
        assert simple_model.alpha == 0.1
