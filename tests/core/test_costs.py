"""Cost models C_P = a + b/P + cP and V_P = v + u/P, plus regime algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import (
    CheckpointCost,
    CostRegime,
    ResilienceCosts,
    VerificationCost,
)
from repro.exceptions import InvalidParameterError


class TestCheckpointCost:
    def test_general_form(self):
        c = CheckpointCost(a=10.0, b=100.0, c=0.5)
        assert c(10) == pytest.approx(10.0 + 10.0 + 5.0)

    def test_constant_constructor(self):
        c = CheckpointCost.constant(300.0)
        assert c(1) == c(1e6) == 300.0

    def test_linear_constructor(self):
        c = CheckpointCost.linear(0.5)
        assert c(512) == pytest.approx(256.0)

    def test_scaling_constructor(self):
        c = CheckpointCost.scaling(1024.0)
        assert c(256) == pytest.approx(4.0)
        assert c(1024) == pytest.approx(1.0)

    def test_vectorised(self):
        c = CheckpointCost(a=1.0, b=10.0, c=0.1)
        P = np.array([1.0, 10.0, 100.0])
        np.testing.assert_allclose(c(P), [11.1, 3.0, 11.1])

    def test_derivative_matches_numeric(self):
        c = CheckpointCost(a=5.0, b=50.0, c=0.2)
        P = 23.0
        eps = 1e-5
        numeric = (c(P + eps) - c(P - eps)) / (2 * eps)
        assert c.derivative(P) == pytest.approx(numeric, rel=1e-6)

    def test_is_zero(self):
        assert CheckpointCost().is_zero
        assert not CheckpointCost(a=1.0).is_zero

    @pytest.mark.parametrize("kwargs", [{"a": -1.0}, {"b": -0.1}, {"c": float("inf")}])
    def test_rejects_bad_coefficients(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CheckpointCost(**kwargs)

    def test_rejects_nonpositive_processors(self):
        with pytest.raises(InvalidParameterError):
            CheckpointCost(a=1.0)(0)


class TestVerificationCost:
    def test_general_form(self):
        v = VerificationCost(v=2.0, u=100.0)
        assert v(50) == pytest.approx(4.0)

    def test_constant(self):
        assert VerificationCost.constant(15.4)(999) == pytest.approx(15.4)

    def test_scaling(self):
        assert VerificationCost.scaling(512.0)(512) == pytest.approx(1.0)

    def test_derivative(self):
        v = VerificationCost(v=1.0, u=64.0)
        assert v.derivative(8) == pytest.approx(-1.0)

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            VerificationCost(v=-1.0)


class TestResilienceCosts:
    def test_recovery_defaults_to_checkpoint(self):
        rc = ResilienceCosts(checkpoint=CheckpointCost.constant(100.0))
        assert rc.recovery_cost(64) == rc.checkpoint_cost(64) == 100.0

    def test_independent_recovery_model(self):
        rc = ResilienceCosts(
            checkpoint=CheckpointCost.constant(100.0),
            recovery=CheckpointCost.constant(40.0),
        )
        assert rc.recovery_cost(64) == 40.0
        assert rc.checkpoint_cost(64) == 100.0

    def test_combined_cost(self):
        rc = ResilienceCosts(
            checkpoint=CheckpointCost.constant(100.0),
            verification=VerificationCost.constant(25.0),
        )
        assert rc.combined_cost(10) == pytest.approx(125.0)

    def test_simple_constructor(self):
        rc = ResilienceCosts.simple(checkpoint=60.0, verification=5.0, downtime=30.0)
        assert rc.checkpoint_cost(99) == 60.0
        assert rc.verification_cost(99) == 5.0
        assert rc.downtime == 30.0

    def test_with_downtime_copy(self):
        rc = ResilienceCosts.simple(checkpoint=60.0)
        rc2 = rc.with_downtime(999.0)
        assert rc2.downtime == 999.0
        assert rc.downtime == 0.0  # original untouched
        assert rc2.checkpoint is rc.checkpoint

    def test_rejects_negative_downtime(self):
        with pytest.raises(InvalidParameterError):
            ResilienceCosts.simple(checkpoint=1.0, downtime=-5.0)


class TestRegimes:
    def test_linear_regime(self):
        rc = ResilienceCosts(
            checkpoint=CheckpointCost(a=10.0, c=0.5),
            verification=VerificationCost.constant(1.0),
        )
        assert rc.regime is CostRegime.LINEAR
        assert rc.c == 0.5

    def test_constant_regime(self):
        rc = ResilienceCosts(
            checkpoint=CheckpointCost.constant(100.0),
            verification=VerificationCost.constant(25.0),
        )
        assert rc.regime is CostRegime.CONSTANT
        assert rc.d == 125.0

    def test_constant_regime_via_verification_only(self):
        # Scenario 5: checkpoint decays but the constant verification
        # keeps the combined cost bounded away from zero.
        rc = ResilienceCosts(
            checkpoint=CheckpointCost.scaling(1000.0),
            verification=VerificationCost.constant(15.0),
        )
        assert rc.regime is CostRegime.CONSTANT
        assert rc.d == 15.0
        assert rc.h == 1000.0

    def test_decaying_regime(self):
        rc = ResilienceCosts(
            checkpoint=CheckpointCost.scaling(1000.0),
            verification=VerificationCost.scaling(100.0),
        )
        assert rc.regime is CostRegime.DECAYING
        assert rc.h == 1100.0

    def test_free_regime(self):
        rc = ResilienceCosts(checkpoint=CheckpointCost())
        assert rc.regime is CostRegime.FREE

    def test_regime_coefficients_sum_to_combined(self):
        rc = ResilienceCosts(
            checkpoint=CheckpointCost(a=10.0, b=100.0, c=0.5),
            verification=VerificationCost(v=2.0, u=50.0),
        )
        P = 37.0
        assert rc.combined_cost(P) == pytest.approx(rc.c * P + rc.d + rc.h / P)
