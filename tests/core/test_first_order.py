"""Theorems 1-3 and the degenerate cases of Section III-D.

Beyond literal formula checks, the tests verify the *optimality* claims:
T*_P minimises the expanded overhead, P* minimises H(T*_P, P), and the
closed forms converge to the numerical optimum as lambda_ind -> 0.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AmdahlSpeedup,
    CheckpointCost,
    CostRegime,
    ErrorModel,
    GustafsonSpeedup,
    PatternModel,
    ResilienceCosts,
    VerificationCost,
    asymptotic_orders,
    case3_overhead,
    case4_overhead,
    optimal_pattern,
    optimal_period,
    overhead_at_optimal_period,
    theorem2_solution,
    theorem3_solution,
)
from repro.exceptions import ValidityError


class TestTheorem1:
    def test_formula(self, simple_model):
        P = 100
        lam = (
            simple_model.errors.fail_stop_rate(P) / 2.0
            + simple_model.errors.silent_rate(P)
        )
        expected = np.sqrt(simple_model.costs.combined_cost(P) / lam)
        assert optimal_period(P, simple_model.errors, simple_model.costs) == pytest.approx(
            expected
        )

    def test_reduces_to_young_without_silent_errors(self):
        # f = 1, V = 0: T* = sqrt(2 C / lambda_f) = Young with mu = 1/lambda_f.
        errors = ErrorModel.fail_stop_only(1e-7)
        costs = ResilienceCosts.simple(checkpoint=120.0)
        P = 64
        lam_f = errors.fail_stop_rate(P)
        assert optimal_period(P, errors, costs) == pytest.approx(
            np.sqrt(2.0 * 120.0 / lam_f)
        )

    def test_silent_only_variant(self):
        # f = 0: T* = sqrt((V + C)/lambda_s).
        errors = ErrorModel.silent_only(1e-7)
        costs = ResilienceCosts.simple(checkpoint=100.0, verification=20.0)
        P = 64
        lam_s = errors.silent_rate(P)
        assert optimal_period(P, errors, costs) == pytest.approx(np.sqrt(120.0 / lam_s))

    def test_minimises_expanded_overhead(self, simple_model):
        # T* is the exact argmin of (V+C)/T + (lam_f/2 + lam_s) T.
        P = 100
        T_star = optimal_period(P, simple_model.errors, simple_model.costs)
        lam = (
            simple_model.errors.fail_stop_rate(P) / 2.0
            + simple_model.errors.silent_rate(P)
        )
        cost = simple_model.costs.combined_cost(P)

        def expanded(T):
            return cost / T + lam * T

        assert expanded(T_star) < expanded(T_star * 1.01)
        assert expanded(T_star) < expanded(T_star * 0.99)

    def test_near_optimal_on_exact_objective(self, hera_sc1):
        # On the real platform the first-order period is within 0.1% of
        # the exact optimum's overhead.
        from repro.optimize import optimize_period

        P = 256.0
        T_fo = optimal_period(P, hera_sc1.errors, hera_sc1.costs)
        H_fo = hera_sc1.overhead(T_fo, P)
        H_opt = optimize_period(hera_sc1, P).overhead
        assert (H_fo - H_opt) / H_opt < 1e-3

    def test_vectorised_over_p(self, hera_sc1):
        P = np.array([128.0, 512.0, 1024.0])
        T = optimal_period(P, hera_sc1.errors, hera_sc1.costs)
        assert T.shape == (3,)
        for i, p in enumerate(P):
            assert T[i] == pytest.approx(
                optimal_period(float(p), hera_sc1.errors, hera_sc1.costs)
            )

    def test_flat_in_p_for_pure_linear_costs(self):
        # With C_P = cP and no verification, T* = sqrt(c/L) exactly,
        # independent of P (the paper's scenario-1 asymptote).
        errors = ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.25)
        costs = ResilienceCosts(checkpoint=CheckpointCost.linear(0.5))
        T = optimal_period(np.array([64.0, 1024.0, 65536.0]), errors, costs)
        assert T[0] == pytest.approx(T[2])

    def test_period_decreases_with_p_for_constant_costs(self, hera_sc3):
        P = np.array([128.0, 512.0, 1024.0])
        T = optimal_period(P, hera_sc3.errors, hera_sc3.costs)
        assert T[0] > T[1] > T[2]

    def test_overhead_at_optimal_period_formula(self, hera_sc1):
        P = 300.0
        lam = (
            hera_sc1.errors.fail_stop_rate(P) / 2.0 + hera_sc1.errors.silent_rate(P)
        )
        expected = hera_sc1.speedup.overhead(P) * (
            1.0 + 2.0 * np.sqrt(lam * hera_sc1.costs.combined_cost(P))
        )
        assert overhead_at_optimal_period(P, hera_sc1) == pytest.approx(expected)

    def test_raises_on_error_free_platform(self):
        errors = ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5)
        costs = ResilienceCosts.simple(checkpoint=10.0)
        with pytest.raises(ValidityError):
            optimal_period(10, errors, costs)


class TestTheorem2:
    def test_formulas(self, linear_cost_model):
        sol = theorem2_solution(linear_cost_model)
        alpha = 0.1
        c = linear_cost_model.costs.c
        L = linear_cost_model.errors.effective_lambda
        assert sol.processors == pytest.approx(
            (1.0 / (c * L)) ** 0.25 * ((1 - alpha) / (2 * alpha)) ** 0.5
        )
        assert sol.period == pytest.approx((c / L) ** 0.5)
        assert sol.overhead == pytest.approx(
            alpha + 2.0 * (4 * alpha**2 * (1 - alpha) ** 2 * c * L) ** 0.25
        )
        assert sol.theorem == "theorem-2"
        assert sol.regime is CostRegime.LINEAR

    def test_period_consistent_with_theorem1(self, linear_cost_model):
        # Substituting P* into Theorem 1 must give the same T*.
        sol = theorem2_solution(linear_cost_model)
        T1 = optimal_period(
            sol.processors, linear_cost_model.errors, linear_cost_model.costs
        )
        # Scenario-1-style costs include the o(P) verification constant
        # (v / (c P*) ~ 11% here), so agreement is to first order only.
        assert T1 == pytest.approx(sol.period, rel=0.15)

    def test_p_star_minimises_overhead_curve(self, linear_cost_model):
        sol = theorem2_solution(linear_cost_model)
        alpha, c = 0.1, linear_cost_model.costs.c
        L = linear_cost_model.errors.effective_lambda

        def H(P):
            return alpha + 2 * alpha * P * np.sqrt(c * L) + (1 - alpha) / P

        assert H(sol.processors) <= H(sol.processors * 1.01)
        assert H(sol.processors) <= H(sol.processors * 0.99)

    def test_orders_in_lambda(self):
        # P* ~ lambda^-1/4 and T* ~ lambda^-1/2.
        def build(lam):
            return PatternModel(
                errors=ErrorModel(lambda_ind=lam, fail_stop_fraction=0.25),
                costs=ResilienceCosts(
                    checkpoint=CheckpointCost.linear(0.5),
                    verification=VerificationCost.constant(15.0),
                ),
                speedup=AmdahlSpeedup(0.1),
            )

        s1 = theorem2_solution(build(1e-8))
        s2 = theorem2_solution(build(1e-12))  # rate / 10^4
        assert s2.processors / s1.processors == pytest.approx(10.0, rel=1e-9)
        assert s2.period / s1.period == pytest.approx(100.0, rel=1e-9)

    def test_speedup_property(self, linear_cost_model):
        sol = theorem2_solution(linear_cost_model)
        assert sol.speedup == pytest.approx(1.0 / sol.overhead)

    def test_rejects_wrong_regime(self, constant_cost_model):
        with pytest.raises(ValidityError):
            theorem2_solution(constant_cost_model)

    def test_rejects_alpha_zero(self, linear_cost_model):
        with pytest.raises(ValidityError):
            theorem2_solution(linear_cost_model.with_alpha(0.0))

    def test_rejects_alpha_one(self, linear_cost_model):
        with pytest.raises(ValidityError):
            theorem2_solution(linear_cost_model.with_alpha(1.0))

    def test_rejects_non_amdahl(self, linear_cost_model):
        model = PatternModel(
            linear_cost_model.errors, linear_cost_model.costs, GustafsonSpeedup(0.1)
        )
        with pytest.raises(ValidityError):
            theorem2_solution(model)


class TestTheorem3:
    def test_formulas(self, constant_cost_model):
        sol = theorem3_solution(constant_cost_model)
        alpha = 0.1
        d = constant_cost_model.costs.d
        L = constant_cost_model.errors.effective_lambda
        third = 1.0 / 3.0
        assert sol.processors == pytest.approx(
            (1.0 / (d * L)) ** third * ((1 - alpha) / alpha) ** (2 * third)
        )
        assert sol.period == pytest.approx(
            (d**2 / L) ** third * (alpha / (1 - alpha)) ** third
        )
        assert sol.overhead == pytest.approx(
            alpha + 3.0 * (alpha**2 * (1 - alpha) * d * L) ** third
        )
        assert sol.theorem == "theorem-3"

    def test_period_consistent_with_theorem1(self, constant_cost_model):
        sol = theorem3_solution(constant_cost_model)
        T1 = optimal_period(
            sol.processors, constant_cost_model.errors, constant_cost_model.costs
        )
        assert T1 == pytest.approx(sol.period, rel=1e-9)

    def test_orders_in_lambda(self):
        # Both P* and T* ~ lambda^-1/3.
        def build(lam):
            return PatternModel(
                errors=ErrorModel(lambda_ind=lam, fail_stop_fraction=0.25),
                costs=ResilienceCosts.simple(checkpoint=300.0, verification=15.0),
                speedup=AmdahlSpeedup(0.1),
            )

        s1 = theorem3_solution(build(1e-9))
        s2 = theorem3_solution(build(1e-12))  # rate / 10^3
        assert s2.processors / s1.processors == pytest.approx(10.0, rel=1e-9)
        assert s2.period / s1.period == pytest.approx(10.0, rel=1e-9)

    def test_more_parallelism_than_theorem2(self, hera_sc1, hera_sc3):
        # At the same lambda, bounded costs admit more processors
        # asymptotically (1/3 > 1/4) — check at a very small rate.
        m1 = hera_sc1.with_lambda(1e-12)
        m3 = hera_sc3.with_lambda(1e-12)
        assert theorem3_solution(m3).processors > theorem2_solution(m1).processors

    def test_rejects_wrong_regime(self, linear_cost_model):
        with pytest.raises(ValidityError):
            theorem3_solution(linear_cost_model)

    def test_rejects_alpha_zero(self, constant_cost_model):
        with pytest.raises(ValidityError):
            theorem3_solution(constant_cost_model.with_alpha(0.0))


class TestDispatch:
    def test_linear_goes_to_theorem2(self, linear_cost_model):
        assert optimal_pattern(linear_cost_model).theorem == "theorem-2"

    def test_constant_goes_to_theorem3(self, constant_cost_model):
        assert optimal_pattern(constant_cost_model).theorem == "theorem-3"

    def test_decaying_raises(self, decaying_cost_model):
        with pytest.raises(ValidityError):
            optimal_pattern(decaying_cost_model)

    def test_matches_numerical_optimum_asymptotically(self, constant_cost_model):
        # As lambda -> 0 the first-order optimum converges to the exact one.
        from repro.optimize import optimize_allocation

        model = constant_cost_model.with_lambda(1e-13)
        fo = optimal_pattern(model)
        num = optimize_allocation(model)
        assert fo.processors == pytest.approx(num.processors, rel=0.02)
        assert fo.period == pytest.approx(num.period, rel=0.02)
        assert fo.overhead == pytest.approx(num.overhead, rel=1e-4)


class TestDegenerateCases:
    def test_case3_overhead_formula(self, decaying_cost_model):
        P = 1000.0
        h = decaying_cost_model.costs.h
        L = decaying_cost_model.errors.effective_lambda
        expected = decaying_cost_model.speedup.overhead(P) * (1 + 2 * np.sqrt(h * L))
        assert case3_overhead(P, decaying_cost_model) == pytest.approx(expected)

    def test_case3_monotone_decreasing(self, decaying_cost_model):
        P = np.logspace(1, 5, 30)
        H = case3_overhead(P, decaying_cost_model)
        assert np.all(np.diff(H) < 0)

    def test_case3_rejects_other_regimes(self, linear_cost_model):
        with pytest.raises(ValidityError):
            case3_overhead(100.0, linear_cost_model)

    def test_case4_linear_costs(self, linear_cost_model):
        model = linear_cost_model.with_alpha(0.0)
        P = 1000.0
        c = model.costs.c
        L = model.errors.effective_lambda
        assert case4_overhead(P, model) == pytest.approx(1 / P + 2 * np.sqrt(c * L))

    def test_case4_constant_costs(self, constant_cost_model):
        model = constant_cost_model.with_alpha(0.0)
        P = 1000.0
        d = model.costs.d
        L = model.errors.effective_lambda
        assert case4_overhead(P, model) == pytest.approx(1 / P + 2 * np.sqrt(d * L / P))

    def test_case4_decaying_costs(self, decaying_cost_model):
        model = decaying_cost_model.with_alpha(0.0)
        P = 1000.0
        h = model.costs.h
        L = model.errors.effective_lambda
        assert case4_overhead(P, model) == pytest.approx((1 + 2 * np.sqrt(h * L)) / P)

    def test_case4_requires_alpha_zero(self, linear_cost_model):
        with pytest.raises(ValidityError):
            case4_overhead(100.0, linear_cost_model)

    def test_case4_monotone_decreasing(self, constant_cost_model):
        model = constant_cost_model.with_alpha(0.0)
        P = np.logspace(1, 6, 40)
        H = case4_overhead(P, model)
        assert np.all(np.diff(H) < 0)


class TestAsymptoticOrders:
    def test_theorem2_orders(self):
        orders = asymptotic_orders(CostRegime.LINEAR, alpha=0.1)
        assert orders == {"x": 0.25, "y": 0.5, "z": 0.25}

    def test_theorem3_orders(self):
        orders = asymptotic_orders(CostRegime.CONSTANT, alpha=0.1)
        assert orders["x"] == pytest.approx(1 / 3)
        assert orders["y"] == pytest.approx(1 / 3)

    def test_case3_orders_undefined(self):
        orders = asymptotic_orders(CostRegime.DECAYING, alpha=0.1)
        assert orders["x"] is None

    def test_alpha_zero_orders(self):
        assert asymptotic_orders(CostRegime.LINEAR, alpha=0.0)["x"] == 0.5
        assert asymptotic_orders(CostRegime.CONSTANT, alpha=0.0)["x"] == 1.0
