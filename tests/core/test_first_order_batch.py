"""`optimal_pattern_batch` vs the scalar closed forms.

The closed-form kernels themselves stay scalar (libm vs SIMD ``pow``
differ in the last ulp), so the batch entry point only vectorises the
regime *dispatch*; per model the numbers must be bit-identical to
:func:`optimal_pattern` and ``None`` must appear exactly where the
scalar call raises :class:`ValidityError`.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AmdahlSpeedup,
    ErrorModel,
    PatternModel,
    PowerLawSpeedup,
)
from repro.core.first_order import optimal_pattern, optimal_pattern_batch
from repro.exceptions import ValidityError
from repro.platforms import build_model


def scalar_or_none(model):
    try:
        return optimal_pattern(model)
    except ValidityError:
        return None


class TestOptimalPatternBatch:
    def test_platform_grid_bit_identical(self):
        models = [
            build_model("Hera", sc, alpha=alpha, lambda_ind=lam)
            for sc in (1, 2, 3, 4, 5, 6)
            for alpha in (1e-6, 1e-4, 1e-2)
            for lam in (1e-7, 1e-5)
        ]
        batch = optimal_pattern_batch(models)
        assert len(batch) == len(models)
        for model, got in zip(models, batch):
            want = scalar_or_none(model)
            if want is None:
                assert got is None
                continue
            assert got.processors == want.processors
            assert got.period == want.period
            assert got.overhead == want.overhead
            assert got.theorem == want.theorem

    def test_none_exactly_where_scalar_raises(self, hera_sc1, decaying_cost_model):
        # alpha outside (0, 1), a decaying-cost regime (no closed form)
        # and a non-Amdahl profile all invalidate the theorems; valid
        # models in the same batch must still resolve.
        alpha_zero = PatternModel(
            errors=hera_sc1.errors, costs=hera_sc1.costs,
            speedup=AmdahlSpeedup(0.0),
        )
        powerlaw = PatternModel(
            errors=hera_sc1.errors, costs=hera_sc1.costs,
            speedup=PowerLawSpeedup(0.9),
        )
        models = [alpha_zero, hera_sc1, decaying_cost_model, powerlaw]
        batch = optimal_pattern_batch(models)
        assert batch[0] is None
        assert batch[1] is not None
        assert batch[2] is None
        assert batch[3] is None
        with pytest.raises(ValidityError):
            optimal_pattern(alpha_zero)
        with pytest.raises(ValidityError):
            optimal_pattern(decaying_cost_model)
        with pytest.raises(ValidityError):
            optimal_pattern(powerlaw)

    def test_regime_fixtures(self, linear_cost_model, constant_cost_model):
        got = optimal_pattern_batch([linear_cost_model, constant_cost_model])
        assert got[0].theorem == "theorem-2"
        assert got[1].theorem == "theorem-3"
        for model, solution in zip((linear_cost_model, constant_cost_model), got):
            want = optimal_pattern(model)
            assert (solution.processors, solution.period, solution.overhead) == (
                want.processors, want.period, want.overhead
            )

    def test_empty(self):
        assert optimal_pattern_batch([]) == []
