"""Young/Daly baseline period rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ErrorModel, ResilienceCosts, young_period, daly_period
from repro.core.young_daly import (
    daly_period_for,
    generalized_period,
    young_period_for,
)
from repro.exceptions import InvalidParameterError


class TestYoung:
    def test_formula(self):
        assert young_period(3600.0, 50.0) == pytest.approx(np.sqrt(2 * 3600 * 50))

    def test_scales_with_sqrt_mtbf(self):
        assert young_period(4 * 3600.0, 50.0) == pytest.approx(
            2 * young_period(3600.0, 50.0)
        )

    def test_vectorised(self):
        mu = np.array([100.0, 400.0])
        out = young_period(mu, 2.0)
        assert out.shape == (2,)
        assert out[1] == pytest.approx(2 * out[0])

    def test_zero_checkpoint_gives_zero_period(self):
        # Free checkpoints: checkpoint continuously.
        assert young_period(1e6, 0.0) == 0.0

    def test_rejects_bad_mtbf(self):
        with pytest.raises(InvalidParameterError):
            young_period(0.0, 10.0)

    def test_rejects_negative_checkpoint(self):
        with pytest.raises(InvalidParameterError):
            young_period(100.0, -1.0)


class TestDaly:
    def test_close_to_young_for_small_checkpoint(self):
        # C << mu: the higher-order terms vanish.
        mu, C = 1e7, 10.0
        assert daly_period(mu, C) == pytest.approx(young_period(mu, C), rel=1e-3)

    def test_below_young_for_large_checkpoint(self):
        # The -C correction dominates as C grows.
        mu, C = 3600.0, 600.0
        assert daly_period(mu, C) < young_period(mu, C)

    def test_saturates_at_mtbf(self):
        # C >= 2 mu: Daly prescribes T = mu.
        assert daly_period(100.0, 500.0) == pytest.approx(100.0)

    def test_series_form(self):
        mu, C = 5000.0, 100.0
        ratio = C / (2 * mu)
        expected = np.sqrt(2 * mu * C) * (1 + np.sqrt(ratio) / 3 + ratio / 9) - C
        assert daly_period(mu, C) == pytest.approx(expected)

    def test_vectorised_with_branch(self):
        mu = np.array([100.0, 1e6])
        C = np.array([500.0, 100.0])
        out = daly_period(mu, C)
        assert out[0] == pytest.approx(100.0)  # saturated branch
        assert out[1] > 0


class TestModelIntegration:
    @pytest.fixture
    def errors(self):
        return ErrorModel(lambda_ind=1e-7, fail_stop_fraction=0.5)

    @pytest.fixture
    def costs(self):
        return ResilienceCosts.simple(checkpoint=100.0, verification=20.0)

    def test_young_period_for_uses_fail_stop_rate_only(self, errors, costs):
        P = 100
        mu_f = 1.0 / errors.fail_stop_rate(P)
        assert young_period_for(P, errors, costs) == pytest.approx(
            young_period(mu_f, 100.0)
        )

    def test_daly_period_for(self, errors, costs):
        P = 100
        mu_f = 1.0 / errors.fail_stop_rate(P)
        assert daly_period_for(P, errors, costs) == pytest.approx(
            daly_period(mu_f, 100.0)
        )

    def test_generalized_matches_theorem1(self, errors, costs):
        from repro.core import optimal_period

        P = 100
        assert generalized_period(P, errors, costs) == pytest.approx(
            optimal_period(P, errors, costs)
        )

    def test_generalized_shorter_than_young_with_silent_errors(self, errors, costs):
        # Silent errors push the optimal period down vs the fail-stop-only
        # Young rule (higher effective rate, plus verification cost).
        P = 100
        assert generalized_period(P, errors, costs) < young_period_for(P, errors, costs)

    def test_young_for_rejects_zero_fail_stop(self, costs):
        silent = ErrorModel.silent_only(1e-7)
        with pytest.raises(InvalidParameterError):
            young_period_for(100, silent, costs)
