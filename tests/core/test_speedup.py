"""Speedup profiles: Amdahl's law (Eq. 1) and the extension profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.speedup import (
    AmdahlSpeedup,
    GustafsonSpeedup,
    PerfectSpeedup,
    PowerLawSpeedup,
)
from repro.exceptions import InvalidParameterError


class TestAmdahl:
    def test_single_processor_is_unit_speedup(self):
        assert AmdahlSpeedup(0.3).speedup(1) == pytest.approx(1.0)

    def test_matches_eq1(self):
        # S(P) = 1 / (alpha + (1-alpha)/P) at a hand-computed point.
        s = AmdahlSpeedup(0.1)
        assert s.speedup(9) == pytest.approx(1.0 / (0.1 + 0.9 / 9))  # = 5

    def test_overhead_is_reciprocal(self):
        s = AmdahlSpeedup(0.2)
        for P in (1, 7, 100, 1e6):
            assert s.overhead(P) * s.speedup(P) == pytest.approx(1.0)

    def test_bounded_by_inverse_alpha(self):
        s = AmdahlSpeedup(0.1)
        assert s.speedup(1e12) < 10.0
        assert s.max_speedup() == pytest.approx(10.0)

    def test_strictly_increasing(self):
        s = AmdahlSpeedup(0.05)
        P = np.logspace(0, 8, 50)
        values = s.speedup(P)
        assert np.all(np.diff(values) > 0)

    def test_asymptotic_overhead_is_alpha(self):
        assert AmdahlSpeedup(0.07).asymptotic_overhead == 0.07

    def test_alpha_zero_is_linear(self):
        s = AmdahlSpeedup(0.0)
        assert s.speedup(64) == pytest.approx(64.0)
        assert s.is_perfectly_parallel
        assert s.max_speedup() == np.inf

    def test_alpha_one_is_sequential(self):
        s = AmdahlSpeedup(1.0)
        assert s.speedup(1024) == pytest.approx(1.0)

    def test_vectorised(self):
        s = AmdahlSpeedup(0.1)
        P = np.array([1.0, 10.0, 100.0])
        out = s.overhead(P)
        assert out.shape == (3,)
        assert out[0] == pytest.approx(1.0)

    def test_overhead_derivative_matches_numeric(self):
        s = AmdahlSpeedup(0.15)
        P = 37.0
        eps = 1e-4
        numeric = (s.overhead(P + eps) - s.overhead(P - eps)) / (2 * eps)
        assert s.overhead_derivative(P) == pytest.approx(numeric, rel=1e-6)

    def test_efficiency_decreases(self):
        s = AmdahlSpeedup(0.1)
        assert s.efficiency(1) > s.efficiency(10) > s.efficiency(100)

    @pytest.mark.parametrize("alpha", [-0.1, 1.5, np.nan])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(InvalidParameterError):
            AmdahlSpeedup(alpha)

    def test_rejects_nonpositive_processors(self):
        with pytest.raises(InvalidParameterError):
            AmdahlSpeedup(0.1).speedup(0)

    def test_callable_protocol(self):
        s = AmdahlSpeedup(0.1)
        assert s(4) == s.speedup(4)


class TestPerfect:
    def test_is_amdahl_zero(self):
        s = PerfectSpeedup()
        assert isinstance(s, AmdahlSpeedup)
        assert s.alpha == 0.0

    def test_linear(self):
        assert PerfectSpeedup().speedup(123) == pytest.approx(123.0)


class TestGustafson:
    def test_scaled_speedup_formula(self):
        g = GustafsonSpeedup(0.2)
        assert g.speedup(10) == pytest.approx(0.2 + 0.8 * 10)

    def test_single_processor(self):
        assert GustafsonSpeedup(0.4).speedup(1) == pytest.approx(1.0)

    def test_overhead_vanishes_at_scale(self):
        g = GustafsonSpeedup(0.2)
        assert g.overhead(1e9) < 1e-8
        assert g.asymptotic_overhead == 0.0

    def test_fully_sequential_asymptote(self):
        assert GustafsonSpeedup(1.0).asymptotic_overhead == 1.0

    def test_derivative_matches_numeric(self):
        g = GustafsonSpeedup(0.3)
        P = 11.0
        eps = 1e-5
        numeric = (g.overhead(P + eps) - g.overhead(P - eps)) / (2 * eps)
        assert g.overhead_derivative(P) == pytest.approx(numeric, rel=1e-5)

    def test_grows_much_faster_than_amdahl(self):
        assert GustafsonSpeedup(0.1).speedup(1e4) > AmdahlSpeedup(0.1).speedup(1e4) * 50

    def test_rejects_bad_alpha(self):
        with pytest.raises(InvalidParameterError):
            GustafsonSpeedup(-0.5)


class TestPowerLaw:
    def test_gamma_one_is_perfect(self):
        assert PowerLawSpeedup(1.0).speedup(256) == pytest.approx(256.0)

    def test_sublinear(self):
        p = PowerLawSpeedup(0.5)
        assert p.speedup(100) == pytest.approx(10.0)

    def test_overhead(self):
        p = PowerLawSpeedup(0.5)
        assert p.overhead(100) == pytest.approx(0.1)

    def test_derivative_matches_numeric(self):
        p = PowerLawSpeedup(0.7)
        P = 53.0
        eps = 1e-4
        numeric = (p.overhead(P + eps) - p.overhead(P - eps)) / (2 * eps)
        assert p.overhead_derivative(P) == pytest.approx(numeric, rel=1e-6)

    @pytest.mark.parametrize("gamma", [0.0, -0.2, 1.2])
    def test_rejects_bad_gamma(self, gamma):
        with pytest.raises(InvalidParameterError):
            PowerLawSpeedup(gamma)

    def test_asymptotic_overhead_zero(self):
        assert PowerLawSpeedup(0.9).asymptotic_overhead == 0.0
