"""Section III-B validity bounds for the first-order approximation."""

from __future__ import annotations

import pytest

from repro.core import check_pattern
from repro.core.validity import (
    max_period_order,
    max_processor_order,
    period_order,
    processor_order,
)


class TestOrderBounds:
    def test_linear_cost_bound_is_half(self, linear_cost_model):
        assert max_processor_order(linear_cost_model.costs) == 0.5

    def test_constant_cost_bound_is_one(self, constant_cost_model):
        assert max_processor_order(constant_cost_model.costs) == 1.0

    def test_decaying_cost_bound_is_one(self, decaying_cost_model):
        assert max_processor_order(decaying_cost_model.costs) == 1.0

    def test_period_bound(self):
        assert max_period_order(0.25) == 0.75
        assert max_period_order(0.5) == 0.5

    def test_processor_order_roundtrip(self):
        lam = 1e-8
        P = lam**-0.25
        assert processor_order(P, lam) == pytest.approx(0.25)

    def test_period_order_roundtrip(self):
        lam = 1e-8
        T = lam**-0.5
        assert period_order(T, lam) == pytest.approx(0.5)

    def test_order_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            processor_order(100.0, 2.0)


class TestCheckPattern:
    def test_valid_regime(self, hera_sc1):
        # The first-order optimum is comfortably inside the regime.
        from repro.core import optimal_pattern

        sol = optimal_pattern(hera_sc1)
        report = check_pattern(sol.period, sol.processors, hera_sc1)
        assert report.ok
        assert report.resilience_ok and report.period_ok
        assert report.orders_ok

    def test_epsilons_are_dimensionless_products(self, hera_sc1):
        T, P = 6000.0, 256.0
        report = check_pattern(T, P, hera_sc1)
        lam_total = hera_sc1.errors.total_rate(P)
        assert report.epsilon_resilience == pytest.approx(
            lam_total * hera_sc1.costs.combined_cost(P)
        )

    def test_invalid_at_extreme_scale(self, hera_sc1):
        # Far beyond the lambda^-1/2 bound the smallness breaks down.
        report = check_pattern(1e5, 1e8, hera_sc1)
        assert not report.ok

    def test_threshold_controls_verdict(self, hera_sc1):
        T, P = 6000.0, 256.0
        strict = check_pattern(T, P, hera_sc1, threshold=1e-9)
        assert not strict.ok

    def test_degenerate_rate_reports_zero_orders(self, simple_costs):
        from repro.core import AmdahlSpeedup, ErrorModel, PatternModel

        model = PatternModel(
            ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5),
            simple_costs,
            AmdahlSpeedup(0.1),
        )
        report = check_pattern(100.0, 10.0, model)
        assert report.processor_order_x == 0.0
        assert report.ok  # epsilons are exactly zero
