"""Error model: rate splitting, probabilities, expected time lost."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ErrorModel, expected_time_lost
from repro.exceptions import InvalidParameterError
from repro.units import years


class TestRates:
    def test_rate_split(self):
        m = ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.25)
        assert m.fail_stop_rate(100) == pytest.approx(0.25e-6)
        assert m.silent_rate(100) == pytest.approx(0.75e-6)

    def test_rates_sum_to_total(self):
        m = ErrorModel(lambda_ind=3e-9, fail_stop_fraction=0.1667)
        P = 2048
        assert m.fail_stop_rate(P) + m.silent_rate(P) == pytest.approx(m.total_rate(P))

    def test_rates_scale_linearly_with_p(self):
        # Proposition 1.2 of [13]: platform rate is P times individual rate.
        m = ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.5)
        assert m.total_rate(1000) == pytest.approx(1000 * m.total_rate(1))

    def test_platform_mtbf(self):
        m = ErrorModel(lambda_ind=1e-6, fail_stop_fraction=0.5)
        assert m.platform_mtbf(100) == pytest.approx(1e4)

    def test_platform_mtbf_zero_rate(self):
        m = ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5)
        assert m.platform_mtbf(100) == np.inf

    def test_mtbf_ind_years(self):
        m = ErrorModel.from_mtbf(years(100), fail_stop_fraction=0.2)
        assert m.mtbf_ind_years == pytest.approx(100.0)

    def test_f_and_s_shorthand(self):
        m = ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.2188)
        assert m.f == 0.2188
        assert m.s == pytest.approx(0.7812)

    def test_effective_lambda(self):
        # L = (f/2 + s) lambda_ind — the Theorem 2/3 rate.
        m = ErrorModel(lambda_ind=2e-8, fail_stop_fraction=0.5)
        assert m.effective_lambda == pytest.approx((0.25 + 0.5) * 2e-8)

    def test_effective_lambda_bounds(self):
        # L ranges between lambda/2 (all fail-stop) and lambda (all silent).
        fs = ErrorModel.fail_stop_only(1e-8)
        silent = ErrorModel.silent_only(1e-8)
        assert fs.effective_lambda == pytest.approx(0.5e-8)
        assert silent.effective_lambda == pytest.approx(1e-8)

    def test_vectorised_over_p(self):
        m = ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.5)
        P = np.array([1.0, 10.0, 100.0])
        np.testing.assert_allclose(m.fail_stop_rate(P), 0.5e-8 * P)

    @pytest.mark.parametrize("kwargs", [
        {"lambda_ind": -1e-9, "fail_stop_fraction": 0.5},
        {"lambda_ind": 1e-9, "fail_stop_fraction": 1.5},
        {"lambda_ind": float("nan"), "fail_stop_fraction": 0.5},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            ErrorModel(**kwargs)

    def test_with_lambda_copy(self):
        m = ErrorModel(lambda_ind=1e-8, fail_stop_fraction=0.3)
        m2 = m.with_lambda(1e-10)
        assert m2.lambda_ind == 1e-10
        assert m2.fail_stop_fraction == 0.3
        assert m.lambda_ind == 1e-8


class TestProbabilities:
    def test_p_fail_stop_formula(self):
        m = ErrorModel(lambda_ind=1e-6, fail_stop_fraction=1.0)
        P, W = 100, 5000.0
        assert m.p_fail_stop(P, W) == pytest.approx(1.0 - np.exp(-1e-4 * W))

    def test_p_silent_zero_when_all_fail_stop(self):
        m = ErrorModel.fail_stop_only(1e-6)
        assert m.p_silent(100, 1e6) == 0.0

    def test_probabilities_in_unit_interval(self):
        m = ErrorModel(lambda_ind=1e-5, fail_stop_fraction=0.4)
        for W in (1.0, 1e3, 1e9):
            assert 0.0 <= m.p_fail_stop(10, W) <= 1.0
            assert 0.0 <= m.p_silent(10, W) <= 1.0

    def test_probability_increases_with_window(self):
        m = ErrorModel(lambda_ind=1e-6, fail_stop_fraction=0.5)
        assert m.p_fail_stop(10, 2000.0) > m.p_fail_stop(10, 1000.0)

    def test_tiny_window_linearises(self):
        # q(W) ~ lambda W for small windows (expm1 precision check).
        m = ErrorModel(lambda_ind=1e-12, fail_stop_fraction=1.0)
        W = 1.0
        assert m.p_fail_stop(1, W) == pytest.approx(1e-12, rel=1e-6)


class TestExpectedTimeLost:
    def test_zero_rate_limit_is_half_window(self):
        # Conditioned on an error in [0, W] with lambda -> 0, the strike
        # time is uniform: mean W/2.
        assert expected_time_lost(0.0, 10.0) == pytest.approx(5.0)

    def test_tiny_rate_limit(self):
        assert expected_time_lost(1e-15, 100.0) == pytest.approx(50.0, rel=1e-6)

    def test_closed_form(self):
        lam, W = 0.01, 200.0
        expected = 1.0 / lam - W / np.expm1(lam * W)
        assert expected_time_lost(lam, W) == pytest.approx(expected)

    def test_bounded_above_by_half_window(self):
        # The conditional strike time is stochastically earlier than
        # uniform, so E_lost <= W/2, approaching W/2 as lambda -> 0.
        for lam, W in [(1e-3, 100.0), (0.1, 50.0), (1.0, 10.0)]:
            val = expected_time_lost(lam, W)
            assert 0.0 < val <= W / 2

    def test_decreases_with_rate(self):
        # Higher rates concentrate the conditional strike earlier in the
        # window, so the expected time lost decreases with lambda.
        W = 100.0
        assert expected_time_lost(0.001, W) > expected_time_lost(0.1, W)

    def test_matches_montecarlo(self):
        rng = np.random.default_rng(7)
        lam, W = 0.02, 80.0
        samples = rng.exponential(1.0 / lam, size=400_000)
        conditional = samples[samples < W]
        assert expected_time_lost(lam, W) == pytest.approx(
            conditional.mean(), rel=5e-3
        )

    def test_vectorised(self):
        out = expected_time_lost(np.array([0.0, 0.01]), np.array([10.0, 100.0]))
        assert out.shape == (2,)
        assert out[0] == pytest.approx(5.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(InvalidParameterError):
            expected_time_lost(-0.1, 10.0)

    def test_rejects_negative_window(self):
        with pytest.raises(InvalidParameterError):
            expected_time_lost(0.1, -10.0)
