"""Waste accounting: analytic channels vs the simulator's breakdown."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.waste import (
    compare_with_simulation,
    simulated_waste,
    waste_breakdown,
)
from repro.core import optimal_period
from repro.exceptions import InvalidParameterError
from repro.sim import simulate_run, spawn_rngs


class TestAnalyticBreakdown:
    def test_channels_sum_to_total(self, hera_sc1):
        b = waste_breakdown(hera_sc1, 6000.0, 256.0)
        assert b.first_order_total + b.residual == pytest.approx(b.total, rel=1e-12)

    def test_total_is_exact_relative_waste(self, hera_sc1):
        T, P = 6000.0, 256.0
        b = waste_breakdown(hera_sc1, T, P)
        assert b.total == pytest.approx(hera_sc1.expected_time(T, P) / T - 1.0)

    def test_residual_small_in_validity_regime(self, hera_sc1):
        T, P = 6000.0, 256.0
        b = waste_breakdown(hera_sc1, T, P)
        assert abs(b.residual) < 0.05 * b.total

    def test_balance_at_optimum(self, hera_sc1):
        # Young/Daly folklore, generalised: at T*_P the deterministic
        # resilience bill equals the expected error loss (first order).
        P = 256.0
        T_star = float(optimal_period(P, hera_sc1.errors, hera_sc1.costs))
        b = waste_breakdown(hera_sc1, T_star, P)
        # Compare the T-dependent parts: (V+C)/T vs (lam_f/2 + lam_s) T.
        lam_eff = (
            hera_sc1.errors.fail_stop_rate(P) / 2.0 + hera_sc1.errors.silent_rate(P)
        )
        assert b.resilience_bill == pytest.approx(lam_eff * T_star, rel=1e-9)

    def test_short_period_dominated_by_bill(self, hera_sc1):
        P = 256.0
        T_star = float(optimal_period(P, hera_sc1.errors, hera_sc1.costs))
        b = waste_breakdown(hera_sc1, T_star / 20.0, P)
        fr = b.fractions()
        assert fr["resilience_bill"] > 0.9

    def test_long_period_dominated_by_reexecution(self, hera_sc1):
        P = 256.0
        T_star = float(optimal_period(P, hera_sc1.errors, hera_sc1.costs))
        b = waste_breakdown(hera_sc1, T_star * 20.0, P)
        fr = b.fractions()
        assert fr["fail_stop_reexecution"] + fr["silent_reexecution"] > 0.7

    def test_silent_channel_scales_with_s(self, hera_sc1):
        # Hera is 78% silent: the silent channel outweighs fail-stop's
        # half-period term at the optimum.
        P = 256.0
        T_star = float(optimal_period(P, hera_sc1.errors, hera_sc1.costs))
        b = waste_breakdown(hera_sc1, T_star, P)
        assert b.silent_reexecution > b.fail_stop_reexecution

    def test_rejects_bad_period(self, hera_sc1):
        with pytest.raises(InvalidParameterError):
            waste_breakdown(hera_sc1, 0.0, 256.0)

    def test_zero_waste_fractions(self, simple_costs):
        from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts

        model = PatternModel(
            ErrorModel(0.0, 0.5),
            ResilienceCosts.simple(checkpoint=0.0, verification=0.0),
            AmdahlSpeedup(0.1),
        )
        b = waste_breakdown(model, 100.0, 10.0)
        assert b.total == pytest.approx(0.0, abs=1e-15)
        assert b.fractions()["resilience_bill"] == 0.0


class TestSimulationComparison:
    def test_total_waste_agrees(self, hera_sc1):
        T, P = 6554.9, 207.0
        times = []
        for rng in spawn_rngs(30, seed=17):
            stats = simulate_run(hera_sc1, T, P, 100, rng)
            times.append(compare_with_simulation(hera_sc1, T, P, stats)["total"])
        analytic = waste_breakdown(hera_sc1, T, P).total
        mean = float(np.mean(times))
        sem = float(np.std(times, ddof=1) / np.sqrt(len(times)))
        assert abs(mean - analytic) < 4 * sem

    def test_channel_keys(self, hera_sc1):
        [rng] = spawn_rngs(1, seed=3)
        stats = simulate_run(hera_sc1, 6000.0, 200.0, 50, rng)
        sim = simulated_waste(stats, 6000.0)
        assert set(sim) == {
            "resilience_bill",
            "lost_and_down",
            "reexecuted_work",
            "recovery",
            "total",
        }

    def test_sim_channels_sum_to_total(self, hera_sc1):
        [rng] = spawn_rngs(1, seed=5)
        T = 6000.0
        stats = simulate_run(hera_sc1, T, 200.0, 50, rng)
        sim = simulated_waste(stats, T)
        # useful work + all waste channels = total time, so the channel
        # sum equals the relative waste... up to the re-executed
        # verification time counted inside 'reexecuted_work' patterns.
        channel_sum = (
            sim["resilience_bill"]
            + sim["lost_and_down"]
            + sim["reexecuted_work"]
            + sim["recovery"]
        )
        assert channel_sum == pytest.approx(sim["total"], rel=0.05)

    def test_relative_error_reported(self, hera_sc1):
        [rng] = spawn_rngs(1, seed=7)
        stats = simulate_run(hera_sc1, 6554.9, 207.0, 200, rng)
        out = compare_with_simulation(hera_sc1, 6554.9, 207.0, stats)
        assert out["total_relative_error"] < 0.5  # single run, loose bound
