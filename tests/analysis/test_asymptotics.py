"""Log-log slope fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.asymptotics import (
    estimate_order,
    fit_loglog_slope,
    reference_power_law,
)
from repro.exceptions import InvalidParameterError


class TestFit:
    def test_exact_power_law(self):
        x = np.logspace(-12, -8, 9)
        y = 3.7 * x**-0.25
        fit = fit_loglog_slope(x, y)
        assert fit.slope == pytest.approx(-0.25, abs=1e-10)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.n_points == 9

    def test_predict_roundtrip(self):
        x = np.logspace(0, 4, 5)
        y = 2.0 * x**1.5
        fit = fit_loglog_slope(x, y)
        np.testing.assert_allclose(fit.predict(x), y, rtol=1e-10)

    def test_matches_helper(self):
        x = np.logspace(-10, -6, 5)
        fit = fit_loglog_slope(x, x**-0.33)
        assert fit.matches(-1.0 / 3.0, tol=0.01)
        assert not fit.matches(-0.5, tol=0.01)

    def test_noisy_data_r_squared(self):
        rng = np.random.default_rng(0)
        x = np.logspace(0, 3, 30)
        y = x**-0.5 * np.exp(rng.normal(0, 0.05, x.size))
        fit = fit_loglog_slope(x, y)
        assert fit.slope == pytest.approx(-0.5, abs=0.05)
        assert 0.9 < fit.r_squared < 1.0

    def test_constant_data(self):
        x = np.logspace(0, 2, 5)
        fit = fit_loglog_slope(x, np.full(5, 7.0))
        assert fit.slope == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            fit_loglog_slope(np.array([1.0, 2.0]), np.array([1.0, -2.0]))

    def test_rejects_single_point(self):
        with pytest.raises(InvalidParameterError):
            fit_loglog_slope(np.array([1.0]), np.array([1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            fit_loglog_slope(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))


class TestOrderEstimation:
    def test_theorem2_order_on_closed_form(self):
        # Feed the Theorem-2 P* formula and recover -1/4.
        from repro.core import optimal_pattern
        from repro.platforms import build_model

        lams = np.logspace(-12, -8, 5)
        P = [
            optimal_pattern(build_model("Hera", 1, lambda_ind=float(l))).processors
            for l in lams
        ]
        assert estimate_order(lams, P) == pytest.approx(-0.25, abs=1e-9)

    def test_theorem3_order_on_closed_form(self):
        from repro.core import optimal_pattern
        from repro.platforms import build_model

        lams = np.logspace(-12, -8, 5)
        P = [
            optimal_pattern(build_model("Hera", 3, lambda_ind=float(l))).processors
            for l in lams
        ]
        assert estimate_order(lams, P) == pytest.approx(-1.0 / 3.0, abs=1e-9)


class TestReferenceLine:
    def test_passes_through_anchor(self):
        y = reference_power_law(2.0, -0.5, anchor_x=2.0, anchor_y=10.0)
        assert y == pytest.approx(10.0)

    def test_slope(self):
        y = reference_power_law(np.array([1.0, 100.0]), -0.5, 1.0, 1.0)
        assert y[1] == pytest.approx(0.1)

    def test_rejects_bad_anchor(self):
        with pytest.raises(InvalidParameterError):
            reference_power_law(1.0, -0.5, 0.0, 1.0)
