"""Robustness curves and the first-order gap (Figure 3c quantity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    first_order_gap,
    period_robustness,
    processor_robustness,
)
from repro.exceptions import InvalidParameterError
from repro.optimize.allocation import optimize_allocation


class TestPeriodRobustness:
    def test_optimum_has_unit_penalty(self, hera_sc1):
        curve = period_robustness(hera_sc1, P=256.0)
        assert curve.penalty_at(1.0) == pytest.approx(1.0, abs=1e-6)

    def test_penalties_at_least_one(self, hera_sc1):
        curve = period_robustness(hera_sc1, P=256.0)
        assert np.all(curve.penalties >= 1.0 - 1e-12)

    def test_young_daly_flatness_folklore(self, hera_sc1):
        # Missing T* by 2x costs only a few percent of overhead.
        curve = period_robustness(hera_sc1, P=256.0, factors=np.array([0.5, 1.0, 2.0]))
        assert curve.worst() < 1.05

    def test_u_shape(self, hera_sc1):
        curve = period_robustness(hera_sc1, P=256.0)
        mid = curve.penalties.size // 2
        assert curve.penalties[0] > curve.penalties[mid]
        assert curve.penalties[-1] > curve.penalties[mid]

    def test_rejects_bad_factors(self, hera_sc1):
        with pytest.raises(InvalidParameterError):
            period_robustness(hera_sc1, 256.0, factors=np.array([0.0, 1.0]))


class TestProcessorRobustness:
    def test_optimum_has_unit_penalty(self, hera_sc1):
        P_opt = optimize_allocation(hera_sc1).processors
        curve = processor_robustness(hera_sc1, P_opt, factors=np.array([0.8, 1.0, 1.25]))
        assert curve.penalty_at(1.0) == pytest.approx(1.0, abs=1e-9)

    def test_even_flatter_than_period(self, hera_sc1):
        # The P-optimum is extremely flat: 25% mis-allocation costs <1%.
        P_opt = optimize_allocation(hera_sc1).processors
        curve = processor_robustness(hera_sc1, P_opt, factors=np.array([0.8, 1.25]))
        assert curve.worst() < 1.01

    def test_rejects_bad_p(self, hera_sc1):
        with pytest.raises(InvalidParameterError):
            processor_robustness(hera_sc1, -5.0)


class TestFirstOrderGap:
    def test_nonnegative(self, hera_sc1):
        assert first_order_gap(hera_sc1, 256.0) >= 0.0

    def test_within_paper_bound_on_hera(self, hera_sc1, hera_sc3, hera_sc5):
        # Figure 3(c): < 0.2 percentage points over the plotted range.
        for model in (hera_sc1, hera_sc3, hera_sc5):
            for P in (200.0, 800.0, 1400.0):
                assert first_order_gap(model, P) < 0.002

    def test_grows_with_processor_count(self, hera_sc1):
        # More processors -> higher rates -> worse truncation.
        assert first_order_gap(hera_sc1, 1400.0) > first_order_gap(hera_sc1, 200.0)
