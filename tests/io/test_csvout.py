"""CSV export."""

from __future__ import annotations

import csv

from repro.io.csvout import write_csv


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2.5], ["x", None]])
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]
        assert rows[2] == ["x", ""]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "nest" / "out.csv", ["a"], [[1]])
        assert path.exists()

    def test_returns_path(self, tmp_path):
        target = tmp_path / "x.csv"
        assert write_csv(target, ["a"], []) == target

    def test_empty_rows(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", ["h1", "h2"], [])
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["h1", "h2"]]
