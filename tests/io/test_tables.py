"""ASCII table renderer."""

from __future__ import annotations

import pytest

from repro.io.tables import format_cell, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_uses_format(self):
        assert format_cell(3.14159, "{:.2f}") == "3.14"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_int(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "x"], [["a", 1.5], ["bb", 20.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # Numeric column right-aligned: the longer number ends the line.
        assert lines[-1].endswith("20.25")

    def test_title_and_underline(self):
        text = render_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_none_cells(self):
        text = render_table(["a", "b"], [[None, 2.0]])
        assert "-" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_column_width_accommodates_header(self):
        text = render_table(["very_long_header"], [[1.0]])
        lines = text.splitlines()
        assert len(lines[1]) >= len("very_long_header")

    def test_mixed_column_left_aligned(self):
        text = render_table(["k"], [["text"], [1.0]])
        lines = text.splitlines()
        assert lines[2].startswith("text")


class TestDoctestExample:
    def test_module_example(self):
        out = render_table(["name", "x"], [["a", 1.5], ["bb", 20.25]])
        assert out == "name      x\n----  -----\na       1.5\nbb    20.25"
