"""Consolidated markdown report writer."""

from __future__ import annotations

from repro.experiments.common import FigureResult
from repro.io.report import write_report


def _figure(fid: str = "figX") -> FigureResult:
    return FigureResult(
        figure_id=fid,
        title=f"Demo {fid}",
        columns=("x", "y"),
        rows=((1.0, 2.0),),
        notes=("demo note",),
    )


class TestWriteReport:
    def test_structure(self, tmp_path):
        path = write_report(
            tmp_path / "r.md",
            [("Figure X", [_figure()]), ("Figure Y", [_figure("figY")])],
            sim_description="5 runs x 5 patterns",
            input_tables="Table II: ...",
        )
        text = path.read_text()
        assert text.startswith("# Regenerated results")
        assert "## Inputs (Tables II-III)" in text
        assert "## Figure X" in text and "## Figure Y" in text
        assert "### Demo figX" in text
        assert "demo note" in text
        assert "5 runs x 5 patterns" in text

    def test_without_inputs(self, tmp_path):
        path = write_report(tmp_path / "r.md", [("S", [_figure()])], "disabled")
        assert "## Inputs" not in path.read_text()

    def test_creates_parents(self, tmp_path):
        path = write_report(tmp_path / "a" / "b" / "r.md", [], "disabled")
        assert path.exists()

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "cli_report.md"
        assert main(["report", "--no-sim", "--out", str(out)]) == 0
        text = out.read_text()
        assert "Figure 2" in text
        assert "ext-segments" in text or "Extension" in text
