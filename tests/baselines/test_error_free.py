"""Error-free baseline model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ErrorFreeModel
from repro.core import AmdahlSpeedup
from repro.exceptions import InvalidParameterError


class TestErrorFree:
    def test_overhead_is_pure_speedup(self):
        m = ErrorFreeModel(AmdahlSpeedup(0.1))
        assert m.overhead(100) == pytest.approx(0.1 + 0.9 / 100)

    def test_makespan(self):
        m = ErrorFreeModel(AmdahlSpeedup(0.1))
        assert m.makespan(1e6, 9) == pytest.approx(1e6 / 5.0)

    def test_makespan_vectorised(self):
        m = ErrorFreeModel(AmdahlSpeedup(0.0))
        out = m.makespan(100.0, np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose(out, [100.0, 50.0, 25.0])

    def test_optimal_processors_unbounded(self):
        # The paper's premise: without failures, always enroll more.
        assert ErrorFreeModel(AmdahlSpeedup(0.1)).optimal_processors() == np.inf

    def test_rejects_nonpositive_work(self):
        with pytest.raises(InvalidParameterError):
            ErrorFreeModel(AmdahlSpeedup(0.1)).makespan(0.0, 10)

    def test_is_floor_for_resilient_execution(self, hera_sc1):
        ef = ErrorFreeModel(hera_sc1.speedup)
        P = 256.0
        assert hera_sc1.overhead(6000.0, P) > ef.overhead(P)
