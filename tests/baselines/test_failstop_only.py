"""Fail-stop-only projection and the price of ignoring silent errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    failstop_projection,
    naive_pattern,
    price_of_ignoring_silent,
)
from repro.baselines.failstop_only import failstop_optimal_period
from repro.core import optimal_pattern, optimal_period


class TestProjection:
    def test_fail_stop_rate_preserved(self, hera_sc1):
        projected = failstop_projection(hera_sc1)
        P = 256.0
        assert projected.errors.fail_stop_rate(P) == pytest.approx(
            hera_sc1.errors.fail_stop_rate(P)
        )
        assert projected.errors.silent_rate(P) == 0.0

    def test_verification_dropped_by_default(self, hera_sc1):
        projected = failstop_projection(hera_sc1)
        assert projected.costs.verification_cost(256.0) == 0.0

    def test_verification_kept_on_request(self, hera_sc1):
        projected = failstop_projection(hera_sc1, keep_verification=True)
        assert projected.costs.verification_cost(256.0) == pytest.approx(
            hera_sc1.costs.verification_cost(256.0)
        )

    def test_expected_time_cheaper_without_silent_errors(self, hera_sc1):
        projected = failstop_projection(hera_sc1, keep_verification=True)
        T, P = 6000.0, 256.0
        assert projected.expected_time(T, P) < hera_sc1.expected_time(T, P)

    def test_young_like_period(self, hera_sc1):
        # With silent errors removed and V = 0: T* = sqrt(2 C_P / lam_f).
        P = 256.0
        lam_f = hera_sc1.errors.fail_stop_rate(P)
        C = hera_sc1.costs.checkpoint_cost(P)
        assert failstop_optimal_period(hera_sc1, P) == pytest.approx(
            np.sqrt(2.0 * C / lam_f)
        )


class TestNaiveDeployment:
    def test_naive_period_longer(self, hera_sc1):
        # Ignoring silent errors under-counts the rate, so the naive
        # period is longer than the informed one.
        naive = naive_pattern(hera_sc1)
        informed = optimal_pattern(hera_sc1)
        assert naive.period > informed.period

    def test_naive_enrolls_more_processors(self, hera_sc1):
        naive = naive_pattern(hera_sc1)
        informed = optimal_pattern(hera_sc1)
        assert naive.processors > informed.processors

    def test_penalty_at_least_one(self, hera_sc1):
        deployment = price_of_ignoring_silent(hera_sc1)
        assert deployment.penalty >= 1.0

    def test_penalty_significant_on_silent_heavy_platform(self):
        # Atlas has s = 0.9375: ignoring silent errors mis-sizes badly.
        from repro.platforms import build_model

        deployment = price_of_ignoring_silent(build_model("Atlas", 1))
        assert deployment.penalty > 1.005

    def test_true_overhead_exceeds_informed(self, hera_sc1):
        deployment = price_of_ignoring_silent(hera_sc1)
        assert deployment.true_overhead > deployment.optimal_overhead

    def test_consistency_of_reported_overheads(self, hera_sc1):
        deployment = price_of_ignoring_silent(hera_sc1)
        naive = deployment.naive_solution
        assert deployment.true_overhead == pytest.approx(
            float(hera_sc1.overhead(naive.period, naive.processors))
        )


class TestTheorem1Specialisation:
    def test_optimal_period_halves_effective_rate(self, hera_sc1):
        # For the projected model (f = 1), Theorem 1's rate is lambda_f/2.
        projected = failstop_projection(hera_sc1, keep_verification=True)
        P = 256.0
        lam_f = projected.errors.fail_stop_rate(P)
        combined = projected.costs.combined_cost(P)
        assert optimal_period(P, projected.errors, projected.costs) == pytest.approx(
            np.sqrt(combined / (lam_f / 2.0))
        )
