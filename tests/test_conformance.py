"""Docs-code conformance: DESIGN.md / EXPERIMENTS.md stay truthful.

Documentation that references modules, commands and files is easy to
let rot; these tests pin the promises:

* every module named in DESIGN.md's system inventory imports;
* every CLI command referenced in EXPERIMENTS.md exists in the runner;
* every figure has a benchmark module;
* the README quickstart snippet stays executable.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestDesignInventory:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core.speedup",
            "repro.core.costs",
            "repro.core.errors",
            "repro.core.pattern",
            "repro.core.first_order",
            "repro.core.young_daly",
            "repro.core.validity",
            "repro.optimize.scalar",
            "repro.optimize.period",
            "repro.optimize.allocation",
            "repro.optimize.relaxation",
            "repro.baselines.failstop_only",
            "repro.baselines.error_free",
            "repro.platforms.catalog",
            "repro.platforms.scenarios",
            "repro.sim.rng",
            "repro.sim.engine",
            "repro.sim.protocol",
            "repro.sim.batch",
            "repro.sim.results",
            "repro.sim.streams",
            "repro.sim.renewal",
            "repro.sim.nodes",
            "repro.sim.trace",
            "repro.analysis.asymptotics",
            "repro.analysis.sensitivity",
            "repro.analysis.waste",
            "repro.io.tables",
            "repro.io.csvout",
            "repro.io.report",
            "repro.extensions.twolevel",
            "repro.extensions.sim_twolevel",
        ],
    )
    def test_inventory_module_exists(self, module):
        assert importlib.import_module(module) is not None


class TestExperimentIndex:
    def test_every_figure_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("test_bench_*.py")}
        for fig in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7"):
            assert f"test_bench_{fig}.py" in benches, f"missing bench for {fig}"

    def test_every_extension_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("test_bench_*.py")}
        for ext in ("twolevel", "weibull", "weakscaling", "nodes"):
            assert f"test_bench_{ext}.py" in benches, f"missing bench for {ext}"

    def test_cli_commands_in_experiments_md_exist(self):
        # Delegates to the CLI drift guard so the test and
        # `repro-experiments index --check` can never disagree.
        import io

        from repro.experiments.runner import check_experiments_md

        stream = io.StringIO()
        assert check_experiments_md(REPO / "EXPERIMENTS.md", stream=stream) == 0, (
            stream.getvalue()
        )

    def test_experiments_md_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for heading in ("Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7"):
            assert heading in text


class TestReadmePromises:
    def test_quickstart_snippet_numbers(self):
        # The README quotes ~219/~6239 (closed form) and ~207/~6555
        # (numerical) for Hera scenario 1; keep them honest.
        from repro import build_model, optimal_pattern, optimize_allocation

        model = build_model("Hera", scenario_id=1, alpha=0.1)
        sol = optimal_pattern(model)
        assert round(sol.processors) == 219
        assert round(sol.period) == 6239
        num = optimize_allocation(model)
        assert round(num.processors) == 207
        assert round(num.period) == 6555

    def test_documented_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md"):
            assert (REPO / name).exists(), f"{name} missing"
        assert (REPO / "docs" / "MATH.md").exists()

    def test_examples_listed_in_readme_exist(self):
        text = (REPO / "README.md").read_text()
        for match in re.findall(r"`(\w+\.py)`", text):
            if match in ("setup.py",):
                continue
            assert (REPO / "examples" / match).exists(), f"README lists missing {match}"
