"""Unit-conversion and formatting helpers."""

from __future__ import annotations

import math

import pytest

from repro import units


class TestConversions:
    def test_minutes(self):
        assert units.minutes(2) == 120.0

    def test_hours(self):
        assert units.hours(1.5) == 5400.0

    def test_days(self):
        assert units.days(2) == 172800.0

    def test_years_julian_convention(self):
        assert units.years(1) == pytest.approx(365.25 * 86400)

    def test_roundtrip_hours(self):
        assert units.to_hours(units.hours(7.25)) == pytest.approx(7.25)

    def test_roundtrip_days(self):
        assert units.to_days(units.days(3.5)) == pytest.approx(3.5)

    def test_roundtrip_years(self):
        assert units.to_years(units.years(0.31)) == pytest.approx(0.31)


class TestRates:
    def test_mtbf_to_rate(self):
        assert units.mtbf_to_rate(100.0) == pytest.approx(0.01)

    def test_rate_to_mtbf(self):
        assert units.rate_to_mtbf(0.02) == pytest.approx(50.0)

    def test_roundtrip(self):
        assert units.mtbf_to_rate(units.rate_to_mtbf(1e-8)) == pytest.approx(1e-8)

    def test_century_mtbf_matches_paper_intro(self):
        # The intro's example: 100k nodes with one-century MTBF fail every
        # ~9 hours on average.
        rate = units.mtbf_to_rate(units.years(100))
        platform_mtbf_hours = units.to_hours(1.0 / (rate * 100_000))
        assert platform_mtbf_hours == pytest.approx(8.766, rel=1e-3)

    def test_mtbf_to_rate_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.mtbf_to_rate(0.0)

    def test_rate_to_mtbf_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.rate_to_mtbf(-1.0)


class TestFormatting:
    def test_format_duration_seconds(self):
        assert units.format_duration(90) == "90.0 s"

    def test_format_duration_hours(self):
        assert units.format_duration(7200) == "2.00 h"

    def test_format_duration_minutes(self):
        assert "min" in units.format_duration(1200)

    def test_format_duration_days(self):
        assert "d" in units.format_duration(2 * 86400)

    def test_format_duration_years(self):
        assert units.format_duration(units.years(3)).endswith("y")

    def test_format_duration_subsecond(self):
        assert "ms" in units.format_duration(0.005)

    def test_format_duration_microseconds(self):
        assert "us" in units.format_duration(5e-6)

    def test_format_duration_nonfinite(self):
        assert units.format_duration(math.inf) == "inf"

    def test_format_rate_includes_mtbf(self):
        text = units.format_rate(1e-8)
        assert "/s" in text and "MTBF" in text

    def test_format_rate_zero(self):
        assert units.format_rate(0.0) == "0 /s"

    def test_format_si_large(self):
        assert units.format_si(1_200_000) == "1.2M"

    def test_format_si_small_passthrough(self):
        assert units.format_si(42.0) == "42"

    def test_format_si_tera(self):
        assert units.format_si(2.5e12).endswith("T")

    def test_format_si_zero(self):
        assert units.format_si(0) == "0"
