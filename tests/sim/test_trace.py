"""Trace recording in the event-driven simulator."""

from __future__ import annotations

import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.sim import Trace, TraceEventKind, format_trace, simulate_run
from repro.sim.rng import make_rng


def _model(lambda_ind=5e-5, f=0.5) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=30.0),
        speedup=AmdahlSpeedup(0.1),
    )


class TestTraceStructure:
    def test_error_free_trace_shape(self):
        trace = Trace()
        simulate_run(_model(0.0), 1000.0, 10, 3, make_rng(1), trace=trace)
        assert trace.count(TraceEventKind.PATTERN_START) == 3
        assert trace.count(TraceEventKind.PATTERN_DONE) == 3
        assert trace.count(TraceEventKind.CHECKPOINT_DONE) == 3
        assert trace.count(TraceEventKind.FAIL_STOP) == 0

    def test_counters_match_stats(self):
        trace = Trace()
        stats = simulate_run(_model(), 1500.0, 30, 40, make_rng(2), trace=trace)
        assert trace.count(TraceEventKind.FAIL_STOP) == stats.n_fail_stop
        assert trace.count(TraceEventKind.SILENT_DETECTED) == stats.n_silent_detected
        assert trace.count(TraceEventKind.RECOVERY_DONE) == stats.n_recoveries
        assert trace.count(TraceEventKind.DOWNTIME) == stats.n_downtimes
        assert trace.count(TraceEventKind.SEGMENT_START) == stats.n_attempts

    def test_timestamps_monotone(self):
        trace = Trace()
        simulate_run(_model(), 1500.0, 30, 20, make_rng(3), trace=trace)
        times = [e.time for e in trace]
        assert times == sorted(times)

    def test_makespan_matches_total_time(self):
        trace = Trace()
        stats = simulate_run(_model(), 1500.0, 30, 20, make_rng(4), trace=trace)
        assert trace.makespan == pytest.approx(stats.total_time)

    def test_no_trace_is_default(self):
        # Omitting the trace must not change the run (same RNG stream).
        a = simulate_run(_model(), 1500.0, 30, 20, make_rng(5))
        trace = Trace()
        b = simulate_run(_model(), 1500.0, 30, 20, make_rng(5), trace=trace)
        assert a.total_time == b.total_time


class TestTraceQueries:
    @pytest.fixture
    def trace(self) -> Trace:
        t = Trace()
        simulate_run(_model(), 1500.0, 30, 10, make_rng(6), trace=t)
        return t

    def test_of_kind(self, trace):
        done = trace.of_kind(TraceEventKind.PATTERN_DONE)
        assert len(done) == 10
        assert all(e.kind is TraceEventKind.PATTERN_DONE for e in done)

    def test_between(self, trace):
        mid = trace.makespan / 2
        early = trace.between(0.0, mid)
        late = trace.between(mid, trace.makespan + 1.0)
        assert len(early) + len(late) == len(trace)

    def test_len_and_iter(self, trace):
        assert len(list(trace)) == len(trace) > 0


class TestFormatting:
    def test_format_lines(self):
        t = Trace()
        t.record(0.0, TraceEventKind.PATTERN_START, "pattern 1")
        t.record(10.5, TraceEventKind.FAIL_STOP, "during work+verify")
        text = format_trace(t)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "pattern-start" in lines[0]
        assert "fail-stop" in lines[1]

    def test_limit(self):
        t = Trace()
        for i in range(10):
            t.record(float(i), TraceEventKind.DOWNTIME)
        assert len(format_trace(t, limit=3).splitlines()) == 3

    def test_empty_trace(self):
        assert format_trace(Trace()) == ""
        assert Trace().makespan == 0.0
