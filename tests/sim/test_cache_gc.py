"""Result-cache invalidation and garbage collection.

Two contracts: a :data:`BACKEND_VERSION` bump must miss every existing
cache entry (stale kernels can never serve), while identical requests
must hit across executor types (the key is executor-independent); and
``prune`` reclaims disk by age and size without ever breaking reads.
"""

from __future__ import annotations

from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.platforms.scenarios import build_model
from repro.sim import plan as plan_mod
from repro.sim.executors import PoolExecutor, SerialExecutor, ShardedExecutor
from repro.sim.plan import ResultCache, SimRequest, request_key


def one_request() -> SimRequest:
    model = build_model("Hera", 1)
    return SimRequest(model=model, T=3600.0, P=1000.0, n_runs=3, n_patterns=4)


def simulate_with(pipeline: SimulationPipeline) -> float:
    from repro.sim.montecarlo import Fidelity

    settings = SimSettings(fidelity=Fidelity(n_runs=3, n_patterns=4), seed=11)
    model = build_model("Hera", 1)
    deferred = pipeline.simulate_mean(model, 3600.0, 1000.0, settings)
    pipeline.resolve()
    return deferred.value


class TestBackendVersionInvalidation:
    def test_version_bump_changes_every_key(self):
        request = one_request()
        old = request_key(request)
        try:
            plan_mod.BACKEND_VERSION += 1
            assert request_key(request) != old
        finally:
            plan_mod.BACKEND_VERSION -= 1

    def test_version_bump_misses_cache(self, tmp_path, monkeypatch):
        with SimulationPipeline(jobs=1, cache_dir=tmp_path) as pipe:
            value = simulate_with(pipe)
            assert pipe.cache.misses > 0
        monkeypatch.setattr(plan_mod, "BACKEND_VERSION", plan_mod.BACKEND_VERSION + 1)
        with SimulationPipeline(jobs=1, cache_dir=tmp_path) as pipe:
            bumped = simulate_with(pipe)
            hits, misses = pipe.cache_stats
        assert hits == 0 and misses > 0  # stale entries never served
        assert bumped == value  # same kernel in this test: same numbers

    def test_identical_spec_hits_across_executor_types(self, tmp_path):
        # Written serially ...
        with SimulationPipeline(jobs=1, cache_dir=tmp_path) as pipe:
            value = simulate_with(pipe)
        # ... read back by a pooled executor ...
        with SimulationPipeline(
            executor=PoolExecutor(2), cache_dir=tmp_path
        ) as pipe:
            assert simulate_with(pipe) == value
            hits, misses = pipe.cache_stats
            assert hits == 1 and misses == 0
        # ... and by both shards of a sharded executor (a cache hit
        # beats shard ownership: the point is served, not skipped).
        for index in (0, 1):
            with SimulationPipeline(
                executor=ShardedExecutor(index, 2, SerialExecutor()),
                cache_dir=tmp_path,
            ) as pipe:
                assert simulate_with(pipe) == value
                hits, misses = pipe.cache_stats
                assert hits == 1 and misses == 0


class TestCacheGC:
    @staticmethod
    def _fill(cache: ResultCache, n: int, mtime_step: float = 0.0):
        import os
        import time

        now = time.time()
        for i in range(n):
            cache.put_value(f"k{i:02d}", float(i))
            if mtime_step:
                age = (n - i) * mtime_step
                path = cache._path(f"k{i:02d}")
                os.utime(path, (now - age, now - age))

    def test_entries_sorted_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 3, mtime_step=100.0)
        entries = cache.entries()
        assert [e.key for e in entries] == ["k00", "k01", "k02"]
        assert all(e.size > 0 for e in entries)

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats()["entries"] == 0
        self._fill(cache, 4)
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["total_bytes"] == sum(e.size for e in cache.entries())

    def test_prune_by_age(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 4, mtime_step=86400.0)  # 4, 3, 2, 1 days old
        removed, kept = cache.prune(max_age_days=2.5)
        assert sorted(e.key for e in removed) == ["k00", "k01"]
        assert len(kept) == 2
        assert cache.get_value("k00") is None  # gone from disk
        assert cache.get_value("k03") == 3.0

    def test_prune_by_size_evicts_oldest(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 5, mtime_step=10.0)
        entry = cache.entries()[0]
        budget_mb = (entry.size * 2.5) / (1024 * 1024)
        removed, kept = cache.prune(max_size_mb=budget_mb)
        assert len(kept) == 2
        assert [e.key for e in kept] == ["k03", "k04"]  # newest survive

    def test_prune_dry_run_keeps_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 3, mtime_step=86400.0)
        removed, _ = cache.prune(max_age_days=0.5, dry_run=True)
        assert len(removed) == 3
        assert len(cache.entries()) == 3  # nothing deleted

    def test_prune_noop_without_limits(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 2)
        removed, kept = cache.prune()
        assert removed == [] and len(kept) == 2

    def test_torn_tempfiles_are_not_entries(self, tmp_path):
        """Crash leftovers from atomic writes never surface as entries."""
        from repro.sim.executors import merge_shard_dirs

        cache = ResultCache(tmp_path / "shard")
        self._fill(cache, 2)
        torn = tmp_path / "shard" / ".deadbeef.123.tmp.npz"
        torn.write_bytes(b"torn write")
        assert len(cache.entries()) == 2
        assert cache.stats()["entries"] == 2
        copied, skipped = merge_shard_dirs([tmp_path / "shard"], tmp_path / "out")
        assert (copied, skipped) == (2, 0)
        assert not (tmp_path / "out" / torn.name).exists()


class TestCacheCLI:
    def test_stats_ls_prune(self, tmp_path, capsys):
        from repro.experiments.runner import main

        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 3, mtime_step=86400.0)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "k00" in out and "age" in out
        assert main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-age-days", "1.5", "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove 2 entries" in out
        assert len(cache.entries()) == 3
        assert main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-age-days", "1.5", "--yes"]
        ) == 0
        assert len(cache.entries()) == 1

    def test_prune_requires_a_limit(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 1

    def test_prune_refuses_without_yes_when_not_a_tty(self, tmp_path, capsys):
        """Deleting a (possibly shared) cache needs explicit consent."""
        from repro.experiments.runner import main

        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 3, mtime_step=86400.0)
        assert main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-age-days", "0.5"]
        ) == 1
        out = capsys.readouterr().out
        assert "refusing to delete without --yes" in out
        assert len(cache.entries()) == 3  # nothing deleted

    def test_prune_interactive_confirmation(self, tmp_path, capsys, monkeypatch):
        """A terminal user is prompted; 'n' aborts, 'y' deletes."""
        from repro.experiments import runner

        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 3, mtime_step=86400.0)
        monkeypatch.setattr(runner.sys.stdin, "isatty", lambda: True)
        argv = ["cache", "prune", "--cache-dir", str(tmp_path),
                "--max-age-days", "0.5"]
        monkeypatch.setattr("builtins.input", lambda prompt: "n")
        assert runner.main(argv) == 1
        assert "aborted" in capsys.readouterr().out
        assert len(cache.entries()) == 3
        monkeypatch.setattr("builtins.input", lambda prompt: "y")
        assert runner.main(argv) == 0
        assert "removed 3 entries" in capsys.readouterr().out
        assert len(cache.entries()) == 0


class TestCacheVerify:
    """Integrity checks: truncated/corrupt/foreign entries are caught."""

    def test_clean_cache_verifies(self, tmp_path):
        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 3)
        ok, corrupt = cache.verify()
        assert len(ok) == 3 and corrupt == []
        assert cache.verify_entry("k00") == (True, "ok")

    def test_missing_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.verify_entry("nope") == (False, "missing")

    def test_truncated_entry_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 2)
        path = cache._path("k00")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        ok, corrupt = cache.verify()
        assert [e.key for e in ok] == ["k01"]
        assert [e.key for e, _ in corrupt] == ["k00"]

    def test_empty_file_is_corrupt_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 1)
        cache._path("k00").write_bytes(b"")
        assert cache.verify_entry("k00") == (False, "empty file")
        assert cache.stats()["empty_entries"] == 1

    def test_foreign_npz_is_corrupt(self, tmp_path):
        import numpy as np

        cache = ResultCache(tmp_path)
        with open(cache._path("alien"), "wb") as handle:
            np.savez(handle, payload=np.arange(3))
        ok, reason = cache.verify_entry("alien")
        assert not ok and "foreign" in reason

    def test_invalidate_deletes(self, tmp_path):
        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 1)
        assert cache.invalidate("k00")
        assert not cache.invalidate("k00")  # already gone
        assert cache.verify_entry("k00") == (False, "missing")

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_value("k", 5.0)
        cache._path("k").write_bytes(b"garbage")
        assert cache.get_value("k") is None  # miss, not an exception

    def test_atomic_store_leaves_no_temp_on_success(self, tmp_path):
        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 3)
        stray = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
        assert stray == []


class TestCacheVerifyCLI:
    def test_verify_clean_and_corrupt(self, tmp_path, capsys):
        from repro.experiments.runner import main

        cache = ResultCache(tmp_path)
        TestCacheGC._fill(cache, 3)
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "3 entries ok, 0 corrupt" in capsys.readouterr().out
        path = cache._path("k01")
        path.write_bytes(path.read_bytes()[:10])
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "2 entries ok, 1 corrupt" in out and "k01" in out
        # The corrupt entry survives a report-only verify...
        assert cache._path("k01").exists()
        # ... and is removed by --delete.
        assert main(
            ["cache", "verify", "--cache-dir", str(tmp_path), "--delete"]
        ) == 0
        assert "1 corrupt removed" in capsys.readouterr().out
        assert not cache._path("k01").exists()
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
