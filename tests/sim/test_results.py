"""Overhead estimators and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.batch import simulate_batch
from repro.sim.protocol import simulate_run
from repro.sim.results import OverheadEstimate, overhead_estimate, overhead_samples
from repro.sim.rng import make_rng, spawn_rngs


class TestOverheadEstimate:
    def test_from_samples_statistics(self):
        samples = np.array([0.10, 0.11, 0.12, 0.13])
        est = OverheadEstimate.from_samples(samples)
        assert est.mean == pytest.approx(0.115)
        assert est.std == pytest.approx(np.std(samples, ddof=1))
        assert est.stderr == pytest.approx(est.std / 2.0)
        assert est.n_runs == 4

    def test_ci_is_symmetric(self):
        est = OverheadEstimate.from_samples(np.array([1.0, 2.0, 3.0]))
        assert est.ci_high - est.mean == pytest.approx(est.mean - est.ci_low)
        assert est.halfwidth == pytest.approx((est.ci_high - est.ci_low) / 2)

    def test_contains(self):
        est = OverheadEstimate.from_samples(np.array([1.0, 2.0, 3.0]))
        assert est.contains(est.mean)
        assert not est.contains(est.ci_high + 1.0)

    def test_single_sample_degenerate(self):
        est = OverheadEstimate.from_samples(np.array([0.5]))
        assert est.mean == 0.5
        assert est.std == 0.0
        assert est.ci_low == est.ci_high == 0.5

    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            OverheadEstimate.from_samples(np.array([]))

    def test_ci_shrinks_with_samples(self):
        rng = np.random.default_rng(5)
        small = OverheadEstimate.from_samples(rng.normal(0.1, 0.01, 20))
        large = OverheadEstimate.from_samples(rng.normal(0.1, 0.01, 2000))
        assert large.halfwidth < small.halfwidth


class TestOverheadSamples:
    def test_normalisation(self, simple_model):
        T, P, n_pat = 1000.0, 100, 10
        run_times = np.array([12_000.0, 13_000.0])
        samples = overhead_samples(simple_model, T, P, run_times, n_pat)
        work = n_pat * T * simple_model.speedup.speedup(P)
        np.testing.assert_allclose(samples, run_times / work)

    def test_error_free_floor(self, simple_model):
        # A run with zero waste lands exactly on H(P) * (T+V+C)/T.
        T, P, n_pat = 1000.0, 100, 5
        ideal = n_pat * (T + simple_model.costs.combined_cost(P))
        sample = overhead_samples(simple_model, T, P, np.array([ideal]), n_pat)[0]
        floor = simple_model.error_free_overhead(P)
        assert sample > floor

    def test_rejects_bad_pattern_count(self, simple_model):
        with pytest.raises(SimulationError):
            overhead_samples(simple_model, 100.0, 10, np.array([1.0]), 0)


class TestOverheadEstimateDispatch:
    def test_from_batch(self, simple_model):
        stats = simulate_batch(simple_model, 1000.0, 100, 30, 20, make_rng(1))
        est = overhead_estimate(simple_model, 1000.0, 100, stats)
        assert est.n_runs == 30
        assert est.mean > simple_model.error_free_overhead(100)

    def test_from_run_stats(self, simple_model):
        runs = [
            simulate_run(simple_model, 1000.0, 100, 20, rng)
            for rng in spawn_rngs(10, seed=2)
        ]
        est = overhead_estimate(simple_model, 1000.0, 100, runs)
        assert est.n_runs == 10

    def test_batch_and_des_agree(self, simple_model):
        T, P, n_pat = 1000.0, 100, 25
        batch = simulate_batch(simple_model, T, P, 300, n_pat, make_rng(3))
        est_b = overhead_estimate(simple_model, T, P, batch)
        runs = [
            simulate_run(simple_model, T, P, n_pat, rng) for rng in spawn_rngs(60, seed=4)
        ]
        est_d = overhead_estimate(simple_model, T, P, runs)
        pooled = np.hypot(est_b.stderr, est_d.stderr)
        assert abs(est_b.mean - est_d.mean) < 4 * pooled

    def test_empty_runs_raises(self, simple_model):
        with pytest.raises(SimulationError):
            overhead_estimate(simple_model, 100.0, 10, [])

    def test_mismatched_pattern_counts_raise(self, simple_model):
        runs = [
            simulate_run(simple_model, 1000.0, 100, 5, make_rng(5)),
            simulate_run(simple_model, 1000.0, 100, 6, make_rng(6)),
        ]
        with pytest.raises(SimulationError):
            overhead_estimate(simple_model, 1000.0, 100, runs)
