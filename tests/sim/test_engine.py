"""Discrete-event engine kernel."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import EventEngine
from repro.sim.events import EventKind


class TestScheduling:
    def test_chronological_order(self):
        e = EventEngine()
        e.schedule(5.0, EventKind.CUSTOM, "late")
        e.schedule(1.0, EventKind.CUSTOM, "early")
        e.schedule(3.0, EventKind.CUSTOM, "middle")
        order = [e.pop().payload for _ in range(3)]
        assert order == ["early", "middle", "late"]

    def test_clock_advances(self):
        e = EventEngine()
        e.schedule(2.5, EventKind.CUSTOM)
        assert e.now == 0.0
        e.pop()
        assert e.now == 2.5

    def test_fifo_tie_breaking(self):
        e = EventEngine()
        e.schedule(1.0, EventKind.CUSTOM, "first")
        e.schedule(1.0, EventKind.CUSTOM, "second")
        assert e.pop().payload == "first"
        assert e.pop().payload == "second"

    def test_schedule_at_absolute(self):
        e = EventEngine(start_time=100.0)
        e.schedule_at(105.0, EventKind.CUSTOM)
        assert e.pop().time == pytest.approx(105.0)

    def test_negative_delay_raises(self):
        e = EventEngine()
        with pytest.raises(SimulationError):
            e.schedule(-1.0, EventKind.CUSTOM)

    def test_relative_to_current_time(self):
        e = EventEngine()
        e.schedule(1.0, EventKind.CUSTOM)
        e.pop()
        e.schedule(1.0, EventKind.CUSTOM)
        assert e.pop().time == pytest.approx(2.0)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        e = EventEngine()
        h = e.schedule(1.0, EventKind.FAIL_STOP)
        e.schedule(2.0, EventKind.SEGMENT_END)
        e.cancel(h)
        assert e.pop().kind is EventKind.SEGMENT_END

    def test_cancel_after_fire_is_noop(self):
        e = EventEngine()
        h = e.schedule(1.0, EventKind.CUSTOM)
        event = e.pop()
        e.cancel(h)  # no error
        assert event.handle == h

    def test_len_accounts_for_cancellations(self):
        e = EventEngine()
        h1 = e.schedule(1.0, EventKind.CUSTOM)
        e.schedule(2.0, EventKind.CUSTOM)
        assert len(e) == 2
        e.cancel(h1)
        assert len(e) == 1

    def test_empty_after_all_cancelled(self):
        e = EventEngine()
        h = e.schedule(1.0, EventKind.CUSTOM)
        e.cancel(h)
        assert e.empty()

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventEngine().pop()


class TestAdvance:
    def test_advance_moves_clock(self):
        e = EventEngine()
        e.advance(10.0)
        assert e.now == 10.0

    def test_advance_cannot_skip_events(self):
        e = EventEngine()
        e.schedule(5.0, EventKind.CUSTOM)
        with pytest.raises(SimulationError):
            e.advance(10.0)

    def test_advance_up_to_cancelled_event_ok(self):
        e = EventEngine()
        h = e.schedule(5.0, EventKind.CUSTOM)
        e.cancel(h)
        e.advance(10.0)  # the cancelled event does not block
        assert e.now == 10.0

    def test_negative_advance_raises(self):
        with pytest.raises(SimulationError):
            EventEngine().advance(-1.0)


class TestRun:
    def test_run_until_empty(self):
        e = EventEngine()
        seen = []
        for i in range(5):
            e.schedule(float(i), EventKind.CUSTOM, i)
        count = e.run(lambda ev: (seen.append(ev.payload), True)[1])
        assert count == 5
        assert seen == [0, 1, 2, 3, 4]

    def test_handler_can_stop(self):
        e = EventEngine()
        for i in range(5):
            e.schedule(float(i), EventKind.CUSTOM, i)
        count = e.run(lambda ev: ev.payload < 2)
        assert count == 3  # 0, 1 continue; 2 stops

    def test_max_events_guard(self):
        e = EventEngine()

        def reschedule(ev):
            e.schedule(1.0, EventKind.CUSTOM)
            return True

        e.schedule(1.0, EventKind.CUSTOM)
        with pytest.raises(SimulationError):
            e.run(reschedule, max_events=100)
