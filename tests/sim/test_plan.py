"""Fused simulation planning: requests, keys, cache, shared-pool dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.montecarlo import simulate_overhead
from repro.sim.plan import (
    BACKEND_VERSION,
    ResultCache,
    SimRequest,
    WorkerPool,
    canonical_signature,
    execute_plan,
    plan_simulations,
    request_jobs,
    request_key,
    simulate_requests,
)
from repro.sim.results import OverheadEstimate


@pytest.fixture
def request_(hera_sc1) -> SimRequest:
    return SimRequest(hera_sc1, T=6000.0, P=256.0, n_runs=8, n_patterns=10, seed=3)


class TestCanonicalSignature:
    def test_model_signature_is_stable(self, hera_sc1):
        assert canonical_signature(hera_sc1) == canonical_signature(hera_sc1)

    def test_float_exactness(self):
        # hex rendering is lossless: adjacent float64 values stay distinct.
        a = np.nextafter(0.1, 1.0)
        assert canonical_signature(0.1) != canonical_signature(float(a))
        assert canonical_signature(0.1) == canonical_signature(0.1)

    def test_rejects_unsupported_types(self):
        with pytest.raises(SimulationError):
            canonical_signature(object())


class TestRequestKey:
    def test_deterministic(self, request_):
        assert request_key(request_) == request_key(request_)

    def test_differs_by_parameters(self, hera_sc1, hera_sc3, request_):
        base = request_key(request_)
        variants = [
            SimRequest(hera_sc3, 6000.0, 256.0, 8, 10, seed=3),
            SimRequest(hera_sc1, 6001.0, 256.0, 8, 10, seed=3),
            SimRequest(hera_sc1, 6000.0, 512.0, 8, 10, seed=3),
            SimRequest(hera_sc1, 6000.0, 256.0, 9, 10, seed=3),
            SimRequest(hera_sc1, 6000.0, 256.0, 8, 11, seed=3),
            SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=4),
            SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=3, method="des"),
        ]
        keys = {base} | {request_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_workers_in_key_only_where_it_refines_the_chunk_plan(self, hera_sc1):
        # des and single-pass batch ignore workers: same numbers, same key.
        small = SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=3)
        assert request_key(small) == request_key(
            SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=3, workers=4)
        )
        des = SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=3, method="des")
        assert request_key(des) == request_key(
            SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=3, method="des", workers=4)
        )
        # Chunked vectorized: workers refines the plan and the stream.
        vec = SimRequest(hera_sc1, 6000.0, 256.0, 50, 100, seed=3, method="vectorized")
        vec4 = SimRequest(
            hera_sc1, 6000.0, 256.0, 50, 100, seed=3, method="vectorized", workers=4
        )
        assert request_key(vec) != request_key(vec4)
        # workers=1 never refines: identical to None everywhere.
        assert request_key(vec) == request_key(
            SimRequest(
                hera_sc1, 6000.0, 256.0, 50, 100, seed=3, method="vectorized", workers=1
            )
        )

    def test_auto_resolves_to_concrete_backend(self, hera_sc1):
        # auto and its resolution share one key (and one cache entry).
        auto = SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=3, method="auto")
        batch = SimRequest(hera_sc1, 6000.0, 256.0, 8, 10, seed=3, method="batch")
        assert request_key(auto) == request_key(batch)

    def test_unknown_method_raises(self, hera_sc1):
        bad = SimRequest(hera_sc1, 6000.0, 256.0, method="quantum")
        with pytest.raises(SimulationError):
            request_key(bad)


class TestPlanSimulations:
    def test_dedup_and_slots(self, hera_sc1, request_):
        other = SimRequest(hera_sc1, 7000.0, 256.0, 8, 10, seed=3)
        plan = plan_simulations([request_, other, request_])
        assert plan.n_points == 3
        assert plan.n_unique == 2
        assert plan.slots == (0, 1, 0)

    def test_groups_by_backend(self, hera_sc1, request_):
        des = SimRequest(hera_sc1, 6000.0, 256.0, 4, 5, seed=3, method="des")
        plan = plan_simulations([request_, des])
        groups = plan.groups()
        assert set(groups) == {"batch", "des"}

    def test_dispatch_order_puts_slow_backends_first(self, hera_sc1, request_):
        des = SimRequest(hera_sc1, 6000.0, 256.0, 4, 5, seed=3, method="des")
        plan = plan_simulations([request_, des])  # batch is unique index 0
        assert plan.dispatch_order() == [1, 0]
        # Dispatch order never changes the returned values or alignment.
        fused = simulate_requests([request_, des])
        assert fused[0].n_runs == request_.n_runs
        assert fused[1].n_runs == 4


class TestRequestJobs:
    def test_small_batch_is_one_job(self, request_):
        assert len(request_jobs(request_)) == 1

    def test_workers_refine_vectorized_chunks(self, hera_sc1):
        req = SimRequest(
            hera_sc1, 6000.0, 256.0, 50, 100, seed=3, method="vectorized", workers=2
        )
        assert len(request_jobs(req)) == 2

    def test_des_slices_cover_all_runs(self, hera_sc1):
        req = SimRequest(hera_sc1, 6000.0, 256.0, 20, 5, seed=3, method="des")
        jobs = request_jobs(req)
        total = sum(len(job[1][4]) for job in jobs)
        assert total == 20

    def test_rejects_nonpositive_budget(self, hera_sc1):
        req = SimRequest(hera_sc1, 6000.0, 256.0, 0, 10, seed=3)
        with pytest.raises(SimulationError):
            request_jobs(req)


class TestBitIdentity:
    """The fused path must equal per-point simulate_overhead bit for bit."""

    @pytest.mark.parametrize("method", ["batch", "vectorized", "des"])
    @pytest.mark.parametrize("workers", [None, 2])
    def test_matches_sequential(self, hera_sc1, hera_sc3, method, workers):
        n_runs, n_patterns = (6, 8) if method == "des" else (10, 20)
        points = [(hera_sc1, 6000.0, 256.0), (hera_sc3, 5000.0, 512.0)]
        sequential = [
            simulate_overhead(
                m, T, P, n_runs, n_patterns, seed=5, method=method, workers=workers
            )
            for m, T, P in points
        ]
        requests = [
            SimRequest(m, T, P, n_runs, n_patterns, seed=5, method=method, workers=workers)
            for m, T, P in points
        ]
        fused = simulate_requests(requests)
        assert fused == sequential

    def test_pool_width_never_changes_results(self, hera_sc1):
        requests = [
            SimRequest(hera_sc1, 6000.0, 256.0, 10, 20, seed=5, workers=2),
            SimRequest(hera_sc1, 7000.0, 256.0, 10, 20, seed=5, workers=2),
        ]
        serial = simulate_requests(requests)
        with WorkerPool(2) as pool:
            pooled = simulate_requests(requests, pool=pool)
        assert serial == pooled

    def test_error_free_point(self):
        from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts

        model = PatternModel(
            errors=ErrorModel(lambda_ind=0.0, fail_stop_fraction=0.5),
            costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0),
            speedup=AmdahlSpeedup(0.1),
        )
        req = SimRequest(model, 3600.0, 100.0, 5, 10, seed=1)
        est = simulate_requests([req])[0]
        seq = simulate_overhead(model, 3600.0, 100.0, 5, 10, seed=1)
        assert est == seq


class TestWorkerPool:
    def test_serial_when_single_worker(self):
        pool = WorkerPool(1)
        assert not pool.parallel
        assert pool.map(abs, [-1, -2]) == [1, 2]

    def test_zero_clamps_to_serial(self):
        assert WorkerPool(0).workers == 1

    def test_parallel_map_preserves_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(abs, list(range(-8, 0))) == list(range(8, 0, -1))


class TestResultCache:
    def test_estimate_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        est = OverheadEstimate(
            mean=0.11, std=0.01, stderr=0.002, ci_low=0.106, ci_high=0.114, n_runs=25
        )
        assert cache.get_estimate("k" * 64) is None
        cache.put_estimate("k" * 64, est)
        assert cache.get_estimate("k" * 64) == est
        assert (cache.hits, cache.misses) == (1, 1)

    def test_value_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_value("v" * 64, 0.125)
        assert cache.get_value("v" * 64) == 0.125

    def test_kind_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_value("x" * 64, 1.0)
        assert cache.get_estimate("x" * 64) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ("c" * 64 + ".npz")).write_bytes(b"not an npz")
        assert cache.get_estimate("c" * 64) is None

    def test_execute_plan_uses_cache(self, tmp_path, hera_sc1):
        req = SimRequest(hera_sc1, 6000.0, 256.0, 10, 20, seed=5)
        plan = plan_simulations([req])
        cache = ResultCache(tmp_path)
        cold = execute_plan(plan, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        warm = execute_plan(plan, cache=ResultCache(tmp_path))
        assert warm == cold

    def test_backend_version_isolates_entries(self, hera_sc1, request_, monkeypatch):
        import repro.sim.plan as plan_mod

        before = request_key(request_)
        monkeypatch.setattr(plan_mod, "BACKEND_VERSION", BACKEND_VERSION + 1)
        assert request_key(request_) != before
