"""Vectorised Monte-Carlo sampler: distribution checks vs theory and DES."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.core.errors import expected_time_lost
from repro.exceptions import SimulationError
from repro.sim.batch import simulate_batch, truncated_exponential
from repro.sim.protocol import simulate_run
from repro.sim.rng import make_rng, spawn_rngs


def _model(lambda_ind: float, f: float, C=60.0, V=10.0, D=30.0) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=C, verification=V, downtime=D),
        speedup=AmdahlSpeedup(0.1),
    )


class TestTruncatedExponential:
    def test_within_window(self):
        samples = truncated_exponential(make_rng(1), lam=0.01, window=100.0, size=10_000)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= 100.0)

    def test_mean_matches_expected_time_lost(self):
        lam, W = 0.02, 80.0
        samples = truncated_exponential(make_rng(2), lam, W, 200_000)
        assert samples.mean() == pytest.approx(expected_time_lost(lam, W), rel=5e-3)

    def test_tiny_rate_is_near_uniform(self):
        samples = truncated_exponential(make_rng(3), 1e-12, 10.0, 100_000)
        assert samples.mean() == pytest.approx(5.0, rel=2e-2)

    def test_empty_size(self):
        assert truncated_exponential(make_rng(1), 0.1, 10.0, 0).size == 0

    def test_rejects_zero_rate(self):
        with pytest.raises(SimulationError):
            truncated_exponential(make_rng(1), 0.0, 10.0, 5)


class TestAgainstProposition1:
    @pytest.mark.parametrize("f", [1.0, 0.0, 0.4])
    def test_mean_pattern_time(self, f):
        model = _model(2e-5, f)
        T, P = 1500.0, 20
        stats = simulate_batch(model, T, P, n_runs=400, n_patterns=100, rng=make_rng(42))
        analytic = model.expected_time(T, P)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        assert abs(stats.mean_pattern_time - analytic) < 4 * sem

    def test_error_free_is_deterministic(self):
        model = _model(0.0, 0.5)
        stats = simulate_batch(model, 1000.0, 10, n_runs=5, n_patterns=3, rng=make_rng(1))
        np.testing.assert_allclose(stats.run_times, 3 * 1070.0)
        assert stats.n_fail_stop == 0
        assert stats.n_recoveries == 0

    def test_high_rate_regime(self):
        # Stress: ~2.3 failures expected per attempt on average.
        model = _model(1e-3, 0.5, C=5.0, V=1.0, D=2.0)
        T, P = 100.0, 10
        stats = simulate_batch(model, T, P, n_runs=600, n_patterns=30, rng=make_rng(9))
        analytic = model.expected_time(T, P)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        assert abs(stats.mean_pattern_time - analytic) < 4 * sem


class TestAgainstReferenceSimulator:
    """The two simulators draw from the same distribution."""

    def test_means_agree(self):
        model = _model(3e-5, 0.5)
        T, P, n_pat = 1200.0, 25, 30
        batch = simulate_batch(model, T, P, n_runs=400, n_patterns=n_pat, rng=make_rng(5))
        des_times = np.array(
            [
                simulate_run(model, T, P, n_pat, rng).total_time
                for rng in spawn_rngs(80, seed=6)
            ]
        )
        batch_mean = batch.run_times.mean()
        des_mean = des_times.mean()
        pooled_sem = np.sqrt(
            batch.run_times.var(ddof=1) / batch.n_runs + des_times.var(ddof=1) / des_times.size
        )
        assert abs(batch_mean - des_mean) < 4 * pooled_sem

    def test_variances_same_order(self):
        model = _model(3e-5, 0.5)
        T, P, n_pat = 1200.0, 25, 30
        batch = simulate_batch(model, T, P, n_runs=300, n_patterns=n_pat, rng=make_rng(7))
        des_times = np.array(
            [
                simulate_run(model, T, P, n_pat, rng).total_time
                for rng in spawn_rngs(80, seed=8)
            ]
        )
        ratio = batch.run_times.var(ddof=1) / des_times.var(ddof=1)
        assert 0.4 < ratio < 2.5

    def test_event_rates_agree(self):
        model = _model(5e-5, 0.6)
        T, P, n_pat = 800.0, 20, 50
        batch = simulate_batch(model, T, P, n_runs=200, n_patterns=n_pat, rng=make_rng(10))
        des = [
            simulate_run(model, T, P, n_pat, rng) for rng in spawn_rngs(50, seed=11)
        ]
        batch_fs_per_pattern = batch.n_fail_stop / (batch.n_runs * n_pat)
        des_fs_per_pattern = sum(s.n_fail_stop for s in des) / (len(des) * n_pat)
        assert batch_fs_per_pattern == pytest.approx(des_fs_per_pattern, rel=0.25)
        batch_silent = batch.n_silent_detected / (batch.n_runs * n_pat)
        des_silent = sum(s.n_silent_detected for s in des) / (len(des) * n_pat)
        assert batch_silent == pytest.approx(des_silent, rel=0.25)


class TestBookkeeping:
    def test_attempts_at_least_patterns(self):
        model = _model(1e-4, 0.5)
        stats = simulate_batch(model, 500.0, 20, n_runs=50, n_patterns=40, rng=make_rng(3))
        assert stats.n_attempts >= 50 * 40
        assert stats.n_recoveries == stats.n_attempts - 50 * 40

    def test_silent_only_has_no_downtime(self):
        model = _model(1e-4, 0.0)
        stats = simulate_batch(model, 500.0, 20, n_runs=50, n_patterns=40, rng=make_rng(4))
        assert stats.n_downtimes == 0
        assert stats.n_fail_stop == 0
        assert stats.n_silent_detected > 0

    def test_reproducible(self):
        model = _model(1e-5, 0.5)
        a = simulate_batch(model, 1000.0, 20, 20, 20, make_rng(12))
        b = simulate_batch(model, 1000.0, 20, 20, 20, make_rng(12))
        np.testing.assert_array_equal(a.run_times, b.run_times)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"T": 0.0, "P": 10, "n_runs": 1, "n_patterns": 1},
            {"T": 10.0, "P": 0, "n_runs": 1, "n_patterns": 1},
            {"T": 10.0, "P": 10, "n_runs": 0, "n_patterns": 1},
            {"T": 10.0, "P": 10, "n_runs": 1, "n_patterns": 0},
        ],
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(SimulationError):
            simulate_batch(_model(1e-6, 0.5), rng=make_rng(1), **kwargs)
