"""Node-level failure superposition: Proposition 1.2 and Palm-Khintchine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.platforms import build_model
from repro.sim.nodes import NodePool, simulate_run_nodes
from repro.sim.rng import make_rng, spawn_rngs
from repro.sim.streams import ExponentialArrivals, WeibullArrivals


class TestNodePool:
    def test_peek_is_min(self):
        pool = NodePool(100, ExponentialArrivals(1e-3), make_rng(1))
        first = pool.peek()
        assert first >= 0.0
        node = pool.fail_and_renew()
        assert 0 <= node < 100
        assert pool.peek() >= first

    def test_arrivals_monotone(self):
        pool = NodePool(50, ExponentialArrivals(1e-2), make_rng(2))
        times = []
        for _ in range(200):
            times.append(pool.peek())
            pool.fail_and_renew()
        assert times == sorted(times)

    def test_proposition_1_2_empirical_rate(self):
        # The superposition of P exponential(lam) streams is Poisson(P*lam).
        lam, P = 1e-4, 128
        pool = NodePool(P, ExponentialArrivals(lam), make_rng(3))
        horizon = 4000.0 / (P * lam)  # ~4000 expected arrivals
        rate = pool.empirical_rate(horizon)
        assert rate == pytest.approx(P * lam, rel=0.05)

    def test_warm_up_consumes_and_rebases(self):
        pool = NodePool(64, ExponentialArrivals(1e-3), make_rng(4))
        consumed = pool.warm_up(mean_multiples=2.0)
        assert consumed > 0
        assert pool.peek() >= 0.0 or pool.peek() > -1e-9  # rebased near zero

    def test_weibull_fresh_start_rate_elevated(self):
        # Infant mortality: a fresh pool of shape-0.7 nodes fails faster
        # than its long-run rate over a short early window.
        lam, P = 1e-4, 256
        w = WeibullArrivals.from_mean(0.7, 1.0 / lam)
        fresh = NodePool(P, w, make_rng(5))
        horizon = 100.0 / (P * lam)
        fresh_rate = fresh.empirical_rate(horizon)
        seasoned = NodePool(P, w, make_rng(6))
        seasoned.warm_up()
        seasoned_rate = seasoned.empirical_rate(horizon)
        assert fresh_rate > 1.1 * seasoned_rate

    def test_rejects_empty_pool(self):
        with pytest.raises(SimulationError):
            NodePool(0, ExponentialArrivals(1e-3), make_rng(1))


class TestNodeLevelProtocol:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("Hera", 1)

    def test_exponential_nodes_match_aggregated_model(self, model):
        # Proposition 1.2 through the whole protocol: node-level
        # simulation converges to the platform-level expectation.
        T, P = 6554.9, 207
        times = np.array(
            [
                simulate_run_nodes(model, T, P, 60, rng).total_time / 60
                for rng in spawn_rngs(50, seed=11)
            ]
        )
        analytic = model.expected_time(T, P)
        sem = times.std(ddof=1) / np.sqrt(times.size)
        assert abs(times.mean() - analytic) < 4 * sem

    def test_palm_khintchine_weibull_nodes(self, model):
        # Stationary per-node Weibull superposes to ~Poisson at 200+
        # nodes: the exponential-platform analysis stays accurate.
        T, P = 6554.9, 207
        lam_node = model.errors.lambda_ind * model.errors.fail_stop_fraction
        w = WeibullArrivals.from_mean(0.7, 1.0 / lam_node)
        times = np.array(
            [
                simulate_run_nodes(model, T, P, 60, rng, node_process=w).total_time / 60
                for rng in spawn_rngs(50, seed=12)
            ]
        )
        analytic = model.expected_time(T, P)
        assert times.mean() == pytest.approx(analytic, rel=0.01)

    def test_fresh_weibull_machine_pays_infant_mortality(self, model):
        T, P = 6554.9, 207
        lam_node = model.errors.lambda_ind * model.errors.fail_stop_fraction
        w = WeibullArrivals.from_mean(0.7, 1.0 / lam_node)
        fresh = np.mean(
            [
                simulate_run_nodes(
                    model, T, P, 60, rng, node_process=w, stationary=False
                ).total_time
                for rng in spawn_rngs(40, seed=13)
            ]
        )
        seasoned = np.mean(
            [
                simulate_run_nodes(model, T, P, 60, rng, node_process=w).total_time
                for rng in spawn_rngs(40, seed=14)
            ]
        )
        assert fresh > 1.01 * seasoned

    def test_breakdown_sums(self, model):
        stats = simulate_run_nodes(model, 6000.0, 100, 30, make_rng(15))
        assert stats.breakdown.total == pytest.approx(stats.total_time, rel=1e-12)

    def test_reproducible(self, model):
        a = simulate_run_nodes(model, 6000.0, 100, 20, make_rng(16))
        b = simulate_run_nodes(model, 6000.0, 100, 20, make_rng(16))
        assert a.total_time == b.total_time

    def test_rejects_zero_rate_without_process(self, simple_costs):
        from repro.core import AmdahlSpeedup, ErrorModel, PatternModel

        model = PatternModel(
            ErrorModel(0.0, 0.5), simple_costs, AmdahlSpeedup(0.1)
        )
        with pytest.raises(SimulationError):
            simulate_run_nodes(model, 100.0, 10, 5, make_rng(1))

    def test_rejects_bad_args(self, model):
        with pytest.raises(SimulationError):
            simulate_run_nodes(model, 0.0, 10, 5, make_rng(1))
        with pytest.raises(SimulationError):
            simulate_run_nodes(model, 100.0, 0, 5, make_rng(1))
        with pytest.raises(SimulationError):
            simulate_run_nodes(model, 100.0, 10, 0, make_rng(1))