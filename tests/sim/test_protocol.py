"""Event-driven reference simulator of the VC protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.exceptions import SimulationError
from repro.sim.protocol import simulate_run
from repro.sim.rng import make_rng


def _model(lambda_ind: float, f: float, C=60.0, V=10.0, D=30.0) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=C, verification=V, downtime=D),
        speedup=AmdahlSpeedup(0.1),
    )


class TestDeterministicPaths:
    def test_error_free_run_time(self):
        model = _model(0.0, 0.5)
        stats = simulate_run(model, T=1000.0, P=10, n_patterns=5, rng=make_rng(1))
        assert stats.total_time == pytest.approx(5 * 1070.0)
        assert stats.n_attempts == 5
        assert stats.n_fail_stop == 0
        assert stats.n_silent_detected == 0
        assert stats.n_recoveries == 0

    def test_error_free_breakdown(self):
        model = _model(0.0, 0.5)
        stats = simulate_run(model, T=1000.0, P=10, n_patterns=4, rng=make_rng(1))
        assert stats.breakdown.useful_work == pytest.approx(4000.0)
        assert stats.breakdown.verification == pytest.approx(40.0)
        assert stats.breakdown.checkpoint == pytest.approx(240.0)
        assert stats.breakdown.total == pytest.approx(stats.total_time)

    def test_certain_silent_error_loop_terminates(self):
        # Silent rate enormous: every attempt is hit, but the simulator
        # still terminates because attempts are independently retried...
        # with rate*T ~ 4, success probability e^-4 ~ 1.8% per attempt.
        model = _model(4e-4, 0.0)
        stats = simulate_run(model, T=1000.0, P=10, n_patterns=3, rng=make_rng(2))
        assert stats.n_patterns == 3
        assert stats.n_silent_detected > 0
        # Silent recoveries pay no downtime.
        assert stats.n_downtimes == 0

    def test_breakdown_sums_to_total_with_errors(self):
        model = _model(1e-5, 0.5)
        stats = simulate_run(model, T=2000.0, P=50, n_patterns=50, rng=make_rng(3))
        assert stats.breakdown.total == pytest.approx(stats.total_time, rel=1e-12)

    def test_pattern_count_always_reached(self):
        model = _model(5e-5, 0.7)
        stats = simulate_run(model, T=500.0, P=20, n_patterns=25, rng=make_rng(4))
        assert stats.n_patterns == 25
        assert stats.n_attempts >= 25

    def test_masked_silent_errors_counted_separately(self):
        # With heavy fail-stop and silent rates, some silent strikes are
        # masked: struck >= detected.
        model = _model(2e-4, 0.5)
        stats = simulate_run(model, T=2000.0, P=10, n_patterns=30, rng=make_rng(5))
        assert stats.n_silent_struck >= stats.n_silent_detected


class TestStatisticalAgreement:
    def test_mean_matches_proposition1_failstop_only(self):
        model = _model(2e-5, 1.0)
        T, P = 1500.0, 20
        times = [
            simulate_run(model, T, P, n_patterns=40, rng=make_rng(100 + i)).total_time / 40
            for i in range(60)
        ]
        mean = np.mean(times)
        sem = np.std(times, ddof=1) / np.sqrt(len(times))
        analytic = model.expected_time(T, P)
        assert abs(mean - analytic) < 4 * sem

    def test_mean_matches_proposition1_silent_only(self):
        model = _model(2e-5, 0.0)
        T, P = 1500.0, 20
        times = [
            simulate_run(model, T, P, n_patterns=40, rng=make_rng(200 + i)).total_time / 40
            for i in range(60)
        ]
        mean = np.mean(times)
        sem = np.std(times, ddof=1) / np.sqrt(len(times))
        analytic = model.expected_time(T, P)
        assert abs(mean - analytic) < 4 * sem

    def test_mean_matches_proposition1_mixed(self):
        model = _model(2e-5, 0.4)
        T, P = 1500.0, 20
        times = [
            simulate_run(model, T, P, n_patterns=40, rng=make_rng(300 + i)).total_time / 40
            for i in range(60)
        ]
        mean = np.mean(times)
        sem = np.std(times, ddof=1) / np.sqrt(len(times))
        analytic = model.expected_time(T, P)
        assert abs(mean - analytic) < 4 * sem

    def test_fail_stop_count_matches_rate(self):
        # Fail-stop events per unit of exposed time ~ lambda_f.
        model = _model(1e-5, 1.0, D=0.0)
        T, P = 2000.0, 30
        stats = simulate_run(model, T, P, n_patterns=300, rng=make_rng(6))
        lam_f = model.errors.fail_stop_rate(P)
        exposed = stats.total_time - stats.breakdown.downtime
        expected = lam_f * exposed
        assert stats.n_fail_stop == pytest.approx(expected, rel=0.2)


class TestValidation:
    def test_rejects_bad_period(self):
        with pytest.raises(SimulationError):
            simulate_run(_model(1e-6, 0.5), T=0.0, P=10, n_patterns=1, rng=make_rng(1))

    def test_rejects_bad_processors(self):
        with pytest.raises(SimulationError):
            simulate_run(_model(1e-6, 0.5), T=10.0, P=0, n_patterns=1, rng=make_rng(1))

    def test_rejects_bad_pattern_count(self):
        with pytest.raises(SimulationError):
            simulate_run(_model(1e-6, 0.5), T=10.0, P=10, n_patterns=0, rng=make_rng(1))

    def test_reproducible_with_same_seed(self):
        model = _model(1e-5, 0.5)
        a = simulate_run(model, 1000.0, 20, 20, make_rng(11))
        b = simulate_run(model, 1000.0, 20, 20, make_rng(11))
        assert a.total_time == b.total_time
        assert a.n_fail_stop == b.n_fail_stop
