"""Renewal-stream protocol simulator (exponential equivalence + Weibull)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.exceptions import SimulationError
from repro.sim.renewal import simulate_run_renewal
from repro.sim.rng import make_rng, spawn_rngs
from repro.sim.streams import WeibullArrivals


def _model(lambda_ind=3e-5, f=0.5) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=60.0, verification=10.0, downtime=30.0),
        speedup=AmdahlSpeedup(0.1),
    )


class TestExponentialEquivalence:
    def test_mean_matches_proposition1(self):
        model = _model()
        T, P = 1500.0, 20
        times = np.array(
            [
                simulate_run_renewal(model, T, P, 40, rng).total_time / 40
                for rng in spawn_rngs(60, seed=21)
            ]
        )
        analytic = model.expected_time(T, P)
        sem = times.std(ddof=1) / np.sqrt(times.size)
        assert abs(times.mean() - analytic) < 4 * sem

    def test_error_free(self):
        model = _model(lambda_ind=0.0)
        stats = simulate_run_renewal(model, 1000.0, 10, 5, make_rng(1))
        assert stats.total_time == pytest.approx(5 * 1070.0)
        assert stats.n_fail_stop == 0

    def test_silent_only(self):
        model = _model(lambda_ind=1e-4, f=0.0)
        stats = simulate_run_renewal(model, 1000.0, 20, 30, make_rng(2))
        assert stats.n_fail_stop == 0
        assert stats.n_silent_detected > 0
        assert stats.n_downtimes == 0

    def test_breakdown_sums(self):
        model = _model()
        stats = simulate_run_renewal(model, 1500.0, 30, 40, make_rng(3))
        assert stats.breakdown.total == pytest.approx(stats.total_time, rel=1e-12)

    def test_reproducible(self):
        model = _model()
        a = simulate_run_renewal(model, 1000.0, 20, 20, make_rng(4))
        b = simulate_run_renewal(model, 1000.0, 20, 20, make_rng(4))
        assert a.total_time == b.total_time


class TestWeibull:
    def test_shape_one_matches_exponential_mean(self):
        model = _model()
        T, P = 1500.0, 20
        lam_f = model.errors.fail_stop_rate(P)
        w = WeibullArrivals.from_mean(1.0, 1.0 / lam_f)
        times = np.array(
            [
                simulate_run_renewal(model, T, P, 40, rng, fail_stop=w).total_time / 40
                for rng in spawn_rngs(60, seed=31)
            ]
        )
        analytic = model.expected_time(T, P)
        sem = times.std(ddof=1) / np.sqrt(times.size)
        assert abs(times.mean() - analytic) < 4 * sem

    def test_fail_stop_count_preserved_by_matching_mean(self):
        # Same MTBF -> comparable long-run failure counts regardless of
        # shape (renewal reward theorem), though clustering differs.
        model = _model(f=1.0)
        T, P = 1500.0, 20
        lam_f = model.errors.fail_stop_rate(P)

        def total_failures(shape, seed):
            w = WeibullArrivals.from_mean(shape, 1.0 / lam_f)
            return sum(
                simulate_run_renewal(model, T, P, 50, rng, fail_stop=w).n_fail_stop
                for rng in spawn_rngs(30, seed=seed)
            )

        n_exp = total_failures(1.0, 41)
        n_weib = total_failures(0.7, 42)
        assert n_weib == pytest.approx(n_exp, rel=0.35)

    def test_bursty_failures_change_the_picture_at_high_rate(self):
        # Shape 0.7 at equal MTBF clusters failures.  For a restart
        # protocol in a failure-dominated regime this *helps* the mean
        # (clustered failures strike early in a retry, losing little
        # work, while the long gaps complete many patterns) but makes
        # runs more dispersed.  Lock in both effects: the exponential
        # assumption is conservative for the mean here, and the
        # run-to-run variability grows.
        model = _model(f=1.0, lambda_ind=2e-4)
        T, P = 800.0, 20
        lam_f = model.errors.fail_stop_rate(P)
        w = WeibullArrivals.from_mean(0.7, 1.0 / lam_f)
        exp_times = np.array(
            [
                simulate_run_renewal(model, T, P, 60, rng).total_time
                for rng in spawn_rngs(80, seed=51)
            ]
        )
        weib_times = np.array(
            [
                simulate_run_renewal(model, T, P, 60, rng, fail_stop=w).total_time
                for rng in spawn_rngs(80, seed=52)
            ]
        )
        assert weib_times.mean() < 0.8 * exp_times.mean()
        cv_exp = exp_times.std() / exp_times.mean()
        cv_weib = weib_times.std() / weib_times.mean()
        assert cv_weib > cv_exp

    def test_rejects_bad_pattern_count(self):
        with pytest.raises(SimulationError):
            simulate_run_renewal(_model(), 100.0, 10, 0, make_rng(1))
