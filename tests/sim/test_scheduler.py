"""Event-driven scheduler: windowing, interleaving determinism, claims.

The scheduler's contract: out-of-order future completion, the in-flight
window size, and the executor behind it change wall-clock only — the
tables that come out of the pipeline are byte-identical to the serial
path, because per-point merging happens in chunk order and every job is
a pure function of its arguments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.experiments.common import SimSettings
from repro.experiments.pipeline import SimulationPipeline
from repro.platforms.scenarios import build_model
from repro.sim.executors import (
    ClaimBoard,
    Executor,
    JobFuture,
    SerialExecutor,
    ShardedExecutor,
    claim_order,
    shard_of,
)
from repro.sim.montecarlo import Fidelity
from repro.sim.plan import SimRequest, plan_simulations, request_key
from repro.sim.scheduler import Scheduler, default_inflight

SETTINGS = SimSettings(fidelity=Fidelity(n_runs=6, n_patterns=10), seed=7)


def _job(value):
    return (_identity, (value,), {})


def _identity(value):
    return value


def _boom(value):
    raise ValueError(f"job {value} failed")


class RecordingExecutor(Executor):
    """Inline executor recording submission order and peak window."""

    def __init__(self):
        self.submitted = []
        self.completed = []
        self.outstanding = 0
        self.peak_outstanding = 0

    def submit(self, fn, item, tag=None):
        self.submitted.append(tag)
        self.outstanding += 1
        self.peak_outstanding = max(self.peak_outstanding, self.outstanding)
        return super().submit(fn, item, tag=tag)

    def next_completed(self):
        future = super().next_completed()
        if future is not None:
            self.outstanding -= 1
            self.completed.append(future.tag)
        return future


class ShuffledExecutor(Executor):
    """Defers execution and completes futures in seeded random order.

    A worst-case stand-in for a process pool: nothing completes in
    submission order, so any hidden completion-order dependence in the
    pipeline's bookkeeping would corrupt the merged results.
    """

    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)
        self._waiting: list[JobFuture] = []

    def submit(self, fn, item, tag=None):
        future = JobFuture(fn, item, tag)
        self._waiting.append(future)
        return future

    def next_completed(self):
        if not self._waiting:
            return None
        index = int(self._rng.integers(len(self._waiting)))
        future = self._waiting.pop(index)
        future._run_inline()
        return future

    def map(self, fn, items):
        return [fn(item) for item in items]


class TestSchedulerLoop:
    def test_yields_every_job_with_its_tag(self):
        scheduler = Scheduler(SerialExecutor(), max_inflight=3)
        for i in range(7):
            scheduler.add(_job(i * 10), tag=i)
        events = list(scheduler.events())
        assert sorted(events) == [(i, i * 10) for i in range(7)]

    def test_serial_executor_completes_in_submission_order(self):
        scheduler = Scheduler(SerialExecutor(), max_inflight=5)
        for i in range(6):
            scheduler.add(_job(i), tag=i)
        assert [tag for tag, _ in scheduler.events()] == list(range(6))

    def test_window_is_respected(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor, max_inflight=2)
        for i in range(8):
            scheduler.add(_job(i), tag=i)
        list(scheduler.events())
        assert executor.peak_outstanding <= 2

    def test_max_inflight_1_degenerates_to_serial(self):
        """Window 1: strict submit-complete alternation in queue order."""
        executor = RecordingExecutor()
        scheduler = Scheduler(executor, max_inflight=1)
        for i in range(5):
            scheduler.add(_job(i), tag=i)
        events = [tag for tag, _ in scheduler.events()]
        assert events == list(range(5))
        assert executor.peak_outstanding == 1
        assert executor.submitted == executor.completed == list(range(5))

    def test_default_window_scales_with_workers(self):
        assert Scheduler(SerialExecutor()).max_inflight == default_inflight(1)
        assert default_inflight(4) == 16
        assert default_inflight(0) == 1

    def test_rejects_non_positive_window(self):
        with pytest.raises(SimulationError):
            Scheduler(SerialExecutor(), max_inflight=0)

    def test_job_exception_propagates(self):
        scheduler = Scheduler(SerialExecutor(), max_inflight=2)
        scheduler.add((_boom, (1,), {}), tag="bad")
        with pytest.raises(ValueError, match="job 1 failed"):
            list(scheduler.events())

    def test_reusable_between_drains(self):
        scheduler = Scheduler(SerialExecutor(), max_inflight=2)
        scheduler.add(_job(1), tag="a")
        assert list(scheduler.events()) == [("a", 1)]
        scheduler.add(_job(2), tag="b")
        assert list(scheduler.events()) == [("b", 2)]
        assert scheduler.pending == 0 and scheduler.outstanding == 0

    def test_add_during_a_drain_joins_the_same_drain(self):
        """The consumer may stage jobs while events() is yielding.

        The loop re-reads the queue after every event, so mid-drain
        additions run in the same drain — the hook the adaptive
        replicate engine's incremental wave staging relies on.
        """
        scheduler = Scheduler(SerialExecutor(), max_inflight=2)
        scheduler.add(_job(1), tag="a")
        seen = []
        for tag, result in scheduler.events():
            seen.append((tag, result))
            if tag == "a":
                scheduler.add(_job(2), tag="b")
            if tag == "b":
                scheduler.add(_job(3), tag="c")
        assert seen == [("a", 1), ("b", 2), ("c", 3)]
        assert scheduler.pending == 0 and scheduler.outstanding == 0


class TestInterleavingDeterminism:
    """Out-of-order completion must not change a single byte."""

    def _tables(self, executor=None, max_inflight=None):
        from repro.experiments.registry import REGISTRY
        from repro.experiments.spec import stage_study

        with SimulationPipeline(executor=executor, max_inflight=max_inflight) as pipe:
            staged = stage_study(REGISTRY["fig2"], settings=SETTINGS, pipeline=pipe)
            pipe.resolve()
            return [r.table() for r in staged.finish()]

    def test_shuffled_completion_is_bit_identical(self):
        reference = self._tables()
        for seed in (1, 2, 3):
            assert self._tables(ShuffledExecutor(seed), max_inflight=4) == reference

    def test_window_size_never_changes_tables(self):
        reference = self._tables()
        for window in (1, 2, 16):
            assert self._tables(max_inflight=window) == reference

    def test_shuffled_pipeline_points_match_serial(self):
        model = build_model("Hera", 1)
        points = [(model, 4000.0 + 100 * i, 256.0) for i in range(6)]
        with SimulationPipeline() as pipe:
            serial = [pipe.simulate_mean(m, T, P, SETTINGS) for m, T, P in points]
            pipe.resolve()
        with SimulationPipeline(executor=ShuffledExecutor(9), max_inflight=2) as pipe:
            shuffled = [pipe.simulate_mean(m, T, P, SETTINGS) for m, T, P in points]
            pipe.resolve()
        assert [d.value for d in shuffled] == [d.value for d in serial]


class TestClaimOrder:
    def _keys(self, n=24):
        model = build_model("Hera", 1)
        return [
            request_key(
                SimRequest(model=model, T=3000.0 + i, P=500.0, n_runs=3, n_patterns=4)
            )
            for i in range(n)
        ]

    def test_own_partition_comes_first(self):
        keys = self._keys()
        for index in (0, 1, 2):
            ordered = claim_order(keys, index, 3)
            owners = [shard_of(k, 3) for k in ordered]
            ring = [(o - index) % 3 for o in owners]
            assert ring == sorted(ring), "claim order must walk the ring outward"
            own = [k for k in keys if shard_of(k, 3) == index]
            assert ordered[: len(own)] == sorted(own)

    def test_deterministic_and_permutation_invariant(self):
        keys = self._keys()
        ordered = claim_order(keys, 1, 3)
        assert claim_order(list(reversed(keys)), 1, 3) == ordered

    def test_stealing_claims_are_exclusive(self, tmp_path):
        keys = self._keys()
        a = ShardedExecutor(0, 2, mode="stealing", claim_dir=tmp_path)
        b = ShardedExecutor(1, 2, mode="stealing", claim_dir=tmp_path)
        # Interleave claim rounds: each key lands on exactly one shard.
        half = len(keys) // 2
        got_a = a.claim(keys[:half])
        got_b = b.claim(keys)
        got_a += a.claim(keys[half:])
        assert sorted(got_a + got_b) == sorted(keys)
        assert not set(got_a) & set(got_b)

    def test_idle_shard_steals_everything(self, tmp_path):
        keys = self._keys()
        only = ShardedExecutor(0, 2, mode="stealing", claim_dir=tmp_path)
        assert sorted(only.claim(keys)) == sorted(keys)
        late = ShardedExecutor(1, 2, mode="stealing", claim_dir=tmp_path)
        assert late.claim(keys) == []

    def test_reclaim_by_same_owner_is_idempotent(self, tmp_path):
        board = ClaimBoard(tmp_path)
        assert board.try_claim("k1", "shard-0")
        assert board.try_claim("k1", "shard-0")  # restarted shard keeps it
        assert not board.try_claim("k1", "shard-1")
        assert board.owner_of("k1") == "shard-0"
        assert board.owner_of("nope") is None
        assert board.claimed() == {"k1": "shard-0"}

    def test_stealing_requires_claim_dir(self):
        with pytest.raises(SimulationError):
            ShardedExecutor(0, 2, mode="stealing")
        with pytest.raises(SimulationError):
            ShardedExecutor(0, 2, mode="bogus")


class TestScheduledShardEquivalence:
    def test_stealing_union_matches_serial(self, tmp_path):
        """Both stealing shards together cover the plan, bit for bit."""
        from repro.sim.plan import ResultCache, execute_plan
        from repro.sim.executors import merge_shard_dirs

        model = build_model("Hera", 1)
        settings = SimSettings(fidelity=Fidelity(n_runs=3, n_patterns=4))
        requests = [
            SimRequest(
                model=model, T=3600.0 + i, P=800.0, n_runs=3, n_patterns=4,
                seed=settings.seed,
            )
            for i in range(8)
        ]
        plan = plan_simulations(requests)
        serial = execute_plan(plan)
        for index in (0, 1):
            executor = ShardedExecutor(
                index, 2, mode="stealing", claim_dir=tmp_path / "claims"
            )
            with SimulationPipeline(
                executor=executor, cache_dir=tmp_path / f"s{index}"
            ) as pipe:
                for request in requests:
                    pipe.simulate_mean(model, request.T, request.P, settings)
                pipe.resolve()
        merge_shard_dirs([tmp_path / "s0", tmp_path / "s1"], tmp_path / "merged")
        merged = execute_plan(plan, cache=ResultCache(tmp_path / "merged"))
        assert [e.mean for e in merged] == [e.mean for e in serial]


class TestRetry:
    """Transient failures: bounded backoff resubmission, inline fallback."""

    @staticmethod
    def _policy(attempts=2, **kw):
        from repro.sim.scheduler import RetryPolicy

        slept = []
        policy = RetryPolicy(attempts=attempts, sleep=slept.append, **kw)
        return policy, slept

    def test_transient_failure_is_retried(self):
        from repro.sim.faults import FaultPlan

        policy, slept = self._policy()
        scheduler = Scheduler(
            SerialExecutor(), max_inflight=2, retry=policy,
            fault=FaultPlan(fail_job=2, fail_times=1),
        )
        for i in range(4):
            scheduler.add(_job(i * 10), tag=i)
        events = dict(scheduler.events())
        assert events == {i: i * 10 for i in range(4)}
        assert scheduler.retries == 1
        assert scheduler.inline_fallbacks == 0
        assert slept == [policy.delay(1)]

    def test_backoff_sequence_then_inline_fallback(self):
        from repro.sim.faults import FaultPlan

        policy, slept = self._policy(attempts=3)
        # Fails more times than the retry budget: the scheduler's last
        # resort runs the original (unwrapped) job inline and succeeds.
        scheduler = Scheduler(
            SerialExecutor(), max_inflight=1, retry=policy,
            fault=FaultPlan(fail_job=1, fail_times=10),
        )
        scheduler.add(_job(42), tag="only")
        assert list(scheduler.events()) == [("only", 42)]
        assert scheduler.retries == 3
        assert scheduler.inline_fallbacks == 1
        assert slept == [policy.delay(1), policy.delay(2), policy.delay(3)]
        assert slept == sorted(slept)  # exponential: non-decreasing

    def test_delay_is_capped(self):
        from repro.sim.scheduler import RetryPolicy

        policy = RetryPolicy(base_delay=1.0, backoff=10.0, max_delay=3.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(5) == 3.0

    def test_deterministic_error_is_never_retried(self):
        policy, slept = self._policy()
        scheduler = Scheduler(SerialExecutor(), max_inflight=2, retry=policy)
        scheduler.add((_boom, (1,), {}), tag="bad")
        with pytest.raises(ValueError, match="job 1 failed"):
            list(scheduler.events())
        assert scheduler.retries == 0 and slept == []

    def test_retry_none_restores_fail_fast(self):
        from repro.sim.faults import FaultPlan, TransientFault

        scheduler = Scheduler(
            SerialExecutor(), max_inflight=1, retry=None,
            fault=FaultPlan(fail_job=1),
        )
        scheduler.add(_job(1), tag="a")
        with pytest.raises(TransientFault):
            list(scheduler.events())

    def test_is_transient_taxonomy(self):
        from concurrent.futures import CancelledError
        from concurrent.futures.process import BrokenProcessPool

        from repro.sim.scheduler import is_transient

        assert is_transient(OSError("io"))
        assert is_transient(BrokenProcessPool("pool"))
        assert is_transient(CancelledError())
        assert not is_transient(ValueError("logic"))
        assert not is_transient(SimulationError("domain"))

    def test_retried_results_are_bit_identical(self):
        """A retried sweep produces exactly the no-fault values."""
        from repro.sim.faults import FaultPlan

        model = build_model("Hera", 1)

        def run(fault):
            policy, _ = self._policy(attempts=5)
            with SimulationPipeline(
                executor=SerialExecutor(), retry=policy, fault=fault
            ) as pipe:
                points = [
                    pipe.simulate_mean(model, 3600.0 + i, 700.0, SETTINGS)
                    for i in range(4)
                ]
                pipe.resolve()
                return [p.value for p in points]

        clean = run(None)
        faulty = run(FaultPlan(fail_job=2, fail_times=2))
        assert faulty == clean


class TestClaimLeases:
    """Lease TTLs: stale claims from dead shards are reclaimed safely."""

    @staticmethod
    def _age(board: ClaimBoard, key: str, seconds: float) -> None:
        import os
        import time

        path = board._path(key)
        past = time.time() - seconds
        os.utime(path, (past, past))

    def test_fresh_foreign_claim_is_respected(self, tmp_path):
        board = ClaimBoard(tmp_path, lease_ttl=60.0)
        assert board.try_claim("k", "shard-0")
        assert not board.try_claim("k", "shard-1")
        assert board.reclaimed == 0

    def test_stale_foreign_claim_is_reclaimed(self, tmp_path):
        board = ClaimBoard(tmp_path, lease_ttl=60.0)
        assert board.try_claim("k", "shard-0")
        self._age(board, "k", 120.0)
        assert board.try_claim("k", "shard-1")
        assert board.owner_of("k") == "shard-1"
        assert board.reclaimed == 1

    def test_no_ttl_means_no_reclamation(self, tmp_path):
        board = ClaimBoard(tmp_path)  # historical behaviour
        assert board.try_claim("k", "shard-0")
        self._age(board, "k", 10_000.0)
        assert not board.try_claim("k", "shard-1")

    def test_reclaim_renews_the_lease(self, tmp_path):
        board = ClaimBoard(tmp_path, lease_ttl=60.0)
        board.try_claim("k", "shard-0")
        self._age(board, "k", 120.0)
        board.try_claim("k", "shard-1")
        assert board.age_of("k") < 60.0  # fresh again

    def test_same_owner_reclaim_touches_lease(self, tmp_path):
        board = ClaimBoard(tmp_path, lease_ttl=60.0)
        board.try_claim("k", "shard-0")
        self._age(board, "k", 50.0)
        assert board.try_claim("k", "shard-0")  # renewal, not reclamation
        assert board.age_of("k") < 50.0
        assert board.reclaimed == 0

    def test_age_of_unclaimed_is_none(self, tmp_path):
        board = ClaimBoard(tmp_path, lease_ttl=60.0)
        assert board.age_of("k") is None

    def test_rejects_non_positive_ttl(self, tmp_path):
        with pytest.raises(SimulationError):
            ClaimBoard(tmp_path, lease_ttl=0.0)

    def test_sharded_executor_threads_ttl(self, tmp_path):
        executor = ShardedExecutor(
            0, 2, mode="stealing", claim_dir=tmp_path, lease_ttl=45.0
        )
        assert executor.board.lease_ttl == 45.0

    def test_make_executor_threads_claim_ttl(self, tmp_path):
        from repro.sim.executors import make_executor

        executor = make_executor(
            1, 0, 2, shard_mode="stealing", claim_dir=tmp_path, claim_ttl=30.0
        )
        assert executor.board.lease_ttl == 30.0

    def test_dead_shard_keys_are_drained_by_survivor(self, tmp_path):
        """The leaked-claim scenario: a dead shard's keys get computed."""
        keys = [f"key{i}" for i in range(6)]
        board = ClaimBoard(tmp_path, lease_ttl=60.0)
        for key in keys[:3]:
            board.try_claim(key, "shard-0")  # shard-0 claims, then "dies"
        for key in keys[:3]:
            self._age(board, key, 300.0)
        survivor = ClaimBoard(tmp_path, lease_ttl=60.0)
        claimed = [key for key in keys if survivor.try_claim(key, "shard-1")]
        assert claimed == keys  # every key, including the dead shard's
        assert survivor.reclaimed == 3
