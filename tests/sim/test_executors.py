"""Executor protocol: serial, pooled, sharded dispatch and shard merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.platforms.scenarios import build_model
from repro.sim.executors import (
    JobFuture,
    PoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
    merge_shard_dirs,
    shard_of,
)
from repro.sim.plan import (
    ResultCache,
    SimRequest,
    WorkerPool,
    plan_simulations,
    request_key,
)


def _double(x):
    return 2 * x


def fig_requests(n=12) -> list[SimRequest]:
    model = build_model("Hera", 1)
    return [
        SimRequest(model=model, T=3600.0 + i, P=1000.0, n_runs=3, n_patterns=4)
        for i in range(n)
    ]


class TestShardOf:
    def test_deterministic(self):
        keys = [request_key(r) for r in fig_requests()]
        assert [shard_of(k, 3) for k in keys] == [shard_of(k, 3) for k in keys]

    def test_in_range_and_spread(self):
        keys = [request_key(r) for r in fig_requests(40)]
        shards = {shard_of(k, 4) for k in keys}
        assert shards <= {0, 1, 2, 3}
        assert len(shards) > 1  # hash actually spreads the keys


class TestSerialExecutor:
    def test_order_preserving_map(self):
        ex = SerialExecutor()
        assert ex.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert ex.workers == 1

    def test_owns_everything(self):
        assert SerialExecutor().owns("deadbeef")


class TestPoolExecutor:
    def test_wraps_worker_count(self):
        with PoolExecutor(3) as ex:
            assert ex.workers == 3
            assert ex.owns("deadbeef")
            assert ex.map(_double, [5, 7]) == [10, 14]

    def test_accepts_existing_pool(self):
        pool = WorkerPool(2)
        with PoolExecutor(pool) as ex:
            assert ex.pool is pool


class TestShardedExecutor:
    def test_partition_is_disjoint_and_covering(self):
        keys = [request_key(r) for r in fig_requests(30)]
        owners = [
            [ShardedExecutor(i, 3).owns(k) for i in range(3)] for k in keys
        ]
        assert all(sum(row) == 1 for row in owners)

    def test_validates_bounds(self):
        with pytest.raises(SimulationError):
            ShardedExecutor(2, 2)
        with pytest.raises(SimulationError):
            ShardedExecutor(-1, 2)
        with pytest.raises(SimulationError):
            ShardedExecutor(0, 0)

    def test_delegates_map_to_inner(self):
        ex = ShardedExecutor(0, 2, inner=SerialExecutor())
        assert ex.map(_double, [1, 2]) == [2, 4]
        assert ex.workers == 1


class TestMakeExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)

    def test_pool_for_many_jobs(self):
        ex = make_executor(4)
        assert isinstance(ex, PoolExecutor) and ex.workers == 4

    def test_sharded_wraps_inner(self):
        ex = make_executor(2, shard_index=1, shard_count=3)
        assert isinstance(ex, ShardedExecutor)
        assert isinstance(ex.inner, PoolExecutor)
        assert ex.shard_index == 1 and ex.shard_count == 3


class TestMergeShardDirs:
    @staticmethod
    def _fill(directory, keys_values):
        cache = ResultCache(directory)
        for key, value in keys_values:
            cache.put_value(key, value)

    def test_copies_and_counts(self, tmp_path):
        self._fill(tmp_path / "a", [("k1", 1.0), ("k2", 2.0)])
        self._fill(tmp_path / "b", [("k3", 3.0)])
        copied, skipped = merge_shard_dirs(
            [tmp_path / "a", tmp_path / "b"], tmp_path / "out"
        )
        assert (copied, skipped) == (3, 0)
        merged = ResultCache(tmp_path / "out")
        assert merged.get_value("k2") == 2.0
        assert merged.get_value("k3") == 3.0

    def test_identical_duplicates_skip(self, tmp_path):
        self._fill(tmp_path / "a", [("k1", 1.0)])
        (tmp_path / "b").mkdir()
        import shutil

        shutil.copyfile(tmp_path / "a" / "k1.npz", tmp_path / "b" / "k1.npz")
        copied, skipped = merge_shard_dirs(
            [tmp_path / "a", tmp_path / "b"], tmp_path / "out"
        )
        assert (copied, skipped) == (1, 1)

    def test_conflicting_content_refuses(self, tmp_path):
        self._fill(tmp_path / "a", [("k1", 1.0)])
        self._fill(tmp_path / "out", [("k1", 99.0)])
        with pytest.raises(SimulationError):
            merge_shard_dirs([tmp_path / "a"], tmp_path / "out")

    def test_missing_shard_dir_refuses(self, tmp_path):
        with pytest.raises(SimulationError):
            merge_shard_dirs([tmp_path / "nope"], tmp_path / "out")


class TestShardedPlanExecution:
    def test_foreign_points_stay_unresolved_and_cache_covers(self, tmp_path):
        """serve_or_expand skips foreign keys; a merged cache serves them."""
        from repro.sim.plan import merge_spans, run_job, serve_or_expand

        requests = fig_requests(6)
        plan = plan_simulations(requests)
        ex0 = ShardedExecutor(0, 2)
        cache0 = ResultCache(tmp_path / "s0")
        estimates, jobs, spans = serve_or_expand(plan, cache0, None, owned=ex0.owns)
        results = [run_job(j) for j in jobs]
        merge_spans(plan, estimates, spans, results, cache0, None)
        owned = [i for i, e in enumerate(estimates) if e is not None]
        foreign = [i for i, e in enumerate(estimates) if e is None]
        assert owned and foreign  # both sides non-trivial for this grid
        assert all(ShardedExecutor(0, 2).owns(plan.keys[i]) for i in owned)
        assert not any(ShardedExecutor(0, 2).owns(plan.keys[i]) for i in foreign)
        # The same cache dir now serves the owned points without jobs.
        again, jobs2, _ = serve_or_expand(plan, ResultCache(tmp_path / "s0"), None,
                                          owned=ex0.owns)
        assert [i for i, e in enumerate(again) if e is not None] == owned
        assert jobs2 == []

    def test_sharded_means_equal_serial_means(self, tmp_path):
        """Union of shard results == serial results, bit for bit."""
        from repro.sim.plan import execute_plan

        requests = fig_requests(5)
        plan = plan_simulations(requests)
        serial = execute_plan(plan)
        for index in (0, 1, 2):
            cache = ResultCache(tmp_path / f"s{index}")
            ex = ShardedExecutor(index, 3)
            from repro.sim.plan import merge_spans, run_job, serve_or_expand

            estimates, jobs, spans = serve_or_expand(plan, cache, None, owned=ex.owns)
            merge_spans(plan, estimates, spans, [run_job(j) for j in jobs], cache, None)
        merge_shard_dirs(
            [tmp_path / f"s{i}" for i in range(3)], tmp_path / "merged"
        )
        merged = execute_plan(plan, cache=ResultCache(tmp_path / "merged"))
        assert [e.mean for e in merged] == [e.mean for e in serial]
        assert [e.std for e in merged] == [e.std for e in serial]


class TestNumericalStability:
    def test_pool_and_serial_identical(self):
        from repro.sim.plan import execute_plan

        plan = plan_simulations(fig_requests(4))
        serial = execute_plan(plan)
        with WorkerPool(2) as pool:
            pooled = execute_plan(plan, pool=pool)
        assert np.array_equal(
            [e.mean for e in serial], [e.mean for e in pooled]
        )


def _crash(x):
    raise RuntimeError(f"boom {x}")


class TestSubmitProtocol:
    """The async submit/next_completed/as_completed surface."""

    def test_serial_submit_resolves_inline_in_order(self):
        ex = SerialExecutor()
        futures = [ex.submit(_double, i, tag=i) for i in range(4)]
        assert all(f.done for f in futures)
        drained = list(ex.as_completed())
        assert [f.tag for f in drained] == [0, 1, 2, 3]
        assert [f.result() for f in drained] == [0, 2, 4, 6]

    def test_next_completed_idle_returns_none(self):
        assert SerialExecutor().next_completed() is None

    def test_pool_submit_round_trips(self):
        with PoolExecutor(2) as ex:
            futures = [ex.submit(_double, i, tag=i) for i in range(5)]
            results = {f.tag: f.result() for f in ex.as_completed()}
        assert results == {i: 2 * i for i in range(5)}
        assert {f.tag for f in futures} == set(range(5))

    def test_pool_serial_fallback_submit(self):
        """workers=1: the pool is never used, jobs resolve inline."""
        with PoolExecutor(1) as ex:
            future = ex.submit(_double, 21, tag="t")
            assert future.done and future.result() == 42

    def test_sharded_delegates_submit_to_inner(self):
        with ShardedExecutor(0, 2, inner=SerialExecutor()) as ex:
            future = ex.submit(_double, 5)
            assert future.done
            assert ex.next_completed() is future

    def test_job_exception_raises_at_result(self):
        ex = SerialExecutor()
        future = ex.submit(_crash, 7, tag="bad")
        assert future.done
        with pytest.raises(RuntimeError, match="boom 7"):
            future.result()

    def test_pool_job_exception_raises_at_result(self):
        with PoolExecutor(2) as ex:
            ex.submit(_crash, 3)
            future = ex.next_completed()
            with pytest.raises(RuntimeError, match="boom 3"):
                future.result()

    def test_unfinished_future_read_refuses(self):
        from repro.sim.executors import JobFuture

        with pytest.raises(SimulationError):
            JobFuture(_double, 1).result()

    def test_default_claim_filters_by_owns(self):
        keys = [request_key(r) for r in fig_requests(10)]
        assert SerialExecutor().claim(keys) == keys
        sharded = ShardedExecutor(0, 2)
        assert sharded.claim(keys) == [k for k in keys if shard_of(k, 2) == 0]


class TestLifecycleUnderFailure:
    """A failing job must never leak pool processes (satellite: __exit__)."""

    def test_pipeline_failure_closes_shared_pool(self):
        """A job exception mid-run shuts the WorkerPool down."""
        from repro.experiments.pipeline import SimulationPipeline

        with SimulationPipeline(jobs=2) as pipe:
            pipe.call(_crash, 1)
            pipe.call(_double, 2)  # queued behind the failure
            with pytest.raises(RuntimeError, match="boom 1"):
                pipe.resolve()
            # resolve() closed the executor on the way out: no live
            # process pool survives the exception.
            assert pipe.executor.pool._pool is None

    def test_serial_exit_is_idempotent(self):
        ex = SerialExecutor()
        with ex:
            pass
        ex.close()  # double close is fine

    def test_pool_exit_shuts_down_even_with_inflight(self):
        ex = PoolExecutor(2)
        with ex:
            ex.submit(_double, 1)  # completion never consumed
        assert ex.pool._pool is None
        assert ex._inflight == {}
        ex.close()  # idempotent

    def test_pool_exit_propagates_body_exception_and_closes(self):
        ex = PoolExecutor(2)
        with pytest.raises(RuntimeError):
            with ex:
                ex.map(_double, [1, 2])
                raise RuntimeError("body failed")
        assert ex.pool._pool is None

    def test_sharded_exit_closes_inner(self):
        inner = PoolExecutor(2)
        with ShardedExecutor(0, 2, inner=inner) as ex:
            ex.map(_double, [1, 2])
        assert inner.pool._pool is None

    def test_cancelled_inner_future_replays_inline(self):
        """A broken pool's cancelled jobs re-run inline, not crash."""
        from concurrent.futures import Future

        ex = PoolExecutor(2)
        inner: Future = Future()
        ex._inflight[inner] = JobFuture(_double, 4, tag="t")
        inner.cancel()
        # What shutdown(cancel_futures=True) does to queued futures:
        inner.set_running_or_notify_cancel()
        future = ex.next_completed()
        assert future.result() == 8  # replayed inline, same pure result
        ex.close()

    def test_pipeline_reusable_after_job_failure(self):
        """No stale completions leak into the round after an abort."""
        from repro.experiments.pipeline import SimulationPipeline

        with SimulationPipeline(jobs=1) as pipe:
            # Serial executor: all three jobs complete inline at submit
            # time; the first yielded result raises, stranding the two
            # _double completions unconsumed inside the executor.
            pipe.call(_crash, 1)
            pipe.call(_double, 2)
            pipe.call(_double, 3)
            with pytest.raises(RuntimeError, match="boom 1"):
                pipe.resolve()
            deferred = pipe.call(_double, 21)
            pipe.resolve()
            assert deferred.value == 42

    def test_worker_pool_close_cancels_queued_futures(self):
        pool = WorkerPool(2)
        futures = [pool.submit(_double, i) for i in range(64)]
        assert all(f is not None for f in futures)
        pool.close()  # must not hang, must not leak
        assert pool._pool is None
        for f in futures:
            assert f.cancelled() or f.done()
