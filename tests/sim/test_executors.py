"""Executor protocol: serial, pooled, sharded dispatch and shard merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.platforms.scenarios import build_model
from repro.sim.executors import (
    PoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
    merge_shard_dirs,
    shard_of,
)
from repro.sim.plan import (
    ResultCache,
    SimRequest,
    WorkerPool,
    plan_simulations,
    request_key,
)


def _double(x):
    return 2 * x


def fig_requests(n=12) -> list[SimRequest]:
    model = build_model("Hera", 1)
    return [
        SimRequest(model=model, T=3600.0 + i, P=1000.0, n_runs=3, n_patterns=4)
        for i in range(n)
    ]


class TestShardOf:
    def test_deterministic(self):
        keys = [request_key(r) for r in fig_requests()]
        assert [shard_of(k, 3) for k in keys] == [shard_of(k, 3) for k in keys]

    def test_in_range_and_spread(self):
        keys = [request_key(r) for r in fig_requests(40)]
        shards = {shard_of(k, 4) for k in keys}
        assert shards <= {0, 1, 2, 3}
        assert len(shards) > 1  # hash actually spreads the keys


class TestSerialExecutor:
    def test_order_preserving_map(self):
        ex = SerialExecutor()
        assert ex.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert ex.workers == 1

    def test_owns_everything(self):
        assert SerialExecutor().owns("deadbeef")


class TestPoolExecutor:
    def test_wraps_worker_count(self):
        with PoolExecutor(3) as ex:
            assert ex.workers == 3
            assert ex.owns("deadbeef")
            assert ex.map(_double, [5, 7]) == [10, 14]

    def test_accepts_existing_pool(self):
        pool = WorkerPool(2)
        with PoolExecutor(pool) as ex:
            assert ex.pool is pool


class TestShardedExecutor:
    def test_partition_is_disjoint_and_covering(self):
        keys = [request_key(r) for r in fig_requests(30)]
        owners = [
            [ShardedExecutor(i, 3).owns(k) for i in range(3)] for k in keys
        ]
        assert all(sum(row) == 1 for row in owners)

    def test_validates_bounds(self):
        with pytest.raises(SimulationError):
            ShardedExecutor(2, 2)
        with pytest.raises(SimulationError):
            ShardedExecutor(-1, 2)
        with pytest.raises(SimulationError):
            ShardedExecutor(0, 0)

    def test_delegates_map_to_inner(self):
        ex = ShardedExecutor(0, 2, inner=SerialExecutor())
        assert ex.map(_double, [1, 2]) == [2, 4]
        assert ex.workers == 1


class TestMakeExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)

    def test_pool_for_many_jobs(self):
        ex = make_executor(4)
        assert isinstance(ex, PoolExecutor) and ex.workers == 4

    def test_sharded_wraps_inner(self):
        ex = make_executor(2, shard_index=1, shard_count=3)
        assert isinstance(ex, ShardedExecutor)
        assert isinstance(ex.inner, PoolExecutor)
        assert ex.shard_index == 1 and ex.shard_count == 3


class TestMergeShardDirs:
    @staticmethod
    def _fill(directory, keys_values):
        cache = ResultCache(directory)
        for key, value in keys_values:
            cache.put_value(key, value)

    def test_copies_and_counts(self, tmp_path):
        self._fill(tmp_path / "a", [("k1", 1.0), ("k2", 2.0)])
        self._fill(tmp_path / "b", [("k3", 3.0)])
        copied, skipped = merge_shard_dirs(
            [tmp_path / "a", tmp_path / "b"], tmp_path / "out"
        )
        assert (copied, skipped) == (3, 0)
        merged = ResultCache(tmp_path / "out")
        assert merged.get_value("k2") == 2.0
        assert merged.get_value("k3") == 3.0

    def test_identical_duplicates_skip(self, tmp_path):
        self._fill(tmp_path / "a", [("k1", 1.0)])
        (tmp_path / "b").mkdir()
        import shutil

        shutil.copyfile(tmp_path / "a" / "k1.npz", tmp_path / "b" / "k1.npz")
        copied, skipped = merge_shard_dirs(
            [tmp_path / "a", tmp_path / "b"], tmp_path / "out"
        )
        assert (copied, skipped) == (1, 1)

    def test_conflicting_content_refuses(self, tmp_path):
        self._fill(tmp_path / "a", [("k1", 1.0)])
        self._fill(tmp_path / "out", [("k1", 99.0)])
        with pytest.raises(SimulationError):
            merge_shard_dirs([tmp_path / "a"], tmp_path / "out")

    def test_missing_shard_dir_refuses(self, tmp_path):
        with pytest.raises(SimulationError):
            merge_shard_dirs([tmp_path / "nope"], tmp_path / "out")


class TestShardedPlanExecution:
    def test_foreign_points_stay_unresolved_and_cache_covers(self, tmp_path):
        """serve_or_expand skips foreign keys; a merged cache serves them."""
        from repro.sim.plan import merge_spans, run_job, serve_or_expand

        requests = fig_requests(6)
        plan = plan_simulations(requests)
        ex0 = ShardedExecutor(0, 2)
        cache0 = ResultCache(tmp_path / "s0")
        estimates, jobs, spans = serve_or_expand(plan, cache0, None, owned=ex0.owns)
        results = [run_job(j) for j in jobs]
        merge_spans(plan, estimates, spans, results, cache0, None)
        owned = [i for i, e in enumerate(estimates) if e is not None]
        foreign = [i for i, e in enumerate(estimates) if e is None]
        assert owned and foreign  # both sides non-trivial for this grid
        assert all(ShardedExecutor(0, 2).owns(plan.keys[i]) for i in owned)
        assert not any(ShardedExecutor(0, 2).owns(plan.keys[i]) for i in foreign)
        # The same cache dir now serves the owned points without jobs.
        again, jobs2, _ = serve_or_expand(plan, ResultCache(tmp_path / "s0"), None,
                                          owned=ex0.owns)
        assert [i for i, e in enumerate(again) if e is not None] == owned
        assert jobs2 == []

    def test_sharded_means_equal_serial_means(self, tmp_path):
        """Union of shard results == serial results, bit for bit."""
        from repro.sim.plan import execute_plan

        requests = fig_requests(5)
        plan = plan_simulations(requests)
        serial = execute_plan(plan)
        for index in (0, 1, 2):
            cache = ResultCache(tmp_path / f"s{index}")
            ex = ShardedExecutor(index, 3)
            from repro.sim.plan import merge_spans, run_job, serve_or_expand

            estimates, jobs, spans = serve_or_expand(plan, cache, None, owned=ex.owns)
            merge_spans(plan, estimates, spans, [run_job(j) for j in jobs], cache, None)
        merge_shard_dirs(
            [tmp_path / f"s{i}" for i in range(3)], tmp_path / "merged"
        )
        merged = execute_plan(plan, cache=ResultCache(tmp_path / "merged"))
        assert [e.mean for e in merged] == [e.mean for e in serial]
        assert [e.std for e in merged] == [e.std for e in serial]


class TestNumericalStability:
    def test_pool_and_serial_identical(self):
        from repro.sim.plan import execute_plan

        plan = plan_simulations(fig_requests(4))
        serial = execute_plan(plan)
        with WorkerPool(2) as pool:
            pooled = execute_plan(plan, pool=pool)
        assert np.array_equal(
            [e.mean for e in serial], [e.mean for e in pooled]
        )
