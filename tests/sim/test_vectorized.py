"""Aggregated whole-budget backend: equivalence, chunking, dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmdahlSpeedup, ErrorModel, PatternModel, ResilienceCosts
from repro.exceptions import SimulationError
from repro.sim.batch import (
    PatternRates,
    merge_batch_stats,
    plan_chunks,
    simulate_batch,
    simulate_batch_chunked,
)
from repro.sim.montecarlo import simulate_overhead
from repro.sim.rng import make_rng
from repro.sim.vectorized import simulate_chunk, simulate_vectorized


def _model(lambda_ind: float, f: float, C=60.0, V=10.0, D=30.0) -> PatternModel:
    return PatternModel(
        errors=ErrorModel(lambda_ind=lambda_ind, fail_stop_fraction=f),
        costs=ResilienceCosts.simple(checkpoint=C, verification=V, downtime=D),
        speedup=AmdahlSpeedup(0.1),
    )


class TestAgainstProposition1:
    @pytest.mark.parametrize("f", [1.0, 0.0, 0.4])
    def test_mean_pattern_time(self, f):
        model = _model(2e-5, f)
        T, P = 1500.0, 20
        stats = simulate_vectorized(model, T, P, n_runs=400, n_patterns=100, seed=42)
        analytic = model.expected_time(T, P)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        assert abs(stats.mean_pattern_time - analytic) < 4 * sem

    def test_error_free_is_deterministic(self):
        model = _model(0.0, 0.5)
        stats = simulate_vectorized(model, 1000.0, 10, n_runs=5, n_patterns=3, seed=1)
        np.testing.assert_allclose(stats.run_times, 3 * 1070.0)
        assert stats.n_fail_stop == 0
        assert stats.n_recoveries == 0

    @pytest.mark.parametrize("lambda_ind", [1e-9, 1e-11, 1e-12])
    def test_silent_only_tiny_rates(self, lambda_ind):
        # Regression: with f=0 the conditional outcome probability of a
        # silent-detected failure is exactly 1; float rounding must not
        # push the multinomial pvals out of domain.
        model = _model(lambda_ind, 0.0)
        stats = simulate_vectorized(model, 1000.0, 1.0, n_runs=500, n_patterns=500, seed=1)
        assert stats.n_fail_stop == 0
        assert stats.n_silent_detected == stats.n_recoveries

    def test_high_rate_regime(self):
        model = _model(1e-3, 0.5, C=5.0, V=1.0, D=2.0)
        T, P = 100.0, 10
        stats = simulate_vectorized(model, T, P, n_runs=600, n_patterns=30, seed=9)
        analytic = model.expected_time(T, P)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        assert abs(stats.mean_pattern_time - analytic) < 4 * sem


class TestAgainstReferenceBackends:
    """Same model + seed: the vectorized mean must sit inside the
    event-driven reference's confidence interval (the acceptance bar),
    and agree with the batch sampler within pooled sampling error."""

    def test_mean_inside_des_ci_fig5_workload(self, hera_sc1):
        # Figure-5-style point: Hera scenario 1 at the numerical optimum.
        T, P = 6554.9, 207.0
        des = simulate_overhead(
            hera_sc1, T, P, n_runs=40, n_patterns=60, seed=5, method="des"
        )
        vec = simulate_overhead(
            hera_sc1, T, P, n_runs=500, n_patterns=500, seed=5, method="vectorized"
        )
        assert des.contains(vec.mean)

    def test_agrees_with_batch(self):
        model = _model(3e-5, 0.5)
        T, P = 1200.0, 25
        batch = simulate_batch(model, T, P, 400, 50, make_rng(6))
        vec = simulate_vectorized(model, T, P, 400, 50, seed=7)
        pooled = np.sqrt(
            batch.run_times.var(ddof=1) / batch.n_runs
            + vec.run_times.var(ddof=1) / vec.n_runs
        )
        assert abs(batch.run_times.mean() - vec.run_times.mean()) < 4 * pooled

    def test_event_rates_agree_with_batch(self):
        model = _model(5e-5, 0.6)
        T, P, n_pat = 800.0, 20, 50
        batch = simulate_batch(model, T, P, 300, n_pat, make_rng(10))
        vec = simulate_vectorized(model, T, P, 300, n_pat, seed=11)
        assert vec.n_fail_stop / vec.n_attempts == pytest.approx(
            batch.n_fail_stop / batch.n_attempts, rel=0.25
        )
        assert vec.n_silent_detected / vec.n_attempts == pytest.approx(
            batch.n_silent_detected / batch.n_attempts, rel=0.25
        )


class TestChunkingAndDispatch:
    def test_reproducible(self):
        model = _model(1e-5, 0.5)
        a = simulate_vectorized(model, 1000.0, 20, 20, 20, seed=12)
        b = simulate_vectorized(model, 1000.0, 20, 20, 20, seed=12)
        np.testing.assert_array_equal(a.run_times, b.run_times)

    def test_worker_count_never_changes_results(self):
        model = _model(2e-5, 0.5)
        serial = simulate_vectorized(
            model, 1000.0, 20, 64, 30, seed=3, chunk_runs=16, workers=1
        )
        pooled = simulate_vectorized(
            model, 1000.0, 20, 64, 30, seed=3, chunk_runs=16, workers=2
        )
        np.testing.assert_array_equal(serial.run_times, pooled.run_times)
        assert serial.n_attempts == pooled.n_attempts

    def test_chunked_mean_unbiased(self):
        model = _model(2e-5, 0.5)
        T, P = 1500.0, 20
        stats = simulate_vectorized(
            model, T, P, n_runs=300, n_patterns=40, seed=8, chunk_runs=37
        )
        assert stats.n_runs == 300
        analytic = model.expected_time(T, P)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        assert abs(stats.mean_pattern_time - analytic) < 4 * sem

    def test_explicit_workers_refines_default_plan(self):
        # A small budget fits one memory-bounded chunk, but an explicit
        # worker request must still split the runs so the pool engages;
        # the plan (and therefore the result) stays a pure function of
        # the call arguments.
        model = _model(2e-5, 0.5)
        a = simulate_vectorized(model, 1000.0, 20, 60, 30, seed=6, workers=4)
        b = simulate_vectorized(model, 1000.0, 20, 60, 30, seed=6, workers=4)
        np.testing.assert_array_equal(a.run_times, b.run_times)
        explicit = simulate_vectorized(
            model, 1000.0, 20, 60, 30, seed=6, chunk_runs=15, workers=1
        )
        np.testing.assert_array_equal(a.run_times, explicit.run_times)

    def test_plan_chunks(self):
        assert plan_chunks(10, 4) == [4, 4, 2]
        assert plan_chunks(8, 4) == [4, 4]
        assert plan_chunks(3, 100) == [3]
        with pytest.raises(SimulationError):
            plan_chunks(0, 4)
        with pytest.raises(SimulationError):
            plan_chunks(4, 0)

    def test_merge_rejects_mismatched_patterns(self):
        model = _model(1e-5, 0.5)
        a = simulate_vectorized(model, 1000.0, 20, 5, 10, seed=1)
        b = simulate_vectorized(model, 1000.0, 20, 5, 20, seed=1)
        with pytest.raises(SimulationError):
            merge_batch_stats([a, b])
        with pytest.raises(SimulationError):
            merge_batch_stats([])

    def test_batch_chunked_matches_distribution(self):
        model = _model(2e-5, 0.5)
        T, P = 1500.0, 20
        stats = simulate_batch_chunked(
            model, T, P, n_runs=200, n_patterns=50, seed=4, chunk_runs=64, workers=1
        )
        assert stats.n_runs == 200
        analytic = model.expected_time(T, P)
        per_run = stats.run_times / stats.n_patterns
        sem = per_run.std(ddof=1) / np.sqrt(stats.n_runs)
        assert abs(stats.mean_pattern_time - analytic) < 4 * sem


class TestBookkeeping:
    def test_attempts_at_least_patterns(self):
        model = _model(1e-4, 0.5)
        stats = simulate_vectorized(model, 500.0, 20, n_runs=50, n_patterns=40, seed=3)
        assert stats.n_attempts >= 50 * 40
        assert stats.n_recoveries == stats.n_attempts - 50 * 40

    def test_silent_only_has_no_downtime(self):
        model = _model(1e-4, 0.0)
        stats = simulate_vectorized(model, 500.0, 20, n_runs=50, n_patterns=40, seed=4)
        assert stats.n_downtimes == 0
        assert stats.n_fail_stop == 0
        assert stats.n_silent_detected > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"T": 0.0, "P": 10, "n_runs": 1, "n_patterns": 1},
            {"T": 10.0, "P": 0, "n_runs": 1, "n_patterns": 1},
            {"T": 10.0, "P": 10, "n_runs": 0, "n_patterns": 1},
            {"T": 10.0, "P": 10, "n_runs": 1, "n_patterns": 0},
        ],
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(SimulationError):
            simulate_vectorized(_model(1e-6, 0.5), seed=1, **kwargs)

    def test_simulate_chunk_validates(self):
        rates = PatternRates.from_model(_model(1e-6, 0.5), 100.0, 10.0)
        with pytest.raises(SimulationError):
            simulate_chunk(rates, 0, 5, 1)
