"""Run manifests: atomic journaling, config hashing, resume validation."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.sim import plan as plan_mod
from repro.sim.manifest import (
    DEFAULT_RUNS_DIR,
    RunManifest,
    RunRecorder,
    config_hash,
    manifest_path,
    validate_resume,
)
from repro.sim.plan import ResultCache


class _Event:
    """Stand-in for a PointEvent (only key/status are read)."""

    def __init__(self, key, status):
        self.key = key
        self.status = status


class TestConfigHash:
    def test_execution_flags_are_ignored(self):
        base = ["fig5", "--runs", "6", "--cache-dir", "c"]
        noisy = base + [
            "--jobs", "4", "--max-inflight", "8", "--progress",
            "--run-id", "x", "--runs-dir", "r", "--resume",
            "--fault-plan", "crash-after=3", "--claim-ttl", "60",
        ]
        assert config_hash(base) == config_hash(noisy)

    def test_inline_form_is_ignored_too(self):
        base = ["fig5", "--runs", "6"]
        assert config_hash(base) == config_hash(base + ["--jobs=4"])

    def test_result_relevant_flags_change_the_hash(self):
        assert config_hash(["fig5", "--runs", "6"]) != config_hash(
            ["fig5", "--runs", "7"]
        )
        assert config_hash(["fig5", "--seed", "1"]) != config_hash(
            ["fig5", "--seed", "2"]
        )

    def test_backend_version_enters_the_hash(self, monkeypatch):
        before = config_hash(["fig5"])
        monkeypatch.setattr(plan_mod, "BACKEND_VERSION", plan_mod.BACKEND_VERSION + 1)
        # config_hash reads the symbol through its own import; patch both.
        import repro.sim.manifest as manifest_mod

        monkeypatch.setattr(
            manifest_mod, "BACKEND_VERSION", plan_mod.BACKEND_VERSION
        )
        assert config_hash(["fig5"]) != before


class TestManifestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        manifest = RunManifest(run_id="r1", argv=("fig5", "--runs", "6"))
        manifest.fates["k1"] = "computed"
        path = manifest_path(tmp_path, "r1")
        RunRecorder(path, manifest)  # writes immediately
        loaded = RunManifest.load(path)
        assert loaded.run_id == "r1"
        assert loaded.argv == ("fig5", "--runs", "6")
        assert loaded.fates == {"k1": "computed"}
        assert loaded.config == manifest.config

    def test_incompatible_format_refuses(self):
        with pytest.raises(ReproError, match="format"):
            RunManifest.from_json({"format": 999, "run_id": "x"})

    def test_missing_manifest_refuses(self, tmp_path):
        with pytest.raises(ReproError, match="no run manifest"):
            RunManifest.load(tmp_path / "nope" / "manifest.json")

    def test_counts(self):
        manifest = RunManifest(run_id="r", argv=("cmd",))
        manifest.fates.update(k1="computed", k2="computed", k3="served")
        assert manifest.counts() == {"computed": 2, "served": 1, "skipped": 0}


class TestRecorder:
    def test_create_refuses_existing_run(self, tmp_path):
        RunRecorder.create(tmp_path, "r1", ["cmd"])
        with pytest.raises(ReproError, match="already has a manifest"):
            RunRecorder.create(tmp_path, "r1", ["cmd"])

    def test_journal_is_a_consistent_prefix(self, tmp_path):
        recorder = RunRecorder.create(tmp_path, "r1", ["cmd"])
        recorder.on_event(_Event("k1", "computed"))
        recorder.on_event(_Event("k2", "computed"))
        # The on-disk manifest already holds both fates, mid-run.
        on_disk = RunManifest.load(manifest_path(tmp_path, "r1"))
        assert on_disk.fates == {"k1": "computed", "k2": "computed"}
        assert on_disk.status == "running"
        recorder.finish()
        assert RunManifest.load(recorder.path).status == "complete"

    def test_events_without_keys_pass(self, tmp_path):
        recorder = RunRecorder.create(tmp_path, "r1", ["cmd"])
        recorder.on_event(_Event(None, "computed"))
        assert recorder.manifest.fates == {}

    def test_resume_accounting(self, tmp_path):
        recorder = RunRecorder.create(tmp_path, "r1", ["cmd"])
        recorder.on_event(_Event("k1", "computed"))
        recorder.on_event(_Event("k2", "computed"))
        resumed = RunRecorder.resume(tmp_path, "r1", ["cmd", "--jobs", "4"])
        assert resumed.manifest.resumes == 1
        # k1 served from cache (reused), k2 recomputed (the smell), k3 new.
        resumed.on_event(_Event("k1", "served"))
        resumed.on_event(_Event("k2", "computed"))
        resumed.on_event(_Event("k3", "computed"))
        assert resumed.manifest.reused == 1
        assert resumed.manifest.recomputed == 1
        assert len(resumed.manifest.fates) == 3

    def test_atomic_write_leaves_no_temp(self, tmp_path):
        recorder = RunRecorder.create(tmp_path, "r1", ["cmd"])
        for i in range(5):
            recorder.on_event(_Event(f"k{i}", "computed"))
        leftovers = [
            p for p in recorder.path.parent.iterdir() if p.name != recorder.path.name
        ]
        assert leftovers == []
        json.loads(recorder.path.read_text())  # always valid JSON


class TestValidateResume:
    def _manifest(self, fates):
        manifest = RunManifest(run_id="r", argv=("cmd",))
        manifest.fates.update(fates)
        return manifest

    def test_classifies_reusable_missing_stale_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_value("good", 1.0)
        cache.put_value("bad", 2.0)
        cache._path("bad").write_bytes(b"torn")
        manifest = self._manifest(
            {"good": "computed", "bad": "computed", "gone": "computed",
             "old": "computed", "skip": "skipped"}
        )
        report = validate_resume(
            manifest, ["good", "bad", "gone", "new"], cache
        )
        assert report.reusable == ("good",)
        assert report.invalidated == ("bad",)
        assert report.missing == ("gone",)
        assert report.stale == ("old",)
        assert report.pending == 4
        # The corrupt entry was deleted so it reads as a clean miss.
        assert not cache._path("bad").exists()

    def test_skipped_fates_never_validate(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = validate_resume(self._manifest({"k": "skipped"}), ["k"], cache)
        assert report.reusable == () and report.missing == ()

    def test_backend_change_flags(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        manifest = self._manifest({})
        assert not validate_resume(manifest, [], cache).backend_changed
        manifest.backend_version -= 1
        assert validate_resume(manifest, [], cache).backend_changed

    def test_config_change_flags(self, tmp_path):
        cache = ResultCache(tmp_path)
        manifest = self._manifest({})
        assert not validate_resume(manifest, [], cache).config_changed
        report = validate_resume(manifest, [], cache, argv=["cmd", "--seed", "9"])
        assert report.config_changed
        # Execution-flag drift does not count.
        report = validate_resume(manifest, [], cache, argv=["cmd", "--jobs", "8"])
        assert not report.config_changed

    def test_report_lines_are_stderr_ready(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = validate_resume(self._manifest({}), [], cache)
        assert all(line.startswith("[resume]") for line in report.lines())


def test_default_runs_dir_is_hidden():
    assert DEFAULT_RUNS_DIR.startswith(".")


class TestAdaptiveJournal:
    JOURNAL = {
        "policy": {"min_replicates": 3, "max_replicates": 12, "wave": 2,
                   "band_tol": 0.05, "stable_waves": 2},
        "families": {"f[Hera]": {"waves": [{"start": 0, "stop": 3,
                                            "rows": None}],
                                 "converged": {"0": 1},
                                 "summary": {"n_rows": 9}}},
    }

    def test_round_trips_through_json(self, tmp_path):
        manifest = RunManifest(run_id="r1", argv=("scenario", "run"))
        path = manifest_path(tmp_path, "r1")
        recorder = RunRecorder(path, manifest)
        recorder.record_adaptive(self.JOURNAL)
        assert RunManifest.load(path).adaptive == self.JOURNAL

    def test_fixed_runs_stay_free_of_the_key(self, tmp_path):
        manifest = RunManifest(run_id="r1", argv=("fig5",))
        path = manifest_path(tmp_path, "r1")
        RunRecorder(path, manifest)
        assert "adaptive" not in json.loads(path.read_text())
        assert RunManifest.load(path).adaptive == {}
