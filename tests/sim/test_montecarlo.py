"""High-level Monte-Carlo driver."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim.montecarlo import (
    FAST,
    METHODS,
    PAPER,
    VECTORIZED_THRESHOLD,
    Fidelity,
    resolve_method,
    simulate_overhead,
)


class TestFidelity:
    def test_paper_matches_section_iv(self):
        assert PAPER.n_runs == 500
        assert PAPER.n_patterns == 500

    def test_fast_is_cheaper(self):
        assert FAST.n_runs * FAST.n_patterns < PAPER.n_runs * PAPER.n_patterns

    def test_custom(self):
        f = Fidelity(n_runs=7, n_patterns=13)
        assert (f.n_runs, f.n_patterns) == (7, 13)


class TestSimulateOverhead:
    def test_batch_matches_analytic(self, hera_sc1):
        T, P = 6554.9, 207.0
        est = simulate_overhead(hera_sc1, T, P, n_runs=300, n_patterns=200, seed=1)
        analytic = float(hera_sc1.overhead(T, P))
        # 6-sigma band: the estimator is unbiased.
        assert abs(est.mean - analytic) < 6 * est.stderr

    def test_des_matches_analytic(self, hera_sc1):
        T, P = 6554.9, 207.0
        est = simulate_overhead(
            hera_sc1, T, P, n_runs=30, n_patterns=60, seed=2, method="des"
        )
        analytic = float(hera_sc1.overhead(T, P))
        assert abs(est.mean - analytic) < 6 * est.stderr

    def test_methods_agree(self, hera_sc1):
        T, P = 6554.9, 207.0
        b = simulate_overhead(hera_sc1, T, P, n_runs=200, n_patterns=100, seed=3)
        d = simulate_overhead(
            hera_sc1, T, P, n_runs=30, n_patterns=100, seed=3, method="des"
        )
        pooled = (b.stderr**2 + d.stderr**2) ** 0.5
        assert abs(b.mean - d.mean) < 5 * pooled

    def test_seed_reproducibility(self, hera_sc1):
        a = simulate_overhead(hera_sc1, 6000.0, 200.0, n_runs=20, n_patterns=20, seed=9)
        b = simulate_overhead(hera_sc1, 6000.0, 200.0, n_runs=20, n_patterns=20, seed=9)
        assert a.mean == b.mean

    def test_vectorized_matches_analytic(self, hera_sc1):
        T, P = 6554.9, 207.0
        est = simulate_overhead(
            hera_sc1, T, P, n_runs=300, n_patterns=200, seed=1, method="vectorized"
        )
        analytic = float(hera_sc1.overhead(T, P))
        assert abs(est.mean - analytic) < 6 * est.stderr

    def test_unknown_method(self, hera_sc1):
        with pytest.raises(SimulationError) as excinfo:
            simulate_overhead(hera_sc1, 6000.0, 200.0, method="quantum")
        message = str(excinfo.value)
        assert "quantum" in message
        for method in METHODS:
            assert method in message, f"error should name valid choice {method!r}"


class TestAutoDispatch:
    def test_small_budget_uses_batch(self):
        assert resolve_method("auto", 50, 100) == "batch"

    def test_paper_budget_uses_vectorized(self):
        assert resolve_method("auto", PAPER.n_runs, PAPER.n_patterns) == "vectorized"
        assert PAPER.n_cells >= VECTORIZED_THRESHOLD > FAST.n_cells

    def test_explicit_method_passes_through(self):
        assert resolve_method("des", 10**6, 10**6) == "des"
        assert resolve_method("batch", 10**6, 10**6) == "batch"

    def test_unknown_method_rejected_early(self):
        with pytest.raises(SimulationError):
            resolve_method("", 1, 1)

    def test_auto_equals_vectorized_above_threshold(self, hera_sc1):
        kwargs = dict(n_runs=500, n_patterns=500, seed=2)
        auto = simulate_overhead(hera_sc1, 6554.9, 207.0, **kwargs)
        vec = simulate_overhead(hera_sc1, 6554.9, 207.0, method="vectorized", **kwargs)
        assert auto.mean == vec.mean

    def test_batch_chunks_above_memory_cap(self, hera_sc1, monkeypatch):
        import repro.sim.batch as batch_mod
        from repro.sim.batch import simulate_batch_chunked
        from repro.sim.results import overhead_estimate

        monkeypatch.setattr(batch_mod, "MAX_CHUNK_ELEMENTS", 100)
        est = simulate_overhead(
            hera_sc1, 6000.0, 200.0, n_runs=30, n_patterns=20, seed=5, method="batch"
        )
        stats = simulate_batch_chunked(hera_sc1, 6000.0, 200.0, 30, 20, seed=5)
        ref = overhead_estimate(hera_sc1, 6000.0, 200.0, stats)
        assert est.mean == ref.mean
        assert est.n_runs == 30

    def test_fractional_processors_accepted(self, hera_sc1):
        # First-order P* is continuous; the simulator must accept it.
        est = simulate_overhead(hera_sc1, 6239.4, 218.9, n_runs=20, n_patterns=20, seed=4)
        assert est.mean > 0.1
