"""High-level Monte-Carlo driver."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim.montecarlo import FAST, PAPER, Fidelity, simulate_overhead


class TestFidelity:
    def test_paper_matches_section_iv(self):
        assert PAPER.n_runs == 500
        assert PAPER.n_patterns == 500

    def test_fast_is_cheaper(self):
        assert FAST.n_runs * FAST.n_patterns < PAPER.n_runs * PAPER.n_patterns

    def test_custom(self):
        f = Fidelity(n_runs=7, n_patterns=13)
        assert (f.n_runs, f.n_patterns) == (7, 13)


class TestSimulateOverhead:
    def test_batch_matches_analytic(self, hera_sc1):
        T, P = 6554.9, 207.0
        est = simulate_overhead(hera_sc1, T, P, n_runs=300, n_patterns=200, seed=1)
        analytic = float(hera_sc1.overhead(T, P))
        # 6-sigma band: the estimator is unbiased.
        assert abs(est.mean - analytic) < 6 * est.stderr

    def test_des_matches_analytic(self, hera_sc1):
        T, P = 6554.9, 207.0
        est = simulate_overhead(
            hera_sc1, T, P, n_runs=30, n_patterns=60, seed=2, method="des"
        )
        analytic = float(hera_sc1.overhead(T, P))
        assert abs(est.mean - analytic) < 6 * est.stderr

    def test_methods_agree(self, hera_sc1):
        T, P = 6554.9, 207.0
        b = simulate_overhead(hera_sc1, T, P, n_runs=200, n_patterns=100, seed=3)
        d = simulate_overhead(
            hera_sc1, T, P, n_runs=30, n_patterns=100, seed=3, method="des"
        )
        pooled = (b.stderr**2 + d.stderr**2) ** 0.5
        assert abs(b.mean - d.mean) < 5 * pooled

    def test_seed_reproducibility(self, hera_sc1):
        a = simulate_overhead(hera_sc1, 6000.0, 200.0, n_runs=20, n_patterns=20, seed=9)
        b = simulate_overhead(hera_sc1, 6000.0, 200.0, n_runs=20, n_patterns=20, seed=9)
        assert a.mean == b.mean

    def test_unknown_method(self, hera_sc1):
        with pytest.raises(SimulationError):
            simulate_overhead(hera_sc1, 6000.0, 200.0, method="quantum")

    def test_fractional_processors_accepted(self, hera_sc1):
        # First-order P* is continuous; the simulator must accept it.
        est = simulate_overhead(hera_sc1, 6239.4, 218.9, n_runs=20, n_patterns=20, seed=4)
        assert est.mean > 0.1
