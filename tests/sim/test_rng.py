"""Reproducible RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.rng import make_rng, spawn_rngs, spawn_seed_sequences


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_default_seed_is_fixed(self):
        assert make_rng().random() == make_rng().random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestSpawn:
    def test_streams_independent(self):
        a, b = spawn_rngs(2, seed=7)
        xa = a.random(1000)
        xb = b.random(1000)
        # Independent streams: negligible correlation.
        corr = np.corrcoef(xa, xb)[0, 1]
        assert abs(corr) < 0.1

    def test_reproducible(self):
        first = [r.random() for r in spawn_rngs(3, seed=9)]
        second = [r.random() for r in spawn_rngs(3, seed=9)]
        assert first == second

    def test_count(self):
        assert len(spawn_rngs(17, seed=1)) == 17

    def test_seed_sequences(self):
        seqs = spawn_seed_sequences(4, seed=3)
        assert len(seqs) == 4
        assert len({s.entropy if isinstance(s.entropy, int) else tuple(s.entropy) for s in seqs}) <= 4

    def test_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            spawn_rngs(0)

    def test_accepts_seed_sequence(self):
        master = np.random.SeedSequence(5)
        rngs = spawn_rngs(2, seed=master)
        assert len(rngs) == 2
