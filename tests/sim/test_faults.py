"""Deterministic fault injection: plan parsing, wrapping, crash hooks."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.sim.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    SimulatedCrash,
    TransientFault,
    parse_fault_plan,
)
from repro.sim.plan import ResultCache, run_job
from repro.sim.scheduler import is_transient


def _job(value):
    return (_identity, (value,), {})


def _identity(value):
    return value


class TestParsing:
    def test_single_terms(self):
        assert parse_fault_plan("crash-after=20").crash_after == 20
        assert parse_fault_plan("kill-worker=5").kill_worker == 5
        assert parse_fault_plan("corrupt-entry=0").corrupt_entry == 0
        assert parse_fault_plan("seed=3").seed == 3

    def test_fail_job_with_repeat(self):
        plan = parse_fault_plan("fail-job=3:2")
        assert plan.fail_job == 3 and plan.fail_times == 2

    def test_combined_terms(self):
        plan = parse_fault_plan("fail-job=3,crash-after=40")
        assert plan.fail_job == 3 and plan.crash_after == 40

    def test_unknown_term_refuses(self):
        with pytest.raises(ReproError, match="unknown fault-plan term"):
            parse_fault_plan("explode=1")

    def test_non_integer_refuses(self):
        with pytest.raises(ReproError, match="needs an integer"):
            parse_fault_plan("crash-after=soon")

    def test_one_based_indices(self):
        for spec in ("fail-job=0", "kill-worker=0", "crash-after=0"):
            with pytest.raises(ReproError, match="1-based"):
                parse_fault_plan(spec)
        with pytest.raises(ReproError, match=">= 0"):
            parse_fault_plan("corrupt-entry=-1")
        with pytest.raises(ReproError, match="repeat count"):
            parse_fault_plan("fail-job=1:0")


class TestWrapJob:
    def test_matched_job_raises_then_passes(self):
        plan = FaultPlan(fail_job=2, fail_times=2)
        # Job 1 passes through untouched.
        assert plan.wrap_job(_job(1), tag=1, attempt=0) == _job(1)
        # Job 2 fails on its first submission and first retry...
        wrapped = plan.wrap_job(_job(2), tag=2, attempt=0)
        with pytest.raises(TransientFault):
            run_job(wrapped)
        wrapped = plan.wrap_job(_job(2), tag=2, attempt=1)
        with pytest.raises(TransientFault):
            run_job(wrapped)
        # ... then runs normally on the next resubmission.
        assert plan.wrap_job(_job(2), tag=2, attempt=2) == _job(2)

    def test_retries_do_not_advance_sequence(self):
        plan = FaultPlan(fail_job=2)
        plan.wrap_job(_job(1), tag=1, attempt=0)
        # A retry of job 1 (attempt > 0) must not consume sequence 2.
        plan.wrap_job(_job(1), tag=1, attempt=1)
        wrapped = plan.wrap_job(_job(2), tag=2, attempt=0)
        with pytest.raises(TransientFault):
            run_job(wrapped)

    def test_injected_fault_is_transient(self):
        assert is_transient(TransientFault("boom"))

    def test_kill_worker_inline_degrades_to_raise(self):
        # No parent process in the test: the kill body raises instead
        # of os._exit, keeping the suite alive.
        plan = FaultPlan(kill_worker=1)
        wrapped = plan.wrap_job(_job(1), tag=1, attempt=0)
        with pytest.raises(TransientFault, match="worker kill"):
            run_job(wrapped)
        # Injection spent: resubmission runs the real job.
        assert plan.wrap_job(_job(1), tag=1, attempt=1) == _job(1)


class TestCompletionCrash:
    def test_crashes_after_nth_completion(self):
        plan = FaultPlan(crash_after=3)
        plan.on_completion()
        plan.on_completion()
        with pytest.raises(SimulatedCrash):
            plan.on_completion()

    def test_no_crash_without_term(self):
        plan = FaultPlan()
        for _ in range(10):
            plan.on_completion()

    def test_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE not in (0, 1, 2)


class TestCorruptCache:
    def test_truncates_nth_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put_value(f"k{i}", float(i))
        sizes = {e.key: e.size for e in cache.entries()}
        hurt = FaultPlan(corrupt_entry=1).corrupt_cache(cache)
        assert hurt == "k1"
        ok, reason = cache.verify_entry("k1")
        assert not ok
        assert cache.verify_entry("k0") == (True, "ok")
        assert cache._path("k1").stat().st_size < sizes["k1"]

    def test_out_of_range_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert FaultPlan(corrupt_entry=5).corrupt_cache(cache) is None

    def test_unconfigured_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_value("k", 1.0)
        assert FaultPlan().corrupt_cache(cache) is None
        assert cache.verify_entry("k") == (True, "ok")
