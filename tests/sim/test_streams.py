"""Arrival-process abstractions (exponential, Weibull)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sim.rng import make_rng
from repro.sim.streams import ExponentialArrivals, WeibullArrivals


class TestExponential:
    def test_mean_and_rate(self):
        p = ExponentialArrivals(lam=0.01)
        assert p.mean == pytest.approx(100.0)
        assert p.rate == pytest.approx(0.01)

    def test_sample_mean(self):
        p = ExponentialArrivals(lam=0.02)
        rng = make_rng(1)
        samples = np.array([p.sample_interarrival(rng) for _ in range(50_000)])
        assert samples.mean() == pytest.approx(50.0, rel=0.02)

    def test_rejects_bad_rate(self):
        with pytest.raises(InvalidParameterError):
            ExponentialArrivals(lam=0.0)


class TestWeibull:
    def test_mean_formula(self):
        w = WeibullArrivals(shape=2.0, scale=100.0)
        assert w.mean == pytest.approx(100.0 * math.gamma(1.5))

    def test_from_mean_roundtrip(self):
        w = WeibullArrivals.from_mean(0.7, 3600.0)
        assert w.mean == pytest.approx(3600.0)

    def test_shape_one_is_exponential(self):
        w = WeibullArrivals(shape=1.0, scale=100.0)
        e = ExponentialArrivals(lam=0.01)
        rng_w, rng_e = make_rng(3), make_rng(3)
        sw = np.array([w.sample_interarrival(rng_w) for _ in range(50_000)])
        se = np.array([e.sample_interarrival(rng_e) for _ in range(50_000)])
        # Same distribution family: matching mean and variance.
        assert sw.mean() == pytest.approx(se.mean(), rel=0.03)
        assert sw.var() == pytest.approx(se.var(), rel=0.06)

    def test_sample_mean_matches(self):
        w = WeibullArrivals.from_mean(0.7, 200.0)
        rng = make_rng(5)
        samples = np.array([w.sample_interarrival(rng) for _ in range(100_000)])
        assert samples.mean() == pytest.approx(200.0, rel=0.03)

    def test_small_shape_is_burstier(self):
        # Lower shape -> higher coefficient of variation at equal mean.
        rng = make_rng(7)
        cv = {}
        for shape in (0.7, 1.0, 2.0):
            w = WeibullArrivals.from_mean(shape, 100.0)
            s = np.array([w.sample_interarrival(rng) for _ in range(50_000)])
            cv[shape] = s.std() / s.mean()
        assert cv[0.7] > cv[1.0] > cv[2.0]

    @pytest.mark.parametrize("kwargs", [
        {"shape": 0.0, "scale": 1.0},
        {"shape": 1.0, "scale": -1.0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(InvalidParameterError):
            WeibullArrivals(**kwargs)

    def test_from_mean_rejects_bad(self):
        with pytest.raises(InvalidParameterError):
            WeibullArrivals.from_mean(0.7, -1.0)
